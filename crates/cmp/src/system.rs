//! The chip-multiprocessor system: cores, L1s, directories, memory
//! channels and one of the interconnects, wired together cycle by cycle.
//!
//! Two details deserve a note:
//!
//! * **Per-line point-to-point ordering.** The paper relies on the
//!   network's ability to order messages between a pair of nodes about the
//!   same cache line: "we delay the transmission of another message about
//!   a cache line until a previous message about that line has been
//!   confirmed" (§4.4). The system enforces exactly that at every sender,
//!   which closes the classic Data/Inv overtaking race.
//! * **§5.1 optimizations.** With `opt_confirmation_acks`, a clean (no
//!   data) invalidation acknowledgment never becomes a packet — the
//!   confirmation of the Inv delivery *is* the commitment, so the
//!   directory is credited the ack one confirmation delay after the L1
//!   processed the Inv. With `opt_subscriptions`, spin loops on lock and
//!   barrier words subscribe to single-bit pushes on reserved
//!   confirmation mini-cycles instead of re-fetching the line.

use crate::configs::SystemConfig;
use crate::core::{Core, CoreState};
use crate::energy::{ChipEnergy, ChipPowerModel};
use crate::interconnect::{Interconnect, NetPacket};
use crate::memory::MemorySystem;
use crate::metrics::{DataPacketKind, RunReport};
use crate::workload::{AppProfile, CoreWorkload, Op};
use fsoi_coherence::directory::Directory;
use fsoi_coherence::l1::L1Controller;
use fsoi_coherence::protocol::{CoherenceMsg, LineAddr, OutMsg};
use fsoi_coherence::sync::{Barrier, BooleanSubscriptionHub, SpinLock};
use fsoi_net::packet::PacketClass;
use fsoi_sim::det::{DetMap, DetSet};
use fsoi_sim::event::EventQueue;
use fsoi_sim::profile::Profile;
use fsoi_sim::rng::Xoshiro256StarStar;
use fsoi_sim::stats::Histogram;
use fsoi_sim::telemetry::{self, Phase};
use fsoi_sim::Cycle;
use std::collections::VecDeque;

/// How often a spinning core re-probes a sync word, cycles.
const SPIN_PROBE_PERIOD: u64 = 12;
/// Base delay before resending a NACKed request.
const NACK_RETRY_BASE: u64 = 12;
/// Confirmation delay used for elided acks and subscription pushes.
const CONFIRMATION_DELAY: u64 = 2;

#[derive(Debug)]
enum Pending {
    /// A coherence message arrives at its handler.
    Deliver {
        from: usize,
        to: usize,
        msg: CoherenceMsg,
    },
    /// A subscription push wakes a core.
    Wake { core: usize },
    /// A deferred packet injection (request spacing / NACK retry).
    Inject {
        from: usize,
        out: OutMsg,
        scheduling_delay: u64,
    },
    /// A confirmation-channel (non-packet) delivery released by ordering.
    DirectDeliver { from: usize, out: OutMsg },
    /// Release the per-line ordering slot (sender saw the confirmation).
    ReleaseOrder { key: (usize, usize, LineAddr) },
}

/// Per-line ordering queue: pending messages with their scheduling delay
/// and a confirmation-channel (direct) marker. Deterministic (BTree-backed)
/// so no hasher state can ever leak into drain order or exports.
type OrderQueue = DetMap<(usize, usize, LineAddr), VecDeque<(OutMsg, u64, bool)>>;

/// The simulated CMP.
#[derive(Debug)]
pub struct CmpSystem {
    cfg: SystemConfig,
    app: AppProfile,
    now: Cycle,
    net: Box<dyn Interconnect>,
    cores: Vec<Core>,
    l1s: Vec<L1Controller>,
    dirs: Vec<Directory>,
    mem: MemorySystem,
    locks: Vec<SpinLock>,
    barrier: Barrier,
    hub: BooleanSubscriptionHub,
    rng: Xoshiro256StarStar,
    pending: EventQueue<Pending>,
    /// In-flight message payloads, indexed by packet tag.
    msgs: Vec<Option<(usize, CoherenceMsg)>>,
    free_tags: Vec<u64>,
    /// Per-(src, dst, line) ordering: messages waiting for the slot.
    /// The `bool` marks confirmation-channel (direct) deliveries.
    order_wait: OrderQueue,
    order_busy: DetSet<(usize, usize, LineAddr)>,
    /// Packets that bounced off a full injection queue.
    inject_backlog: VecDeque<(usize, NetPacket)>,
    // --- statistics ---
    reply_latency: Histogram,
    packets_sent: [u64; 2],
    data_by_kind: [u64; 3],
    collided_by_kind: [u64; 4],
    acks_elided: u64,
    protocol_errors: u64,
    first_protocol_error: Option<String>,
    // Deterministic harness-profile counters (see `fsoi_sim::profile`):
    // pure functions of the cell inputs and the `run()` drive, assembled
    // into `RunReport::profile` by `report()`. Deliberately *not* part of
    // `RunReport::export()` — a tick-only drive (the fast-forward
    // reference tests) legitimately differs from `run()` here.
    ticks: u64,
    ff_jumps: u64,
    ff_cycles_skipped: u64,
    events_processed: u64,
}

impl CmpSystem {
    /// Builds the system for one application.
    pub fn new(cfg: SystemConfig, app: AppProfile) -> Self {
        let mut app = app;
        let n = cfg.nodes;
        // Weak scaling: larger machines run proportionally larger shared
        // problems (keeping per-core work fixed), so the cold footprint
        // grows with the node count beyond the 16-node baseline.
        if n > 16 {
            app.shared_cold_lines *= (n / 16) as u64;
        }
        let net = cfg.build_network();
        let mem = if n == 16 {
            MemorySystem::paper_16(cfg.mem_gb_per_s)
        } else if n == 64 {
            MemorySystem::paper_64(cfg.mem_gb_per_s)
        } else {
            MemorySystem::new(n, (n / 4).max(1), cfg.mem_gb_per_s, cfg.mem_latency, 3.3e9)
        };
        let cores = (0..n)
            .map(|i| Core::new(i, CoreWorkload::new(app, i, cfg.line_bytes, cfg.seed)))
            .collect();
        let l1s = (0..n)
            .map(|i| {
                let mut l1 = L1Controller::new(i, cfg.l1_lines, cfg.l1_ways, cfg.line_bytes);
                l1.set_home_nodes(n);
                l1
            })
            .collect();
        let mut dirs: Vec<Directory> = (0..n)
            .map(|i| {
                let mem_node = mem.controller_node(i);
                Directory::new(i, mem_node, cfg.l2_lines)
            })
            .collect();
        // Warm the distributed L2: the paper measures steady-state windows
        // (e.g. "between a fixed number of barrier instances"), so the
        // shared data is L2-resident when timing starts.
        {
            let _warm = telemetry::span(Phase::Warmup);
            for line in app.all_region_lines(n, cfg.line_bytes) {
                let home = ((line.0 / cfg.line_bytes) % n as u64) as usize;
                dirs[home].preload(line);
            }
        }
        CmpSystem {
            app,
            now: Cycle::ZERO,
            cores,
            l1s,
            dirs,
            mem,
            locks: (0..app.locks.max(1)).map(|_| SpinLock::new()).collect(),
            barrier: Barrier::new(n),
            hub: BooleanSubscriptionHub::new(),
            rng: Xoshiro256StarStar::new(cfg.seed ^ SYSTEM_SEED_SALT),
            pending: EventQueue::new(),
            msgs: Vec::new(),
            free_tags: Vec::new(),
            order_wait: DetMap::new(),
            order_busy: DetSet::new(),
            inject_backlog: VecDeque::new(),
            reply_latency: Histogram::new(10, 20),
            packets_sent: [0, 0],
            data_by_kind: [0; 3],
            collided_by_kind: [0; 4],
            acks_elided: 0,
            protocol_errors: 0,
            first_protocol_error: None,
            ticks: 0,
            ff_jumps: 0,
            ff_cycles_skipped: 0,
            events_processed: 0,
            net,
            cfg,
        }
    }

    /// Forks an unrun template into a fresh system equivalent to
    /// `CmpSystem::new(cfg.with_seed(seed), app)` for the pre-scaling
    /// `app` the template was built from.
    ///
    /// The expensive seed-independent construction work — the preloaded
    /// distributed-L2 directories, the L1 arrays, the memory system — is
    /// deep-cloned from the template; everything seed-dependent (the
    /// network, the per-core workload RNG streams, the system RNG) is
    /// rebuilt from `seed`. Construction is deterministic and none of the
    /// cloned state reads `cfg.seed`, so a fork is byte-identical to a
    /// cold construction with the same seed — an invariant pinned by the
    /// `par_merge` byte-identity properties in `fsoi-bench`.
    ///
    /// Note `self.app` already carries the weak-scaling adjustment from
    /// [`CmpSystem::new`], so the fork must not (and does not) rescale
    /// `shared_cold_lines` again.
    ///
    /// # Panics
    ///
    /// Panics when the template has already been run: mid-run warm state
    /// is seed-dependent, so only a freshly-constructed system may seed
    /// other sweep cells.
    pub fn fork(&self, seed: u64) -> CmpSystem {
        assert!(
            self.now == Cycle::ZERO && self.pending.is_empty(),
            "fork requires an unrun template (state after cycle 0 is seed-dependent)"
        );
        let cfg = self.cfg.clone().with_seed(seed);
        let n = cfg.nodes;
        let cores = (0..n)
            .map(|i| Core::new(i, CoreWorkload::new(self.app, i, cfg.line_bytes, seed)))
            .collect();
        CmpSystem {
            app: self.app,
            now: Cycle::ZERO,
            cores,
            l1s: self.l1s.clone(),
            dirs: self.dirs.clone(),
            mem: self.mem.clone(),
            locks: (0..self.app.locks.max(1))
                .map(|_| SpinLock::new())
                .collect(),
            barrier: Barrier::new(n),
            hub: BooleanSubscriptionHub::new(),
            rng: Xoshiro256StarStar::new(seed ^ SYSTEM_SEED_SALT),
            pending: EventQueue::new(),
            msgs: Vec::new(),
            free_tags: Vec::new(),
            order_wait: DetMap::new(),
            order_busy: DetSet::new(),
            inject_backlog: VecDeque::new(),
            reply_latency: Histogram::new(10, 20),
            packets_sent: [0, 0],
            data_by_kind: [0; 3],
            collided_by_kind: [0; 4],
            acks_elided: 0,
            protocol_errors: 0,
            first_protocol_error: None,
            ticks: 0,
            ff_jumps: 0,
            ff_cycles_skipped: 0,
            events_processed: 0,
            net: cfg.build_network(),
            cfg,
        }
    }

    /// Current cycle.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// The configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// Runs until every core retires and the system drains, or `max`
    /// cycles elapse. Returns the report.
    ///
    /// # Panics
    ///
    /// Panics if the system fails to drain within `max` cycles (a
    /// deadlock would be a protocol or network bug).
    pub fn run(&mut self, max: u64) -> RunReport {
        while !self.finished() {
            assert!(
                self.now.as_u64() < max,
                "system did not drain within {max} cycles (app {}, net {})",
                self.app.name,
                self.net.name()
            );
            self.tick();
            self.fast_forward(max);
        }
        self.report()
    }

    /// Jumps `now` to the next cycle at which anything can happen — the
    /// earliest pending event, core issue or spin-probe time, or network
    /// event — bulk-accounting the skipped span. A no-op when work is due
    /// this cycle, the injection backlog is non-empty (it retries every
    /// cycle), or the network cannot bound its next event.
    ///
    /// Byte-identical to ticking through the span: no pending event, core
    /// transition, or network event lies strictly inside it, so every
    /// skipped `tick` would have been pure bookkeeping — constant-state
    /// core accounting, which `account_cycles` reproduces exactly.
    fn fast_forward(&mut self, max: u64) {
        if !self.inject_backlog.is_empty() {
            return; // the backlog retries every cycle
        }
        // Cheap bounds first — core deadlines and the pending-event
        // queue. In busy phases something is almost always due within a
        // cycle, and bailing here keeps the network scan (the expensive
        // bound) off the per-tick path.
        let mut next = Cycle(u64::MAX);
        if let Some(t) = self.pending.peek_time() {
            next = next.min(t);
        }
        for c in &self.cores {
            match c.state {
                CoreState::Ready => next = next.min(c.next_at),
                CoreState::SpinLock { next_probe, .. }
                | CoreState::SpinBarrier { next_probe, .. } => next = next.min(next_probe),
                _ => {}
            }
        }
        if next.as_u64() <= self.now.as_u64() + 1 {
            return; // due now or next cycle: a skip could not save a tick
        }
        match self.net.next_event_at() {
            Some(t) => next = next.min(t),
            None => return, // busy network without an event bound: tick it
        }
        if next == Cycle(u64::MAX) {
            return; // nothing schedulable anywhere (drained, or wedged —
                    // the run loop's overrun assert still fires at `max`)
        }
        // Never skip past the drain deadline: the overrun assert in `run`
        // fires at the same cycle it would cycle-by-cycle.
        let next = next.min(Cycle(max));
        if next <= self.now {
            return;
        }
        let skipped = next.as_u64() - self.now.as_u64();
        self.ff_jumps += 1;
        self.ff_cycles_skipped += skipped;
        self.net.advance_to(next);
        for c in &mut self.cores {
            c.account_cycles(skipped);
        }
        self.now = next;
    }

    fn finished(&self) -> bool {
        self.cores.iter().all(|c| c.is_done())
            && self.pending.is_empty()
            && self.inject_backlog.is_empty()
            && self.net.is_idle()
    }

    /// One cycle. The three sections are wrapped in wall-clock telemetry
    /// spans (interconnect vs coherence/memory events vs cores); when
    /// telemetry is off each span costs one relaxed atomic load and reads
    /// no clock, so the hot path stays hot.
    pub fn tick(&mut self) {
        self.ticks += 1;
        {
            let _net = telemetry::span(Phase::SimNet);
            self.net.tick();
            self.drain_network();
        }
        {
            let _ev = telemetry::span(Phase::SimEvents);
            self.process_pending();
            self.retry_backlog();
        }
        {
            let _cores = telemetry::span(Phase::SimCores);
            self.step_cores();
            for c in &mut self.cores {
                c.account_cycle(self.now);
            }
        }
        self.now += 1;
    }

    // ----- message plumbing -------------------------------------------

    fn alloc_tag(&mut self, from: usize, msg: CoherenceMsg) -> u64 {
        if let Some(tag) = self.free_tags.pop() {
            self.msgs[tag as usize] = Some((from, msg));
            tag
        } else {
            self.msgs.push(Some((from, msg)));
            (self.msgs.len() - 1) as u64
        }
    }

    fn class_of(msg: &CoherenceMsg) -> PacketClass {
        if msg.carries_data() {
            PacketClass::Data
        } else {
            PacketClass::Meta
        }
    }

    fn data_kind(msg: &CoherenceMsg) -> Option<DataPacketKind> {
        match msg {
            CoherenceMsg::MemAck { .. } => Some(DataPacketKind::Memory),
            CoherenceMsg::Data { .. } => Some(DataPacketKind::Reply),
            CoherenceMsg::WriteBack { .. } => Some(DataPacketKind::WriteBack),
            CoherenceMsg::InvAck {
                with_data: true, ..
            }
            | CoherenceMsg::DwgAck {
                with_data: true, ..
            } => Some(DataPacketKind::WriteBack),
            _ => None,
        }
    }

    /// Processing latency applied when a message reaches its handler.
    fn processing_latency(&self, msg: &CoherenceMsg) -> u64 {
        match msg {
            // Directory-bound: an L2/directory access.
            CoherenceMsg::Req { .. }
            | CoherenceMsg::WriteBack { .. }
            | CoherenceMsg::InvAck { .. }
            | CoherenceMsg::DwgAck { .. }
            | CoherenceMsg::MemAck { .. } => self.cfg.l2_latency,
            // L1-bound: an L1 access.
            CoherenceMsg::Data { .. }
            | CoherenceMsg::ExcAck { .. }
            | CoherenceMsg::Inv { .. }
            | CoherenceMsg::Dwg { .. }
            | CoherenceMsg::Retry { .. } => self.cfg.l1_latency,
            // Memory controller: the channel model supplies all timing.
            CoherenceMsg::MemReq { .. } => 0,
        }
    }

    /// Sends a message, honouring per-line point-to-point ordering
    /// (§4.4: "we delay the transmission of another message about a cache
    /// line until a previous message about that line has been
    /// confirmed"). `direct` marks confirmation-channel deliveries (§5.1
    /// elided acks), which skip the packet network but still obey the
    /// ordering.
    fn route(&mut self, from: usize, out: OutMsg, scheduling_delay: u64, direct: bool) {
        if from == out.to {
            // Local: no network, just processing latency.
            let lat = self.processing_latency(&out.msg).max(1);
            self.pending.push(
                self.now + lat,
                Pending::Deliver {
                    from,
                    to: out.to,
                    msg: out.msg,
                },
            );
            return;
        }
        let key = (from, out.to, out.msg.line());
        if self.order_busy.contains(&key) {
            self.order_wait
                .entry(key)
                .or_default()
                .push_back((out, scheduling_delay, direct));
            return;
        }
        self.order_busy.insert(key);
        self.transmit(from, out, scheduling_delay, direct);
    }

    fn transmit(&mut self, from: usize, out: OutMsg, scheduling_delay: u64, direct: bool) {
        if direct {
            // Confirmation-channel delivery: collision-free by design,
            // lands after the fixed confirmation delay.
            self.acks_elided += 1;
            let key = (from, out.to, out.msg.line());
            self.pending.push(
                self.now + CONFIRMATION_DELAY,
                Pending::DirectDeliver { from, out },
            );
            self.pending
                .push(self.now + CONFIRMATION_DELAY, Pending::ReleaseOrder { key });
            return;
        }
        let class = Self::class_of(&out.msg);
        // §5.2 hint knowledge: once a reply-class data packet is launched,
        // its receiver "expects a data packet reply" from this sender (the
        // paper's receivers infer this from their outstanding requests).
        if matches!(
            out.msg,
            CoherenceMsg::Data { .. } | CoherenceMsg::MemAck { .. }
        ) {
            self.net.expect_data(out.to, from);
        }
        let tag = self.alloc_tag(from, out.msg);
        let mut pkt = NetPacket::new(from, out.to, class, tag);
        pkt.scheduling_delay = scheduling_delay;
        self.packets_sent[class.lane()] += 1;
        if let Err(p) = self.net.inject(pkt) {
            self.inject_backlog.push_back((from, p));
        }
    }

    fn retry_backlog(&mut self) {
        if self.inject_backlog.is_empty() {
            return;
        }
        let mut still = VecDeque::new();
        while let Some((from, pkt)) = self.inject_backlog.pop_front() {
            if let Err(p) = self.net.inject(pkt) {
                still.push_back((from, p));
            }
        }
        self.inject_backlog = still;
    }

    fn drain_network(&mut self) {
        for d in self.net.drain() {
            let tag = d.packet.tag;
            let (from, msg) = self.msgs[tag as usize]
                .take()
                // lint: allow(P1) tags are allocated from free_tags, so a delivered tag maps to a live message
                .expect("delivered tag must be live");
            self.free_tags.push(tag);
            // Figure 10 accounting.
            if let Some(kind) = Self::data_kind(&msg) {
                self.data_by_kind[kind.index()] += 1;
                if d.retries >= 1 {
                    self.collided_by_kind[kind.index()] += 1;
                }
                if d.retries >= 2 {
                    self.collided_by_kind[3] += 1;
                }
            }
            // Release the ordering slot once the sender sees the
            // confirmation.
            let key = (from, d.packet.dst, msg.line());
            self.pending
                .push(self.now + CONFIRMATION_DELAY, Pending::ReleaseOrder { key });
            // Hand to the handler after its processing latency.
            let lat = self.processing_latency(&msg).max(1);
            self.pending.push(
                self.now + lat,
                Pending::Deliver {
                    from,
                    to: d.packet.dst,
                    msg,
                },
            );
        }
    }

    fn process_pending(&mut self) {
        while let Some((_, ev)) = self.pending.pop_due(self.now) {
            self.events_processed += 1;
            match ev {
                Pending::Deliver { from, to, msg } => self.deliver(from, to, msg),
                Pending::DirectDeliver { from, out } => {
                    let lat = self.processing_latency(&out.msg).max(1);
                    self.pending.push(
                        self.now + lat,
                        Pending::Deliver {
                            from,
                            to: out.to,
                            msg: out.msg,
                        },
                    );
                }
                Pending::Wake { core } => self.wake_core(core),
                Pending::Inject {
                    from,
                    out,
                    scheduling_delay,
                } => self.route(from, out, scheduling_delay, false),
                Pending::ReleaseOrder { key } => {
                    if let Some(queue) = self.order_wait.get_mut(&key) {
                        if let Some((out, sd, direct)) = queue.pop_front() {
                            if queue.is_empty() {
                                self.order_wait.remove(&key);
                            }
                            self.transmit(key.0, out, sd, direct);
                            continue; // slot stays busy for the follower
                        }
                    }
                    self.order_busy.remove(&key);
                }
            }
        }
    }

    fn deliver(&mut self, from: usize, to: usize, msg: CoherenceMsg) {
        match msg {
            // Memory controller.
            CoherenceMsg::MemReq { line, write } => {
                let home = self.home_of(line);
                let done = self.mem.request(home, self.now, self.cfg.line_bytes);
                if !write {
                    let controller = self.mem.controller_node(home);
                    self.pending.push(
                        done,
                        Pending::Inject {
                            from: controller,
                            out: OutMsg {
                                to: home,
                                msg: CoherenceMsg::MemAck { line },
                            },
                            scheduling_delay: 0,
                        },
                    );
                }
            }
            // Directory-bound.
            CoherenceMsg::Req { .. }
            | CoherenceMsg::WriteBack { .. }
            | CoherenceMsg::InvAck { .. }
            | CoherenceMsg::DwgAck { .. }
            | CoherenceMsg::MemAck { .. } => {
                if matches!(msg, CoherenceMsg::MemAck { .. }) {
                    self.net.clear_expected(to, from);
                }
                match self.dirs[to].handle(from, msg) {
                    Ok(outs) => {
                        for out in outs {
                            self.route_from_dir(to, out);
                        }
                    }
                    Err(e) => {
                        self.protocol_errors += 1;
                        self.first_protocol_error
                            .get_or_insert_with(|| e.to_string());
                    }
                }
            }
            // L1-bound.
            _ => self.deliver_to_l1(from, to, msg),
        }
    }

    fn route_from_dir(&mut self, dir: usize, out: OutMsg) {
        self.route(dir, out, 0, false);
    }

    fn deliver_to_l1(&mut self, from: usize, to: usize, msg: CoherenceMsg) {
        let is_inv = matches!(msg, CoherenceMsg::Inv { .. });
        let is_data = matches!(msg, CoherenceMsg::Data { .. });
        let line = msg.line();
        if is_data {
            self.net.clear_expected(to, from);
        }
        let reaction = match self.l1s[to].handle(msg) {
            Ok(r) => r,
            Err(e) => {
                self.protocol_errors += 1;
                self.first_protocol_error
                    .get_or_insert_with(|| e.to_string());
                return;
            }
        };
        for out in reaction.out {
            let elidable = self.cfg.opt_confirmation_acks
                && self.net.supports_confirmation_acks()
                && is_inv
                && matches!(
                    out.msg,
                    CoherenceMsg::InvAck {
                        with_data: false,
                        ..
                    }
                );
            if elidable {
                // §5.1: the confirmation of the Inv delivery substitutes
                // for the explicit acknowledgment packet. It still obeys
                // the per-line ordering (it must not overtake an earlier
                // writeback about the same line).
                self.route(to, out, 0, true);
            } else if matches!(out.msg, CoherenceMsg::Req { .. })
                && reaction.completed.is_none()
                && self.is_nack_resend(&out)
            {
                // NACK retry: randomized delay to avoid livelock.
                let delay = NACK_RETRY_BASE + self.rng.next_below(16);
                self.pending.push(
                    self.now + delay,
                    Pending::Inject {
                        from: to,
                        out,
                        scheduling_delay: 0,
                    },
                );
            } else {
                self.route(to, out, 0, false);
            }
        }
        if let Some(done_line) = reaction.completed {
            self.on_fill_complete(to, done_line);
        }
        let _ = line;
    }

    fn is_nack_resend(&self, out: &OutMsg) -> bool {
        // Reactions carrying a Req are only produced by Retry handling.
        matches!(out.msg, CoherenceMsg::Req { .. })
    }

    fn home_of(&self, line: LineAddr) -> usize {
        ((line.0 / self.cfg.line_bytes) % self.cfg.nodes as u64) as usize
    }

    // ----- core driving ------------------------------------------------

    fn step_cores(&mut self) {
        for i in 0..self.cores.len() {
            // Spin probes fire independently of Ready state.
            self.maybe_probe(i);
            if !self.cores[i].wants_to_issue(self.now) {
                continue;
            }
            let Some(op) = self.cores[i].take_op() else {
                self.cores[i].state = CoreState::Done;
                continue;
            };
            self.execute(i, op);
        }
    }

    fn execute(&mut self, i: usize, op: Op) {
        match op {
            Op::Compute(c) => {
                self.cores[i].next_at = self.now + c.max(1);
            }
            Op::Read(line) => self.do_read(i, line),
            Op::Write(line) => self.do_write(i, line, op),
            Op::LockAcquire(lock) => self.start_lock_read(i, lock),
            Op::LockRelease(lock) => self.do_lock_release(i, lock),
            Op::BarrierArrive => self.do_barrier_arrive(i),
        }
    }

    fn issue_read(&mut self, i: usize, line: LineAddr) -> ReadIssue {
        let acc = self.l1s[i].read(line);
        if acc.stalled {
            return ReadIssue::Stalled;
        }
        if acc.hit {
            return ReadIssue::Hit;
        }
        self.cores[i].stats.read_misses += 1;
        // §5.2 request spacing: reserve the predicted reply slot.
        let predicted = self.now + 4 + self.cfg.l2_latency + 5;
        let delay = self.net.reserve_reply_slot(i, predicted);
        for out in acc.out {
            if delay > 0 {
                self.pending.push(
                    self.now + delay,
                    Pending::Inject {
                        from: i,
                        out,
                        scheduling_delay: delay,
                    },
                );
            } else {
                self.route(i, out, 0, false);
            }
        }
        ReadIssue::Miss
    }

    fn do_read(&mut self, i: usize, line: LineAddr) {
        match self.issue_read(i, line) {
            ReadIssue::Hit => {
                self.cores[i].next_at = self.now + self.cfg.l1_latency;
            }
            ReadIssue::Miss => {
                self.cores[i].state = CoreState::WaitRead {
                    line,
                    issued_at: self.now,
                };
            }
            ReadIssue::Stalled => {
                self.cores[i].pending_op = Some(Op::Read(line));
                self.cores[i].next_at = self.now + 1;
            }
        }
    }

    fn do_write(&mut self, i: usize, line: LineAddr, op: Op) {
        let acc = self.l1s[i].write(line);
        if acc.stalled {
            self.cores[i].pending_op = Some(op);
            self.cores[i].next_at = self.now + 1;
            return;
        }
        // Posted store: hit or miss, the core moves on.
        for out in acc.out {
            self.route(i, out, 0, false);
        }
        self.cores[i].next_at = self.now + 1;
    }

    // ----- locks ---------------------------------------------------------

    fn lock_line(&self, lock: usize) -> LineAddr {
        AppProfile::lock_line(lock, self.cfg.line_bytes)
    }

    fn start_lock_read(&mut self, i: usize, lock: usize) {
        let line = self.lock_line(lock);
        match self.issue_read(i, line) {
            ReadIssue::Hit => self.try_take_lock(i, lock),
            ReadIssue::Miss => {
                self.cores[i].state = CoreState::LockRead { lock, line };
            }
            ReadIssue::Stalled => {
                self.cores[i].pending_op = Some(Op::LockAcquire(lock));
                self.cores[i].next_at = self.now + 1;
            }
        }
    }

    fn try_take_lock(&mut self, i: usize, lock: usize) {
        let line = self.lock_line(lock);
        if self.locks[lock].try_acquire(i) {
            // Store-conditional success: a write to the lock word.
            self.cores[i].stats.lock_acquires += 1;
            self.hub.unsubscribe(line, i);
            let acc = self.l1s[i].write(line);
            for out in acc.out {
                self.route(i, out, 0, false);
            }
            self.cores[i].state = CoreState::Ready;
            self.cores[i].next_at = self.now + 1;
        } else if self.cfg.opt_subscriptions && self.net.supports_confirmation_acks() {
            self.hub.subscribe(line, i);
            self.cores[i].state = CoreState::WaitLockWake { lock };
        } else {
            self.cores[i].state = CoreState::SpinLock {
                lock,
                next_probe: self.now + SPIN_PROBE_PERIOD,
            };
        }
    }

    fn do_lock_release(&mut self, i: usize, lock: usize) {
        let line = self.lock_line(lock);
        self.locks[lock].release(i);
        let acc = self.l1s[i].write(line);
        for out in acc.out {
            self.route(i, out, 0, false);
        }
        if self.cfg.opt_subscriptions && self.net.supports_confirmation_acks() {
            for target in self.hub.push_update(line, i) {
                self.pending.push(
                    self.now + CONFIRMATION_DELAY,
                    Pending::Wake { core: target },
                );
            }
        }
        self.cores[i].next_at = self.now + 1;
    }

    // ----- barriers ------------------------------------------------------

    fn do_barrier_arrive(&mut self, i: usize) {
        let count_line = AppProfile::barrier_line(self.cfg.line_bytes);
        let sense_line = AppProfile::barrier_sense_line(self.cfg.line_bytes);
        // Arrival: update the (lock-free combining) counter — a write.
        let acc = self.l1s[i].write(count_line);
        for out in acc.out {
            self.route(i, out, 0, false);
        }
        let episode = self.barrier.episodes();
        if self.barrier.arrive() {
            // Releaser: flip the sense word.
            self.cores[i].stats.barriers_passed += 1;
            let acc = self.l1s[i].write(sense_line);
            for out in acc.out {
                self.route(i, out, 0, false);
            }
            if self.cfg.opt_subscriptions && self.net.supports_confirmation_acks() {
                for target in self.hub.push_update(sense_line, i) {
                    self.pending.push(
                        self.now + CONFIRMATION_DELAY,
                        Pending::Wake { core: target },
                    );
                }
            }
            self.cores[i].state = CoreState::Ready;
            self.cores[i].next_at = self.now + 1;
        } else if self.cfg.opt_subscriptions && self.net.supports_confirmation_acks() {
            self.hub.subscribe(sense_line, i);
            self.cores[i].state = CoreState::WaitBarrierWake { episode };
        } else {
            self.cores[i].state = CoreState::SpinBarrier {
                episode,
                next_probe: self.now + SPIN_PROBE_PERIOD,
            };
        }
    }

    // ----- spin probes and wakes ------------------------------------------

    fn maybe_probe(&mut self, i: usize) {
        match self.cores[i].state {
            CoreState::SpinLock { lock, next_probe } if next_probe <= self.now => {
                let line = self.lock_line(lock);
                match self.issue_read(i, line) {
                    ReadIssue::Hit => self.try_take_lock(i, lock),
                    ReadIssue::Miss => {
                        self.cores[i].state = CoreState::SpinLockRead { lock };
                    }
                    ReadIssue::Stalled => {
                        self.cores[i].state = CoreState::SpinLock {
                            lock,
                            next_probe: self.now + 1,
                        };
                    }
                }
            }
            CoreState::SpinBarrier {
                episode,
                next_probe,
            } if next_probe <= self.now => {
                let line = AppProfile::barrier_sense_line(self.cfg.line_bytes);
                match self.issue_read(i, line) {
                    ReadIssue::Hit => self.check_barrier_release(i, episode),
                    ReadIssue::Miss => {
                        self.cores[i].state = CoreState::SpinBarrierRead { episode };
                    }
                    ReadIssue::Stalled => {
                        self.cores[i].state = CoreState::SpinBarrier {
                            episode,
                            next_probe: self.now + 1,
                        };
                    }
                }
            }
            _ => {}
        }
    }

    fn check_barrier_release(&mut self, i: usize, episode: u64) {
        if self.barrier.episodes() > episode {
            self.cores[i].stats.barriers_passed += 1;
            self.cores[i].state = CoreState::Ready;
            self.cores[i].next_at = self.now + 1;
        } else {
            self.cores[i].state = CoreState::SpinBarrier {
                episode,
                next_probe: self.now + SPIN_PROBE_PERIOD,
            };
        }
    }

    fn wake_core(&mut self, i: usize) {
        match self.cores[i].state {
            CoreState::WaitLockWake { lock } => self.try_take_lock(i, lock),
            CoreState::WaitBarrierWake { episode } => {
                let line = AppProfile::barrier_sense_line(self.cfg.line_bytes);
                if self.barrier.episodes() > episode {
                    self.hub.unsubscribe(line, i);
                    self.cores[i].stats.barriers_passed += 1;
                    self.cores[i].state = CoreState::Ready;
                    self.cores[i].next_at = self.now + 1;
                }
            }
            _ => {} // stale wake: ignore
        }
    }

    /// A fill completed at node `i`: unblock whatever waited on it.
    fn on_fill_complete(&mut self, i: usize, line: LineAddr) {
        match self.cores[i].state {
            CoreState::WaitRead { line: l, issued_at } if l == line => {
                self.reply_latency.record(self.now - issued_at);
                self.cores[i].state = CoreState::Ready;
                self.cores[i].next_at = self.now + 1;
            }
            CoreState::LockRead { lock, line: l } if l == line => {
                self.try_take_lock(i, lock);
            }
            CoreState::SpinLockRead { lock } if self.lock_line(lock) == line => {
                self.try_take_lock(i, lock);
            }
            CoreState::SpinBarrierRead { episode }
                if AppProfile::barrier_sense_line(self.cfg.line_bytes) == line =>
            {
                self.check_barrier_release(i, episode);
            }
            _ => {} // posted-write fill or stale: nothing blocks on it
        }
    }

    // ----- reporting ------------------------------------------------------

    /// Builds the report for a finished (or interrupted) run.
    pub fn report(&mut self) -> RunReport {
        let cycles = self.now.as_u64();
        let active: u64 = self.cores.iter().map(|c| c.stats.active_cycles).sum();
        let stalled: u64 = self.cores.iter().map(|c| c.stats.stalled_cycles).sum();
        let network_j = self.net.energy_j(cycles);
        let power = ChipPowerModel::paper_default();
        let energy: ChipEnergy = power.energy(self.cfg.nodes, cycles, active, stalled, network_j);
        let (issued, correct, wrong) = self.net.hint_stats();
        let miss_rates: Vec<f64> = self
            .l1s
            .iter()
            .map(|l1| {
                let s = l1.stats();
                let total = s.read_hits + s.read_misses + s.write_hits + s.write_misses;
                if total == 0 {
                    0.0
                } else {
                    (s.read_misses + s.write_misses) as f64 / total as f64
                }
            })
            .collect();
        assert_eq!(
            self.protocol_errors, 0,
            "protocol errors observed; first: {:?}",
            self.first_protocol_error
        );
        let mut profile = Profile::new();
        profile.add("sim/cycles", cycles);
        profile.add("sim/ticks", self.ticks);
        profile.add("sim/events", self.events_processed);
        profile.add("sim/ff/jumps", self.ff_jumps);
        profile.add("sim/ff/cycles_skipped", self.ff_cycles_skipped);
        RunReport {
            app: self.app.name.to_string(),
            network: self.net.name().to_string(),
            cycles,
            attribution: self.net.attribution(),
            reply_latency: std::mem::replace(&mut self.reply_latency, Histogram::new(10, 20)),
            meta_tx_probability: self.net.tx_probability(0),
            data_tx_probability: self.net.tx_probability(1),
            meta_collision_rate: self.net.collision_rate(0),
            data_collision_rate: self.net.collision_rate(1),
            packets_sent: self.packets_sent,
            data_by_kind: self.data_by_kind,
            collided_by_kind: self.collided_by_kind,
            acks_elided: self.acks_elided,
            subscription_packets_saved: self.hub.packets_saved(),
            l1_miss_rate: miss_rates.iter().sum::<f64>() / miss_rates.len() as f64,
            active_cycles: active,
            stalled_cycles: stalled,
            energy,
            data_resolution_delay: self.net.data_resolution_delay(),
            hint_accuracy: if issued == 0 {
                0.0
            } else {
                correct as f64 / issued as f64
            },
            hint_wrong_rate: if issued == 0 {
                0.0
            } else {
                wrong as f64 / issued as f64
            },
            bit_error_drops: self.net.bit_error_drops(),
            profile,
        }
    }
}

/// Outcome classes of a read issue.
#[derive(Debug, PartialEq, Eq)]
enum ReadIssue {
    Hit,
    Miss,
    Stalled,
}

/// Salt decorrelating the system RNG from the network's (same user seed).
const SYSTEM_SEED_SALT: u64 = 0xF501_2010_15CA_2010;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::configs::NetworkKind;

    fn small_cfg(kind: NetworkKind) -> (SystemConfig, AppProfile) {
        let cfg = SystemConfig::paper_16(kind);
        let mut app = AppProfile::by_name("tsp").unwrap();
        app.ops_per_core = 300;
        (cfg, app)
    }

    #[test]
    fn fsoi_system_runs_to_completion() {
        let (cfg, app) = small_cfg(NetworkKind::fsoi(16));
        let mut sys = CmpSystem::new(cfg, app);
        let report = sys.run(2_000_000);
        assert!(report.cycles > 0);
        assert!(report.packets_sent[0] > 0, "meta traffic flowed");
        assert!(report.packets_sent[1] > 0, "data traffic flowed");
        assert!(report.l1_miss_rate > 0.0);
        assert!(report.reply_latency.count() > 0);
    }

    #[test]
    fn metric_snapshots_are_byte_identical_across_same_seed_runs() {
        // Figure 6-style configuration (16-node FSOI, paper workload mix,
        // reduced op count) run twice from the same seed: the registry
        // snapshot — the single code path behind every exported number —
        // must match byte for byte.
        let snapshot = || {
            let (cfg, app) = small_cfg(NetworkKind::fsoi(16));
            let report = CmpSystem::new(cfg, app).run(2_000_000);
            let reg = report.registry();
            (reg.to_jsonl(), reg.to_table())
        };
        let (jsonl_a, table_a) = snapshot();
        let (jsonl_b, table_b) = snapshot();
        assert!(!jsonl_a.is_empty());
        assert_eq!(
            jsonl_a, jsonl_b,
            "same-seed JSONL snapshots must be byte-identical"
        );
        assert_eq!(
            table_a, table_b,
            "same-seed table snapshots must be byte-identical"
        );
    }

    #[test]
    fn eviction_pressure_exports_are_byte_identical_across_same_seed_runs() {
        // Shrinks the L2 slices so the directory's eviction-victim scan —
        // an iteration over the entry map, the path that used to read a
        // HashMap in hasher order — runs hot, then compares the full
        // export byte stream across two same-seed runs. Guards the
        // DetMap/DetSet migration (lint rule D1) end to end.
        let snapshot = || {
            let (mut cfg, app) = small_cfg(NetworkKind::fsoi(16));
            cfg.l2_lines = 8;
            let mut sys = CmpSystem::new(cfg, app);
            let report = sys.run(4_000_000);
            let evictions: u64 = sys.dirs.iter().map(|d| d.stats().evictions).sum();
            let reg = report.registry();
            (evictions, reg.to_jsonl(), reg.to_table())
        };
        let (ev_a, jsonl_a, table_a) = snapshot();
        let (ev_b, jsonl_b, table_b) = snapshot();
        assert!(ev_a > 0, "the tiny L2 must force eviction scans");
        assert_eq!(ev_a, ev_b, "same-seed eviction counts must match");
        assert_eq!(
            jsonl_a, jsonl_b,
            "same-seed JSONL exports must be byte-identical"
        );
        assert_eq!(
            table_a, table_b,
            "same-seed table exports must be byte-identical"
        );
    }

    /// Drives a system to completion with `tick()` only — the reference
    /// the fast-forwarding `run()` must match byte for byte.
    fn run_cycle_by_cycle(mut sys: CmpSystem, max: u64) -> RunReport {
        while !sys.finished() {
            assert!(sys.now().as_u64() < max, "reference run did not drain");
            sys.tick();
        }
        sys.report()
    }

    #[test]
    fn fast_forward_is_byte_identical_on_idle_heavy_workload() {
        // Long compute gaps leave the network idle most of the time, so
        // the fast path spends almost every iteration skipping; the full
        // export must still match the cycle-by-cycle reference exactly.
        let build = || {
            let (cfg, mut app) = small_cfg(NetworkKind::fsoi(16));
            app.mean_gap = 400.0;
            app.ops_per_core = 60;
            CmpSystem::new(cfg, app)
        };
        let fast = build().run(2_000_000);
        let slow = run_cycle_by_cycle(build(), 2_000_000);
        assert_eq!(fast.cycles, slow.cycles, "clocks must agree");
        let (fa, sa) = (fast.registry(), slow.registry());
        assert_eq!(fa.to_jsonl(), sa.to_jsonl(), "exports must be identical");
        assert_eq!(fa.to_table(), sa.to_table());
    }

    #[test]
    fn fast_forward_is_byte_identical_on_saturated_workload() {
        // Back-to-back shared accesses keep every slot busy, so the fast
        // path degenerates to ticking — it must change nothing.
        let build = || {
            let (cfg, mut app) = small_cfg(NetworkKind::fsoi(16));
            app.mean_gap = 1.0;
            app.shared_hot_fraction = 0.5;
            app.ops_per_core = 250;
            CmpSystem::new(cfg, app)
        };
        let fast = build().run(4_000_000);
        let slow = run_cycle_by_cycle(build(), 4_000_000);
        assert_eq!(fast.cycles, slow.cycles, "clocks must agree");
        let (fa, sa) = (fast.registry(), slow.registry());
        assert_eq!(fa.to_jsonl(), sa.to_jsonl(), "exports must be identical");
        assert_eq!(fa.to_table(), sa.to_table());
    }

    #[test]
    fn mesh_system_runs_to_completion() {
        let (cfg, app) = small_cfg(NetworkKind::mesh(16));
        let mut sys = CmpSystem::new(cfg, app);
        let report = sys.run(2_000_000);
        assert!(report.cycles > 0);
        assert_eq!(report.meta_collision_rate, 0.0, "mesh has no collisions");
    }

    #[test]
    fn ideal_networks_run_and_order() {
        let mut cycles = Vec::new();
        for kind in [NetworkKind::L0, NetworkKind::Lr1, NetworkKind::Lr2] {
            let (cfg, app) = small_cfg(kind);
            let mut sys = CmpSystem::new(cfg, app);
            cycles.push(sys.run(2_000_000).cycles);
        }
        assert!(cycles[0] <= cycles[1]);
        assert!(cycles[1] <= cycles[2]);
    }

    #[test]
    fn fsoi_beats_mesh_and_trails_l0() {
        let run = |kind| {
            let (cfg, app) = small_cfg(kind);
            CmpSystem::new(cfg, app).run(2_000_000).cycles
        };
        let fsoi = run(NetworkKind::fsoi(16));
        let mesh = run(NetworkKind::mesh(16));
        let l0 = run(NetworkKind::L0);
        assert!(fsoi < mesh, "FSOI {fsoi} must beat mesh {mesh}");
        assert!(l0 <= fsoi, "L0 {l0} bounds FSOI {fsoi}");
    }

    #[test]
    fn lock_app_completes_with_and_without_subscriptions() {
        for subs in [true, false] {
            let cfg = SystemConfig::paper_16(NetworkKind::fsoi(16)).with_optimizations(subs);
            // tsp has only two locks, so 16 cores contend heavily and
            // subscriptions are guaranteed to engage.
            let mut app = AppProfile::by_name("tsp").unwrap();
            app.lock_interval = 30;
            app.ops_per_core = 400;
            let mut sys = CmpSystem::new(cfg, app);
            let r = sys.run(3_000_000);
            let acquires: u64 = sys.cores.iter().map(|c| c.stats.lock_acquires).sum();
            assert!(acquires > 0, "locks exercised (subs={subs})");
            if subs {
                assert!(r.subscription_packets_saved > 0);
            } else {
                assert_eq!(r.subscription_packets_saved, 0);
            }
        }
    }

    #[test]
    fn barrier_app_completes() {
        let (cfg, _) = small_cfg(NetworkKind::fsoi(16));
        let mut app = AppProfile::by_name("fft").unwrap();
        app.ops_per_core = 400;
        let mut sys = CmpSystem::new(cfg, app);
        sys.run(3_000_000);
        let passed: u64 = sys.cores.iter().map(|c| c.stats.barriers_passed).sum();
        assert!(passed > 0, "barriers exercised");
    }

    #[test]
    fn ack_elision_reduces_meta_packets() {
        let run = |opt| {
            let cfg = SystemConfig::paper_16(NetworkKind::fsoi(16)).with_optimizations(opt);
            let mut app = AppProfile::by_name("mp").unwrap();
            app.ops_per_core = 300;
            CmpSystem::new(cfg, app).run(3_000_000)
        };
        let with = run(true);
        let without = run(false);
        assert!(with.acks_elided > 0);
        assert_eq!(without.acks_elided, 0);
        assert!(
            with.packets_sent[0] < without.packets_sent[0],
            "elision must shrink meta traffic: {} vs {}",
            with.packets_sent[0],
            without.packets_sent[0]
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let (cfg, app) = small_cfg(NetworkKind::fsoi(16));
            CmpSystem::new(cfg.with_seed(seed), app)
                .run(2_000_000)
                .cycles
        };
        assert_eq!(run(1), run(1));
    }

    #[test]
    fn memory_bandwidth_matters() {
        let run = |bw| {
            let cfg = SystemConfig::paper_16(NetworkKind::fsoi(16)).with_mem_bandwidth(bw);
            let mut app = AppProfile::by_name("em").unwrap();
            app.ops_per_core = 400;
            CmpSystem::new(cfg, app).run(3_000_000).cycles
        };
        let slow = run(8.8);
        let fast = run(52.8);
        assert!(fast <= slow, "more bandwidth cannot hurt: {fast} vs {slow}");
    }

    #[test]
    fn sixty_four_node_system_runs() {
        let cfg = SystemConfig::paper_64(NetworkKind::fsoi(64));
        let mut app = AppProfile::by_name("ws").unwrap();
        app.ops_per_core = 120;
        let mut sys = CmpSystem::new(cfg, app);
        let r = sys.run(3_000_000);
        assert!(r.cycles > 0);
    }
}
