//! Structured, cycle-stamped event tracing with a bounded flight recorder.
//!
//! Every figure in the paper aggregates per-packet lifecycles — inject →
//! collide → back off → retransmit → deliver → confirm — but aggregates
//! alone cannot explain *which trajectory* produced a number. This module
//! records those trajectories as cheap structured events:
//!
//! * [`TraceEvent`] / [`TraceRecord`] — one cycle-stamped record per
//!   lifecycle step, keyed by packet id where one exists, serializable to
//!   (and parseable from) single-line JSON,
//! * [`TraceSink`] — anything that accepts records,
//! * [`FlightRecorder`] — a bounded ring buffer keeping the last `N`
//!   records; the default sink,
//! * a **thread-local recorder** written through [`emit`] / [`emit_with`],
//!   dumped as JSON lines whenever a panic (failed invariant, debug
//!   assertion, or `fsoi-check` property) unwinds through
//!   [`install_panic_dump`]'s hook.
//!
//! # Cost model
//!
//! Tracing is compiled in when `debug_assertions` are on **or** the crate
//! feature `trace` is enabled. In a plain release build (`cargo build
//! --release`) every [`emit_with`] site reduces to `if false`, so the
//! closure — and the event construction inside it — is compiled out
//! entirely. When compiled in, recording is one thread-local flag check
//! plus a ring-buffer slot write; the `trace_overhead` microbench in
//! `fsoi-bench` guards this.
//!
//! # Runtime knobs
//!
//! * `FSOI_TRACE=0` force-disables recording even where compiled in;
//!   `FSOI_TRACE=1` force-enables it (in builds where it is compiled).
//! * `FSOI_TRACE_BUF=N` sizes the flight-recorder ring (default 256).
//! * `FSOI_TRACE_DUMP=path` redirects the panic-time JSONL dump from its
//!   default in the system temp directory.
//!
//! Dumped files replay into per-packet timelines with
//! `cargo run --example trace_replay -- <dump.jsonl>`.

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Once;

use crate::Cycle;

/// Default flight-recorder capacity (records), overridable via
/// `FSOI_TRACE_BUF`.
pub const DEFAULT_CAPACITY: usize = 256;

/// One structured trace event. Packet-lifecycle variants carry the network
/// packet id so a dump can be re-grouped into per-packet timelines
/// ([`timelines`]); protocol-level variants (confirmations, directory
/// transitions) are keyed by node instead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// A packet entered a source node's output queue.
    Inject {
        /// Network-assigned packet id.
        packet: u64,
        /// Source node.
        src: u64,
        /// Destination node.
        dst: u64,
        /// Lane index (0 = meta, 1 = data).
        lane: u64,
        /// Caller-supplied correlation tag.
        tag: u64,
    },
    /// An injection was refused (full queue / backpressure).
    Reject {
        /// Source node.
        src: u64,
        /// Destination node.
        dst: u64,
        /// Lane index.
        lane: u64,
    },
    /// A packet started transmitting in a slot.
    TxStart {
        /// Packet id.
        packet: u64,
        /// Source node.
        src: u64,
        /// Destination node.
        dst: u64,
        /// Lane index.
        lane: u64,
        /// 0 for the first attempt, then the retry count.
        attempt: u64,
        /// Slot index on this lane (slot id, not cycle).
        slot: u64,
    },
    /// A packet lost its slot to a collision at a shared receiver.
    Collide {
        /// Packet id.
        packet: u64,
        /// Source node.
        src: u64,
        /// Destination node.
        dst: u64,
        /// Lane index.
        lane: u64,
        /// Receiver index at the destination.
        rx: u64,
        /// Number of packets that superposed in the slot.
        group: u64,
    },
    /// A packet was dropped by the BER model and scheduled to resend.
    BitError {
        /// Packet id.
        packet: u64,
        /// Source node.
        src: u64,
        /// Destination node.
        dst: u64,
        /// Lane index.
        lane: u64,
    },
    /// A retransmission delay was drawn from the back-off policy.
    Backoff {
        /// Packet id.
        packet: u64,
        /// Lane index.
        lane: u64,
        /// Retry number the delay was drawn for (1-based).
        retry: u64,
        /// Drawn delay, in slots.
        delay_slots: u64,
        /// Cycle at which the packet becomes eligible again.
        ready: u64,
    },
    /// A retransmission hint picked a collision winner (§5.2).
    Hint {
        /// Destination whose receiver issued the hint.
        dst: u64,
        /// Source node allowed to retransmit immediately.
        winner: u64,
    },
    /// A packet reached its destination.
    Deliver {
        /// Packet id.
        packet: u64,
        /// Source node.
        src: u64,
        /// Destination node.
        dst: u64,
        /// Lane index.
        lane: u64,
        /// Cycles spent waiting in the source queue.
        queuing: u64,
        /// Cycles of scheduling delay (request spacing).
        scheduling: u64,
        /// Serialization + flight cycles.
        network: u64,
        /// Cycles lost to collision resolution.
        resolution: u64,
        /// Total retransmissions this packet needed.
        retries: u64,
    },
    /// A confirmation-channel message was sent.
    Confirm {
        /// Sending node.
        src: u64,
        /// Receiving node.
        dst: u64,
        /// Kind: `receipt`, `hint`, or `bool`.
        kind: String,
    },
    /// A MESI directory entry changed state.
    Dir {
        /// Home node of the directory slice.
        node: u64,
        /// Cache-line address.
        line: u64,
        /// State before the message was handled (Table 2 name).
        from: String,
        /// State after the message was handled.
        to: String,
    },
    /// A free-form annotation (checkpoints, invariant context).
    Mark {
        /// Short label.
        label: String,
        /// Arbitrary value.
        value: u64,
    },
}

impl TraceEvent {
    /// The event's wire name (the `"event"` JSON field).
    pub fn name(&self) -> &'static str {
        match self {
            TraceEvent::Inject { .. } => "inject",
            TraceEvent::Reject { .. } => "reject",
            TraceEvent::TxStart { .. } => "tx_start",
            TraceEvent::Collide { .. } => "collide",
            TraceEvent::BitError { .. } => "bit_error",
            TraceEvent::Backoff { .. } => "backoff",
            TraceEvent::Hint { .. } => "hint",
            TraceEvent::Deliver { .. } => "deliver",
            TraceEvent::Confirm { .. } => "confirm",
            TraceEvent::Dir { .. } => "dir",
            TraceEvent::Mark { .. } => "mark",
        }
    }

    /// The packet id this event belongs to, for lifecycle variants.
    pub fn packet_id(&self) -> Option<u64> {
        match *self {
            TraceEvent::Inject { packet, .. }
            | TraceEvent::TxStart { packet, .. }
            | TraceEvent::Collide { packet, .. }
            | TraceEvent::BitError { packet, .. }
            | TraceEvent::Backoff { packet, .. }
            | TraceEvent::Deliver { packet, .. } => Some(packet),
            _ => None,
        }
    }

    /// The lane this event happened on, where one applies.
    pub fn lane(&self) -> Option<u64> {
        match *self {
            TraceEvent::Inject { lane, .. }
            | TraceEvent::Reject { lane, .. }
            | TraceEvent::TxStart { lane, .. }
            | TraceEvent::Collide { lane, .. }
            | TraceEvent::BitError { lane, .. }
            | TraceEvent::Backoff { lane, .. }
            | TraceEvent::Deliver { lane, .. } => Some(lane),
            _ => None,
        }
    }
}

/// A cycle-stamped [`TraceEvent`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// Simulation cycle the event happened at.
    pub cycle: u64,
    /// The event itself.
    pub event: TraceEvent,
}

fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl TraceRecord {
    /// Serializes this record as one line of JSON (no trailing newline).
    ///
    /// Field order is fixed, so equal records serialize byte-identically.
    pub fn to_jsonl(&self) -> String {
        let mut s = String::with_capacity(96);
        self.write_jsonl(&mut s);
        s
    }

    /// Appends the JSON line for this record to `out`.
    pub fn write_jsonl(&self, out: &mut String) {
        let _ = write!(
            out,
            "{{\"cycle\":{},\"event\":\"{}\"",
            self.cycle,
            self.event.name()
        );
        let num = |out: &mut String, k: &str, v: u64| {
            let _ = write!(out, ",\"{k}\":{v}");
        };
        match &self.event {
            TraceEvent::Inject {
                packet,
                src,
                dst,
                lane,
                tag,
            } => {
                num(out, "packet", *packet);
                num(out, "src", *src);
                num(out, "dst", *dst);
                num(out, "lane", *lane);
                num(out, "tag", *tag);
            }
            TraceEvent::Reject { src, dst, lane } => {
                num(out, "src", *src);
                num(out, "dst", *dst);
                num(out, "lane", *lane);
            }
            TraceEvent::TxStart {
                packet,
                src,
                dst,
                lane,
                attempt,
                slot,
            } => {
                num(out, "packet", *packet);
                num(out, "src", *src);
                num(out, "dst", *dst);
                num(out, "lane", *lane);
                num(out, "attempt", *attempt);
                num(out, "slot", *slot);
            }
            TraceEvent::Collide {
                packet,
                src,
                dst,
                lane,
                rx,
                group,
            } => {
                num(out, "packet", *packet);
                num(out, "src", *src);
                num(out, "dst", *dst);
                num(out, "lane", *lane);
                num(out, "rx", *rx);
                num(out, "group", *group);
            }
            TraceEvent::BitError {
                packet,
                src,
                dst,
                lane,
            } => {
                num(out, "packet", *packet);
                num(out, "src", *src);
                num(out, "dst", *dst);
                num(out, "lane", *lane);
            }
            TraceEvent::Backoff {
                packet,
                lane,
                retry,
                delay_slots,
                ready,
            } => {
                num(out, "packet", *packet);
                num(out, "lane", *lane);
                num(out, "retry", *retry);
                num(out, "delay_slots", *delay_slots);
                num(out, "ready", *ready);
            }
            TraceEvent::Hint { dst, winner } => {
                num(out, "dst", *dst);
                num(out, "winner", *winner);
            }
            TraceEvent::Deliver {
                packet,
                src,
                dst,
                lane,
                queuing,
                scheduling,
                network,
                resolution,
                retries,
            } => {
                num(out, "packet", *packet);
                num(out, "src", *src);
                num(out, "dst", *dst);
                num(out, "lane", *lane);
                num(out, "queuing", *queuing);
                num(out, "scheduling", *scheduling);
                num(out, "network", *network);
                num(out, "resolution", *resolution);
                num(out, "retries", *retries);
            }
            TraceEvent::Confirm { src, dst, kind } => {
                num(out, "src", *src);
                num(out, "dst", *dst);
                out.push_str(",\"kind\":");
                push_json_str(out, kind);
            }
            TraceEvent::Dir {
                node,
                line,
                from,
                to,
            } => {
                num(out, "node", *node);
                num(out, "line", *line);
                out.push_str(",\"from\":");
                push_json_str(out, from);
                out.push_str(",\"to\":");
                push_json_str(out, to);
            }
            TraceEvent::Mark { label, value } => {
                out.push_str(",\"label\":");
                push_json_str(out, label);
                num(out, "value", *value);
            }
        }
        out.push('}');
    }

    /// Parses one JSON line produced by [`TraceRecord::to_jsonl`].
    ///
    /// Returns `None` for blank lines, comments, or anything that is not a
    /// well-formed record — the replayer skips such lines rather than
    /// aborting a partially-written dump.
    pub fn parse_jsonl(line: &str) -> Option<TraceRecord> {
        let fields = parse_flat_object(line.trim())?;
        let u = |k: &str| -> Option<u64> {
            match fields.get(k)? {
                JsonValue::Num(n) => Some(*n),
                _ => None,
            }
        };
        let s = |k: &str| -> Option<String> {
            match fields.get(k)? {
                JsonValue::Str(v) => Some(v.clone()),
                _ => None,
            }
        };
        let cycle = u("cycle")?;
        let event = match s("event")?.as_str() {
            "inject" => TraceEvent::Inject {
                packet: u("packet")?,
                src: u("src")?,
                dst: u("dst")?,
                lane: u("lane")?,
                tag: u("tag")?,
            },
            "reject" => TraceEvent::Reject {
                src: u("src")?,
                dst: u("dst")?,
                lane: u("lane")?,
            },
            "tx_start" => TraceEvent::TxStart {
                packet: u("packet")?,
                src: u("src")?,
                dst: u("dst")?,
                lane: u("lane")?,
                attempt: u("attempt")?,
                slot: u("slot")?,
            },
            "collide" => TraceEvent::Collide {
                packet: u("packet")?,
                src: u("src")?,
                dst: u("dst")?,
                lane: u("lane")?,
                rx: u("rx")?,
                group: u("group")?,
            },
            "bit_error" => TraceEvent::BitError {
                packet: u("packet")?,
                src: u("src")?,
                dst: u("dst")?,
                lane: u("lane")?,
            },
            "backoff" => TraceEvent::Backoff {
                packet: u("packet")?,
                lane: u("lane")?,
                retry: u("retry")?,
                delay_slots: u("delay_slots")?,
                ready: u("ready")?,
            },
            "hint" => TraceEvent::Hint {
                dst: u("dst")?,
                winner: u("winner")?,
            },
            "deliver" => TraceEvent::Deliver {
                packet: u("packet")?,
                src: u("src")?,
                dst: u("dst")?,
                lane: u("lane")?,
                queuing: u("queuing")?,
                scheduling: u("scheduling")?,
                network: u("network")?,
                resolution: u("resolution")?,
                retries: u("retries")?,
            },
            "confirm" => TraceEvent::Confirm {
                src: u("src")?,
                dst: u("dst")?,
                kind: s("kind")?,
            },
            "dir" => TraceEvent::Dir {
                node: u("node")?,
                line: u("line")?,
                from: s("from")?,
                to: s("to")?,
            },
            "mark" => TraceEvent::Mark {
                label: s("label")?,
                value: u("value")?,
            },
            _ => return None,
        };
        Some(TraceRecord { cycle, event })
    }
}

enum JsonValue {
    Num(u64),
    Str(String),
}

/// Minimal parser for the flat (non-nested) one-line JSON objects this
/// module writes: string keys, unsigned-integer or string values.
fn parse_flat_object(line: &str) -> Option<BTreeMap<String, JsonValue>> {
    let body = line.strip_prefix('{')?.strip_suffix('}')?;
    let mut out = BTreeMap::new();
    let bytes = body.as_bytes();
    let mut i = 0usize;
    let parse_string = |i: &mut usize| -> Option<String> {
        if bytes.get(*i) != Some(&b'"') {
            return None;
        }
        *i += 1;
        let mut s = String::new();
        while let Some(&b) = bytes.get(*i) {
            match b {
                b'"' => {
                    *i += 1;
                    return Some(s);
                }
                b'\\' => {
                    *i += 1;
                    match bytes.get(*i)? {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'n' => s.push('\n'),
                        b't' => s.push('\t'),
                        b'u' => {
                            let hex = body.get(*i + 1..*i + 5)?;
                            let code = u32::from_str_radix(hex, 16).ok()?;
                            s.push(char::from_u32(code)?);
                            *i += 4;
                        }
                        _ => return None,
                    }
                    *i += 1;
                }
                _ => {
                    // Multi-byte UTF-8: copy the whole char.
                    let c = body[*i..].chars().next()?;
                    s.push(c);
                    *i += c.len_utf8();
                }
            }
        }
        None
    };
    while i < bytes.len() {
        let key = parse_string(&mut i)?;
        if bytes.get(i) != Some(&b':') {
            return None;
        }
        i += 1;
        let value = if bytes.get(i) == Some(&b'"') {
            JsonValue::Str(parse_string(&mut i)?)
        } else {
            let start = i;
            while i < bytes.len() && bytes[i] != b',' {
                i += 1;
            }
            JsonValue::Num(body[start..i].trim().parse().ok()?)
        };
        out.insert(key, value);
        if bytes.get(i) == Some(&b',') {
            i += 1;
        } else if i != bytes.len() {
            return None;
        }
    }
    Some(out)
}

/// Anything that accepts trace records.
pub trait TraceSink {
    /// Accepts one record.
    fn record(&mut self, record: TraceRecord);
}

impl TraceSink for Vec<TraceRecord> {
    fn record(&mut self, record: TraceRecord) {
        self.push(record);
    }
}

/// A bounded ring buffer keeping the most recent trace records.
///
/// When full, new records overwrite the oldest; [`FlightRecorder::events`]
/// always returns the survivors in chronological order. This is the
/// default per-thread sink — cheap enough to leave on for entire runs, yet
/// it holds exactly the context a post-mortem needs.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    cap: usize,
    buf: Vec<TraceRecord>,
    head: usize,
    total: u64,
}

impl FlightRecorder {
    /// Creates a recorder keeping the last `cap` records (minimum 1).
    pub fn with_capacity(cap: usize) -> Self {
        FlightRecorder {
            cap: cap.max(1),
            buf: Vec::new(),
            head: 0,
            total: 0,
        }
    }

    /// Creates a recorder sized by `FSOI_TRACE_BUF` (default
    /// [`DEFAULT_CAPACITY`]).
    pub fn from_env() -> Self {
        let cap = std::env::var("FSOI_TRACE_BUF")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .unwrap_or(DEFAULT_CAPACITY);
        Self::with_capacity(cap)
    }

    /// Number of records currently retained.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Total records ever offered, including overwritten ones.
    pub fn total_recorded(&self) -> u64 {
        self.total
    }

    /// Drops all retained records (the capacity is kept).
    pub fn clear(&mut self) {
        self.buf.clear();
        self.head = 0;
        self.total = 0;
    }

    /// The retained records, oldest first.
    pub fn events(&self) -> Vec<TraceRecord> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.head..]);
        out.extend_from_slice(&self.buf[..self.head]);
        out
    }

    /// Serializes the retained records as JSON lines, oldest first.
    pub fn dump_jsonl(&self) -> String {
        let mut s = String::with_capacity(self.buf.len() * 96);
        for r in self.events() {
            r.write_jsonl(&mut s);
            s.push('\n');
        }
        s
    }
}

impl TraceSink for FlightRecorder {
    fn record(&mut self, record: TraceRecord) {
        self.total += 1;
        if self.buf.len() < self.cap {
            self.buf.push(record);
        } else {
            self.buf[self.head] = record;
            self.head = (self.head + 1) % self.cap;
        }
    }
}

thread_local! {
    static ENABLED: Cell<Option<bool>> = const { Cell::new(None) };
    static SUPPRESS_DUMP: Cell<bool> = const { Cell::new(false) };
    static RECORDER: RefCell<FlightRecorder> = RefCell::new(FlightRecorder::from_env());
}

/// True when the event API is compiled in at all (debug builds, or any
/// build with the `trace` feature). When false, [`emit_with`] is a no-op
/// the optimizer deletes outright.
#[inline]
pub const fn compiled() -> bool {
    cfg!(any(debug_assertions, feature = "trace"))
}

fn default_enabled() -> bool {
    match std::env::var("FSOI_TRACE") {
        Ok(v) => !matches!(v.trim(), "0" | "false" | "off" | ""),
        Err(_) => true,
    }
}

/// True when this thread is currently recording events.
///
/// Resolved once per thread from `FSOI_TRACE` (default: on wherever
/// tracing is compiled in); override with [`set_enabled`].
#[inline]
pub fn on() -> bool {
    if !compiled() {
        return false;
    }
    ENABLED.with(|e| match e.get() {
        Some(v) => v,
        None => {
            let v = default_enabled();
            e.set(Some(v));
            v
        }
    })
}

/// Forces recording on or off for the current thread.
pub fn set_enabled(enabled: bool) {
    ENABLED.with(|e| e.set(Some(enabled)));
}

/// Records one event into the thread's flight recorder (if recording).
#[inline]
pub fn emit(cycle: Cycle, event: TraceEvent) {
    if on() {
        RECORDER.with(|r| {
            r.borrow_mut().record(TraceRecord {
                cycle: cycle.as_u64(),
                event,
            })
        });
    }
}

/// Records the event built by `f`, constructing it only when recording is
/// on. Use this on hot paths: in a plain release build the whole call
/// disappears.
#[inline]
pub fn emit_with(cycle: Cycle, f: impl FnOnce() -> TraceEvent) {
    if on() {
        RECORDER.with(|r| {
            r.borrow_mut().record(TraceRecord {
                cycle: cycle.as_u64(),
                event: f(),
            })
        });
    }
}

/// Clears the current thread's flight recorder.
pub fn clear() {
    RECORDER.with(|r| r.borrow_mut().clear());
}

/// A chronological snapshot of the current thread's flight recorder.
pub fn snapshot() -> Vec<TraceRecord> {
    RECORDER.with(|r| r.borrow().events())
}

/// The last `n` retained records as JSON lines (all of them when `n`
/// exceeds the retained count).
pub fn tail_jsonl(n: usize) -> String {
    let events = snapshot();
    let skip = events.len().saturating_sub(n);
    let mut s = String::new();
    for r in &events[skip..] {
        r.write_jsonl(&mut s);
        s.push('\n');
    }
    s
}

/// Runs `f` with tracing force-enabled into a fresh, large recorder and
/// returns everything it emitted alongside `f`'s result.
///
/// The previous recorder and enablement are restored afterwards. In builds
/// where tracing is compiled out the closure still runs, but the record
/// list is empty — gate assertions on [`compiled`].
pub fn capture<R>(f: impl FnOnce() -> R) -> (Vec<TraceRecord>, R) {
    let prev_enabled = ENABLED.with(|e| e.get());
    set_enabled(true);
    let prev = RECORDER.with(|r| r.replace(FlightRecorder::with_capacity(1 << 20)));
    let out = f();
    let mine = RECORDER.with(|r| r.replace(prev));
    ENABLED.with(|e| e.set(prev_enabled));
    (mine.events(), out)
}

/// Suppresses (or re-enables) the panic-time dump on this thread.
///
/// `fsoi-check` sets this around shrinking probes so that only the final,
/// minimal counterexample produces a dump — not every intermediate panic.
pub fn set_panic_dump_suppressed(suppressed: bool) {
    SUPPRESS_DUMP.with(|s| s.set(suppressed));
}

/// Where a panic-time dump for the current thread would be written.
pub fn panic_dump_path() -> std::path::PathBuf {
    if let Ok(p) = std::env::var("FSOI_TRACE_DUMP") {
        if !p.trim().is_empty() {
            return std::path::PathBuf::from(p);
        }
    }
    let thread = std::thread::current();
    let name: String = thread
        .name()
        .unwrap_or("main")
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    // lint: allow(D2) only names the crash-dump file; never feeds simulation state
    std::env::temp_dir().join(format!("fsoi-flight-{}-{}.jsonl", std::process::id(), name))
}

/// Installs (once, process-wide) a panic hook that dumps the panicking
/// thread's flight recorder as JSON lines before the usual report.
///
/// The dump goes to [`panic_dump_path`] and the path is announced on
/// stderr; if the file cannot be written the records are printed to stderr
/// instead. Threads with an empty recorder, disabled tracing, or an active
/// [`set_panic_dump_suppressed`] guard dump nothing. The previous hook
/// (including the default backtrace printer) still runs afterwards.
pub fn install_panic_dump() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            dump_for_panic();
            prev(info);
        }));
    });
}

fn dump_for_panic() {
    if !on() || SUPPRESS_DUMP.with(|s| s.get()) {
        return;
    }
    let (dump, total) = RECORDER.with(|r| {
        let rec = r.borrow();
        (rec.dump_jsonl(), rec.total_recorded())
    });
    if dump.is_empty() {
        return;
    }
    let kept = dump.lines().count();
    let path = panic_dump_path();
    match std::fs::write(&path, &dump) {
        Ok(()) => eprintln!(
            "flight recorder: {kept} events ({total} recorded) -> {} \
             (replay: cargo run --example trace_replay -- {})",
            path.display(),
            path.display()
        ),
        Err(e) => {
            eprintln!(
                "flight recorder: cannot write {} ({e}); last {kept} events:",
                path.display()
            );
            eprint!("{dump}");
        }
    }
    // A second panic (e.g. while unwinding the first) should not re-dump
    // stale context.
    RECORDER.with(|r| r.borrow_mut().clear());
}

/// Groups records by packet id, preserving order — the per-packet
/// "span" view of a dump. Records without a packet id are skipped.
pub fn timelines(records: &[TraceRecord]) -> BTreeMap<u64, Vec<TraceRecord>> {
    let mut out: BTreeMap<u64, Vec<TraceRecord>> = BTreeMap::new();
    for r in records {
        if let Some(id) = r.event.packet_id() {
            out.entry(id).or_default().push(r.clone());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<TraceRecord> {
        vec![
            TraceRecord {
                cycle: 3,
                event: TraceEvent::Inject {
                    packet: 7,
                    src: 0,
                    dst: 5,
                    lane: 0,
                    tag: 9,
                },
            },
            TraceRecord {
                cycle: 4,
                event: TraceEvent::TxStart {
                    packet: 7,
                    src: 0,
                    dst: 5,
                    lane: 0,
                    attempt: 0,
                    slot: 2,
                },
            },
            TraceRecord {
                cycle: 6,
                event: TraceEvent::Collide {
                    packet: 7,
                    src: 0,
                    dst: 5,
                    lane: 0,
                    rx: 1,
                    group: 2,
                },
            },
            TraceRecord {
                cycle: 6,
                event: TraceEvent::Backoff {
                    packet: 7,
                    lane: 0,
                    retry: 1,
                    delay_slots: 2,
                    ready: 10,
                },
            },
            TraceRecord {
                cycle: 8,
                event: TraceEvent::BitError {
                    packet: 7,
                    src: 0,
                    dst: 5,
                    lane: 0,
                },
            },
            TraceRecord {
                cycle: 9,
                event: TraceEvent::Hint { dst: 5, winner: 0 },
            },
            TraceRecord {
                cycle: 14,
                event: TraceEvent::Deliver {
                    packet: 7,
                    src: 0,
                    dst: 5,
                    lane: 0,
                    queuing: 1,
                    scheduling: 0,
                    network: 2,
                    resolution: 8,
                    retries: 1,
                },
            },
            TraceRecord {
                cycle: 14,
                event: TraceEvent::Confirm {
                    src: 5,
                    dst: 0,
                    kind: "receipt".into(),
                },
            },
            TraceRecord {
                cycle: 15,
                event: TraceEvent::Dir {
                    node: 2,
                    line: 64,
                    from: "DS".into(),
                    to: "DM".into(),
                },
            },
            TraceRecord {
                cycle: 16,
                event: TraceEvent::Reject {
                    src: 1,
                    dst: 5,
                    lane: 1,
                },
            },
            TraceRecord {
                cycle: 17,
                event: TraceEvent::Mark {
                    label: "drain".into(),
                    value: 3,
                },
            },
        ]
    }

    #[test]
    fn jsonl_round_trips_every_variant() {
        for r in sample_records() {
            let line = r.to_jsonl();
            let back =
                TraceRecord::parse_jsonl(&line).unwrap_or_else(|| panic!("unparseable: {line}"));
            assert_eq!(back, r, "round-trip mismatch for {line}");
        }
    }

    #[test]
    fn jsonl_output_shape() {
        let r = &sample_records()[0];
        assert_eq!(
            r.to_jsonl(),
            "{\"cycle\":3,\"event\":\"inject\",\"packet\":7,\"src\":0,\"dst\":5,\"lane\":0,\"tag\":9}"
        );
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(TraceRecord::parse_jsonl("").is_none());
        assert!(TraceRecord::parse_jsonl("# comment").is_none());
        assert!(TraceRecord::parse_jsonl("{\"cycle\":1}").is_none());
        assert!(TraceRecord::parse_jsonl("{\"cycle\":1,\"event\":\"nope\"}").is_none());
        assert!(TraceRecord::parse_jsonl("{\"cycle\":-4,\"event\":\"hint\"}").is_none());
    }

    #[test]
    fn string_escaping_round_trips() {
        let r = TraceRecord {
            cycle: 1,
            event: TraceEvent::Mark {
                label: "a \"b\"\\\n\tc\u{1}".into(),
                value: 0,
            },
        };
        let line = r.to_jsonl();
        assert_eq!(TraceRecord::parse_jsonl(&line).unwrap(), r);
    }

    #[test]
    fn ring_keeps_last_n_in_order() {
        let mut fr = FlightRecorder::with_capacity(4);
        for i in 0..10u64 {
            fr.record(TraceRecord {
                cycle: i,
                event: TraceEvent::Hint { dst: i, winner: 0 },
            });
        }
        assert_eq!(fr.len(), 4);
        assert_eq!(fr.total_recorded(), 10);
        let cycles: Vec<u64> = fr.events().iter().map(|r| r.cycle).collect();
        assert_eq!(cycles, vec![6, 7, 8, 9]);
        let dump = fr.dump_jsonl();
        assert_eq!(dump.lines().count(), 4);
        fr.clear();
        assert!(fr.is_empty());
        assert_eq!(fr.total_recorded(), 0);
    }

    #[test]
    fn capture_scopes_recording() {
        let (records, value) = capture(|| {
            emit(Cycle(5), TraceEvent::Hint { dst: 1, winner: 2 });
            42
        });
        assert_eq!(value, 42);
        if compiled() {
            assert_eq!(records.len(), 1);
            assert_eq!(records[0].cycle, 5);
            // The captured event did not leak into the ambient recorder.
            assert!(
                !snapshot()
                    .iter()
                    .any(|r| r.cycle == 5
                        && matches!(r.event, TraceEvent::Hint { dst: 1, winner: 2 }))
            );
        } else {
            assert!(records.is_empty());
        }
    }

    #[test]
    fn capture_restores_disabled_state() {
        set_enabled(false);
        let _ = capture(|| ());
        assert!(!on() || !compiled());
        clear();
        emit(Cycle(77), TraceEvent::Hint { dst: 0, winner: 0 });
        assert!(snapshot().is_empty(), "disabled thread must not record");
        set_enabled(true);
    }

    #[test]
    fn tail_returns_last_n() {
        clear();
        set_enabled(true);
        for i in 0..5u64 {
            emit(Cycle(i), TraceEvent::Hint { dst: i, winner: 0 });
        }
        let tail = tail_jsonl(2);
        if compiled() {
            assert_eq!(tail.lines().count(), 2);
            assert!(tail.contains("\"cycle\":4"));
        }
        clear();
    }

    #[test]
    fn timelines_group_by_packet() {
        let groups = timelines(&sample_records());
        assert_eq!(groups.len(), 1);
        let spans = &groups[&7];
        assert_eq!(spans.len(), 6);
        assert_eq!(spans[0].event.name(), "inject");
        assert_eq!(spans.last().unwrap().event.name(), "deliver");
    }

    #[test]
    fn lane_and_packet_accessors() {
        let records = sample_records();
        assert_eq!(records[0].event.packet_id(), Some(7));
        assert_eq!(records[0].event.lane(), Some(0));
        assert_eq!(records[5].event.packet_id(), None);
        assert_eq!(records[8].event.lane(), None);
    }
}
