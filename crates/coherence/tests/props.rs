//! Property tests for the coherence substrate's data structures (on the
//! in-repo `fsoi-check` harness).

use fsoi_check::{any_bool, checker, set_of, vec_of};
use fsoi_coherence::cache::{AllocOutcome, CacheArray};
use fsoi_coherence::protocol::LineAddr;
use fsoi_coherence::sync::{Barrier, BooleanSubscriptionHub, LlScMonitor};
use std::collections::BTreeMap;

/// The cache never exceeds its capacity, lookups agree with a model map
/// of resident lines, and every eviction returns the evictee's payload.
#[test]
fn cache_array_agrees_with_model() {
    checker!().check(
        "cache_array_agrees_with_model",
        vec_of((0u64..64, any_bool()), 1..400),
        |accesses| {
            let mut cache: CacheArray<u64> = CacheArray::new(16 * 32, 2, 32); // 16 lines
            let mut model: BTreeMap<LineAddr, u64> = BTreeMap::new();
            for (i, &(l, write)) in accesses.iter().enumerate() {
                let line = LineAddr(l * 32);
                let resident = cache.lookup(line).is_some();
                assert_eq!(resident, model.contains_key(&line));
                if !resident && write {
                    match cache.insert(line, i as u64) {
                        AllocOutcome::Inserted => {}
                        AllocOutcome::Evicted {
                            line: victim,
                            payload,
                        } => {
                            let expect = model.remove(&victim);
                            assert_eq!(expect, Some(payload), "evicted payload mismatch");
                        }
                    }
                    model.insert(line, i as u64);
                }
                assert!(cache.len() <= cache.capacity_lines());
                assert_eq!(cache.len(), model.len());
            }
        },
    );
}

/// Filtered insertion never evicts a protected line.
#[test]
fn filtered_insert_respects_pins() {
    checker!().check(
        "filtered_insert_respects_pins",
        (set_of(0..8, 0..4), vec_of(0u64..8, 1..40)),
        |(pins, inserts)| {
            // Single set, 4 ways: heavy conflict pressure.
            let mut cache: CacheArray<u64> = CacheArray::new(4 * 32, 4, 32);
            let pinned: Vec<LineAddr> = pins.iter().map(|&p| LineAddr(p as u64 * 32 * 8)).collect();
            for &ins in inserts {
                let line = LineAddr(ins * 32 * 8 + 0x10000 * 32);
                if cache.peek(line).is_some() {
                    continue;
                }
                let _ = cache.insert_evicting_where(line, 0, |victim, _| !pinned.contains(&victim));
            }
            // Direct check: insert pins, then flood; pins survive.
            let mut cache: CacheArray<u64> = CacheArray::new(4 * 32, 4, 32);
            for (i, p) in pinned.iter().enumerate() {
                if cache.peek(*p).is_none() && i < 4 {
                    let _ = cache.insert_evicting_where(*p, 99, |_, _| true);
                }
            }
            let resident_pins: Vec<LineAddr> = pinned
                .iter()
                .copied()
                .filter(|p| cache.peek(*p).is_some())
                .collect();
            for k in 0..32u64 {
                let line = LineAddr((0x500 + k) * 32); // arbitrary
                if cache.peek(line).is_some() {
                    continue;
                }
                let _ = cache
                    .insert_evicting_where(line, k, |victim, _| !resident_pins.contains(&victim));
            }
            for p in &resident_pins {
                assert!(cache.peek(*p).is_some(), "pinned {p} was evicted");
            }
        },
    );
}

/// ll/sc: a store-conditional succeeds iff no intervening invalidation
/// (or other sc) touched the reservation.
#[test]
fn llsc_reservation_semantics() {
    checker!().check(
        "llsc_reservation_semantics",
        vec_of((0u8..3, 0u64..4), 1..200),
        |events| {
            let mut m = LlScMonitor::new();
            let mut model: Option<u64> = None;
            for &(kind, line) in events {
                let addr = LineAddr(line * 32);
                match kind {
                    0 => {
                        m.ll(addr);
                        model = Some(line);
                    }
                    1 => {
                        let expect = model == Some(line);
                        assert_eq!(m.sc(addr), expect);
                        model = None;
                    }
                    _ => {
                        m.on_invalidate(addr);
                        if model == Some(line) {
                            model = None;
                        }
                    }
                }
            }
        },
    );
}

/// A barrier of n participants releases exactly every n-th arrival and
/// flips its sense each episode.
#[test]
fn barrier_releases_every_nth() {
    checker!().check(
        "barrier_releases_every_nth",
        (1usize..32, 1usize..200),
        |&(n, arrivals)| {
            let mut b = Barrier::new(n);
            let mut sense = b.sense();
            for i in 1..=arrivals {
                let released = b.arrive();
                assert_eq!(released, i % n == 0, "arrival {} of groups of {}", i, n);
                if released {
                    assert_ne!(b.sense(), sense, "sense flips");
                    sense = b.sense();
                }
            }
            assert_eq!(b.episodes(), (arrivals / n) as u64);
        },
    );
}

/// Subscription pushes go to exactly the live subscribers minus the
/// writer, and invalidation empties the line.
#[test]
fn subscription_hub_membership() {
    checker!().check(
        "subscription_hub_membership",
        (set_of(0..16, 1..10), 0usize..16),
        |(subs, writer)| {
            let writer = *writer;
            let mut hub = BooleanSubscriptionHub::new();
            let line = LineAddr(0x40);
            for &s in subs {
                hub.subscribe(line, s);
            }
            let targets = hub.push_update(line, writer);
            let expect: Vec<usize> = subs.iter().copied().filter(|&s| s != writer).collect();
            assert_eq!(targets, expect);
            let killed = hub.invalidate_all(line);
            assert_eq!(killed.len(), subs.len());
            assert!(hub.subscribers(line).is_empty());
        },
    );
}
