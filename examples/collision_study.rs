//! Networking study: how the collision-tolerant design behaves under
//! load — theory vs Monte-Carlo vs the full network simulator — and why
//! the paper's W = 2.7 / B = 1.1 back-off wins.
//!
//! ```text
//! cargo run --release --example collision_study
//! ```

use fsoi::net::analysis::backoff::{pathological_burst, resolution_delay};
use fsoi::net::analysis::collision::{
    monte_carlo, node_collision_probability, normalized_collision_probability,
};
use fsoi::net::backoff::BackoffPolicy;
use fsoi::net::config::FsoiConfig;
use fsoi::net::network::FsoiNetwork;
use fsoi::net::packet::{Packet, PacketClass};
use fsoi::net::topology::NodeId;
use fsoi::sim::rng::Xoshiro256StarStar;

fn main() {
    // 1. Figure 3's message: collisions fall roughly as 1/R.
    println!("collision probability at p = 10% (N = 16)");
    for r in 1..=4 {
        println!(
            "  R = {r}: theory {:.2}%  (normalized to p: {:.1}%)",
            100.0 * node_collision_probability(0.10, 16, r),
            100.0 * normalized_collision_probability(0.10, 16, r),
        );
    }

    // 2. Validate against an idealized Monte Carlo and the *real* network
    //    engine driving random traffic.
    let p = 0.10;
    let mc = monte_carlo(p, 16, 2, 200_000, 7);
    println!(
        "\nMonte-Carlo (idealized)  : node collision rate {:.2}%",
        100.0 * mc.node_collision_rate
    );
    let sim = measure_full_network(p, 42);
    println!(
        "full network simulator   : packet collision rate {:.2}% (meta lane)",
        100.0 * sim
    );

    // 3. Figure 4's message: gentle back-off growth beats doubling.
    println!("\nmean collision-resolution delay (two-packet collision, G = 1%)");
    for (label, policy) in [
        ("W=2.7 B=1.1 (paper optimum)", BackoffPolicy::PAPER_OPTIMUM),
        ("W=2.7 B=2.0 (binary)       ", BackoffPolicy::BINARY),
        ("W=8.0 B=1.1 (window too big)", BackoffPolicy::new(8.0, 1.1)),
        (
            "W=1.0 B=1.1 (window too small)",
            BackoffPolicy::new(1.0, 1.1),
        ),
    ] {
        let d = resolution_delay(policy, 0.01, 2, 2, 40_000, 3);
        println!("  {label} : {d:.2} cycles");
    }

    // 4. …without melting down in the pathological all-to-one burst.
    println!("\npathological 64-node burst (63 simultaneous senders)");
    for (label, policy) in [
        ("W=2.7 B=1.1", BackoffPolicy::PAPER_OPTIMUM),
        ("W=2.7 B=2.0", BackoffPolicy::BINARY),
        ("fixed  W=3 ", BackoffPolicy::fixed(3.0)),
    ] {
        let e = pathological_burst(63, policy, 2, 2);
        println!(
            "  {label} : {:>12.3e} expected retries, {:>12.3e} cycles",
            e.retries, e.cycles
        );
    }
    println!("  (the fixed window needs ~10^10 retries — the live-lock §4.3.2 warns about)");
}

/// Drives the real network with Bernoulli(p)-per-slot uniform traffic and
/// returns the measured meta-lane collision rate.
fn measure_full_network(p: f64, seed: u64) -> f64 {
    let mut net = FsoiNetwork::new(FsoiConfig::nodes(16), seed);
    let mut rng = Xoshiro256StarStar::new(seed ^ 0xABCD);
    let slot = net.meta_slot_len();
    for cycle in 0..200_000u64 {
        if cycle % slot == 0 {
            for src in 0..16usize {
                if rng.bernoulli(p) {
                    let mut dst = rng.next_below(15) as usize;
                    if dst >= src {
                        dst += 1;
                    }
                    // Full queues just drop the offered packet this slot.
                    let _ = net.inject(Packet::new(
                        NodeId(src),
                        NodeId(dst),
                        PacketClass::Meta,
                        cycle,
                    ));
                }
            }
        }
        net.tick();
        net.drain_delivered();
    }
    net.stats().collision_rate(0)
}
