//! Batch entry points: run many (config, app) cells through the
//! deterministic parallel executor and merge their reports.
//!
//! A sweep *cell* is one fully-specified simulation: a [`SystemConfig`]
//! (which carries the network kind and the run seed) plus an
//! [`AppProfile`]. Cells share nothing — each [`run_batch`] closure call
//! constructs its own [`CmpSystem`], whose RNG streams derive from the
//! cell's own `cfg.seed` and whose statistics live in per-run state —
//! so they can execute on any number of threads.
//!
//! Determinism is preserved end-to-end:
//!
//! 1. [`fsoi_sim::par::sweep`] returns reports **indexed by cell**, not
//!    by completion order;
//! 2. [`merge_reports`] folds `RunReport::export` into one
//!    [`Registry`] in that same index order;
//! 3. `Registry` itself renders in sorted key order.
//!
//! The merged JSONL/table bytes are therefore identical to a serial
//! fold for any thread count (property-tested in
//! `crates/bench/tests/par_merge.rs`).

use crate::configs::SystemConfig;
use crate::metrics::RunReport;
use crate::system::CmpSystem;
use crate::workload::AppProfile;
use fsoi_sim::metrics::Registry;
use fsoi_sim::par;

/// One sweep cell: a complete system configuration plus a workload.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchCell {
    /// Full system configuration (network, seed, bandwidth, opts).
    pub config: SystemConfig,
    /// The application to run (with `ops_per_core` already set).
    pub app: AppProfile,
}

impl BatchCell {
    /// Builds a cell.
    pub fn new(config: SystemConfig, app: AppProfile) -> Self {
        BatchCell { config, app }
    }

    /// Runs this cell to completion in an isolated simulator.
    pub fn run(&self, max_cycles: u64) -> RunReport {
        CmpSystem::new(self.config.clone(), self.app).run(max_cycles)
    }
}

/// Runs every cell on up to `threads` worker threads and returns the
/// reports in cell order — byte-for-byte the same vector a serial loop
/// would produce, for any `threads` (see [`fsoi_sim::par::sweep`]).
pub fn run_batch(cells: &[BatchCell], threads: usize, max_cycles: u64) -> Vec<RunReport> {
    par::sweep(cells.len(), threads, |i| cells[i].run(max_cycles))
}

/// [`run_batch`] with the default [`fsoi_sim::par::thread_count`]
/// (the `FSOI_THREADS` knob, else available parallelism).
pub fn run_batch_auto(cells: &[BatchCell], max_cycles: u64) -> Vec<RunReport> {
    run_batch(cells, par::thread_count(), max_cycles)
}

/// Folds reports into one registry in slice order — the deterministic
/// reduction behind merged sweep exports.
pub fn merge_reports(reports: &[RunReport]) -> Registry {
    let mut reg = Registry::new();
    for r in reports {
        r.export(&mut reg);
    }
    reg
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::configs::NetworkKind;

    fn tiny_cells() -> Vec<BatchCell> {
        let mut cells = Vec::new();
        for (ci, name) in ["tsp", "mp", "fft"].iter().enumerate() {
            let mut app = AppProfile::by_name(name).expect("suite app");
            app.ops_per_core = 40;
            let cfg = SystemConfig::paper_16(NetworkKind::fsoi(16))
                .with_seed(2010 + par::derive_seed(2010, ci as u64) % 1000);
            cells.push(BatchCell::new(cfg, app));
        }
        cells
    }

    #[test]
    fn parallel_batch_matches_serial_fold() {
        let cells = tiny_cells();
        let serial = run_batch(&cells, 1, 1_000_000);
        let serial_bytes = merge_reports(&serial).to_jsonl();
        for threads in [2, 8] {
            let par_reports = run_batch(&cells, threads, 1_000_000);
            assert_eq!(
                merge_reports(&par_reports).to_jsonl(),
                serial_bytes,
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn empty_batch_merges_to_empty_registry() {
        let reports = run_batch(&[], 8, 1_000);
        assert!(reports.is_empty());
        assert_eq!(merge_reports(&reports).to_jsonl(), "");
    }
}
