//! Figure 3 bench: closed-form and Monte-Carlo collision-probability
//! computations.

use fsoi_bench::microbench::{black_box, Criterion};
use fsoi_bench::{criterion_group, criterion_main};
use fsoi_net::analysis::collision::{monte_carlo, node_collision_probability};

fn bench_collision(c: &mut Criterion) {
    c.bench_function("fig3/closed_form_sweep", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for r in 1..=4usize {
                for p in 1..=33usize {
                    acc += node_collision_probability(black_box(p as f64 / 100.0), 16, r);
                }
            }
            acc
        })
    });
    c.bench_function("fig3/monte_carlo_10k_slots", |b| {
        b.iter(|| monte_carlo(black_box(0.10), 16, 2, 10_000, 7))
    });
}

criterion_group!(benches, bench_collision);
criterion_main!(benches);
