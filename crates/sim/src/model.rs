//! `fsoi-model` — a dependency-free, loom-style bounded-schedule model
//! checker for the concurrency routed through [`crate::sync`].
//!
//! # Why
//!
//! The sweep executor's drain/steal/termination protocol is the one
//! piece of real concurrency in the workspace, and PR 6 showed its bug
//! class — a `MutexGuard` statement-temporary held across the steal
//! attempt, forming an n-worker lock cycle — is invisible to unit tests
//! unless a stress test gets lucky. This module finds that class
//! *deterministically*: it runs the code under test many times, once per
//! distinct thread interleaving, and reports the first schedule that
//! deadlocks, loses a wakeup, leaks a lock, or panics — as a replayable
//! trace.
//!
//! # How it works
//!
//! [`check`] runs the closure repeatedly. Each *execution* spawns the
//! closure (and everything it spawns through [`crate::sync::scope`]) as
//! **cooperative virtual threads**: real OS threads that only ever run
//! one at a time, passing a baton through the scheduler at every
//! *schedule point* — lock acquire/release, park/unpark, spawn start,
//! join, yield, finish. Between points, user code runs natively and
//! invisibly; at each point where more than one thread could proceed,
//! the scheduler consults a DFS stack and explores every alternative
//! across subsequent executions.
//!
//! Exploration is bounded and pruned:
//!
//! * **Preemption bound** ([`Opts::preemptions`]): switching away from a
//!   thread that could have continued costs one unit of budget; forced
//!   switches (the running thread blocked or finished) are free. Most
//!   real concurrency bugs — including the PR 6 deadlock — need only
//!   one or two preemptions, while the bound keeps the schedule space
//!   polynomial instead of exponential.
//! * **Duplicate-state pruning**: the executed trace is canonicalized by
//!   commuting adjacent *independent* steps (different threads, no
//!   shared lock/thread object), so schedules that differ only in the
//!   ordering of independent steps hash identically; a `(state, next
//!   thread)` transition that was already taken is never explored twice.
//!
//! Detected failures:
//!
//! * **deadlock** — every unfinished thread is blocked (a lock cycle, or
//!   a thread parked forever after a lost wakeup);
//! * **non-quiescent termination** — the closure returned with a lock
//!   still logically held (a leaked guard);
//! * **panic** — any assertion or panic inside the closure, reported
//!   with the schedule that produced it;
//! * **step limit** — a run exceeding [`Opts::max_steps`] (livelock).
//!
//! The failing [`Report`] renders the full step trace plus a one-line
//! schedule that [`replay`] re-executes exactly.
//!
//! # Scope and honesty
//!
//! The checker explores schedules of *shim* operations. It cannot see
//! raw atomics, memory-ordering subtleties, or code that bypasses
//! [`crate::sync`] — rule D3 keeps such code out of the simulation
//! crates, and the optional ThreadSanitizer CI tier covers the
//! data-race plane. Within the shim's vocabulary, exploration at the
//! configured bound is exhaustive.

use std::collections::BTreeMap;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex};

/// Virtual-thread id. `t0` is the closure's main thread.
pub type Tid = usize;

/// Global lock-id source; per-execution ids are densified from these so
/// traces stay deterministic across executions (see `dense_lock_id`).
static RAW_LOCK_IDS: AtomicU64 = AtomicU64::new(1);

/// One scheduler-visible operation, as recorded in the trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// A spawned thread's first schedule point.
    Start,
    /// Lock acquisition (dense lock id).
    Acquire(u64),
    /// Lock release; `true` when the releasing thread was panicking
    /// (poisons the lock).
    Release(u64, bool),
    /// Wait for a park token.
    Park,
    /// Make a park token available to a thread.
    Unpark(Tid),
    /// Wait for a thread to finish.
    Join(Tid),
    /// Pure schedule point.
    Yield,
    /// Thread termination (recorded, never scheduled).
    Finish,
}

impl Op {
    /// The shared object this op touches, for trace independence:
    /// ops by different threads commute iff their objects differ.
    fn object(self, tid: Tid) -> Obj {
        match self {
            Op::Acquire(l) | Op::Release(l, _) => Obj::Lock(l),
            Op::Park => Obj::Thread(tid),
            Op::Unpark(t) | Op::Join(t) => Obj::Thread(t),
            Op::Start | Op::Finish => Obj::Thread(tid),
            Op::Yield => Obj::None,
        }
    }

    fn render(self) -> String {
        match self {
            Op::Start => "start".to_string(),
            Op::Acquire(l) => format!("acquire(m{l})"),
            Op::Release(l, false) => format!("release(m{l})"),
            Op::Release(l, true) => format!("release(m{l}, poisoning)"),
            Op::Park => "park".to_string(),
            Op::Unpark(t) => format!("unpark(t{t})"),
            Op::Join(t) => format!("join(t{t})"),
            Op::Yield => "yield".to_string(),
            Op::Finish => "finish".to_string(),
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Obj {
    Lock(u64),
    Thread(Tid),
    None,
}

/// Why a failing schedule failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Failure {
    /// Every unfinished thread is blocked; the strings describe each
    /// blocked thread's pending operation.
    Deadlock(Vec<String>),
    /// The closure finished with locks still held (leaked guards).
    NonQuiescent(Vec<String>),
    /// A panic inside the closure; the string is its payload.
    Panic(String),
    /// `max_steps` exceeded — a livelock or unbounded loop.
    StepLimit(usize),
}

impl Failure {
    fn kind(&self) -> &'static str {
        match self {
            Failure::Deadlock(_) => "deadlock",
            Failure::NonQuiescent(_) => "non-quiescent termination",
            Failure::Panic(_) => "panic",
            Failure::StepLimit(_) => "step limit",
        }
    }
}

/// Checker configuration.
#[derive(Debug, Clone)]
pub struct Opts {
    /// Preemption budget per execution (see module docs). Default 2.
    pub preemptions: usize,
    /// Safety cap on explored executions; hitting it makes the run
    /// non-exhaustive (reported, not a failure). Default 100 000.
    pub max_executions: usize,
    /// Per-execution step cap; exceeding it is a [`Failure::StepLimit`].
    /// Default 20 000.
    pub max_steps: usize,
}

impl Default for Opts {
    fn default() -> Self {
        Opts {
            preemptions: 2,
            max_executions: 100_000,
            max_steps: 20_000,
        }
    }
}

impl Opts {
    /// `Opts` with a specific preemption budget.
    pub fn with_preemptions(preemptions: usize) -> Self {
        Opts {
            preemptions,
            ..Opts::default()
        }
    }
}

/// The outcome of [`check`] or [`replay`].
#[derive(Debug)]
pub struct Report {
    /// `None` when every explored schedule passed.
    pub failure: Option<Failure>,
    /// The failing schedule's step trace, empty on pass.
    pub trace: Vec<(Tid, Op)>,
    /// The failing schedule as scheduling decisions, one `Tid` per
    /// scheduled step — feed to [`replay`] to re-run it exactly.
    pub schedule: Vec<Tid>,
    /// Executions explored.
    pub executions: usize,
    /// False when `max_executions` stopped exploration early.
    pub exhaustive: bool,
}

impl Report {
    /// True when no explored schedule failed.
    pub fn passed(&self) -> bool {
        self.failure.is_none()
    }

    /// Byte-stable human rendering: verdict, failure detail, the step
    /// trace, and the replayable schedule line.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        match &self.failure {
            None => {
                let _ = writeln!(
                    out,
                    "model: pass after {} execution(s){}",
                    self.executions,
                    if self.exhaustive {
                        " (exhaustive at this bound)"
                    } else {
                        " (execution cap reached; NOT exhaustive)"
                    }
                );
            }
            Some(f) => {
                let _ = writeln!(
                    out,
                    "model: {} after {} execution(s)",
                    f.kind(),
                    self.executions
                );
                match f {
                    Failure::Deadlock(blocked) | Failure::NonQuiescent(blocked) => {
                        for b in blocked {
                            let _ = writeln!(out, "  {b}");
                        }
                    }
                    Failure::Panic(msg) => {
                        let _ = writeln!(out, "  payload: {msg}");
                    }
                    Failure::StepLimit(n) => {
                        let _ = writeln!(out, "  exceeded {n} steps (livelock?)");
                    }
                }
                let _ = writeln!(out, "trace:");
                for (i, (tid, op)) in self.trace.iter().enumerate() {
                    let _ = writeln!(out, "  step {i:>3}: t{tid} {}", op.render());
                }
                let sched: Vec<String> = self.schedule.iter().map(|t| t.to_string()).collect();
                let _ = writeln!(out, "schedule (replayable): {}", sched.join(","));
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Per-execution shared state
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    /// Spawned; its OS thread has not posted `Start` yet.
    NotStarted,
    /// Has a pending op (or is running user code holding the baton).
    Live,
    Finished,
}

#[derive(Debug)]
struct ThreadState {
    status: Status,
    /// The op this thread wants to perform next (set while suspended).
    pending: Option<Op>,
    /// Park token (std semantics: at most one).
    park_token: bool,
}

#[derive(Debug, Default)]
struct LockState {
    owner: Option<Tid>,
    poisoned: bool,
}

#[derive(Debug)]
struct ExecState {
    /// Who holds the baton; `None` while the scheduler decides.
    active: Option<Tid>,
    threads: Vec<ThreadState>,
    locks: BTreeMap<u64, LockState>,
    /// Raw (global) lock id → dense per-execution id, in first-use order.
    dense_ids: BTreeMap<u64, u64>,
    trace: Vec<(Tid, Op)>,
    /// Scheduling decision per step (parallel to scheduled trace steps).
    decisions: Vec<Tid>,
    /// Tear-down flag: blocked virtual threads unwind with `ModelAbort`.
    abort: bool,
    /// Panic payload rendering from the first panicking thread.
    panic_msg: Option<String>,
}

/// Handle to one execution's shared scheduler state. Opaque outside this
/// module; [`crate::sync`] threads it from [`prepare_spawn`] to
/// [`run_vthread`] when crossing a real `std::thread::scope` spawn.
#[derive(Debug)]
pub struct Exec {
    state: StdMutex<ExecState>,
    cv: Condvar,
}

/// Payload used to unwind virtual threads when an execution is torn
/// down after a detected failure. `resume_unwind` keeps it silent (no
/// panic hook involvement).
struct ModelAbort;

thread_local! {
    /// The execution + vthread this OS thread is running for, if any.
    static CURRENT: std::cell::RefCell<Option<(Arc<Exec>, Tid)>> =
        const { std::cell::RefCell::new(None) };
}

/// True when the calling OS thread is a virtual thread of an active
/// model execution (drives the mode switch inside [`crate::sync`]).
pub fn in_execution() -> bool {
    CURRENT.with(|c| c.borrow().is_some())
}

fn current() -> (Arc<Exec>, Tid) {
    CURRENT.with(|c| {
        c.borrow()
            .clone()
            // lint: allow(P1) internal invariant: only called from shim paths gated on in_execution()
            .expect("model op outside an execution")
    })
}

// ---------------------------------------------------------------------------
// Shim entry points (called by crate::sync)
// ---------------------------------------------------------------------------

/// Registers a lock created inside an execution; returns its raw id.
pub fn register_lock() -> u64 {
    let raw = RAW_LOCK_IDS.fetch_add(1, Ordering::Relaxed);
    let (exec, _) = current();
    let mut st = lock_state(&exec);
    let dense = st.dense_ids.len() as u64 + 1;
    st.dense_ids.insert(raw, dense);
    raw
}

/// Blocks until the scheduler grants the lock; returns its poison flag.
pub fn acquire(raw_id: u64) -> bool {
    let (exec, tid) = current();
    let dense = dense_lock_id(&exec, raw_id);
    post_and_wait(&exec, tid, Op::Acquire(dense));
    let st = lock_state(&exec);
    st.locks.get(&dense).is_some_and(|l| l.poisoned)
}

/// Reports a guard drop. Never panics and never blocks indefinitely on
/// an aborting execution: this runs from `Drop`, possibly mid-unwind.
pub fn release(raw_id: u64, panicking: bool) {
    let (exec, tid) = current();
    let dense = dense_lock_id(&exec, raw_id);
    post_and_wait_quiet(&exec, tid, Op::Release(dense, panicking));
}

/// Park schedule point (blocks until a token is available).
pub fn park() {
    let (exec, tid) = current();
    post_and_wait(&exec, tid, Op::Park);
}

/// Unpark schedule point (token grant to `target`).
pub fn unpark(target: Tid) {
    let (exec, tid) = current();
    post_and_wait(&exec, tid, Op::Unpark(target));
}

/// Pure schedule point.
pub fn yield_point() {
    let (exec, tid) = current();
    post_and_wait(&exec, tid, Op::Yield);
}

/// Blocks until `target` has finished.
pub fn await_thread(target: Tid) {
    let (exec, tid) = current();
    post_and_wait(&exec, tid, Op::Join(target));
}

/// Blocks until every listed child has finished (scope exit).
pub fn await_children(children: &[Tid]) {
    for &c in children {
        await_thread(c);
    }
}

/// Allocates a vthread id for a spawn; the returned exec handle is
/// moved into the OS-thread wrapper ([`run_vthread`]).
pub fn prepare_spawn() -> (Tid, Arc<Exec>) {
    let (exec, _) = current();
    let mut st = lock_state(&exec);
    let tid = st.threads.len();
    st.threads.push(ThreadState {
        status: Status::NotStarted,
        pending: None,
        park_token: false,
    });
    drop(st);
    (tid, exec)
}

/// OS-thread wrapper for one virtual thread: registers the model
/// context, waits to be scheduled, runs the body, and reports the
/// outcome. Panics (including the tear-down [`ModelAbort`]) are caught
/// so the surrounding real `std::thread::scope` never sees one.
pub fn run_vthread<T>(exec: Arc<Exec>, tid: Tid, f: impl FnOnce() -> T) -> std::thread::Result<T> {
    CURRENT.with(|c| *c.borrow_mut() = Some((exec.clone(), tid)));
    post_and_wait(&exec, tid, Op::Start);
    let result = catch_unwind(AssertUnwindSafe(f));
    finish(&exec, tid, &result);
    CURRENT.with(|c| *c.borrow_mut() = None);
    result
}

// ---------------------------------------------------------------------------
// Baton protocol
// ---------------------------------------------------------------------------

fn lock_state(exec: &Exec) -> std::sync::MutexGuard<'_, ExecState> {
    exec.state
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn dense_lock_id(exec: &Exec, raw: u64) -> u64 {
    let mut st = lock_state(exec);
    if let Some(&d) = st.dense_ids.get(&raw) {
        return d;
    }
    // Lock created outside the execution: densify at first use.
    let dense = st.dense_ids.len() as u64 + 1;
    st.dense_ids.insert(raw, dense);
    dense
}

/// Posts `op` as this thread's pending operation, returns the baton to
/// the scheduler, and blocks until rescheduled (the scheduler applies
/// the op's effect at that moment). Unwinds with [`ModelAbort`] if the
/// execution is being torn down.
fn post_and_wait(exec: &Exec, tid: Tid, op: Op) {
    if !post_and_wait_quiet(exec, tid, op) {
        resume_unwind(Box::new(ModelAbort));
    }
}

/// Like [`post_and_wait`] but signals abort via `false` instead of
/// unwinding — required on `Drop` paths, where a panic mid-unwind
/// would abort the process.
fn post_and_wait_quiet(exec: &Exec, tid: Tid, op: Op) -> bool {
    let mut st = lock_state(exec);
    if st.abort {
        return false;
    }
    st.threads[tid].status = Status::Live;
    st.threads[tid].pending = Some(op);
    if st.active == Some(tid) {
        st.active = None;
    }
    // Always notify: the scheduler may be waiting for this thread's
    // first post (spawn startup), not only for the baton handback.
    exec.cv.notify_all();
    loop {
        if st.abort {
            return false;
        }
        if st.active == Some(tid) {
            st.threads[tid].pending = None;
            return true;
        }
        st = exec
            .cv
            .wait(st)
            .unwrap_or_else(std::sync::PoisonError::into_inner);
    }
}

/// Marks the thread finished and releases the baton; the OS thread
/// exits right after. Not a schedule point: termination runs-to-exit
/// after the thread's last scheduled op, which is equivalent (exit
/// itself has no shared effect beyond enabling joiners, and joiner
/// enabledness is evaluated at their own schedule points).
fn finish<T>(exec: &Exec, tid: Tid, result: &std::thread::Result<T>) {
    let mut st = lock_state(exec);
    st.threads[tid].status = Status::Finished;
    st.threads[tid].pending = None;
    // A clean finish happens while holding the baton, so its trace
    // position is deterministic. Tear-down finishes race in OS order —
    // recording them would make failing traces unstable.
    if !st.abort {
        st.trace.push((tid, Op::Finish));
    }
    if let Err(p) = result {
        if st.panic_msg.is_none() && !p.is::<ModelAbort>() {
            let msg = p
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| p.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "<non-string panic payload>".to_string());
            st.panic_msg = Some(msg);
        }
    }
    if st.active == Some(tid) {
        st.active = None;
    }
    exec.cv.notify_all();
}

// ---------------------------------------------------------------------------
// Scheduler + DFS exploration
// ---------------------------------------------------------------------------

/// One recorded choice point in the DFS stack.
#[derive(Debug)]
struct Choice {
    /// Untried-yet alternatives at this point; `order[pos]` is chosen.
    order: Vec<Tid>,
    pos: usize,
    /// Canonical state hash at this point (for seen-set recording of
    /// alternatives taken on backtrack).
    hash: u64,
    /// Remaining preemption budget at this point (part of the key).
    budget: usize,
}

struct Dfs {
    stack: Vec<Choice>,
    /// `(canonical-state hash, remaining preemption budget, chosen tid)`
    /// transitions already fully explored.
    seen: std::collections::BTreeSet<(u64, usize, Tid)>,
    /// Forced schedule for [`replay`].
    forced: Option<Vec<Tid>>,
}

enum ExecOutcome {
    Clean,
    /// Abandoned early: every alternative at a fresh choice point was
    /// already explored from an equivalent state. Not a failure.
    Pruned,
    Failed(Failure),
}

/// Runs one execution of `body` under the scheduler, consulting and
/// extending the DFS stack. Returns the outcome plus trace/decisions.
fn run_one<F: Fn() + Sync>(
    opts: &Opts,
    dfs: &mut Dfs,
    body: &F,
) -> (ExecOutcome, Vec<(Tid, Op)>, Vec<Tid>) {
    let exec = Arc::new(Exec {
        state: StdMutex::new(ExecState {
            active: None,
            threads: vec![ThreadState {
                status: Status::NotStarted,
                pending: None,
                park_token: false,
            }],
            locks: BTreeMap::new(),
            dense_ids: BTreeMap::new(),
            trace: Vec::new(),
            decisions: Vec::new(),
            abort: false,
            panic_msg: None,
        }),
        cv: Condvar::new(),
    });

    let outcome = std::thread::scope(|s| {
        let exec_main = exec.clone();
        s.spawn(move || run_vthread(exec_main, 0, body));
        schedule_loop(&exec, opts, dfs)
    });

    let st = lock_state(&exec);
    (outcome, st.trace.clone(), st.decisions.clone())
}

/// The scheduler: picks the next virtual thread at every step until the
/// execution completes or fails, then (on failure) tears it down.
fn schedule_loop(exec: &Exec, opts: &Opts, dfs: &mut Dfs) -> ExecOutcome {
    let mut prev: Option<Tid> = None;
    let mut preemptions = 0usize;
    let mut choice_idx = 0usize;
    let mut steps = 0usize;

    loop {
        let mut st = lock_state(exec);
        // Wait until the baton is free and every live thread has posted
        // its next op (a just-spawned OS thread may not have posted
        // Start yet — that is startup latency, not a deadlock).
        loop {
            let all_posted = st
                .threads
                .iter()
                .all(|t| t.status == Status::Finished || t.pending.is_some());
            if st.active.is_none() && all_posted {
                break;
            }
            st = exec
                .cv
                .wait(st)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }

        if let Some(msg) = st.panic_msg.take() {
            let failure = Failure::Panic(msg);
            teardown(exec, st);
            return ExecOutcome::Failed(failure);
        }

        if st.threads.iter().all(|t| t.status == Status::Finished) {
            // Execution complete: quiescence check.
            let held: Vec<String> = st
                .locks
                .iter()
                .filter_map(|(dense, l)| {
                    l.owner
                        .map(|t| format!("m{dense} still held by t{t} (leaked guard)"))
                })
                .collect();
            if held.is_empty() {
                return ExecOutcome::Clean;
            }
            let failure = Failure::NonQuiescent(held);
            teardown(exec, st);
            return ExecOutcome::Failed(failure);
        }

        if steps >= opts.max_steps {
            let failure = Failure::StepLimit(opts.max_steps);
            teardown(exec, st);
            return ExecOutcome::Failed(failure);
        }
        steps += 1;

        // Fast path: `Release` and `Start` are always enabled, never
        // disable anything, and commute with every other *enabled* op
        // (an acquire of the released lock is by definition not enabled
        // before the release applies), so running them immediately —
        // lowest tid first — visits an equivalent schedule while
        // removing them from the choice space entirely.
        let fast = st.threads.iter().position(|t| {
            t.status == Status::Live && matches!(t.pending, Some(Op::Release(..)) | Some(Op::Start))
        });
        if let Some(tid) = fast {
            // lint: allow(P1) position() above only matches threads with a pending op
            let op = st.threads[tid].pending.unwrap();
            apply_op(&mut st, tid, op);
            st.trace.push((tid, op));
            st.decisions.push(tid);
            st.active = Some(tid);
            prev = Some(tid);
            exec.cv.notify_all();
            continue;
        }

        let enabled = enabled_threads(&st);
        if enabled.is_empty() {
            let blocked = describe_blocked(&st);
            let failure = Failure::Deadlock(blocked);
            teardown(exec, st);
            return ExecOutcome::Failed(failure);
        }

        // ---- pick the next thread ----
        let chosen = if let Some(forced) = &dfs.forced {
            let want = forced.get(st.decisions.len()).copied();
            match want {
                Some(t) if enabled.contains(&t) => t,
                // A diverged or truncated replay degrades to the default
                // policy rather than failing: the schedule string is a
                // debugging aid, not a proof object.
                _ => default_pick(&enabled, prev),
            }
        } else if enabled.len() == 1 {
            enabled[0]
        } else if choice_idx < dfs.stack.len() {
            // Replaying the DFS prefix.
            let c = &dfs.stack[choice_idx];
            choice_idx += 1;
            c.order[c.pos]
        } else {
            // Fresh choice point: order alternatives default-first,
            // filter by preemption budget and the duplicate-transition
            // set, and record for backtracking.
            let default = default_pick(&enabled, prev);
            let state_hash = canonical_hash(&st.trace);
            let budget_left = opts.preemptions - preemptions.min(opts.preemptions);
            let mut order: Vec<Tid> = Vec::with_capacity(enabled.len());
            order.push(default);
            for &t in &enabled {
                if t == default {
                    continue;
                }
                let is_preemption = prev.is_some_and(|p| enabled.contains(&p) && t != p);
                if is_preemption && budget_left == 0 {
                    continue;
                }
                order.push(t);
            }
            // Prune alternatives whose (state, budget, thread) transition
            // was already taken from an equivalent prefix.
            order.retain(|&t| !dfs.seen.contains(&(state_hash, budget_left, t)));
            if order.is_empty() {
                // Everything from this state was explored via another
                // prefix — descending again would only re-create choice
                // points below it. Abandon this execution.
                teardown(exec, st);
                return ExecOutcome::Pruned;
            }
            dfs.seen.insert((state_hash, budget_left, order[0]));
            dfs.stack.push(Choice {
                order,
                pos: 0,
                hash: state_hash,
                budget: budget_left,
            });
            choice_idx = dfs.stack.len();
            dfs.stack[choice_idx - 1].order[0]
        };

        if prev.is_some_and(|p| p != chosen && enabled.contains(&p)) {
            preemptions += 1;
        }
        prev = Some(chosen);

        // ---- apply the chosen thread's pending op and hand it the baton ----
        // lint: allow(P1) enabled_threads only returns live threads with a pending op
        let op = st.threads[chosen].pending.unwrap();
        apply_op(&mut st, chosen, op);
        st.trace.push((chosen, op));
        st.decisions.push(chosen);
        st.active = Some(chosen);
        exec.cv.notify_all();
    }
}

/// Threads whose pending op can proceed right now, ascending.
fn enabled_threads(st: &ExecState) -> Vec<Tid> {
    st.threads
        .iter()
        .enumerate()
        .filter(|(tid, t)| {
            t.status == Status::Live
                && match t.pending {
                    Some(Op::Acquire(l)) => st.locks.get(&l).is_none_or(|ls| ls.owner.is_none()),
                    Some(Op::Join(target)) => st.threads[target].status == Status::Finished,
                    Some(Op::Park) => st.threads[*tid].park_token,
                    Some(Op::Start | Op::Release(..) | Op::Unpark(_) | Op::Yield | Op::Finish) => {
                        true
                    }
                    None => false,
                }
        })
        .map(|(tid, _)| tid)
        .collect()
}

fn default_pick(enabled: &[Tid], prev: Option<Tid>) -> Tid {
    match prev {
        Some(p) if enabled.contains(&p) => p,
        _ => enabled[0],
    }
}

fn apply_op(st: &mut ExecState, tid: Tid, op: Op) {
    match op {
        Op::Acquire(l) => {
            let ls = st.locks.entry(l).or_default();
            debug_assert!(ls.owner.is_none(), "acquire of a held lock was scheduled");
            ls.owner = Some(tid);
        }
        Op::Release(l, poisoning) => {
            let ls = st.locks.entry(l).or_default();
            ls.owner = None;
            ls.poisoned |= poisoning;
        }
        Op::Park => {
            debug_assert!(st.threads[tid].park_token, "park without a token scheduled");
            st.threads[tid].park_token = false;
        }
        Op::Unpark(target) => {
            if let Some(t) = st.threads.get_mut(target) {
                t.park_token = true;
            }
        }
        Op::Start | Op::Join(_) | Op::Yield | Op::Finish => {}
    }
}

fn describe_blocked(st: &ExecState) -> Vec<String> {
    st.threads
        .iter()
        .enumerate()
        .filter(|(_, t)| t.status != Status::Finished)
        .map(|(tid, t)| match t.pending {
            Some(Op::Acquire(l)) => {
                let holder = st
                    .locks
                    .get(&l)
                    .and_then(|ls| ls.owner)
                    .map(|o| format!("held by t{o}"))
                    .unwrap_or_else(|| "free".to_string());
                format!("t{tid} blocked acquiring m{l} ({holder})")
            }
            Some(Op::Join(u)) => format!("t{tid} blocked joining t{u}"),
            Some(Op::Park) => format!("t{tid} parked with no pending unpark (lost wakeup)"),
            Some(op) => format!("t{tid} blocked at {}", op.render()),
            None => format!("t{tid} not yet started"),
        })
        .collect()
}

/// Tears down a failed execution: every suspended virtual thread
/// unwinds with [`ModelAbort`]; the caller's real scope then joins
/// them. Waits until all have finished so the scope join cannot hang.
fn teardown(exec: &Exec, mut st: std::sync::MutexGuard<'_, ExecState>) {
    st.abort = true;
    exec.cv.notify_all();
    while !st.threads.iter().all(|t| t.status == Status::Finished) {
        st = exec
            .cv
            .wait(st)
            .unwrap_or_else(std::sync::PoisonError::into_inner);
    }
}

// ---------------------------------------------------------------------------
// Trace canonicalization (duplicate-state pruning)
// ---------------------------------------------------------------------------

/// FNV-1a-64 over the trace's commutation normal form: adjacent steps by
/// different threads touching different objects are independent, so the
/// trace is bubbled to a fixpoint where no out-of-thread-order
/// independent pair remains. Equivalent interleavings hash identically;
/// conflicting ones keep their order and do not.
fn canonical_hash(trace: &[(Tid, Op)]) -> u64 {
    let mut t: Vec<(Tid, Op)> = trace.to_vec();
    let mut changed = true;
    while changed {
        changed = false;
        for i in 1..t.len() {
            let (a, b) = (t[i - 1], t[i]);
            let independent = a.0 != b.0 && {
                let (oa, ob) = (a.1.object(a.0), b.1.object(b.0));
                oa == Obj::None || ob == Obj::None || oa != ob
            };
            if independent && a.0 > b.0 {
                t.swap(i - 1, i);
                changed = true;
            }
        }
    }
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut feed = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for (tid, op) in &t {
        feed(*tid as u64);
        let (kind, arg) = match op {
            Op::Start => (0u64, 0u64),
            Op::Acquire(l) => (1, *l),
            Op::Release(l, p) => (2, l << 1 | u64::from(*p)),
            Op::Park => (3, 0),
            Op::Unpark(t) => (4, *t as u64),
            Op::Join(t) => (5, *t as u64),
            Op::Yield => (6, 0),
            Op::Finish => (7, 0),
        };
        feed(kind);
        feed(arg);
    }
    h
}

// ---------------------------------------------------------------------------
// Public driving functions
// ---------------------------------------------------------------------------

/// Explores interleavings of `body` (which runs concurrency through
/// [`crate::sync`]) within the preemption budget, returning on the
/// first failing schedule or after the space is exhausted.
pub fn check<F: Fn() + Sync>(opts: Opts, body: F) -> Report {
    let mut dfs = Dfs {
        stack: Vec::new(),
        seen: std::collections::BTreeSet::new(),
        forced: None,
    };
    let mut executions = 0usize;
    loop {
        let (outcome, trace, decisions) = run_one(&opts, &mut dfs, &body);
        executions += 1;
        if let ExecOutcome::Failed(failure) = outcome {
            return Report {
                failure: Some(failure),
                trace,
                schedule: decisions,
                executions,
                exhaustive: false,
            };
        }
        if executions >= opts.max_executions {
            return Report {
                failure: None,
                trace: Vec::new(),
                schedule: Vec::new(),
                executions,
                exhaustive: false,
            };
        }
        // Backtrack: advance the deepest choice point with an untried
        // alternative, dropping exhausted ones.
        loop {
            let Some(top) = dfs.stack.last_mut() else {
                return Report {
                    failure: None,
                    trace: Vec::new(),
                    schedule: Vec::new(),
                    executions,
                    exhaustive: true,
                };
            };
            if top.pos + 1 < top.order.len() {
                top.pos += 1;
                // Record the transition we are about to take, so any
                // later path reaching an equivalent state skips it.
                dfs.seen.insert((top.hash, top.budget, top.order[top.pos]));
                break;
            }
            dfs.stack.pop();
        }
    }
}

/// Re-runs `body` once under the exact scheduling decisions of a failing
/// report's `schedule` — the deterministic reproduction of a found bug.
pub fn replay<F: Fn() + Sync>(schedule: &[Tid], body: F) -> Report {
    let mut dfs = Dfs {
        stack: Vec::new(),
        seen: std::collections::BTreeSet::new(),
        forced: Some(schedule.to_vec()),
    };
    let opts = Opts::default();
    let (outcome, trace, decisions) = run_one(&opts, &mut dfs, &body);
    Report {
        failure: match outcome {
            ExecOutcome::Failed(f) => Some(f),
            // A forced replay never reaches the fresh-choice pruning.
            ExecOutcome::Clean | ExecOutcome::Pruned => None,
        },
        trace,
        schedule: decisions,
        executions: 1,
        exhaustive: false,
    }
}
