//! Vertical-cavity surface-emitting laser (VCSEL) model.
//!
//! The paper's transmitters are 5 µm-aperture, 980 nm back-emitting VCSELs
//! directly modulated by their drive current (Table 1: threshold 0.14 mA,
//! parasitics 235 Ω / 90 fF, extinction ratio 11:1, biased at 0.48 mA from
//! a 2 V supply for 0.96 mW of electrical power). This module models the
//! L-I curve above threshold, the parasitic-limited electrical bandwidth,
//! and the on/off optical power levels of OOK modulation.

use crate::units::{Capacitance, Current, Frequency, Power, Resistance, Voltage};
use crate::OpticsError;
use core::f64::consts::PI;

/// A directly-modulated VCSEL.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Vcsel {
    threshold: Current,
    slope_efficiency_w_per_a: f64,
    bias: Current,
    extinction_ratio: f64,
    series_resistance: Resistance,
    parasitic_capacitance: Capacitance,
    supply: Voltage,
    relaxation_frequency: Frequency,
}

/// Builder for [`Vcsel`], with the paper's Table 1 values as defaults.
#[derive(Debug, Clone)]
pub struct VcselBuilder {
    threshold: Current,
    slope_efficiency_w_per_a: f64,
    bias: Current,
    extinction_ratio: f64,
    series_resistance: Resistance,
    parasitic_capacitance: Capacitance,
    supply: Voltage,
    relaxation_frequency: Frequency,
}

impl Default for VcselBuilder {
    fn default() -> Self {
        VcselBuilder {
            threshold: Current::from_milliamps(0.14),
            // Modest slope efficiency of a small-aperture back-emitting
            // device; chosen within the typical 0.3–0.7 W/A range so the
            // end-to-end budget closes at Table 1's Q-factor (BER 1e-10).
            slope_efficiency_w_per_a: 0.305,
            bias: Current::from_milliamps(0.48),
            extinction_ratio: 11.0,
            series_resistance: Resistance::from_ohms(235.0),
            parasitic_capacitance: Capacitance::from_femtofarads(90.0),
            supply: Voltage::from_volts(2.0),
            // High-speed 980 nm VCSELs demonstrate ~27 GHz relaxation
            // oscillation frequencies (paper's refs [21, 22]).
            relaxation_frequency: Frequency::from_ghz(27.0),
        }
    }
}

impl VcselBuilder {
    /// Starts from the paper's Table 1 parameters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the threshold current.
    pub fn threshold(mut self, i: Current) -> Self {
        self.threshold = i;
        self
    }

    /// Sets the slope efficiency (W of light per A above threshold).
    pub fn slope_efficiency(mut self, w_per_a: f64) -> Self {
        self.slope_efficiency_w_per_a = w_per_a;
        self
    }

    /// Sets the average bias current.
    pub fn bias(mut self, i: Current) -> Self {
        self.bias = i;
        self
    }

    /// Sets the extinction ratio (P₁/P₀).
    pub fn extinction_ratio(mut self, r: f64) -> Self {
        self.extinction_ratio = r;
        self
    }

    /// Sets the series (mesa) resistance.
    pub fn series_resistance(mut self, r: Resistance) -> Self {
        self.series_resistance = r;
        self
    }

    /// Sets the parasitic capacitance.
    pub fn parasitic_capacitance(mut self, c: Capacitance) -> Self {
        self.parasitic_capacitance = c;
        self
    }

    /// Sets the supply voltage seen by the device.
    pub fn supply(mut self, v: Voltage) -> Self {
        self.supply = v;
        self
    }

    /// Sets the intrinsic relaxation-oscillation frequency.
    pub fn relaxation_frequency(mut self, f: Frequency) -> Self {
        self.relaxation_frequency = f;
        self
    }

    /// Builds the VCSEL.
    ///
    /// # Errors
    ///
    /// Returns an [`OpticsError`] if the bias does not exceed threshold, the
    /// extinction ratio is not > 1, or any physical quantity is non-positive.
    pub fn build(self) -> Result<Vcsel, OpticsError> {
        if self.threshold.as_amps() <= 0.0 {
            return Err(OpticsError::NonPositive {
                what: "threshold current",
                value: self.threshold.as_amps(),
            });
        }
        if self.bias.as_amps() <= self.threshold.as_amps() {
            return Err(OpticsError::NonPositive {
                what: "bias margin above threshold",
                value: self.bias.as_amps() - self.threshold.as_amps(),
            });
        }
        if self.extinction_ratio <= 1.0 {
            return Err(OpticsError::NonPositive {
                what: "extinction ratio minus one",
                value: self.extinction_ratio - 1.0,
            });
        }
        if self.slope_efficiency_w_per_a <= 0.0 {
            return Err(OpticsError::NonPositive {
                what: "slope efficiency",
                value: self.slope_efficiency_w_per_a,
            });
        }
        Ok(Vcsel {
            threshold: self.threshold,
            slope_efficiency_w_per_a: self.slope_efficiency_w_per_a,
            bias: self.bias,
            extinction_ratio: self.extinction_ratio,
            series_resistance: self.series_resistance,
            parasitic_capacitance: self.parasitic_capacitance,
            supply: self.supply,
            relaxation_frequency: self.relaxation_frequency,
        })
    }
}

impl Vcsel {
    /// The paper's Table 1 device.
    ///
    /// ```
    /// use fsoi_optics::vcsel::Vcsel;
    /// let v = Vcsel::paper_default();
    /// assert!((v.electrical_power().to_milliwatts() - 0.96).abs() < 1e-6);
    /// ```
    pub fn paper_default() -> Self {
        VcselBuilder::new()
            .build()
            // lint: allow(P1) the builder's defaults are the paper's validated constants
            .expect("paper defaults are valid")
    }

    /// Returns a builder initialized with the paper's defaults.
    pub fn builder() -> VcselBuilder {
        VcselBuilder::new()
    }

    /// Threshold current.
    pub fn threshold(&self) -> Current {
        self.threshold
    }

    /// Average bias current.
    pub fn bias(&self) -> Current {
        self.bias
    }

    /// Extinction ratio P₁/P₀.
    pub fn extinction_ratio(&self) -> f64 {
        self.extinction_ratio
    }

    /// Series resistance of the mesa.
    pub fn series_resistance(&self) -> Resistance {
        self.series_resistance
    }

    /// Parasitic capacitance.
    pub fn parasitic_capacitance(&self) -> Capacitance {
        self.parasitic_capacitance
    }

    /// Instantaneous optical output for drive current `i` (L-I curve):
    /// zero below threshold, linear above.
    pub fn optical_power_at(&self, i: Current) -> Power {
        let above = (i.as_amps() - self.threshold.as_amps()).max(0.0);
        Power::from_watts(self.slope_efficiency_w_per_a * above)
    }

    /// Time-averaged optical output at the configured bias.
    pub fn average_optical_power(&self) -> Power {
        self.optical_power_at(self.bias)
    }

    /// Optical power emitted for a logical one. With average power `P̄` and
    /// extinction ratio `r`, `P₁ = 2 P̄ r / (r + 1)`.
    pub fn one_level_power(&self) -> Power {
        let p_avg = self.average_optical_power().as_watts();
        let r = self.extinction_ratio;
        Power::from_watts(2.0 * p_avg * r / (r + 1.0))
    }

    /// Optical power emitted for a logical zero (`P₀ = P₁ / r`).
    pub fn zero_level_power(&self) -> Power {
        Power::from_watts(self.one_level_power().as_watts() / self.extinction_ratio)
    }

    /// Optical modulation amplitude `OMA = P₁ − P₀`.
    pub fn modulation_amplitude(&self) -> Power {
        self.one_level_power() - self.zero_level_power()
    }

    /// DC electrical power drawn while active: `I_bias × V_supply`
    /// (Table 1: 0.48 mA at 2 V = 0.96 mW).
    pub fn electrical_power(&self) -> Power {
        Power::from_watts(self.bias.as_amps() * self.supply.as_volts())
    }

    /// Electrical power in standby: biased just below threshold so the
    /// device resumes lasing instantly when traffic arrives.
    pub fn standby_power(&self) -> Power {
        Power::from_watts(self.threshold.as_amps() * self.supply.as_volts())
    }

    /// Parasitic RC-limited electrical bandwidth, `1 / (2π R C)`.
    pub fn parasitic_bandwidth(&self) -> Frequency {
        let rc = self.series_resistance.as_ohms() * self.parasitic_capacitance.as_farads();
        Frequency::from_hz(1.0 / (2.0 * PI * rc))
    }

    /// Overall small-signal bandwidth: the intrinsic relaxation-oscillation
    /// response combined (root-sum-square of pole frequencies) with the
    /// parasitic RC pole. The driver equalizes the RC pole in practice,
    /// which the paper's 43 GHz driver bandwidth reflects; we weight the
    /// parasitic pole by the driver's peaking factor.
    pub fn modulation_bandwidth(&self, driver_peaking: f64) -> Frequency {
        let f_rel = self.relaxation_frequency.as_hz();
        let f_rc = self.parasitic_bandwidth().as_hz() * driver_peaking.max(1.0);
        let combined = 1.0 / (1.0 / (f_rel * f_rel) + 1.0 / (f_rc * f_rc)).sqrt();
        Frequency::from_hz(combined)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_power_levels() {
        let v = Vcsel::paper_default();
        // Average optical power: 0.305 W/A × 0.34 mA = 0.104 mW (≈ −9.8 dBm).
        let p = v.average_optical_power().to_milliwatts();
        assert!((p - 0.104).abs() < 0.001, "P̄ = {p}");
        // One level = 2·P̄·11/12, zero = one/11.
        let p1 = v.one_level_power().to_milliwatts();
        let p0 = v.zero_level_power().to_milliwatts();
        assert!((p1 / p0 - 11.0).abs() < 1e-9);
        assert!(((p1 + p0) / 2.0 - p).abs() < 1e-9, "average preserved");
        let oma = v.modulation_amplitude().to_milliwatts();
        assert!((oma - (p1 - p0)).abs() < 1e-12);
    }

    #[test]
    fn electrical_and_standby_power() {
        let v = Vcsel::paper_default();
        assert!((v.electrical_power().to_milliwatts() - 0.96).abs() < 1e-9);
        assert!((v.standby_power().to_milliwatts() - 0.28).abs() < 1e-9);
    }

    #[test]
    fn li_curve_clamps_below_threshold() {
        let v = Vcsel::paper_default();
        assert_eq!(
            v.optical_power_at(Current::from_milliamps(0.1)).as_watts(),
            0.0
        );
        assert!(v.optical_power_at(Current::from_milliamps(0.5)).as_watts() > 0.0);
    }

    #[test]
    fn parasitic_bandwidth_value() {
        let v = Vcsel::paper_default();
        // 1/(2π · 235 Ω · 90 fF) ≈ 7.5 GHz.
        let f = v.parasitic_bandwidth().to_ghz();
        assert!((f - 7.52).abs() < 0.1, "f_RC = {f} GHz");
    }

    #[test]
    fn modulation_bandwidth_combines_poles() {
        let v = Vcsel::paper_default();
        let without_peaking = v.modulation_bandwidth(1.0).to_ghz();
        let with_peaking = v.modulation_bandwidth(6.0).to_ghz();
        assert!(without_peaking < with_peaking);
        assert!(with_peaking < 27.0, "cannot beat intrinsic response");
        // With strong equalization the link approaches the relaxation limit,
        // enough for 40 Gbps OOK.
        assert!(with_peaking > 20.0, "equalized BW = {with_peaking} GHz");
    }

    #[test]
    fn builder_validation() {
        assert!(matches!(
            Vcsel::builder().bias(Current::from_milliamps(0.1)).build(),
            Err(OpticsError::NonPositive { .. })
        ));
        assert!(Vcsel::builder().extinction_ratio(0.9).build().is_err());
        assert!(Vcsel::builder().slope_efficiency(-1.0).build().is_err());
        assert!(Vcsel::builder()
            .threshold(Current::from_amps(0.0))
            .build()
            .is_err());
    }

    #[test]
    fn builder_setters_apply() {
        let v = Vcsel::builder()
            .threshold(Current::from_milliamps(0.2))
            .bias(Current::from_milliamps(1.0))
            .extinction_ratio(5.0)
            .slope_efficiency(0.3)
            .series_resistance(Resistance::from_ohms(100.0))
            .parasitic_capacitance(Capacitance::from_femtofarads(50.0))
            .supply(Voltage::from_volts(1.5))
            .relaxation_frequency(Frequency::from_ghz(20.0))
            .build()
            .unwrap();
        assert!((v.threshold().to_milliamps() - 0.2).abs() < 1e-9);
        assert!((v.bias().to_milliamps() - 1.0).abs() < 1e-9);
        assert!((v.extinction_ratio() - 5.0).abs() < 1e-9);
        assert!((v.series_resistance().as_ohms() - 100.0).abs() < 1e-9);
        assert!((v.parasitic_capacitance().to_femtofarads() - 50.0).abs() < 1e-9);
        assert!((v.electrical_power().to_milliwatts() - 1.5).abs() < 1e-9);
    }
}
