//! Mesh configuration.

/// Configuration of a [`MeshNetwork`](crate::network::MeshNetwork).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MeshConfig {
    /// Mesh width (columns).
    pub width: usize,
    /// Mesh height (rows).
    pub height: usize,
    /// Virtual channels per input port (Table 3: 4).
    pub vcs: usize,
    /// Buffer depth per VC, in flits (Table 3's 12-flit buffers).
    pub vc_depth: usize,
    /// Router pipeline depth in cycles (canonical 4: RC, VA, SA, ST).
    pub router_cycles: u64,
    /// Link traversal latency in cycles (Table 3: 1).
    pub link_cycles: u64,
    /// Capacity of each node's injection queue, in packets.
    pub injection_queue: usize,
}

impl MeshConfig {
    /// The paper's baseline for `n` nodes (must be a perfect square):
    /// 4 VCs × 12-flit buffers, 4-cycle routers, 1-cycle links.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a perfect square of at least 4.
    pub fn nodes(n: usize) -> Self {
        let side = (n as f64).sqrt().round() as usize;
        assert!(
            side >= 2 && side * side == n,
            "mesh size must be a square, got {n}"
        );
        MeshConfig {
            width: side,
            height: side,
            vcs: 4,
            vc_depth: 12,
            router_cycles: 4,
            link_cycles: 1,
            injection_queue: 16,
        }
    }

    /// Builder-style: sets the router pipeline depth (e.g. aggressive
    /// 1- or 2-cycle routers).
    pub fn with_router_cycles(mut self, cycles: u64) -> Self {
        assert!(cycles >= 1);
        self.router_cycles = cycles;
        self
    }

    /// Builder-style: sets the VC count.
    pub fn with_vcs(mut self, vcs: usize) -> Self {
        assert!(vcs >= 1);
        self.vcs = vcs;
        self
    }

    /// Builder-style: sets the per-VC buffer depth in flits.
    pub fn with_vc_depth(mut self, depth: usize) -> Self {
        assert!(depth >= 1);
        self.vc_depth = depth;
        self
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.width * self.height
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let c = MeshConfig::nodes(16);
        assert_eq!((c.width, c.height), (4, 4));
        assert_eq!(c.vcs, 4);
        assert_eq!(c.vc_depth, 12);
        assert_eq!(c.router_cycles, 4);
        assert_eq!(c.link_cycles, 1);
        assert_eq!(c.node_count(), 16);
        let c64 = MeshConfig::nodes(64);
        assert_eq!((c64.width, c64.height), (8, 8));
    }

    #[test]
    fn builders() {
        let c = MeshConfig::nodes(16)
            .with_router_cycles(2)
            .with_vcs(2)
            .with_vc_depth(4);
        assert_eq!(c.router_cycles, 2);
        assert_eq!(c.vcs, 2);
        assert_eq!(c.vc_depth, 4);
    }

    #[test]
    #[should_panic(expected = "must be a square")]
    fn non_square_panics() {
        MeshConfig::nodes(15);
    }
}
