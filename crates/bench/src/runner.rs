//! Shared run helpers: execute an application on a network configuration
//! and collect the paper's metrics.

use fsoi_cmp::configs::{NetworkKind, SystemConfig};
use fsoi_cmp::metrics::RunReport;
use fsoi_cmp::system::CmpSystem;
use fsoi_cmp::workload::AppProfile;

/// Safety bound on run length.
pub const MAX_CYCLES: u64 = 50_000_000;

/// Options for a sweep over the application suite.
#[derive(Debug, Clone, Copy)]
pub struct SweepOptions {
    /// Node count (16 or 64).
    pub nodes: usize,
    /// Memory operations per core (scales run time).
    pub ops_per_core: u64,
    /// Aggregate memory bandwidth, GB/s.
    pub mem_gb_per_s: f64,
    /// §5.1/§5.2 optimizations on.
    pub optimizations: bool,
    /// RNG seed.
    pub seed: u64,
}

impl SweepOptions {
    /// The paper's 16-node setting with a workload size that keeps a full
    /// suite sweep to seconds.
    pub fn quick_16() -> Self {
        SweepOptions {
            nodes: 16,
            ops_per_core: 1_500,
            mem_gb_per_s: 8.8,
            optimizations: true,
            seed: 2010,
        }
    }

    /// 64-node setting (smaller per-core workload: 4× the cores).
    pub fn quick_64() -> Self {
        SweepOptions {
            nodes: 64,
            ops_per_core: 600,
            ..Self::quick_16()
        }
    }
}

/// One application's results across network configurations.
#[derive(Debug)]
pub struct AppResult {
    /// Application name.
    pub app: String,
    /// Reports keyed in the order of `networks` passed to [`sweep_apps`].
    pub reports: Vec<RunReport>,
}

/// Builds the network kind for a name at a node count.
pub fn network_by_name(name: &str, nodes: usize) -> NetworkKind {
    match name {
        "fsoi" => NetworkKind::fsoi(nodes),
        "mesh" => NetworkKind::mesh(nodes),
        "L0" => NetworkKind::L0,
        "Lr1" => NetworkKind::Lr1,
        "Lr2" => NetworkKind::Lr2,
        other => panic!("unknown network {other}"),
    }
}

/// Runs one application on one network.
pub fn run_app(app: AppProfile, network: NetworkKind, opts: SweepOptions) -> RunReport {
    let mut app = app;
    app.ops_per_core = opts.ops_per_core;
    let cfg = match opts.nodes {
        16 => SystemConfig::paper_16(network),
        64 => SystemConfig::paper_64(network),
        n => panic!("unsupported node count {n}"),
    }
    .with_mem_bandwidth(opts.mem_gb_per_s)
    .with_optimizations(opts.optimizations)
    .with_seed(opts.seed);
    CmpSystem::new(cfg, app).run(MAX_CYCLES)
}

/// Runs the full application suite over the named networks.
pub fn sweep_apps(networks: &[&str], opts: SweepOptions) -> Vec<AppResult> {
    AppProfile::suite()
        .into_iter()
        .map(|app| AppResult {
            app: app.name.to_string(),
            reports: networks
                .iter()
                .map(|n| run_app(app, network_by_name(n, opts.nodes), opts))
                .collect(),
        })
        .collect()
}
