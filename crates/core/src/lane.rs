//! Lanes: per-destination VCSEL groups and their slotted timing.
//!
//! A *lane* is a multi-bit bus of VCSELs (paper §4.1). Each optical channel
//! runs at a multiple of the core clock — Table 3: a 40 GHz VCSEL carries
//! 12 bits per 3.3 GHz CPU cycle — so a lane of `w` VCSELs moves `12 w`
//! bits per cycle. The default configuration uses 6 data + 3 meta + 1
//! confirmation VCSELs per node: a 72-bit meta packet serializes in 2
//! cycles, a 360-bit data packet in 5 (§4.3.2).
//!
//! Transmissions are *slotted*: a packet of a given class may start only on
//! a multiple of its class's serialization latency, which halves the
//! vulnerability window between same-length packets (classic slotted-ALOHA
//! reasoning, paper's ref \[40\]).

use crate::packet::PacketClass;

/// Static description of one lane class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaneSpec {
    /// Number of VCSELs (bits) in the lane.
    pub vcsels: usize,
    /// Packet length in bits carried by this lane.
    pub packet_bits: usize,
    /// Number of receivers for this lane class at each node.
    pub receivers: usize,
}

impl LaneSpec {
    /// Serialization latency in CPU cycles given the per-VCSEL bit rate.
    ///
    /// # Panics
    ///
    /// Panics if the lane has no VCSELs or the rate is zero.
    pub fn serialization_cycles(&self, bits_per_cycle_per_vcsel: usize) -> u64 {
        assert!(self.vcsels > 0, "lane must have at least one VCSEL");
        assert!(bits_per_cycle_per_vcsel > 0, "bit rate must be positive");
        let per_cycle = self.vcsels * bits_per_cycle_per_vcsel;
        (self.packet_bits as u64).div_ceil(per_cycle as u64)
    }

    /// The slot length equals the serialization latency: back-to-back
    /// packets of the same class never partially overlap.
    pub fn slot_cycles(&self, bits_per_cycle_per_vcsel: usize) -> u64 {
        self.serialization_cycles(bits_per_cycle_per_vcsel)
    }
}

/// The pair of lane specs (meta, data) of a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lanes {
    /// The meta lane.
    pub meta: LaneSpec,
    /// The data lane.
    pub data: LaneSpec,
    /// Bits each VCSEL carries per CPU cycle (optical rate / core clock).
    pub bits_per_cycle_per_vcsel: usize,
}

impl Lanes {
    /// The paper's default: 6-bit data lane, 3-bit meta lane, 12 bits per
    /// VCSEL per CPU cycle, 2 receivers for each lane class (Table 3).
    pub fn paper_default() -> Self {
        Lanes {
            meta: LaneSpec {
                vcsels: 3,
                packet_bits: 72,
                receivers: 2,
            },
            data: LaneSpec {
                vcsels: 6,
                packet_bits: 360,
                receivers: 2,
            },
            bits_per_cycle_per_vcsel: 12,
        }
    }

    /// The spec for a packet class.
    pub fn spec(&self, class: PacketClass) -> LaneSpec {
        match class {
            PacketClass::Meta => self.meta,
            PacketClass::Data => self.data,
        }
    }

    /// Serialization latency of a class, in cycles.
    pub fn serialization_cycles(&self, class: PacketClass) -> u64 {
        self.spec(class)
            .serialization_cycles(self.bits_per_cycle_per_vcsel)
    }

    /// Slot length of a class, in cycles.
    pub fn slot_cycles(&self, class: PacketClass) -> u64 {
        self.spec(class).slot_cycles(self.bits_per_cycle_per_vcsel)
    }

    /// Total transmit VCSELs per destination lane set (data + meta).
    pub fn lane_bits(&self) -> usize {
        self.meta.vcsels + self.data.vcsels
    }

    /// Scales both lanes' widths to model reduced-bandwidth configurations
    /// (the Figure 11 sensitivity study). `fraction` in `(0, 1]` scales the
    /// VCSEL counts, rounding half-up but keeping at least one VCSEL, and
    /// serialization latencies lengthen accordingly.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is not in `(0, 1]`.
    pub fn scaled_bandwidth(&self, fraction: f64) -> Lanes {
        assert!(
            fraction > 0.0 && fraction <= 1.0,
            "bandwidth fraction must be in (0, 1]"
        );
        let scale = |v: usize| (((v as f64) * fraction).round() as usize).max(1);
        Lanes {
            meta: LaneSpec {
                vcsels: scale(self.meta.vcsels),
                ..self.meta
            },
            data: LaneSpec {
                vcsels: scale(self.data.vcsels),
                ..self.data
            },
            bits_per_cycle_per_vcsel: self.bits_per_cycle_per_vcsel,
        }
    }

    /// The Figure 11 base configuration: both lanes widened to 6 VCSELs so
    /// meta serializes in 1 cycle and data in 5 — matching the mesh's flit
    /// timing (paper footnote 9).
    pub fn fig11_base() -> Self {
        Lanes {
            meta: LaneSpec {
                vcsels: 6,
                packet_bits: 72,
                receivers: 2,
            },
            data: LaneSpec {
                vcsels: 6,
                packet_bits: 360,
                receivers: 2,
            },
            bits_per_cycle_per_vcsel: 12,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_serialization_latencies() {
        let l = Lanes::paper_default();
        // 72 bits over 3 VCSELs × 12 b/cycle = 36 b/cycle → 2 cycles.
        assert_eq!(l.serialization_cycles(PacketClass::Meta), 2);
        // 360 bits over 6 VCSELs × 12 b/cycle = 72 b/cycle → 5 cycles.
        assert_eq!(l.serialization_cycles(PacketClass::Data), 5);
        assert_eq!(l.slot_cycles(PacketClass::Meta), 2);
        assert_eq!(l.slot_cycles(PacketClass::Data), 5);
        assert_eq!(l.lane_bits(), 9); // the paper's k = 9
    }

    #[test]
    fn fig11_base_matches_mesh_timing() {
        let l = Lanes::fig11_base();
        assert_eq!(l.serialization_cycles(PacketClass::Meta), 1);
        assert_eq!(l.serialization_cycles(PacketClass::Data), 5);
    }

    #[test]
    fn scaled_bandwidth_lengthens_serialization() {
        let l = Lanes::fig11_base();
        let half = l.scaled_bandwidth(0.5);
        assert_eq!(half.meta.vcsels, 3);
        assert_eq!(half.data.vcsels, 3);
        assert_eq!(half.serialization_cycles(PacketClass::Meta), 2);
        assert_eq!(half.serialization_cycles(PacketClass::Data), 10);
        // Receivers are unchanged.
        assert_eq!(half.meta.receivers, 2);
    }

    #[test]
    fn scaled_bandwidth_keeps_at_least_one_vcsel() {
        let l = Lanes::paper_default();
        let tiny = l.scaled_bandwidth(0.05);
        assert!(tiny.meta.vcsels >= 1);
        assert!(tiny.data.vcsels >= 1);
    }

    #[test]
    #[should_panic(expected = "bandwidth fraction")]
    fn zero_fraction_panics() {
        Lanes::paper_default().scaled_bandwidth(0.0);
    }

    #[test]
    fn spec_lookup() {
        let l = Lanes::paper_default();
        assert_eq!(l.spec(PacketClass::Meta).vcsels, 3);
        assert_eq!(l.spec(PacketClass::Data).vcsels, 6);
    }

    #[test]
    fn odd_sizes_round_up() {
        let s = LaneSpec {
            vcsels: 4,
            packet_bits: 100,
            receivers: 1,
        };
        // 48 bits/cycle → ceil(100/48) = 3.
        assert_eq!(s.serialization_cycles(12), 3);
    }
}
