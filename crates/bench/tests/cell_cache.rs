//! End-to-end contract of the `FSOI_CACHE` cell cache through the
//! public batch entry points. (This binary owns the `FSOI_CACHE` env
//! var: nothing else in it — and no other test binary — reads or writes
//! the knob, so the serial `set_var`/`remove_var` dance here cannot race
//! another test.)

use fsoi_bench::runner::{CellSpec, SweepOptions, MAX_CYCLES};
use fsoi_cmp::batch::{merge_reports, run_batch, BatchCell};
use fsoi_cmp::cache::CellCache;
use fsoi_cmp::workload::AppProfile;
use fsoi_sim::telemetry;
use std::path::PathBuf;

fn cache_dir(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn tiny_cells(seed: u64) -> Vec<BatchCell> {
    let opts = SweepOptions {
        ops_per_core: 30,
        seed,
        ..SweepOptions::quick_16()
    };
    ["mp", "fft"]
        .iter()
        .flat_map(|a| {
            let app = AppProfile::by_name(a).expect("suite app");
            ["fsoi", "mesh"].map(|n| CellSpec::new(app, n, opts).to_batch_cell())
        })
        .collect()
}

/// The one test: a single `#[test]` keeps every use of the env var on
/// one thread. Sub-scenarios run in sequence against fresh cache dirs.
#[test]
fn fsoi_cache_knob_end_to_end() {
    let cells = tiny_cells(2010);
    std::env::remove_var("FSOI_CACHE");
    let cold = merge_reports(&run_batch(&cells, 1, MAX_CYCLES)).to_jsonl();
    assert!(!cold.is_empty(), "the cold export carries metrics");

    // Enabled knob: the first batch fills the cache, the second batch is
    // all hits — same bytes both times, one entry file per cell. Cache
    // outcome telemetry is always-on (no `set_enabled` needed) and must
    // track each scenario.
    let t0 = telemetry::cache_stats();
    let dir = cache_dir("cell_cache_smoke");
    std::env::set_var("FSOI_CACHE", &dir);
    let fill = merge_reports(&run_batch(&cells, 2, MAX_CYCLES)).to_jsonl();
    assert_eq!(fill, cold, "cache fill must not change the export");
    let entries = || {
        std::fs::read_dir(&dir)
            .map(|d| d.filter_map(Result::ok).count())
            .unwrap_or(0)
    };
    assert_eq!(entries(), cells.len(), "one cache entry per distinct cell");
    assert_eq!(
        telemetry::cache_stats().misses,
        t0.misses + cells.len() as u64,
        "the fill run counts one miss per cell"
    );
    let hits = merge_reports(&run_batch(&cells, 2, MAX_CYCLES)).to_jsonl();
    assert_eq!(hits, cold, "cache hits must reproduce the cold bytes");
    assert_eq!(entries(), cells.len(), "a hit run writes nothing new");
    assert_eq!(
        telemetry::cache_stats().hits,
        t0.hits + cells.len() as u64,
        "the warm run counts one hit per cell"
    );

    // Prove hits really come from disk: rewrite one entry with another
    // entry's *payload* while keeping its own preimage line, and the
    // tampered report must surface in the next run. (Swapping whole
    // files would trip the preimage check and fall back to a cold run.)
    let cache = CellCache::at(&dir);
    let a = &cells[0];
    let b = &cells[1];
    let path_of = |c: &BatchCell| cache.entry_path_for(&c.config, &c.app, MAX_CYCLES);
    let preimage_line = |p: &PathBuf| {
        let text = std::fs::read_to_string(p).expect("cache entry readable");
        text.split_once('\n')
            .expect("entry has a preimage line")
            .0
            .to_string()
    };
    let payload = |p: &PathBuf| {
        let text = std::fs::read_to_string(p).expect("cache entry readable");
        text.split_once('\n')
            .expect("entry has a preimage line")
            .1
            .to_string()
    };
    let tampered = format!("{}\n{}", preimage_line(&path_of(a)), payload(&path_of(b)));
    std::fs::write(path_of(a), tampered).expect("tamper cache entry");
    let swapped = merge_reports(&run_batch(&cells, 1, MAX_CYCLES)).to_jsonl();
    assert_ne!(
        swapped, cold,
        "a tampered cache entry must be visible — otherwise hits were not read from disk"
    );

    // Corrupt the same entry into garbage: the preimage check rejects
    // it, the cell falls back to a cold run, and the export heals. The
    // rejection lands in the tamper counter (preimage mismatch).
    let before_tamper = telemetry::cache_stats();
    std::fs::write(path_of(a), "not a cache entry\n").expect("corrupt cache entry");
    let healed = merge_reports(&run_batch(&cells, 1, MAX_CYCLES)).to_jsonl();
    assert_eq!(healed, cold, "corrupt entries must fall back to cold runs");
    assert_eq!(
        telemetry::cache_stats().tamper,
        before_tamper.tamper + 1,
        "a preimage mismatch must increment the tamper counter"
    );

    // Keep the preimage line but garble the payload: the preimage check
    // passes, the wire parse fails, and the corruption counter — not the
    // tamper counter — records it while the run heals the entry again.
    let before_corrupt = telemetry::cache_stats();
    let garbled = format!("{}\nnot wire format\n", preimage_line(&path_of(a)));
    std::fs::write(path_of(a), garbled).expect("garble cache payload");
    let reheal = merge_reports(&run_batch(&cells, 1, MAX_CYCLES)).to_jsonl();
    assert_eq!(reheal, cold, "garbled payloads must fall back to cold runs");
    let after_corrupt = telemetry::cache_stats();
    assert_eq!(
        after_corrupt.corrupt,
        before_corrupt.corrupt + 1,
        "a wire-parse failure must increment the corruption counter"
    );
    assert_eq!(
        after_corrupt.tamper, before_corrupt.tamper,
        "an intact preimage must not count as tampering"
    );

    // An empty knob value disables the cache entirely.
    std::env::set_var("FSOI_CACHE", "");
    assert!(
        CellCache::from_env().is_none(),
        "an empty knob must disable the cache"
    );
    let off = merge_reports(&run_batch(&cells, 1, MAX_CYCLES)).to_jsonl();
    assert_eq!(off, cold);

    std::env::remove_var("FSOI_CACHE");
    let _ = std::fs::remove_dir_all(&dir);
}
