//! Fixture round-trips: the engine and the installed binary must agree
//! that `fixtures/violating` fails (exit 1, every rule firing) and
//! `fixtures/clean` passes (exit 0, allows counted).

use fsoi_lint::run_check;
use std::path::{Path, PathBuf};
use std::process::Command;

fn fixture_root(which: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(which)
}

#[test]
fn violating_tree_fires_every_rule() {
    let report = run_check(&fixture_root("violating")).expect("scan succeeds");
    assert!(!report.is_clean());
    for rule in ["D1", "D2", "D3", "D4b", "T1", "P1", "A1", "A2"] {
        assert!(
            report.violations.iter().any(|v| v.rule == rule),
            "rule {rule} must fire on the violating fixture:\n{}",
            report.to_table()
        );
    }
    // The tests/ file uses every banned idiom but is path-exempt; the
    // D4b fixture lives in its own par.rs (D3-exempt there, so only the
    // guard-lifetime rule fires from it).
    assert!(
        report
            .violations
            .iter()
            .all(|v| v.path.ends_with("src/bad.rs") || v.path.ends_with("src/par.rs")),
        "exempt tests/ file must contribute nothing:\n{}",
        report.to_table()
    );
    assert!(
        report
            .violations
            .iter()
            .filter(|v| v.path.ends_with("src/par.rs"))
            .all(|v| v.rule == "D4b"),
        "the par.rs fixture isolates D4b:\n{}",
        report.to_table()
    );
}

#[test]
fn violating_tree_reports_each_expected_site() {
    let report = run_check(&fixture_root("violating")).expect("scan succeeds");
    let has = |rule: &str, needle: &str| {
        report
            .violations
            .iter()
            .any(|v| v.rule == rule && v.msg.contains(needle))
    };
    assert!(has("D1", "`HashMap`"), "HashMap import");
    assert!(has("D1", "`HashSet`"), "HashSet construction");
    assert!(has("D2", "`Instant`"), "wall clock");
    assert!(has("D2", "undocumented knob"), "FSOI_UNDOCUMENTED read");
    assert!(has("D2", "non-literal"), "env::var(knob_name())");
    assert!(has("D3", "`Mutex`"), "lock in sim code");
    assert!(has("D3", "thread::spawn"), "ad-hoc thread");
    assert!(
        has("T1", "trace::emit_with"),
        "eager emission points at the fix"
    );
    assert!(has("P1", "`.unwrap()`"), "unannotated unwrap");
    assert!(has("P1", "`panic!`"), "unannotated panic");
    assert!(has("A1", "unknown rule"), "allow(Q9)");
    assert!(has("A1", "without a reason"), "reasonless allow(P1)");
    assert!(
        has("D4b", "guard `own`"),
        "binding held across the steal's lock"
    );
    assert!(
        has("D4b", "temporary guard"),
        "chained statement-temporary steal"
    );
    assert!(
        has("A2", "stale allow"),
        "well-formed allow(T1) suppressing nothing"
    );
    // A malformed allow does not suppress the violation it sits on.
    assert!(
        report
            .violations
            .iter()
            .any(|v| v.rule == "P1" && v.msg.contains("`.expect()`")),
        "expect under allow(Q9) still fires:\n{}",
        report.to_table()
    );
}

#[test]
fn clean_tree_is_clean_and_counts_allows() {
    let report = run_check(&fixture_root("clean")).expect("scan succeeds");
    assert!(
        report.is_clean(),
        "clean fixture has violations:\n{}",
        report.to_table()
    );
    assert_eq!(
        report.allows.get("P1").copied(),
        Some(2),
        "both the trailing and preceding allow forms are counted"
    );
    assert_eq!(
        report.allows.get("D3").copied(),
        Some(1),
        "the D3 escape hatch is counted"
    );
}

#[test]
fn binary_exit_codes_match_the_gate_contract() {
    let bin = env!("CARGO_BIN_EXE_fsoi-lint");
    let run = |args: &[&str]| Command::new(bin).args(args).output().expect("binary runs");

    let clean = run(&["check", "--root", fixture_root("clean").to_str().unwrap()]);
    assert_eq!(clean.status.code(), Some(0), "clean tree: {clean:?}");

    let bad = run(&[
        "check",
        "--root",
        fixture_root("violating").to_str().unwrap(),
    ]);
    assert_eq!(bad.status.code(), Some(1), "violating tree: {bad:?}");
    let table = String::from_utf8_lossy(&bad.stdout);
    assert!(table.contains("rule"), "human table on stdout: {table}");

    let jsonl = run(&[
        "check",
        "--format",
        "jsonl",
        "--root",
        fixture_root("violating").to_str().unwrap(),
    ]);
    assert_eq!(jsonl.status.code(), Some(1));
    let out = String::from_utf8_lossy(&jsonl.stdout);
    for line in out.lines() {
        assert!(
            line.starts_with('{') && line.ends_with('}'),
            "each JSONL line is one object: {line}"
        );
    }
    assert!(out.contains("\"rule\":\"D1\""));

    let usage = run(&["frobnicate"]);
    assert_eq!(
        usage.status.code(),
        Some(2),
        "unknown args are usage errors"
    );

    let missing = run(&["check", "--root", "/nonexistent-fsoi-fixture"]);
    assert_eq!(
        missing.status.code(),
        Some(2),
        "unscannable root is an error"
    );
}
