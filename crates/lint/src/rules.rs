//! The lint rules and the token-walking engine behind `fsoi-lint check`.
//!
//! Every rule is a named, documented invariant of this repository (see
//! DESIGN.md § "Determinism policy"):
//!
//! * **D1** — no `std::collections::HashMap`/`HashSet` in simulation
//!   library code; use `fsoi_sim::det::{DetMap, DetSet}`. The default
//!   `RandomState` hasher is seeded from OS entropy, so iteration order
//!   differs per process and can leak into statistics and exports.
//! * **D2** — no wall-clock or OS-entropy sources in simulation library
//!   code (`Instant`, `SystemTime`, `thread_rng`, …), and no environment
//!   reads outside the documented `FSOI_*` knob list. Simulated time is
//!   [`fsoi_sim::Cycle`]; randomness comes from the seeded in-repo RNGs.
//!   `fsoi_sim::telemetry` — the explicitly nondeterministic wall-clock
//!   observability plane, excluded from every byte-identity gate — is
//!   the one sanctioned home for clock reads; the env-read discipline
//!   still applies there.
//! * **D3** — no direct threading or lock primitives (`thread::spawn`,
//!   `Mutex`, `RwLock`, …) in simulation library code outside
//!   `fsoi_sim::par`: ad-hoc threads make completion order — and thus
//!   any order-sensitive reduction — scheduler-dependent. Parallel
//!   sweeps go through `fsoi_sim::par::sweep`, whose reduction is keyed
//!   on cell index.
//! * **D4b** — no lock guard live across a call into a blocking,
//!   stealing or parking function. A guard born from a call spelled
//!   `lock(...)`/`.lock(...)` — whether `let`-bound or a statement
//!   temporary (which lives to the end of its full statement) — must be
//!   dead before any call to `lock`/`park`/`join`/`wait`/`recv`/
//!   `steal`/`sleep`/`yield_now`. This is the PR 6 executor deadlock
//!   (own-queue guard held across the steal's lock) made a static
//!   rule. Syntactic, not a proof: guards returned through differently
//!   named helpers are not tracked, and the blocking set is a name
//!   list — the `model` feature's schedule exploration is the dynamic
//!   backstop.
//! * **T1** — trace emissions in simulation library code must use
//!   `trace::emit_with` (lazy closure), never eager `trace::emit`:
//!   everything in a simulation crate is reachable from some `tick()`,
//!   and eager event construction allocates even when tracing is off.
//! * **P1** — no `unwrap`/`expect`/`panic!` in library code unless the
//!   site carries a `// lint: allow(P1) <reason>` annotation; the tool
//!   counts the allows so the escape hatch stays visible.
//! * **A1** — (meta) every `// lint: allow(...)` annotation must name
//!   known rules and carry a non-empty reason.
//! * **A2** — (meta) every well-formed allow must actually suppress a
//!   violation: a stale `// lint: allow(RULE)` — left behind after the
//!   code it justified was fixed or moved — is itself a violation, so
//!   the escape-hatch inventory can never rot. Allows inside
//!   `#[cfg(test)]` items are exempt (their sites are rule-exempt, so
//!   they can never be "used").
//!
//! Test/bench/bin/example code is exempt: the engine skips files under
//! `tests/`, `benches/`, `examples/` and `src/bin/`, and skips items
//! annotated `#[cfg(test)]` or `#[test]` inside library files.

use crate::lexer::{lex, Tok, TokKind};

/// Crates whose library code is "simulation code" for D1/D2/T1.
pub const SIM_CRATES: &[&str] = &["sim", "optics", "core", "mesh", "coherence", "cmp", "ring"];

/// Extra crates whose library code is covered by D2 (environment-read
/// discipline) and P1: the property-test harness is library code that
/// simulations execute under, so its env reads stay on documented knobs.
pub const HARNESS_CRATES: &[&str] = &["check"];

/// The documented `FSOI_*` environment knobs (README "Verification" and
/// "Observability"; DESIGN.md "Determinism policy"). D2 doubles as the
/// audit that no undocumented knob exists: an env read of any name not
/// in this list is a violation until the knob is documented and added.
pub const ALLOWED_ENV_KNOBS: &[&str] = &[
    "FSOI_CHECK_SEED",
    "FSOI_CHECK_CASES",
    "FSOI_CHECK_REPLAY",
    "FSOI_THREADS",
    "FSOI_CACHE",
    "FSOI_TELEMETRY",
    "FSOI_TRACE",
    "FSOI_TRACE_BUF",
    "FSOI_TRACE_DUMP",
];

/// Files exempt from D3: the deterministic sweep executor, the
/// concurrency shim it is written against, and the model checker that
/// drives the shim's virtual threads are the sanctioned homes for
/// threads and locks in simulation library code.
pub const D3_EXEMPT_PATHS: &[&str] = &[
    "crates/sim/src/par.rs",
    "crates/sim/src/sync.rs",
    "crates/sim/src/model.rs",
];

/// Files exempt from D2's wall-clock/OS-entropy ident ban: the telemetry
/// module is the explicitly nondeterministic observability plane, kept
/// out of every byte-identity gate, so `Instant` is legitimate there.
/// The exemption covers only the banned idents — environment reads in
/// this file still answer to the documented-knob audit.
pub const D2_EXEMPT_PATHS: &[&str] = &["crates/sim/src/telemetry.rs"];

/// Identifiers that are shared-state synchronization primitives (D3).
/// (`Barrier` is deliberately absent: `fsoi_coherence::sync::Barrier` is a
/// *simulated* barrier, not a std synchronization primitive.)
const D3_BANNED_IDENTS: &[&str] = &["Mutex", "RwLock", "Condvar", "OnceLock"];

/// `thread::<fn>` calls that create threads (D3).
const D3_THREAD_FNS: &[&str] = &["spawn", "scope", "Builder"];

/// Identifiers that are wall-clock / OS-entropy sources (D2).
const D2_BANNED_IDENTS: &[(&str, &str)] = &[
    (
        "Instant",
        "wall-clock time; simulated time is fsoi_sim::Cycle",
    ),
    (
        "SystemTime",
        "wall-clock time; simulated time is fsoi_sim::Cycle",
    ),
    (
        "thread_rng",
        "OS-entropy RNG; use the seeded fsoi_sim::rng generators",
    ),
    (
        "from_entropy",
        "OS-entropy seeding; derive seeds from the run seed",
    ),
    (
        "OsRng",
        "OS-entropy RNG; use the seeded fsoi_sim::rng generators",
    ),
];

/// D4b: calls that block, steal work, or park the calling thread. A
/// live lock guard across any of these can form a cross-thread lock
/// cycle (a second `lock`), a lost-progress window (`park`/`wait`), or
/// an unbounded hold (`join`/`recv`/`sleep`). Exact-ident match only:
/// `worker_steal` or `wait_for` do not trip it.
const D4B_BLOCKING_FNS: &[&str] = &[
    "lock",
    "park",
    "join",
    "wait",
    "recv",
    "steal",
    "sleep",
    "yield_now",
];

/// D4b: method adapters that pass a lock guard through unchanged, so
/// `m.lock().unwrap()` and `m.lock().unwrap_or_else(...)` still count
/// as guard births.
const D4B_GUARD_ADAPTERS: &[&str] = &["unwrap", "expect", "unwrap_or_else"];

/// `std::env` functions that read process state. `var`/`var_os` with a
/// documented knob literal are fine; everything else needs an allow.
const D2_ENV_READS: &[&str] = &[
    "var",
    "var_os",
    "vars",
    "vars_os",
    "args",
    "args_os",
    "temp_dir",
    "current_dir",
    "home_dir",
];

/// The rule identifiers, in report order.
pub const RULES: &[&str] = &["D1", "D2", "D3", "D4b", "T1", "P1", "A1", "A2"];

/// One-line description per rule (for `fsoi-lint rules` and reports).
pub fn rule_summary(rule: &str) -> &'static str {
    match rule {
        "D1" => "no HashMap/HashSet in sim library code; use fsoi_sim::det::{DetMap, DetSet}",
        "D2" => "no wall-clock/OS-entropy/undocumented-env reads in sim library code outside fsoi_sim::telemetry",
        "D3" => "no thread::spawn/Mutex/RwLock in sim library code outside fsoi_sim::par",
        "D4b" => "no lock guard (binding or statement temporary) live across a blocking/stealing/parking call",
        "T1" => "trace emissions must be lazy (trace::emit_with, never trace::emit)",
        "P1" => "no unwrap/expect/panic! in library code without `// lint: allow(P1) reason`",
        "A1" => "lint allow-annotations must name known rules and carry a reason",
        "A2" => "every allow-annotation must suppress something; stale allows fail the lint",
        _ => "unknown rule",
    }
}

/// How a file participates in linting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileClass {
    /// Library source: all rules whose crate scope matches apply.
    Library,
    /// Tests, benches, examples, binaries: exempt from every rule.
    Exempt,
}

/// Classifies a workspace-relative path (`crates/<name>/src/...`).
pub fn classify_path(rel: &str) -> FileClass {
    let exempt_dirs = ["/tests/", "/benches/", "/examples/", "/src/bin/"];
    if exempt_dirs.iter().any(|d| rel.contains(d)) || rel.ends_with("build.rs") {
        FileClass::Exempt
    } else {
        FileClass::Library
    }
}

/// The crate name component of `crates/<name>/...`, if any.
pub fn crate_of_path(rel: &str) -> Option<&str> {
    rel.strip_prefix("crates/")?.split('/').next()
}

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Violation {
    /// Workspace-relative path.
    pub path: String,
    /// 1-based source line.
    pub line: u32,
    /// Rule identifier (`D1`, …).
    pub rule: &'static str,
    /// Human-readable explanation of this occurrence.
    pub msg: String,
}

/// A parsed `// lint: allow(RULE[,RULE...]) reason` annotation.
#[derive(Debug, Clone)]
pub struct Allow {
    /// The rules this annotation suppresses.
    pub rules: Vec<String>,
    /// The justification text after the closing parenthesis.
    pub reason: String,
    /// Lines the annotation covers: its own plus the next code line.
    pub lines: (u32, u32),
    /// Index of the annotation's comment token, so A2 can tell whether
    /// the allow sits inside a `#[cfg(test)]` item (exempt from A2).
    pub tok: usize,
}

/// Everything the engine extracted from one file.
#[derive(Debug, Default)]
pub struct FileFindings {
    /// Violations, already allow-filtered.
    pub violations: Vec<Violation>,
    /// `(rule, line)` of every allow actually present (used + counted).
    pub allows: Vec<(String, u32)>,
}

/// Lints one file's source text. `rel` is the workspace-relative path
/// used both for reporting and for crate/scope classification.
pub fn lint_source(rel: &str, src: &str) -> FileFindings {
    let mut out = FileFindings::default();
    if classify_path(rel) == FileClass::Exempt {
        return out;
    }
    let krate = crate_of_path(rel).unwrap_or("");
    let sim_scope = SIM_CRATES.contains(&krate);
    let p1_scope = sim_scope || HARNESS_CRATES.contains(&krate);
    let d2_scope = p1_scope;
    // The ident ban (clocks/entropy) has a sanctioned home; the env-read
    // audit below deliberately does not use this and applies everywhere.
    let d2_ident_scope = d2_scope && !D2_EXEMPT_PATHS.contains(&rel);
    let d3_scope = sim_scope && !D3_EXEMPT_PATHS.contains(&rel);
    if !sim_scope && !p1_scope {
        return out;
    }

    let toks = lex(src);
    let suppressed = cfg_test_spans(&toks);
    let (allows, mut bad_allows) = collect_allows(&toks, rel);
    out.violations.append(&mut bad_allows);
    for a in &allows {
        for r in &a.rules {
            out.allows.push((r.clone(), a.lines.0));
        }
    }

    let code: Vec<(usize, &Tok)> = toks
        .iter()
        .enumerate()
        .filter(|(i, t)| t.kind != TokKind::Comment && !suppressed.iter().any(|s| s.contains(i)))
        .collect();

    // A2 bookkeeping: per-(allow, rule) usage, marked whenever an allow
    // actually suppresses a violation below.
    let mut used: Vec<Vec<bool>> = allows.iter().map(|a| vec![false; a.rules.len()]).collect();
    let mut push = |rule: &'static str, line: u32, msg: String| {
        let mut allowed = false;
        for (ai, a) in allows.iter().enumerate() {
            if a.lines.0 != line && a.lines.1 != line {
                continue;
            }
            for (ri, r) in a.rules.iter().enumerate() {
                if r == rule {
                    used[ai][ri] = true;
                    allowed = true;
                }
            }
        }
        if !allowed {
            out.violations.push(Violation {
                path: rel.to_string(),
                line,
                rule,
                msg,
            });
        }
    };

    for (k, &(_, t)) in code.iter().enumerate() {
        let next = |off: usize| code.get(k + off).map(|&(_, t)| t);
        // D1: raw default-hasher collections in sim code.
        if sim_scope && t.kind == TokKind::Ident && (t.text == "HashMap" || t.text == "HashSet") {
            let det = if t.text == "HashMap" {
                "DetMap"
            } else {
                "DetSet"
            };
            push(
                "D1",
                t.line,
                format!(
                    "`{}` iterates in hasher order (per-process random); use fsoi_sim::det::{det} or a BTree collection",
                    t.text
                ),
            );
        }
        // D3: synchronization primitives outside fsoi_sim::par.
        if d3_scope && t.kind == TokKind::Ident && D3_BANNED_IDENTS.contains(&t.text.as_str()) {
            push(
                "D3",
                t.line,
                format!(
                    "`{}` shares mutable state across threads in simulation code; parallelism lives behind fsoi_sim::par::sweep (deterministic index-keyed reduction)",
                    t.text
                ),
            );
        }
        // D3: thread creation — `thread :: spawn` / `thread :: scope`.
        if d3_scope
            && t.is_ident("thread")
            && next(1).is_some_and(|a| a.is_punct(":"))
            && next(2).is_some_and(|a| a.is_punct(":"))
            && next(3).is_some_and(|a| {
                a.kind == TokKind::Ident && D3_THREAD_FNS.contains(&a.text.as_str())
            })
        {
            let f = next(3).map(|a| a.text.clone()).unwrap_or_default();
            push(
                "D3",
                t.line,
                format!(
                    "`thread::{f}` creates threads in simulation code; run sweep cells through fsoi_sim::par::sweep so thread count stays unobservable"
                ),
            );
        }
        // D2: wall-clock / OS-entropy identifiers.
        if d2_ident_scope && t.kind == TokKind::Ident {
            if let Some((_, why)) = D2_BANNED_IDENTS.iter().find(|(id, _)| *id == t.text) {
                push("D2", t.line, format!("`{}`: {}", t.text, why));
            }
        }
        // D2: environment reads — `env :: <read>` with literal-knob check.
        if d2_scope
            && t.is_ident("env")
            && next(1).is_some_and(|a| a.is_punct(":"))
            && next(2).is_some_and(|a| a.is_punct(":"))
        {
            if let Some(f) = next(3) {
                if f.kind == TokKind::Ident && D2_ENV_READS.contains(&f.text.as_str()) {
                    let is_var_read = f.text == "var" || f.text == "var_os";
                    let knob = next(4)
                        .filter(|p| p.is_punct("("))
                        .and_then(|_| next(5))
                        .and_then(|s| s.plain_str_content());
                    let documented =
                        is_var_read && matches!(knob, Some(k) if ALLOWED_ENV_KNOBS.contains(&k));
                    if !documented {
                        let what = match (is_var_read, knob) {
                            (true, Some(k)) => {
                                format!("env::{}(\"{}\") reads an undocumented knob (documented: {:?})", f.text, k, ALLOWED_ENV_KNOBS)
                            }
                            (true, None) => format!(
                                "env::{} with a non-literal argument cannot be audited against the documented FSOI_* knob list",
                                f.text
                            ),
                            (false, _) => {
                                format!("env::{} reads process/OS state in simulation code", f.text)
                            }
                        };
                        push("D2", f.line, what);
                    }
                }
            }
        }
        // T1: eager trace emission.
        if sim_scope
            && t.is_ident("trace")
            && next(1).is_some_and(|a| a.is_punct(":"))
            && next(2).is_some_and(|a| a.is_punct(":"))
            && next(3).is_some_and(|a| a.is_ident("emit"))
            && next(4).is_some_and(|a| a.is_punct("("))
        {
            push(
                "T1",
                t.line,
                "eager `trace::emit` constructs the event even when tracing is off; use `trace::emit_with` with a closure".to_string(),
            );
        }
        // P1: panicking calls in library code.
        if p1_scope {
            if t.is_punct(".")
                && next(1).is_some_and(|a| {
                    (a.is_ident("unwrap") || a.is_ident("expect")) && a.line == t.line
                    // a float like `x.` never precedes these
                })
                && next(2).is_some_and(|a| a.is_punct("("))
            {
                let name = next(1).map(|a| a.text.clone()).unwrap_or_default();
                push(
                    "P1",
                    next(1).map(|a| a.line).unwrap_or(t.line),
                    format!("`.{name}()` can panic in library code; return an error, or justify with `// lint: allow(P1) <reason>`"),
                );
            }
            if t.is_ident("panic") && next(1).is_some_and(|a| a.is_punct("!")) {
                push(
                    "P1",
                    t.line,
                    "`panic!` in library code; return an error, or justify with `// lint: allow(P1) <reason>`".to_string(),
                );
            }
        }
    }
    // D4b: guard-lifetime scan over the same test-filtered token stream.
    if sim_scope {
        d4b_scan(&code, |line, msg| push("D4b", line, msg));
    }
    // A2: a well-formed allow that suppressed nothing is itself a
    // violation (A2 is deliberately not allow-suppressible). Allows
    // inside `#[cfg(test)]` items are exempt: their sites never reach
    // the rule checks, so they can never register as used.
    for (ai, a) in allows.iter().enumerate() {
        if suppressed.iter().any(|s| s.contains(&a.tok)) {
            continue;
        }
        for (ri, r) in a.rules.iter().enumerate() {
            if !used[ai][ri] {
                out.violations.push(Violation {
                    path: rel.to_string(),
                    line: a.lines.0,
                    rule: "A2",
                    msg: format!(
                        "stale allow: nothing on the covered lines violates {r}; remove the annotation (or fix its rule name)"
                    ),
                });
            }
        }
    }
    out.violations.sort();
    out
}

/// The D4b scan: tracks lock-guard lifetimes at token level and flags
/// any call into a blocking/stealing/parking function made while a
/// guard is live.
///
/// A guard is born by an exact-ident `lock(…)` call (free or method),
/// optionally passed through the [`D4B_GUARD_ADAPTERS`] chain. What
/// happens next classifies it:
///
/// * `let NAME = …lock()…;` — a **binding**, live until its enclosing
///   block closes or an explicit `drop(NAME)`;
/// * `…lock()….method(…)` continuing mid-expression — a **statement
///   temporary**, live until the `;` ending its full statement (inner
///   `;`s at deeper brace depth do not end it);
/// * `…lock()…` directly before `}` — returned out of the block, out
///   of this scan's sight (the caller's file answers for it);
/// * a bare `…lock()…;` statement — dead at its own `;`.
///
/// `fn lock(`/`fn wait(`-style declarations are skipped (preceding
/// `fn` token). Deliberately syntactic: guards threaded through
/// differently named helpers or `?` are not tracked — the `model`
/// feature's schedule exploration is the dynamic backstop.
fn d4b_scan(code: &[(usize, &Tok)], mut push: impl FnMut(u32, String)) {
    enum Guard {
        Binding {
            name: String,
            depth: usize,
            line: u32,
        },
        Temp {
            depth: usize,
            line: u32,
        },
    }
    let tok = |k: usize| code.get(k).map(|&(_, t)| t);
    // Index of the bracket closing the one at `open`.
    let close_of = |open: usize| -> usize {
        let mut d = 0usize;
        let mut k = open;
        while let Some(t) = tok(k) {
            if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
                d += 1;
            } else if t.is_punct(")") || t.is_punct("]") || t.is_punct("}") {
                d -= 1;
                if d == 0 {
                    return k;
                }
            }
            k += 1;
        }
        code.len()
    };
    let mut guards: Vec<Guard> = Vec::new();
    let mut depth = 0usize;
    let mut pending_let: Option<String> = None;
    for k in 0..code.len() {
        let t = code[k].1;
        if t.is_punct("{") {
            depth += 1;
        } else if t.is_punct("}") {
            depth = depth.saturating_sub(1);
            // Everything born inside the closed block is gone.
            guards.retain(|g| match g {
                Guard::Binding { depth: d, .. } | Guard::Temp { depth: d, .. } => *d <= depth,
            });
        } else if t.is_punct(";") {
            // A statement boundary at (or below) a temporary's depth
            // ends its full statement.
            guards.retain(|g| !matches!(g, Guard::Temp { depth: d, .. } if depth <= *d));
            pending_let = None;
        } else if t.is_ident("let") {
            let mut j = k + 1;
            if tok(j).is_some_and(|n| n.is_ident("mut")) {
                j += 1;
            }
            pending_let = tok(j)
                .filter(|n| n.kind == TokKind::Ident)
                .map(|n| n.text.clone());
        } else if t.is_ident("drop")
            && tok(k + 1).is_some_and(|n| n.is_punct("("))
            && tok(k + 3).is_some_and(|n| n.is_punct(")"))
        {
            if let Some(victim) = tok(k + 2).filter(|n| n.kind == TokKind::Ident) {
                guards
                    .retain(|g| !matches!(g, Guard::Binding { name, .. } if *name == victim.text));
            }
        } else if t.kind == TokKind::Ident
            && D4B_BLOCKING_FNS.contains(&t.text.as_str())
            && tok(k + 1).is_some_and(|n| n.is_punct("("))
            && !(k > 0 && code[k - 1].1.is_ident("fn"))
        {
            if let Some(g) = guards.first() {
                let held = match g {
                    Guard::Binding { name, line, .. } => format!("guard `{name}` (line {line})"),
                    Guard::Temp { line, .. } => format!("temporary guard (line {line})"),
                };
                push(
                    t.line,
                    format!(
                        "`{}(…)` can block while lock {held} is still live; drop the guard before blocking (the PR 6 steal-deadlock class)",
                        t.text
                    ),
                );
            }
            if t.text == "lock" {
                let mut end = close_of(k + 1);
                while tok(end + 1).is_some_and(|n| n.is_punct("."))
                    && tok(end + 2).is_some_and(|n| {
                        n.kind == TokKind::Ident && D4B_GUARD_ADAPTERS.contains(&n.text.as_str())
                    })
                    && tok(end + 3).is_some_and(|n| n.is_punct("("))
                {
                    end = close_of(end + 3);
                }
                match tok(end + 1) {
                    Some(n) if n.is_punct(";") => {
                        if let Some(name) = pending_let.take() {
                            guards.push(Guard::Binding {
                                name,
                                depth,
                                line: t.line,
                            });
                        }
                    }
                    // Returned out of the block (or EOF): untracked.
                    Some(n) if n.is_punct("}") => {}
                    None => {}
                    // Consumed mid-expression: a statement temporary.
                    Some(_) => guards.push(Guard::Temp {
                        depth,
                        line: t.line,
                    }),
                }
            }
        }
    }
}

/// Token-index spans of `#[cfg(test)]` / `#[test]` items (the attribute
/// through the end of the item's `{…}` block or terminating `;`).
fn cfg_test_spans(toks: &[Tok]) -> Vec<std::ops::Range<usize>> {
    let mut spans = Vec::new();
    let code: Vec<usize> = (0..toks.len())
        .filter(|&i| toks[i].kind != TokKind::Comment)
        .collect();
    let at = |ci: usize| -> Option<&Tok> { code.get(ci).map(|&i| &toks[i]) };
    let mut ci = 0usize;
    while ci < code.len() {
        if !(at(ci).is_some_and(|t| t.is_punct("#")) && at(ci + 1).is_some_and(|t| t.is_punct("[")))
        {
            ci += 1;
            continue;
        }
        // Find the attribute's closing `]` and whether it is test-flavoured.
        let mut depth = 0usize;
        let mut j = ci + 1;
        let mut attr_idents: Vec<&str> = Vec::new();
        while let Some(t) = at(j) {
            if t.is_punct("[") || t.is_punct("(") {
                depth += 1;
            } else if t.is_punct("]") || t.is_punct(")") {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else if t.kind == TokKind::Ident {
                attr_idents.push(t.text.as_str());
            }
            j += 1;
        }
        let attr_end = j; // index of `]`
                          // `#[test]`, `#[cfg(test)]`, `#[cfg(all(test, …))]` suppress the
                          // item; `#[cfg(not(test))]` and `#[cfg_attr(test, …)]` do not.
        let is_test_attr = match attr_idents.first() {
            Some(&"test") => true,
            Some(&"cfg") => attr_idents.contains(&"test") && !attr_idents.contains(&"not"),
            _ => false,
        };
        if !is_test_attr {
            ci = attr_end + 1;
            continue;
        }
        // Skip any further attributes, then consume the item.
        let mut k = attr_end + 1;
        while at(k).is_some_and(|t| t.is_punct("#")) && at(k + 1).is_some_and(|t| t.is_punct("[")) {
            let mut d = 0usize;
            let mut m = k + 1;
            while let Some(t) = at(m) {
                if t.is_punct("[") {
                    d += 1;
                } else if t.is_punct("]") {
                    d -= 1;
                    if d == 0 {
                        break;
                    }
                }
                m += 1;
            }
            k = m + 1;
        }
        // The item runs to its first `{…}` block at nesting depth 0 (fn,
        // mod, impl) or to a `;` (use, type, const) — whichever first.
        let mut d = 0usize;
        let mut end = k;
        while let Some(t) = at(end) {
            if d == 0 && t.is_punct(";") {
                break;
            }
            if t.is_punct("{") {
                d += 1;
            } else if t.is_punct("}") {
                d = d.saturating_sub(1);
                if d == 0 {
                    break;
                }
            }
            end += 1;
        }
        let start_tok = code[ci];
        let end_tok = code
            .get(end)
            .copied()
            .unwrap_or(toks.len().saturating_sub(1));
        spans.push(start_tok..end_tok + 1);
        ci = end + 1;
    }
    spans
}

/// Extracts `// lint: allow(...)` annotations from comment tokens, and
/// reports malformed ones as A1 violations.
fn collect_allows(toks: &[Tok], rel: &str) -> (Vec<Allow>, Vec<Violation>) {
    let mut allows = Vec::new();
    let mut bad = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Comment {
            continue;
        }
        let Some(pos) = t.text.find("lint:") else {
            continue;
        };
        let rest = t.text[pos + "lint:".len()..].trim_start();
        let Some(rest) = rest.strip_prefix("allow") else {
            bad.push(Violation {
                path: rel.to_string(),
                line: t.line,
                rule: "A1",
                msg: format!(
                    "unrecognized lint directive {:?}; only `lint: allow(RULE) reason` exists",
                    t.text.trim()
                ),
            });
            continue;
        };
        let rest = rest.trim_start();
        let Some((inside, reason)) = rest.strip_prefix('(').and_then(|r| r.split_once(')')) else {
            bad.push(Violation {
                path: rel.to_string(),
                line: t.line,
                rule: "A1",
                msg: "malformed allow: expected `lint: allow(RULE[,RULE]) reason`".to_string(),
            });
            continue;
        };
        let rules: Vec<String> = inside.split(',').map(|r| r.trim().to_string()).collect();
        let unknown: Vec<&String> = rules
            .iter()
            .filter(|r| !RULES.contains(&r.as_str()))
            .collect();
        if rules.is_empty() || !unknown.is_empty() {
            bad.push(Violation {
                path: rel.to_string(),
                line: t.line,
                rule: "A1",
                msg: format!("allow names unknown rule(s) {unknown:?}; known rules are {RULES:?}"),
            });
            continue;
        }
        let reason = reason.trim();
        if reason.is_empty() {
            bad.push(Violation {
                path: rel.to_string(),
                line: t.line,
                rule: "A1",
                msg: "allow without a reason; write `lint: allow(RULE) <why this site is sound>`"
                    .to_string(),
            });
            continue;
        }
        // Covered lines: the annotation's own line (trailing form) and
        // the next non-comment token's line (preceding-line form).
        let next_code_line = toks[i + 1..]
            .iter()
            .find(|n| n.kind != TokKind::Comment)
            .map(|n| n.line)
            .unwrap_or(t.line);
        allows.push(Allow {
            rules,
            reason: reason.to_string(),
            lines: (t.line, next_code_line),
            tok: i,
        });
    }
    (allows, bad)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_as(path: &str, src: &str) -> Vec<Violation> {
        lint_source(path, src).violations
    }

    #[test]
    fn d1_flags_hash_collections_in_sim_crates_only() {
        let src =
            "use std::collections::HashMap;\nfn f() { let s: HashSet<u8> = HashSet::new(); }\n";
        let v = lint_as("crates/core/src/network.rs", src);
        assert!(v.iter().filter(|v| v.rule == "D1").count() >= 3);
        assert!(
            lint_as("crates/lint/src/engine.rs", src).is_empty(),
            "tool crates are out of scope"
        );
        assert!(
            lint_as("crates/core/tests/props.rs", src).is_empty(),
            "test code is exempt"
        );
    }

    #[test]
    fn d2_flags_clocks_and_undocumented_env() {
        let src = "fn f() { let t = Instant::now(); let v = std::env::var(\"FSOI_SECRET\"); }\n";
        let v = lint_as("crates/sim/src/x.rs", src);
        assert!(v
            .iter()
            .any(|v| v.rule == "D2" && v.msg.contains("Instant")));
        assert!(v
            .iter()
            .any(|v| v.rule == "D2" && v.msg.contains("FSOI_SECRET")));
    }

    #[test]
    fn d2_accepts_documented_knobs() {
        let src = "fn f() { let v = std::env::var(\"FSOI_TRACE\"); }\n";
        assert!(lint_as("crates/sim/src/x.rs", src).is_empty());
    }

    #[test]
    fn d2_exempts_the_telemetry_module_from_the_ident_ban_only() {
        // The wall-clock plane may read the clock…
        let clock = "fn f() { let t = Instant::now(); let _ = t; }\n";
        assert!(
            lint_as("crates/sim/src/telemetry.rs", clock).is_empty(),
            "fsoi_sim::telemetry is the sanctioned home for wall-clock reads"
        );
        // …but any other sim file still may not…
        assert!(lint_as("crates/sim/src/x.rs", clock)
            .iter()
            .any(|v| v.rule == "D2"));
        // …and the env-read audit still applies inside telemetry.
        let env = "fn f() { let v = std::env::var(\"FSOI_SECRET\"); let _ = v; }\n";
        assert!(
            lint_as("crates/sim/src/telemetry.rs", env)
                .iter()
                .any(|v| v.rule == "D2" && v.msg.contains("FSOI_SECRET")),
            "the ident exemption must not waive the documented-knob audit"
        );
        let knob = "fn f() { let v = std::env::var(\"FSOI_TELEMETRY\"); let _ = v; }\n";
        assert!(
            lint_as("crates/sim/src/telemetry.rs", knob).is_empty(),
            "FSOI_TELEMETRY is a documented knob"
        );
    }

    #[test]
    fn d3_flags_threads_and_locks_outside_par() {
        let src = "use std::sync::Mutex;\nfn f() { let h = std::thread::spawn(|| 1); let _ = h; }\nfn g() { std::thread::scope(|s| { let _ = s; }); }\n";
        let v = lint_as("crates/cmp/src/x.rs", src);
        assert!(v.iter().any(|v| v.rule == "D3" && v.msg.contains("Mutex")));
        assert!(v
            .iter()
            .any(|v| v.rule == "D3" && v.msg.contains("thread::spawn")));
        assert!(v
            .iter()
            .any(|v| v.rule == "D3" && v.msg.contains("thread::scope")));
    }

    #[test]
    fn d3_exempts_the_executor_and_non_sim_code() {
        let src = "use std::sync::Mutex;\nfn f() { std::thread::scope(|s| { let _ = s; }); }\n";
        assert!(
            lint_as("crates/sim/src/par.rs", src).is_empty(),
            "fsoi_sim::par is the sanctioned home for threads"
        );
        assert!(
            lint_as("crates/bench/src/runner.rs", src).is_empty(),
            "bench crates are out of D3 scope"
        );
        assert!(
            lint_as("crates/cmp/tests/props.rs", src).is_empty(),
            "test code is exempt"
        );
    }

    #[test]
    fn d3_honours_allow_annotations() {
        let src = "fn f() {\n    // lint: allow(D3) bounded init-only lock, never held across cells\n    let m = std::sync::Mutex::new(0);\n    let _ = m;\n}\n";
        assert!(lint_as("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn d3_leaves_available_parallelism_alone() {
        let src = "fn f() -> usize { std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1) }\n";
        let v = lint_as("crates/sim/src/x.rs", src);
        assert!(v.iter().all(|v| v.rule != "D3"));
    }

    #[test]
    fn d4b_flags_binding_guard_across_blocking_call() {
        let src =
            "fn f() {\n    let g = m.lock().expect(\"e\");\n    other.lock();\n    drop(g);\n}\n";
        let v = lint_as("crates/sim/src/x.rs", src);
        assert!(
            v.iter()
                .any(|v| v.rule == "D4b" && v.line == 3 && v.msg.contains("`g`")),
            "the second lock() runs under a live binding: {v:?}"
        );
    }

    #[test]
    fn d4b_flags_pr6_style_temporary_chain() {
        // The pre-PR-6 shape: the own-queue guard is a statement
        // temporary held through the steal's lock in one chained
        // expression.
        let src = "fn f() {\n    let job = own.lock().expect(\"e\").pop_front().or_else(|| victim.lock().expect(\"e\").pop_back());\n    let _ = job;\n}\n";
        let v = lint_as("crates/sim/src/x.rs", src);
        assert!(
            v.iter()
                .any(|v| v.rule == "D4b" && v.msg.contains("temporary guard")),
            "the chained steal must be flagged: {v:?}"
        );
    }

    #[test]
    fn d4b_accepts_block_scoped_guard_and_explicit_drop() {
        let src = "fn f() {\n    let own = {\n        let mut q = a.lock().expect(\"e\");\n        q.pop_front()\n    };\n    let _ = own;\n    let g = a.lock().expect(\"e\");\n    drop(g);\n    let s = b.lock().expect(\"e\");\n    let _ = s;\n}\n";
        let v = lint_as("crates/sim/src/x.rs", src);
        assert!(
            v.iter().all(|v| v.rule != "D4b"),
            "block scoping and drop() end guard lifetimes: {v:?}"
        );
    }

    #[test]
    fn d4b_statement_temporary_dies_at_its_semicolon() {
        let src = "fn f() {\n    q.lock().expect(\"e\").push_back(1);\n    h.join();\n}\n";
        let v = lint_as("crates/sim/src/x.rs", src);
        assert!(
            v.iter().all(|v| v.rule != "D4b"),
            "the temporary ends before the join: {v:?}"
        );
    }

    #[test]
    fn d4b_skips_declarations_and_returned_guards() {
        // `fn lock(` / `fn wait(` are declarations, not calls, and a
        // guard returned straight out of a helper is the caller's
        // problem, not a live guard in this file.
        let src = "fn lock(m: &M) -> G {\n    m.lock().unwrap_or_else(p)\n}\nfn wait(x: u32) -> u32 {\n    x\n}\n";
        let v = lint_as("crates/sim/src/x.rs", src);
        assert!(v.iter().all(|v| v.rule != "D4b"), "{v:?}");
    }

    #[test]
    fn a2_flags_stale_allows() {
        let src = "// lint: allow(D3) justification that outlived its code\nfn f() {\n    let x = 1;\n    let _ = x;\n}\n";
        let v = lint_as("crates/sim/src/x.rs", src);
        assert!(
            v.iter().any(|v| v.rule == "A2" && v.line == 1),
            "an allow suppressing nothing must fail: {v:?}"
        );
    }

    #[test]
    fn a2_accepts_used_allows() {
        let src =
            "fn f(x: Option<u8>) -> u8 { x.unwrap() } // lint: allow(P1) invariant: x is Some\n";
        assert!(lint_as("crates/sim/src/x.rs", src).is_empty());
    }

    #[test]
    fn a2_flags_only_the_stale_rule_of_a_multi_rule_allow() {
        let src = "// lint: allow(P1,D3) the unwrap is checked\nfn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
        let v = lint_as("crates/sim/src/x.rs", src);
        assert!(
            v.iter()
                .any(|v| v.rule == "A2" && v.msg.contains("violates D3")),
            "the unused D3 half is stale: {v:?}"
        );
        assert!(
            !v.iter().any(|v| v.msg.contains("violates P1")),
            "the used P1 half is fine: {v:?}"
        );
    }

    #[test]
    fn a2_exempts_allows_inside_test_items() {
        let src = "#[cfg(test)]\nmod tests {\n    // lint: allow(P1) test-only noise\n    fn t(x: Option<u8>) -> u8 { x.unwrap() }\n}\n";
        assert!(lint_as("crates/sim/src/x.rs", src).is_empty());
    }

    #[test]
    fn t1_flags_eager_emit_not_emit_with() {
        let eager = "fn f() { trace::emit(c, ev); }\n";
        let lazy = "fn f() { trace::emit_with(c, || ev()); }\n";
        assert_eq!(lint_as("crates/core/src/x.rs", eager).len(), 1);
        assert!(lint_as("crates/core/src/x.rs", lazy).is_empty());
    }

    #[test]
    fn p1_flags_panics_unless_allowed() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
        assert_eq!(lint_as("crates/optics/src/x.rs", src).len(), 1);
        let annotated =
            "fn f(x: Option<u8>) -> u8 {\n    x.unwrap() // lint: allow(P1) checked by caller\n}\n";
        assert!(lint_as("crates/optics/src/x.rs", annotated).is_empty());
        let preceding = "fn f(x: Option<u8>) -> u8 {\n    // lint: allow(P1) checked by caller\n    x.unwrap()\n}\n";
        assert!(lint_as("crates/optics/src/x.rs", preceding).is_empty());
    }

    #[test]
    fn a1_flags_malformed_allows() {
        let unknown = "// lint: allow(Z9) whatever\nfn f() {}\n";
        let v = lint_as("crates/sim/src/x.rs", unknown);
        assert!(v.iter().any(|v| v.rule == "A1"));
        let unreasoned = "fn f(x: Option<u8>) -> u8 { x.unwrap() } // lint: allow(P1)\n";
        let v = lint_as("crates/sim/src/x.rs", unreasoned);
        assert!(
            v.iter().any(|v| v.rule == "A1"),
            "missing reason is malformed"
        );
        assert!(
            v.iter().any(|v| v.rule == "P1"),
            "a malformed allow suppresses nothing"
        );
    }

    #[test]
    fn cfg_test_items_are_exempt() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    use std::collections::HashMap;\n    #[test]\n    fn t() { let _ = Instant::now(); panic!(); }\n}\n";
        assert!(lint_as("crates/cmp/src/x.rs", src).is_empty());
    }

    #[test]
    fn code_after_cfg_test_block_is_linted() {
        let src = "#[cfg(test)]\nmod tests { }\nfn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
        assert_eq!(lint_as("crates/cmp/src/x.rs", src).len(), 1);
    }

    #[test]
    fn comments_and_strings_never_trip_rules() {
        let src = "// HashMap in prose\n/* Instant::now */\nfn f() { let s = \"trace::emit( HashSet \"; let _ = s; }\n";
        assert!(lint_as("crates/sim/src/x.rs", src).is_empty());
    }

    #[test]
    fn allows_are_counted() {
        let src =
            "fn f(x: Option<u8>) -> u8 { x.unwrap() } // lint: allow(P1) invariant: x is Some\n";
        let f = lint_source("crates/sim/src/x.rs", src);
        assert!(f.violations.is_empty());
        assert_eq!(f.allows, vec![("P1".to_string(), 1)]);
    }

    #[test]
    fn expect_and_panic_macros_flagged() {
        let src = "fn f(x: Option<u8>) -> u8 { if x.is_none() { panic!(\"no\"); } x.expect(\"checked\") }\n";
        let v = lint_as("crates/ring/src/x.rs", src);
        assert_eq!(v.len(), 2);
        assert!(v.iter().all(|v| v.rule == "P1"));
    }
}
