//! Collision-resolution-delay analysis over the back-off parameters
//! (Figure 4) and the pathological all-to-one burst (§4.3.2).
//!
//! The paper derives the average resolution delay of a meta-packet
//! collision as a function of the starting window `W` and growth base `B`,
//! with regular "background" traffic continuing at rate `G`, and finds the
//! minimum at `W = 2.7, B = 1.1` (≈ 7.26 cycles; their simulation measured
//! 6.8–9.6). It also checks the pathological case — all 63 peers of a
//! 64-node system transmitting to one node at once — where `B = 1.1` needs
//! ≈ 26 retries (416 cycles), `B = 2` about 5 retries (199 cycles), and a
//! *fixed* window of 3 an astronomical 8.2 × 10¹⁰ retries.

use crate::backoff::BackoffPolicy;
use fsoi_sim::rng::Xoshiro256StarStar;

/// Monte-Carlo estimate of the mean collision-resolution delay (in cycles)
/// for a two-packet meta collision, with background traffic joining the
/// same receiver at probability `g` per slot.
///
/// `slot_cycles` is the meta slot length (2 in the default configuration)
/// and `confirmation_cycles` the detect delay (2). The returned delay is
/// measured from the colliding slot's start to the start of each original
/// packet's successful retransmission, averaged over both packets and all
/// trials — the same definition as the simulator's
/// `resolution_when_collided` statistic.
pub fn resolution_delay(
    policy: BackoffPolicy,
    g: f64,
    slot_cycles: u64,
    confirmation_cycles: u64,
    trials: u32,
    seed: u64,
) -> f64 {
    assert!((0.0..1.0).contains(&g), "background rate must be in [0, 1)");
    assert!(slot_cycles > 0);
    let mut rng = Xoshiro256StarStar::new(seed);
    // Detection happens this many slots after the colliding slot.
    let detect_slots = confirmation_cycles.div_ceil(slot_cycles);
    let mut total_delay_cycles = 0.0;
    let mut resolved_packets = 0u64;

    for _ in 0..trials {
        // Contenders: (next transmission slot, retry count, is_original).
        let mut contenders: Vec<(u64, u32, bool)> = Vec::new();
        for _ in 0..2 {
            let d = policy.draw_delay_slots(1, &mut rng);
            contenders.push((detect_slots + d, 1, true));
        }
        let mut originals_left = 2;
        let mut slot = 1u64;
        while originals_left > 0 && slot < 100_000 {
            // Background arrival occupying this receiver's slot.
            if rng.bernoulli(g) {
                contenders.push((slot, 0, false));
            }
            let here: Vec<usize> = contenders
                .iter()
                .enumerate()
                .filter(|(_, c)| c.0 == slot)
                .map(|(i, _)| i)
                .collect();
            match here.len() {
                0 => {}
                1 => {
                    let idx = here[0];
                    if contenders[idx].2 {
                        total_delay_cycles += (slot * slot_cycles) as f64;
                        resolved_packets += 1;
                        originals_left -= 1;
                    }
                    contenders.swap_remove(idx);
                }
                _ => {
                    for &idx in &here {
                        let retry = contenders[idx].1 + 1;
                        let d = policy.draw_delay_slots(retry, &mut rng);
                        contenders[idx] = (slot + detect_slots + d, retry, contenders[idx].2);
                    }
                }
            }
            slot += 1;
        }
    }
    if resolved_packets == 0 {
        f64::INFINITY
    } else {
        total_delay_cycles / resolved_packets as f64
    }
}

/// One point of the Figure 4 surface.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SurfacePoint {
    /// Starting window.
    pub w: f64,
    /// Back-off base.
    pub b: f64,
    /// Mean collision-resolution delay in cycles.
    pub delay: f64,
}

/// Sweeps the (W, B) grid of Figure 4.
pub fn resolution_delay_surface(
    w_values: &[f64],
    b_values: &[f64],
    g: f64,
    trials: u32,
    seed: u64,
) -> Vec<SurfacePoint> {
    let mut out = Vec::with_capacity(w_values.len() * b_values.len());
    for (i, &w) in w_values.iter().enumerate() {
        for (j, &b) in b_values.iter().enumerate() {
            let policy = BackoffPolicy::new(w, b);
            let delay = resolution_delay(
                policy,
                g,
                2,
                2,
                trials,
                seed.wrapping_add((i * b_values.len() + j) as u64),
            );
            out.push(SurfacePoint { w, b, delay });
        }
    }
    out
}

/// Analytic estimate for the pathological burst: `k` packets collide at
/// once and keep contending.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurstEstimate {
    /// Expected number of retries until a given packet first succeeds.
    pub retries: f64,
    /// Expected cycles until that first success.
    pub cycles: f64,
}

/// Expected retries/cycles for one packet of an all-to-one burst of
/// `colliders` packets under `policy` (independence approximation: on each
/// retry `r` a packet succeeds iff none of the other `k − 1` picked its
/// slot within the window `W_r`).
///
/// For a fixed window (`B = 1`) the closed form `E = (1 − 1/W)^-(k−1)` is
/// used — the paper's 8.2 × 10¹⁰ for `W = 3, k = 63`.
pub fn pathological_burst(
    colliders: usize,
    policy: BackoffPolicy,
    slot_cycles: u64,
    confirmation_cycles: u64,
) -> BurstEstimate {
    assert!(colliders >= 2, "a burst needs at least two packets");
    let k1 = (colliders - 1) as f64;
    // Mean cost of one retry at window `w`: the detect delay plus the mean
    // uniform wait inside the window.
    let per_retry_cycles = |w: f64| {
        confirmation_cycles as f64
            + BackoffPolicy::new(w.max(1.0), 1.0).mean_delay_slots(1) * slot_cycles as f64
    };
    if (policy.base() - 1.0).abs() < 1e-12 {
        let w = policy.initial_window();
        let p = if w <= 1.0 {
            0.0
        } else {
            (1.0 - 1.0 / w).powf(k1)
        };
        let retries = if p > 0.0 { 1.0 / p } else { f64::INFINITY };
        return BurstEstimate {
            retries,
            cycles: retries * per_retry_cycles(w),
        };
    }
    // Growing window: survival series.
    let mut survival = 1.0f64;
    let mut retries = 0.0f64;
    let mut cycles = 0.0f64;
    for r in 1..=400u32 {
        let w = policy.window_for_retry(r);
        let p = if w <= 1.0 {
            0.0
        } else {
            (1.0 - 1.0 / w).powf(k1)
        };
        retries += survival;
        cycles += survival * per_retry_cycles(w);
        survival *= 1.0 - p;
        if survival < 1e-9 {
            break;
        }
    }
    BurstEstimate { retries, cycles }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_optimum_delay_near_7_cycles() {
        // Paper: computed 7.26 cycles at W = 2.7, B = 1.1; simulation
        // averaged 7.4 (range 6.8–9.6).
        let d = resolution_delay(BackoffPolicy::PAPER_OPTIMUM, 0.01, 2, 2, 30_000, 1);
        assert!((5.5..9.5).contains(&d), "delay = {d}");
    }

    #[test]
    fn b_1_1_beats_binary_backoff_in_common_case() {
        // Figure 4's headline: B = 1.1 produces decidedly lower resolution
        // delay than B = 2 for the common (two-packet) case.
        let fast = resolution_delay(BackoffPolicy::PAPER_OPTIMUM, 0.01, 2, 2, 30_000, 2);
        let binary = resolution_delay(BackoffPolicy::BINARY, 0.01, 2, 2, 30_000, 2);
        assert!(fast < binary, "B=1.1: {fast} vs B=2: {binary}");
    }

    #[test]
    fn large_windows_cost_more() {
        let small = resolution_delay(BackoffPolicy::new(2.7, 1.1), 0.01, 2, 2, 20_000, 3);
        let large = resolution_delay(BackoffPolicy::new(16.0, 1.1), 0.01, 2, 2, 20_000, 3);
        assert!(large > small, "W=16: {large} vs W=2.7: {small}");
    }

    #[test]
    fn background_rate_has_modest_impact() {
        // Paper: "this background transmission rate (G = 1% and 10% shown)
        // has a negligible impact on the optimal values of W and B."
        let g1 = resolution_delay(BackoffPolicy::PAPER_OPTIMUM, 0.01, 2, 2, 30_000, 4);
        let g10 = resolution_delay(BackoffPolicy::PAPER_OPTIMUM, 0.10, 2, 2, 30_000, 4);
        assert!(g10 >= g1 * 0.9, "more background cannot speed resolution");
        assert!(g10 < g1 * 2.5, "impact stays modest: {g1} -> {g10}");
    }

    #[test]
    fn surface_sweep_produces_grid() {
        let pts = resolution_delay_surface(&[2.0, 3.0], &[1.1, 2.0], 0.01, 2_000, 5);
        assert_eq!(pts.len(), 4);
        assert!(pts.iter().all(|p| p.delay.is_finite() && p.delay > 0.0));
    }

    #[test]
    fn pathological_fixed_window_is_astronomical() {
        // Paper: W = 3 fixed, 63 colliders → 8.2 × 10¹⁰ retries.
        let est = pathological_burst(63, BackoffPolicy::fixed(3.0), 2, 2);
        assert!(
            (7e10..1e11).contains(&est.retries),
            "retries = {:.2e}",
            est.retries
        );
    }

    #[test]
    fn pathological_b_1_1_about_26_retries() {
        let est = pathological_burst(63, BackoffPolicy::PAPER_OPTIMUM, 2, 2);
        assert!(
            (20.0..34.0).contains(&est.retries),
            "retries = {} (paper ≈ 26)",
            est.retries
        );
        assert!(
            (250.0..600.0).contains(&est.cycles),
            "cycles = {} (paper ≈ 416)",
            est.cycles
        );
    }

    #[test]
    fn pathological_binary_about_5_retries() {
        let est = pathological_burst(63, BackoffPolicy::BINARY, 2, 2);
        assert!(
            (4.0..9.0).contains(&est.retries),
            "retries = {} (paper ≈ 5)",
            est.retries
        );
        assert!(est.cycles < pathological_burst(63, BackoffPolicy::PAPER_OPTIMUM, 2, 2).cycles);
    }

    #[test]
    fn tiny_burst_resolves_fast() {
        let est = pathological_burst(2, BackoffPolicy::PAPER_OPTIMUM, 2, 2);
        assert!(est.retries < 3.0, "retries = {}", est.retries);
    }

    #[test]
    fn window_of_one_never_resolves_fixed() {
        let est = pathological_burst(10, BackoffPolicy::fixed(1.0), 2, 2);
        assert!(est.retries.is_infinite());
    }

    #[test]
    #[should_panic(expected = "background rate")]
    fn bad_g_panics() {
        resolution_delay(BackoffPolicy::PAPER_OPTIMUM, 1.0, 2, 2, 10, 0);
    }
}
