//! Thermal model of the 3-D electro-optical stack (§3.3).
//!
//! Adding a free-space layer on top of the die rules out a conventional
//! heat sink, so the paper routes heat out *sideways*: microchannel
//! liquid cooling between the stacked dies (ref \[33\]) or high-conductivity
//! lateral spreaders (diamond/CNT/graphene, ref \[35\]), with fluidic pipes
//! leaving the package at the edges.
//!
//! This module provides first-order answers to the questions the
//! architecture depends on:
//!
//! * can a microchannel loop carry the ~120–160 W the CMP dissipates?
//! * what junction temperature does the stack settle at?
//! * how much does that temperature erode the VCSELs (whose threshold
//!   current rises away from their design temperature), and does the
//!   Table 1 link budget still close?

use crate::units::Power;
use crate::OpticsError;

/// Specific heat of water, J/(kg·K).
const WATER_CP: f64 = 4186.0;
/// Density of water, kg/m³.
const WATER_RHO: f64 = 997.0;

/// A microchannel liquid-cooling loop (paper ref \[33\], Tuckerman–Pease
/// class).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MicrochannelLoop {
    /// Coolant volumetric flow, m³/s.
    pub flow_m3_per_s: f64,
    /// Coolant inlet temperature, °C.
    pub inlet_c: f64,
    /// Maximum allowed coolant outlet temperature, °C.
    pub max_outlet_c: f64,
    /// Convective thermal resistance from junction to coolant, K/W
    /// (chip-wide effective value).
    pub junction_to_coolant_k_per_w: f64,
}

impl MicrochannelLoop {
    /// A loop sized for the paper's CMP: 10 mL/s of 25 °C water, 60 °C
    /// outlet ceiling, 0.15 K/W junction-to-coolant (Tuckerman–Pease
    /// demonstrated 0.09 K/W·cm²-class sinks).
    pub fn paper_default() -> Self {
        MicrochannelLoop {
            flow_m3_per_s: 10e-6,
            inlet_c: 25.0,
            max_outlet_c: 60.0,
            junction_to_coolant_k_per_w: 0.15,
        }
    }

    /// Heat the loop can carry before the outlet exceeds its ceiling:
    /// `Q = ṁ c_p ΔT`.
    pub fn cooling_capacity(&self) -> Power {
        let mdot = self.flow_m3_per_s * WATER_RHO;
        Power::from_watts(mdot * WATER_CP * (self.max_outlet_c - self.inlet_c))
    }

    /// Steady-state junction temperature at the given dissipation, °C.
    /// Coolant bulk temperature is taken mid-channel.
    pub fn junction_temperature_c(&self, dissipation: Power) -> f64 {
        let q = dissipation.as_watts();
        let mdot = self.flow_m3_per_s * WATER_RHO;
        let coolant_rise = q / (mdot * WATER_CP);
        self.inlet_c + coolant_rise / 2.0 + q * self.junction_to_coolant_k_per_w
    }

    /// Checks the loop against a chip power.
    ///
    /// # Errors
    ///
    /// Returns [`OpticsError::NonPositive`] (on the remaining margin) when
    /// the dissipation exceeds the loop's capacity.
    pub fn check(&self, dissipation: Power) -> Result<f64, OpticsError> {
        let margin = self.cooling_capacity().as_watts() - dissipation.as_watts();
        if margin <= 0.0 {
            return Err(OpticsError::NonPositive {
                what: "cooling margin",
                value: margin,
            });
        }
        Ok(margin)
    }
}

/// Temperature sensitivity of a VCSEL's threshold current: the classic
/// empirical parabola `I_th(T) = I_th0 · (1 + k (T − T0)²)` around the
/// design temperature `T0`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VcselThermalModel {
    /// Design (minimum-threshold) temperature, °C.
    pub design_c: f64,
    /// Parabolic coefficient, 1/K².
    pub k_per_k2: f64,
}

impl VcselThermalModel {
    /// A 980 nm device tuned for a liquid-cooled 55 °C junction; threshold
    /// grows ~20 % by ±40 K off design.
    pub fn paper_default() -> Self {
        VcselThermalModel {
            design_c: 55.0,
            k_per_k2: 1.25e-4,
        }
    }

    /// The threshold multiplier at junction temperature `t_c`.
    pub fn threshold_multiplier(&self, t_c: f64) -> f64 {
        let d = t_c - self.design_c;
        1.0 + self.k_per_k2 * d * d
    }

    /// Effective optical output multiplier at fixed bias: with threshold
    /// risen by `m`, the current overdrive `(I_b − I_th)` shrinks
    /// accordingly. `overdrive_ratio` = I_b / I_th0 at design temperature.
    pub fn output_multiplier(&self, t_c: f64, overdrive_ratio: f64) -> f64 {
        assert!(overdrive_ratio > 1.0, "bias must exceed threshold");
        let m = self.threshold_multiplier(t_c);
        ((overdrive_ratio - m) / (overdrive_ratio - 1.0)).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::OpticalLink;

    #[test]
    fn loop_carries_the_cmp() {
        // The FSOI 16-node system averages ~121 W; the mesh baseline
        // ~156 W. The default loop must carry both with margin.
        let cool = MicrochannelLoop::paper_default();
        let cap = cool.cooling_capacity().as_watts();
        assert!(cap > 156.0, "capacity = {cap} W");
        assert!(cool.check(Power::from_watts(121.0)).is_ok());
        assert!(cool.check(Power::from_watts(156.0)).is_ok());
        assert!(cool.check(Power::from_watts(2_000.0)).is_err());
    }

    #[test]
    fn junction_temperature_reasonable() {
        let cool = MicrochannelLoop::paper_default();
        let t_fsoi = cool.junction_temperature_c(Power::from_watts(121.0));
        let t_mesh = cool.junction_temperature_c(Power::from_watts(156.0));
        assert!(t_fsoi < t_mesh, "less power, cooler chip");
        assert!(
            (40.0..70.0).contains(&t_fsoi),
            "liquid-cooled junction ≈ 45–65 °C, got {t_fsoi}"
        );
        // Zero power: inlet temperature.
        let idle = cool.junction_temperature_c(Power::from_watts(0.0));
        assert!((idle - 25.0).abs() < 1e-9);
    }

    #[test]
    fn threshold_parabola() {
        let m = VcselThermalModel::paper_default();
        assert!((m.threshold_multiplier(55.0) - 1.0).abs() < 1e-12);
        let hot = m.threshold_multiplier(95.0);
        let cold = m.threshold_multiplier(15.0);
        assert!((hot - 1.2).abs() < 0.01, "±40 K ⇒ ~1.2×, got {hot}");
        assert!((hot - cold).abs() < 1e-12, "parabola is symmetric");
    }

    #[test]
    fn output_shrinks_with_heat() {
        let m = VcselThermalModel::paper_default();
        // Paper bias: 0.48 mA vs 0.14 mA threshold ⇒ overdrive 3.43.
        let od = 0.48 / 0.14;
        assert!((m.output_multiplier(55.0, od) - 1.0).abs() < 1e-12);
        let at_95 = m.output_multiplier(95.0, od);
        assert!((0.85..1.0).contains(&at_95), "hot output = {at_95}");
        // Extreme heat clamps at zero rather than going negative.
        assert_eq!(m.output_multiplier(500.0, 1.05), 0.0);
    }

    #[test]
    fn link_still_closes_at_liquid_cooled_temperature() {
        // End-to-end: at the junction temperature the microchannel loop
        // reaches under FSOI load, the VCSEL output droop still leaves the
        // link budget closing at the paper's *relaxed* BER target (1e-5) —
        // the engineering margin §4.3.1 banks on.
        let cool = MicrochannelLoop::paper_default();
        let t = cool.junction_temperature_c(Power::from_watts(121.0));
        let droop = VcselThermalModel::paper_default().output_multiplier(t, 0.48 / 0.14);
        let budget = OpticalLink::paper_default().budget();
        // Q scales with the eye, i.e. with the optical amplitude.
        let hot_q = budget.q_factor * droop;
        let needed = crate::noise::ber_to_q(1e-5);
        assert!(
            hot_q > needed,
            "hot Q = {hot_q:.2} must clear the relaxed target {needed:.2}"
        );
    }
}
