//! Clean-fixture stand-in for `fsoi_sim::par`: `crates/sim/src/par.rs`
//! is the one simulation-library path exempt from rule D3, so threads
//! and locks here must not fire. Never compiled — only lexed.

use std::collections::VecDeque;
use std::sync::Mutex;

pub fn sweep_exempt() -> u64 {
    let queue: Mutex<VecDeque<u64>> = Mutex::new(VecDeque::new());
    std::thread::scope(|s| {
        let h = s.spawn(|| queue.lock().map(|q| q.len() as u64).unwrap_or(0));
        h.join().unwrap_or(0)
    })
}
