//! The full cycle-driven mesh: routers, links, injection and ejection.

use crate::config::MeshConfig;
use crate::packet::{flits_of, Flit, MeshPacket};
use crate::router::Router;
use crate::routing::{coords, node_at, Port};
use fsoi_sim::event::MonotoneQueue;
use fsoi_sim::queue::BoundedQueue;
use fsoi_sim::stats::Summary;
use fsoi_sim::Cycle;
use std::collections::VecDeque;

/// A delivered packet with its measured latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MeshDelivered {
    /// The packet.
    pub packet: MeshPacket,
    /// Cycle the tail flit was ejected.
    pub delivered_at: Cycle,
}

impl MeshDelivered {
    /// End-to-end latency in cycles.
    pub fn latency(&self) -> u64 {
        self.delivered_at - self.packet.enqueued_at
    }
}

/// Aggregate mesh statistics.
#[derive(Debug, Default)]
pub struct MeshStats {
    /// Packets accepted.
    pub injected: u64,
    /// Packets rejected (injection queue full).
    pub rejected: u64,
    /// Packets delivered.
    pub delivered: u64,
    /// End-to-end latency.
    pub latency: Summary,
    /// Latency of meta (1-flit) packets.
    pub meta_latency: Summary,
    /// Latency of data packets.
    pub data_latency: Summary,
    /// Total buffer writes across routers (power model input).
    pub buffer_writes: u64,
    /// Total buffer reads.
    pub buffer_reads: u64,
    /// Total crossbar traversals.
    pub crossbar_traversals: u64,
    /// Total VC allocations.
    pub allocations: u64,
    /// Total link (hop) traversals.
    pub link_traversals: u64,
}

/// In-progress injection of one packet's flits at a node.
#[derive(Debug)]
struct InjectionState {
    flits: VecDeque<Flit>,
    vc: usize,
}

/// The mesh network.
#[derive(Debug)]
pub struct MeshNetwork {
    cfg: MeshConfig,
    now: Cycle,
    routers: Vec<Router>,
    /// Per-node packet injection queues.
    inject_q: Vec<BoundedQueue<MeshPacket>>,
    /// Packets across all injection queues (O(1) gate for `inject_flits`).
    queued: usize,
    /// Per-node current packet being flit-injected.
    injecting: Vec<Option<InjectionState>>,
    /// Nodes with an in-progress flit injection.
    streaming: usize,
    /// Flits in flight on links: (destination router, in-port, vc, flit).
    /// Every push is due `link_cycles` after `now`, so arrival order is
    /// push order — the FIFO queue is exactly the event-heap order.
    links: MonotoneQueue<(usize, usize, usize, Flit)>,
    /// Scratch buffer for per-router departures, reused across cycles.
    departures: Vec<crate::router::Departure>,
    /// Partial packets being reassembled at ejection (tail ⇒ delivered).
    delivered: Vec<MeshDelivered>,
    stats: MeshStats,
    next_id: u64,
}

impl MeshNetwork {
    /// Creates a mesh.
    pub fn new(cfg: MeshConfig) -> Self {
        let n = cfg.node_count();
        MeshNetwork {
            routers: (0..n).map(|i| Router::new(&cfg, i)).collect(),
            inject_q: (0..n)
                .map(|_| BoundedQueue::new(cfg.injection_queue))
                .collect(),
            queued: 0,
            injecting: (0..n).map(|_| None).collect(),
            streaming: 0,
            links: MonotoneQueue::new(),
            departures: Vec::new(),
            delivered: Vec::new(),
            stats: MeshStats::default(),
            next_id: 0,
            now: Cycle::ZERO,
            cfg,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &MeshConfig {
        &self.cfg
    }

    /// Current simulation time.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Statistics so far.
    pub fn stats(&self) -> &MeshStats {
        &self.stats
    }

    /// Injects a packet.
    ///
    /// # Errors
    ///
    /// Returns `Err(packet)` when the node's injection queue is full.
    ///
    /// # Panics
    ///
    /// Panics if `src == dst` or out of range.
    pub fn inject(&mut self, mut packet: MeshPacket) -> Result<u64, MeshPacket> {
        assert_ne!(packet.src, packet.dst, "no self-injection");
        assert!(packet.src < self.routers.len() && packet.dst < self.routers.len());
        packet.id = self.next_id;
        packet.enqueued_at = self.now;
        match self.inject_q[packet.src].push(packet) {
            Ok(()) => {
                self.next_id += 1;
                self.stats.injected += 1;
                self.queued += 1;
                Ok(packet.id)
            }
            Err(p) => {
                self.stats.rejected += 1;
                Err(p)
            }
        }
    }

    /// Takes all deliveries since the last drain.
    pub fn drain_delivered(&mut self) -> Vec<MeshDelivered> {
        std::mem::take(&mut self.delivered)
    }

    /// Number of undrained deliveries.
    pub fn delivered_count(&self) -> usize {
        self.delivered.len()
    }

    /// True when nothing is queued or in flight.
    pub fn is_idle(&self) -> bool {
        debug_assert_eq!(self.queued == 0, self.inject_q.iter().all(|q| q.is_empty()));
        debug_assert_eq!(
            self.streaming == 0,
            self.injecting.iter().all(|i| i.is_none())
        );
        self.links.is_empty()
            && self.queued == 0
            && self.streaming == 0
            && self.routers.iter().all(|r| r.is_idle())
    }

    /// Advances one cycle.
    pub fn tick(&mut self) {
        self.land_link_flits();
        self.inject_flits();
        for r in &mut self.routers {
            r.allocate(self.now);
        }
        self.traverse_switches();
        self.now += 1;
    }

    /// Runs `cycles` ticks.
    pub fn run(&mut self, cycles: u64) {
        for _ in 0..cycles {
            self.tick();
        }
    }

    fn land_link_flits(&mut self) {
        while let Some((_, (router, port, vc, flit))) = self.links.pop_due(self.now) {
            self.routers[router].receive_flit(port, vc, flit, self.now);
        }
    }

    fn inject_flits(&mut self) {
        if self.queued == 0 && self.streaming == 0 {
            return; // no node has anything to inject
        }
        let local = Port::Local.index();
        for node in 0..self.routers.len() {
            if self.injecting[node].is_none() {
                if let Some(&pkt) = self.inject_q[node].front() {
                    if let Some(vc) = self.routers[node].free_local_vc() {
                        self.inject_q[node].pop();
                        self.queued -= 1;
                        self.injecting[node] = Some(InjectionState {
                            flits: flits_of(pkt).into(),
                            vc,
                        });
                        self.streaming += 1;
                    }
                }
            }
            if let Some(state) = &mut self.injecting[node] {
                if self.routers[node].buffer_free(local, state.vc) > 0 {
                    if let Some(flit) = state.flits.pop_front() {
                        self.routers[node].receive_flit(local, state.vc, flit, self.now);
                    }
                }
                if state.flits.is_empty() {
                    self.injecting[node] = None;
                    self.streaming -= 1;
                }
            }
        }
    }

    fn traverse_switches(&mut self) {
        let local = Port::Local.index();
        let width = self.cfg.width;
        let mut departures = std::mem::take(&mut self.departures);
        for node in 0..self.routers.len() {
            departures.clear();
            self.routers[node].switch_into(self.now, &mut departures);
            for &dep in &departures {
                // The consumed input-buffer slot frees a credit upstream
                // (injection from the local port is credit-free: the
                // injector checks buffer space directly).
                if dep.in_port != local {
                    let (x, y) = coords(node, width);
                    let upstream = match Port::ALL[dep.in_port] {
                        Port::East => node_at(x + 1, y, width),
                        Port::West => node_at(x - 1, y, width),
                        Port::South => node_at(x, y + 1, width),
                        Port::North => node_at(x, y - 1, width),
                        Port::Local => unreachable!(),
                    };
                    let up_out = Port::ALL[dep.in_port].opposite().index();
                    self.routers[upstream].credit_return(up_out, dep.in_vc);
                }
                if dep.out_port == local {
                    if dep.flit.kind.is_tail() {
                        let d = MeshDelivered {
                            packet: dep.flit.packet,
                            delivered_at: self.now,
                        };
                        self.stats.delivered += 1;
                        let lat = d.latency() as f64;
                        self.stats.latency.record(lat);
                        if d.packet.is_meta() {
                            self.stats.meta_latency.record(lat);
                        } else {
                            self.stats.data_latency.record(lat);
                        }
                        self.delivered.push(d);
                    }
                    continue;
                }
                // Forward over the link to the neighbour.
                let (x, y) = coords(node, width);
                let neighbour = match Port::ALL[dep.out_port] {
                    Port::East => node_at(x + 1, y, width),
                    Port::West => node_at(x - 1, y, width),
                    Port::South => node_at(x, y + 1, width),
                    Port::North => node_at(x, y - 1, width),
                    Port::Local => unreachable!(),
                };
                let in_port = Port::ALL[dep.out_port].opposite().index();
                self.stats.link_traversals += 1;
                self.links.push(
                    self.now + self.cfg.link_cycles,
                    (neighbour, in_port, dep.out_vc, dep.flit),
                );
            }
        }
        self.departures = departures;
        // Credit returns: a flit consumed from an input buffer frees a slot
        // upstream. We return credits for the flits that traversed switches
        // this cycle (handled above by reading router counters is racy, so
        // we do it inline via a second pass).
        self.collect_power_counters();
    }

    fn collect_power_counters(&mut self) {
        // Power counters are gathered incrementally at the end of the run;
        // nothing to do per cycle. (Kept as a hook for extensions.)
    }

    /// Gathers router event counters into the stats block (call after a
    /// run; cheap and idempotent).
    pub fn harvest_power_counters(&mut self) {
        let (mut w, mut r, mut x, mut a) = (0, 0, 0, 0);
        for router in &self.routers {
            w += router.buffer_writes;
            r += router.buffer_reads;
            x += router.crossbar_traversals;
            a += router.allocations;
        }
        self.stats.buffer_writes = w;
        self.stats.buffer_reads = r;
        self.stats.crossbar_traversals = x;
        self.stats.allocations = a;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::hop_distance;

    fn run_until_idle(net: &mut MeshNetwork, max: u64) -> Vec<MeshDelivered> {
        let mut out = Vec::new();
        for _ in 0..max {
            net.tick();
            out.extend(net.drain_delivered());
            if net.is_idle() {
                break;
            }
        }
        out
    }

    #[test]
    fn single_meta_packet_latency_scales_with_hops() {
        // One hop: inject, 2 routers × 4 cycles + 1 link + serialization.
        let mut net = MeshNetwork::new(MeshConfig::nodes(16));
        net.inject(MeshPacket::meta(0, 1, 7)).unwrap();
        let out = run_until_idle(&mut net, 100);
        assert_eq!(out.len(), 1);
        let lat1 = out[0].latency();
        // Diagonal: 6 hops → 7 routers.
        let mut net = MeshNetwork::new(MeshConfig::nodes(16));
        net.inject(MeshPacket::meta(0, 15, 7)).unwrap();
        let out = run_until_idle(&mut net, 200);
        let lat6 = out[0].latency();
        assert!(lat6 > lat1, "{lat6} > {lat1}");
        // Each extra hop costs router_cycles + link_cycles = 5.
        assert_eq!(
            lat6 - lat1,
            5 * (hop_distance(0, 15, 4) - hop_distance(0, 1, 4)) as u64
        );
    }

    #[test]
    fn data_packet_adds_serialization() {
        let mut net = MeshNetwork::new(MeshConfig::nodes(16));
        net.inject(MeshPacket::meta(0, 1, 0)).unwrap();
        let meta_lat = run_until_idle(&mut net, 100)[0].latency();
        let mut net = MeshNetwork::new(MeshConfig::nodes(16));
        net.inject(MeshPacket::data(0, 1, 0)).unwrap();
        let data_lat = run_until_idle(&mut net, 100)[0].latency();
        // Four extra body/tail flits stream at 1/cycle.
        assert_eq!(data_lat - meta_lat, 4);
    }

    #[test]
    fn all_to_one_delivers_everything() {
        let mut net = MeshNetwork::new(MeshConfig::nodes(16));
        for src in 1..16 {
            net.inject(MeshPacket::data(src, 0, src as u64)).unwrap();
        }
        let out = run_until_idle(&mut net, 2_000);
        assert_eq!(out.len(), 15);
        assert!(net.is_idle());
    }

    #[test]
    fn uniform_random_traffic_drains() {
        let mut net = MeshNetwork::new(MeshConfig::nodes(16));
        let mut rng = fsoi_sim::rng::Xoshiro256StarStar::new(5);
        let mut wanted = 0;
        for _ in 0..200 {
            let src = rng.next_below(16) as usize;
            let mut dst = rng.next_below(15) as usize;
            if dst >= src {
                dst += 1;
            }
            let pkt = if rng.bernoulli(0.5) {
                MeshPacket::meta(src, dst, 0)
            } else {
                MeshPacket::data(src, dst, 0)
            };
            if net.inject(pkt).is_ok() {
                wanted += 1;
            }
            net.tick();
        }
        let mut out = net.drain_delivered().len();
        for _ in 0..10_000 {
            net.tick();
            out += net.drain_delivered().len();
            if net.is_idle() {
                break;
            }
        }
        assert_eq!(
            out as u64 + net.stats().delivered - out as u64,
            net.stats().delivered
        );
        assert_eq!(net.stats().delivered, wanted);
        assert!(net.is_idle(), "network must drain");
    }

    #[test]
    fn aggressive_router_is_faster() {
        let mut slow = MeshNetwork::new(MeshConfig::nodes(16));
        slow.inject(MeshPacket::meta(0, 15, 0)).unwrap();
        let slow_lat = run_until_idle(&mut slow, 200)[0].latency();
        let mut fast = MeshNetwork::new(MeshConfig::nodes(16).with_router_cycles(1));
        fast.inject(MeshPacket::meta(0, 15, 0)).unwrap();
        let fast_lat = run_until_idle(&mut fast, 200)[0].latency();
        assert!(fast_lat < slow_lat, "{fast_lat} < {slow_lat}");
    }

    #[test]
    fn injection_queue_overflow_rejects() {
        let mut net = MeshNetwork::new(MeshConfig::nodes(16));
        let mut ok = 0;
        for i in 0..40 {
            if net.inject(MeshPacket::data(0, 15, i)).is_ok() {
                ok += 1;
            }
        }
        assert_eq!(ok, 16, "injection queue capacity");
        assert_eq!(net.stats().rejected, 24);
    }

    #[test]
    fn power_counters_harvested() {
        let mut net = MeshNetwork::new(MeshConfig::nodes(16));
        net.inject(MeshPacket::data(0, 15, 0)).unwrap();
        run_until_idle(&mut net, 200);
        net.harvest_power_counters();
        let s = net.stats();
        // 5 flits × 7 routers of buffer write/read and crossbar.
        assert_eq!(s.buffer_writes, 35);
        assert_eq!(s.buffer_reads, 35);
        assert_eq!(s.crossbar_traversals, 35);
        assert_eq!(s.link_traversals, 30);
        assert!(s.allocations >= 6);
    }

    #[test]
    fn stats_latency_classes() {
        let mut net = MeshNetwork::new(MeshConfig::nodes(16));
        net.inject(MeshPacket::meta(0, 3, 0)).unwrap();
        net.inject(MeshPacket::data(12, 15, 0)).unwrap();
        run_until_idle(&mut net, 300);
        assert_eq!(net.stats().meta_latency.count(), 1);
        assert_eq!(net.stats().data_latency.count(), 1);
        assert_eq!(net.stats().latency.count(), 2);
    }

    #[test]
    #[should_panic(expected = "no self-injection")]
    fn self_injection_panics() {
        let mut net = MeshNetwork::new(MeshConfig::nodes(16));
        let _ = net.inject(MeshPacket::meta(3, 3, 0));
    }
}
