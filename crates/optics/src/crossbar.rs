//! Worst-case-loss budget of an on-chip ring-based optical crossbar.
//!
//! *Optical Crossbars on Chip: a comparative study based on worst-case
//! losses* (Li, Le Beux, Nicolescu, Trajkovic, O'Connor — PAPERS.md,
//! arXiv 1512.07492) sizes crossbar laser power from the **worst-case
//! insertion loss** of the passive optical fabric: the longest
//! input-to-output path fixes the launch power every port must provision,
//! and that loss grows with the radix. This module reproduces that
//! methodology for a matrix crossbar of add-drop microring resonators and
//! feeds the result through the same receiver/noise machinery as the FSOI
//! link budget ([`crate::link`]), so the architectural simulators charge
//! crossbar energy from the same physical pipeline as FSOI, mesh and
//! Corona.
//!
//! The worst-case path from input `i` to output `j` of an `N × N` matrix
//! crossbar travels a full row then a full column of the ring matrix:
//!
//! * passes `2 (N − 1)` off-resonance rings (through loss each),
//! * crosses `2 (N − 1)` perpendicular waveguides (crossing loss each),
//! * is dropped by exactly one on-resonance ring (drop loss),
//! * propagates ≈ two chip edges of waveguide, plus a few bends.
//!
//! Every term is linear in the radix except propagation, which is fixed by
//! the die size — so the loss (in dB) climbs linearly with `N` and the
//! required laser power climbs *exponentially*. That blow-up is the
//! study's central observation and the reason the crossbar makes an
//! honest worst-case baseline for the 64/256-node design-space grids.
//!
//! ```
//! use fsoi_optics::crossbar::CrossbarLossModel;
//! let model = CrossbarLossModel::paper_default();
//! let small = model.worst_case_loss(16).db();
//! let large = model.worst_case_loss(256).db();
//! assert!(large > small + 30.0, "loss climbs steeply with radix");
//! let budget = model.budget(64, 1e-12);
//! assert!(budget.port_power_mw > 0.0);
//! ```

use crate::noise;
use crate::photodetector::Photodetector;
use crate::tia::Tia;
use crate::units::{Loss, Power};
use crate::OpticsError;

/// Bisection iterations for the receiver-sensitivity solve. 80 halvings
/// of a 12-decade bracket pin the answer far below f64 noise.
const SENSITIVITY_ITERATIONS: u32 = 80;

/// Loss coefficients and worst-case path shape of a matrix crossbar,
/// following the component values used by the PAPERS.md crossbar study.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrossbarLossModel {
    /// Loss per waveguide crossing, dB.
    pub crossing_db: f64,
    /// Loss per off-resonance ring passed in the through port, dB.
    pub ring_through_db: f64,
    /// Loss of the single on-resonance drop, dB.
    pub ring_drop_db: f64,
    /// Propagation loss of the silicon waveguide, dB/cm.
    pub propagation_db_per_cm: f64,
    /// Loss per 90° bend, dB.
    pub bend_db: f64,
    /// Number of bends on the worst-case path.
    pub bends: u32,
    /// Die edge, cm (the worst-case path spans about two edges).
    pub chip_edge_cm: f64,
    /// Laser wall-plug efficiency (optical out / electrical in).
    pub laser_efficiency: f64,
    /// Optical one/zero extinction ratio of the modulated carrier.
    pub extinction_ratio: f64,
    /// Per-wavelength data rate, Gbps.
    pub data_rate_gbps: f64,
}

/// The sized crossbar port budget at a given radix: worst-case loss,
/// receiver sensitivity, and the laser/receiver power every port must
/// provision to close the link on its longest path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrossbarBudget {
    /// Crossbar radix (ports).
    pub radix: usize,
    /// Worst-case insertion loss, dB.
    pub worst_case_loss_db: f64,
    /// Q-factor required for the target BER.
    pub required_q: f64,
    /// Receiver sensitivity: one-level optical power at the detector, dBm.
    pub received_one_dbm: f64,
    /// Launched one-level optical power sized for the worst-case path, mW.
    pub laser_optical_mw: f64,
    /// Electrical laser power behind that launch power, mW.
    pub laser_electrical_mw: f64,
    /// Receiver (TIA) power, mW.
    pub rx_power_mw: f64,
    /// Total per-port power (laser + receiver), mW.
    pub port_power_mw: f64,
    /// Energy per bit at the configured data rate, pJ.
    pub energy_per_bit_pj: f64,
    /// Per-wavelength data rate, Gbps.
    pub data_rate_gbps: f64,
}

impl CrossbarLossModel {
    /// Component losses in the range the crossbar study uses: 0.12 dB per
    /// crossing, 5 mdB per ring pass-by, 0.5 dB drop, 0.274 dB/cm
    /// propagation on a 2 cm die, 10 % wall-plug lasers at 10 Gbps per
    /// wavelength.
    pub fn paper_default() -> Self {
        CrossbarLossModel {
            crossing_db: 0.12,
            ring_through_db: 0.005,
            ring_drop_db: 0.5,
            propagation_db_per_cm: 0.274,
            bend_db: 0.005,
            bends: 4,
            chip_edge_cm: 2.0,
            laser_efficiency: 0.1,
            extinction_ratio: 10.0,
            data_rate_gbps: 10.0,
        }
    }

    /// Worst-case insertion loss of the `radix × radix` matrix.
    ///
    /// # Panics
    ///
    /// Panics if `radix < 2`.
    pub fn worst_case_loss(&self, radix: usize) -> Loss {
        assert!(radix >= 2, "a crossbar needs at least two ports");
        let passes = 2 * (radix - 1);
        let db = self.ring_drop_db
            + passes as f64 * (self.ring_through_db + self.crossing_db)
            + f64::from(self.bends) * self.bend_db
            + 2.0 * self.chip_edge_cm * self.propagation_db_per_cm;
        Loss::from_db(db)
    }

    /// Receiver sensitivity: the smallest one-level power at the detector
    /// whose Q-factor reaches `required_q`, found by bisection over the
    /// shot-noise-coupled Q expression (the same photodetector/TIA/noise
    /// chain as [`crate::link::OpticalLink::budget`]).
    fn sensitivity_mw(&self, required_q: f64) -> f64 {
        let pd = Photodetector::paper_default();
        let tia = Tia::paper_default();
        let bw = tia.bandwidth();
        let circuit = tia.input_noise_rms();
        let q_at = |one_mw: f64| {
            let p1 = Power::from_milliwatts(one_mw);
            let p0 = Power::from_milliwatts(one_mw / self.extinction_ratio);
            let i1 = pd.photocurrent(p1);
            let i0 = pd.photocurrent(p0);
            let sigma1 = noise::combine_rms(&[circuit, noise::shot_noise_rms(i1, bw)]);
            let sigma0 = noise::combine_rms(&[circuit, noise::shot_noise_rms(i0, bw)]);
            noise::q_factor(i1, i0, sigma1, sigma0)
        };
        // Q grows monotonically with received power: bisect.
        let (mut lo, mut hi) = (1e-9, 1e3);
        for _ in 0..SENSITIVITY_ITERATIONS {
            let mid = (lo + hi) / 2.0;
            if q_at(mid) < required_q {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        hi
    }

    /// Sizes the per-port budget for `radix` ports at `target_ber`.
    ///
    /// # Panics
    ///
    /// Panics if `radix < 2`.
    pub fn budget(&self, radix: usize, target_ber: f64) -> CrossbarBudget {
        let loss = self.worst_case_loss(radix);
        let required_q = noise::ber_to_q(target_ber);
        let received_one_mw = self.sensitivity_mw(required_q);
        // The launch power must survive the worst-case path; mean optical
        // power over random OOK data is (one + zero) / 2.
        let laser_optical_mw = received_one_mw / loss.transmittance();
        let mean_optical_mw = laser_optical_mw * (1.0 + 1.0 / self.extinction_ratio) / 2.0;
        let laser_electrical_mw = mean_optical_mw / self.laser_efficiency;
        let rx_power_mw = Tia::paper_default().power().to_milliwatts();
        let port_power_mw = laser_electrical_mw + rx_power_mw;
        CrossbarBudget {
            radix,
            worst_case_loss_db: loss.db(),
            required_q,
            received_one_dbm: Power::from_milliwatts(received_one_mw).to_dbm(),
            laser_optical_mw,
            laser_electrical_mw,
            rx_power_mw,
            port_power_mw,
            // mW / Gbps = pJ per bit.
            energy_per_bit_pj: port_power_mw / self.data_rate_gbps,
            data_rate_gbps: self.data_rate_gbps,
        }
    }

    /// [`CrossbarLossModel::budget`], failing when the sized launch power
    /// exceeds `max_laser_optical_mw` (lasers do not come arbitrarily
    /// large; the study caps its sweeps the same way).
    ///
    /// # Errors
    ///
    /// Returns [`OpticsError::LinkDoesNotClose`] with the achievable Q at
    /// the power cap when the worst-case path cannot be closed.
    pub fn validate(
        &self,
        radix: usize,
        target_ber: f64,
        max_laser_optical_mw: f64,
    ) -> Result<CrossbarBudget, OpticsError> {
        let budget = self.budget(radix, target_ber);
        if budget.laser_optical_mw > max_laser_optical_mw {
            // Q scales ∝ received power in the circuit-noise-limited
            // regime: report the Q achievable at the cap.
            let achievable =
                budget.required_q * max_laser_optical_mw / budget.laser_optical_mw.max(1e-300);
            return Err(OpticsError::LinkDoesNotClose {
                q_factor: achievable,
                required: budget.required_q,
            });
        }
        Ok(budget)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loss_grows_linearly_with_radix() {
        let m = CrossbarLossModel::paper_default();
        let l16 = m.worst_case_loss(16).db();
        let l64 = m.worst_case_loss(64).db();
        let l256 = m.worst_case_loss(256).db();
        assert!(l16 < l64 && l64 < l256);
        // Each extra port adds 2 (through + crossing) dB.
        let per_port = 2.0 * (0.005 + 0.12);
        assert!((l64 - l16 - 48.0 * per_port).abs() < 1e-9);
        assert!((l256 - l64 - 192.0 * per_port).abs() < 1e-9);
    }

    #[test]
    fn budget_power_explodes_with_radix() {
        let m = CrossbarLossModel::paper_default();
        let b64 = m.budget(64, 1e-12);
        let b256 = m.budget(256, 1e-12);
        assert!(b64.laser_optical_mw > 0.0);
        // +192 ports ≈ +48 dB of worst-case loss ⇒ ~4.8 decades of power.
        assert!(b256.laser_optical_mw > b64.laser_optical_mw * 1e4);
        assert!(b256.energy_per_bit_pj > b64.energy_per_bit_pj);
    }

    #[test]
    fn sensitivity_meets_the_required_q() {
        // The sized budget must actually close: replay the received power
        // through the noise chain and check Q ≥ required.
        let m = CrossbarLossModel::paper_default();
        let b = m.budget(64, 1e-12);
        let pd = Photodetector::paper_default();
        let tia = Tia::paper_default();
        let p1 = Power::from_dbm(b.received_one_dbm);
        let p0 = Power::from_milliwatts(p1.to_milliwatts() / m.extinction_ratio);
        let i1 = pd.photocurrent(p1);
        let i0 = pd.photocurrent(p0);
        let s1 = noise::combine_rms(&[
            tia.input_noise_rms(),
            noise::shot_noise_rms(i1, tia.bandwidth()),
        ]);
        let s0 = noise::combine_rms(&[
            tia.input_noise_rms(),
            noise::shot_noise_rms(i0, tia.bandwidth()),
        ]);
        let q = noise::q_factor(i1, i0, s1, s0);
        assert!(
            q >= b.required_q * 0.999,
            "q = {q}, required = {}",
            b.required_q
        );
    }

    #[test]
    fn validate_rejects_uncloseable_radix() {
        let m = CrossbarLossModel::paper_default();
        // A 20 mW laser closes a small crossbar but not a 256-port one.
        assert!(m.validate(16, 1e-12, 20.0).is_ok());
        let err = m.validate(256, 1e-12, 20.0);
        assert!(matches!(err, Err(OpticsError::LinkDoesNotClose { .. })));
        if let Err(OpticsError::LinkDoesNotClose { q_factor, required }) = err {
            assert!(q_factor < required);
        }
    }

    #[test]
    #[should_panic(expected = "at least two ports")]
    fn single_port_panics() {
        CrossbarLossModel::paper_default().worst_case_loss(1);
    }
}
