//! `fsoi-lint` — the repo's determinism & invariant static-analysis pass.
//!
//! The whole reproduction rests on one property: **same-seed runs are
//! byte-identical**. That property is easy to lose silently — a
//! `HashMap` iteration feeding a statistic, a stray `Instant::now`, an
//! undocumented environment knob — so this crate makes it a *checked*
//! invariant instead of a convention. It is a dependency-free,
//! hand-rolled lexer + token scanner (no syn, no rustc internals),
//! consistent with the workspace's offline rule, that enforces the named
//! lints documented in [`rules`] (D1, D2, T1, P1, A1).
//!
//! Run it the way the tier-1 gate does:
//!
//! ```text
//! cargo run -q --release -p fsoi-lint -- check
//! ```
//!
//! Exit code 0 means the tree satisfies every invariant; 1 means
//! violations were printed (table by default, `--format jsonl` for
//! machines); 2 means the invocation itself was malformed.
//!
//! Sites that deliberately break a rule carry an annotation the tool
//! parses, counts, and re-validates:
//!
//! ```text
//! let v = m.get(&k).unwrap(); // lint: allow(P1) key inserted two lines up
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod lexer;
pub mod report;
pub mod rules;

use report::Report;
use std::path::{Path, PathBuf};

/// Lints every `.rs` file under `<root>/crates/*/src` (library code; the
/// engine itself skips exempt paths and out-of-scope crates) plus the
/// crate test/bench/example trees so path classification is exercised.
///
/// # Errors
///
/// Returns an error string when `root` has no `crates/` directory or a
/// file vanishes mid-scan.
pub fn run_check(root: &Path) -> Result<Report, String> {
    let crates_dir = root.join("crates");
    if !crates_dir.is_dir() {
        return Err(format!("{} has no crates/ directory", root.display()));
    }
    let mut files = Vec::new();
    collect_rs_files(&crates_dir, &mut files)?;
    files.sort();
    let mut report = Report {
        files_scanned: files.len(),
        ..Report::default()
    };
    for f in &files {
        let rel = f
            .strip_prefix(root)
            .map_err(|e| e.to_string())?
            .to_string_lossy()
            .replace('\\', "/");
        let src = std::fs::read_to_string(f).map_err(|e| format!("{}: {e}", f.display()))?;
        report.absorb(rules::lint_source(&rel, &src));
    }
    report.finish();
    Ok(report)
}

/// Recursively collects `.rs` files, skipping `target/` and hidden dirs,
/// in sorted order for deterministic reports.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let rd = std::fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    let mut entries: Vec<PathBuf> = rd.filter_map(|e| e.ok().map(|e| e.path())).collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if name == "target" || name.starts_with('.') || name == "fixtures" {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_workspace_itself_is_clean() {
        // The gate invariant, asserted from the test suite too: the
        // committed tree has zero violations. CARGO_MANIFEST_DIR points
        // at crates/lint; the workspace root is two levels up.
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let report = run_check(&root).expect("scan must succeed");
        assert!(report.files_scanned > 50, "the scan saw the workspace");
        assert!(
            report.is_clean(),
            "workspace has lint violations:\n{}",
            report.to_table()
        );
    }
}
