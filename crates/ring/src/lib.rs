//! A Corona-style nanophotonic crossbar — the waveguided, token-arbitrated
//! alternative the paper compares against ("the system is 1.06 times
//! faster than a corona-style design in a 64-way system", §7.1).
//!
//! Corona (Vantrease et al., ISCA 2008 — the paper's ref \[61\]) builds an
//! optical crossbar from *multiple-writer, single-reader* (MWSR) buses:
//! each node owns a home channel — a WDM waveguide bundle looping the die
//! that only it reads — and any other node may write onto it after
//! acquiring the channel's circulating **optical token**. Arbitration is
//! therefore distributed like FSOI's, but *serialized per destination*:
//! only one writer can hold a channel at a time, and a would-be writer
//! waits for the token to come around.
//!
//! This model captures the three timing properties that matter for the
//! architectural comparison:
//!
//! * token acquisition costs half a ring circulation on average when the
//!   channel is idle, and a writer-to-writer token pass when it is not;
//! * a channel carries one packet at a time (no collisions — and no
//!   concurrent receivers either, unlike FSOI's 2-per-lane);
//! * propagation is speed-of-light around the waveguide loop.
//!
//! The model deliberately omits Corona's electrical details and gives the
//! channels generous WDM bandwidth; see `RingConfig`.
//!
//! The crate also hosts the second nanophotonic baseline of the
//! design-space grids: [`crossbar`], a passive ring-matrix crossbar whose
//! per-port laser power is sized from the worst-case insertion loss at
//! its radix (the PAPERS.md comparative study) — dedicated paths and no
//! token, but a power column that explodes with node count.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod config;
pub mod crossbar;
pub mod network;

pub use config::RingConfig;
pub use crossbar::{CrossbarConfig, CrossbarNetwork};
pub use network::RingNetwork;
