//! The `fsoi-lint` gate binary.
//!
//! ```text
//! fsoi-lint check [--format table|jsonl] [--root PATH]   # exit 1 on violations
//! fsoi-lint rules                                        # list the invariants
//! ```

use fsoi_lint::rules::{rule_summary, ALLOWED_ENV_KNOBS, RULES};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cmd = None;
    let mut format = "table".to_string();
    let mut root: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "check" | "rules" if cmd.is_none() => cmd = Some(a.clone()),
            "--format" => match it.next() {
                Some(f) if f == "table" || f == "jsonl" => format = f.clone(),
                _ => return usage("--format takes `table` or `jsonl`"),
            },
            "--root" => match it.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => return usage("--root takes a path"),
            },
            other => return usage(&format!("unknown argument {other:?}")),
        }
    }
    match cmd.as_deref() {
        Some("rules") => {
            for r in RULES {
                println!("{r}  {}", rule_summary(r));
            }
            println!("\ndocumented env knobs (D2 allowlist): {ALLOWED_ENV_KNOBS:?}");
            println!("escape hatch: `// lint: allow(RULE[,RULE]) <reason>` on or above the line");
            ExitCode::SUCCESS
        }
        Some("check") => {
            // Default root: the workspace this binary was built from.
            let root =
                root.unwrap_or_else(|| PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../.."));
            match fsoi_lint::run_check(&root) {
                Ok(report) => {
                    let rendered = if format == "jsonl" {
                        report.to_jsonl()
                    } else {
                        report.to_table()
                    };
                    print!("{rendered}");
                    if report.is_clean() {
                        ExitCode::SUCCESS
                    } else {
                        eprintln!(
                            "fsoi-lint: {} violation(s); see DESIGN.md \"Determinism policy\"",
                            report.violations.len()
                        );
                        ExitCode::FAILURE
                    }
                }
                Err(e) => {
                    eprintln!("fsoi-lint: {e}");
                    ExitCode::from(2)
                }
            }
        }
        _ => usage("expected a subcommand"),
    }
}

fn usage(why: &str) -> ExitCode {
    eprintln!("fsoi-lint: {why}");
    eprintln!("usage: fsoi-lint <check [--format table|jsonl] [--root PATH] | rules>");
    ExitCode::from(2)
}
