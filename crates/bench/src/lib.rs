//! Experiment harness regenerating every table and figure of the paper's
//! evaluation (see DESIGN.md's experiment index and EXPERIMENTS.md for the
//! measured results).
//!
//! The heavy lifting lives in [`runner`]; the `experiments` binary exposes
//! one subcommand per table/figure and prints rows shaped like the paper's
//! plots. The micro-benches under `benches/` (built only with the
//! non-default `criterion` feature, on the in-repo [`microbench`] shim)
//! reuse the same entry points.

#![warn(missing_docs)]

pub mod microbench;
pub mod runner;
pub mod sweepbench;

pub use runner::{run_app, sweep_apps, AppResult, CellSpec, SweepOptions};
