//! Chip-level energy accounting (§7.2, Figure 8).
//!
//! Beyond the interconnect (charged by the network adapters), the chip
//! burns switching power in cores and caches and temperature-dependent
//! leakage everywhere. We use Wattch-style aggregate rates per node,
//! calibrated so the 16-node mesh baseline lands near the paper's 156 W
//! average (121 W for the FSOI system): each core dissipates ~7 W active
//! and ~3 W stalled, with ~1.7 W of leakage per node.

use fsoi_sim::stats::MetricSet;

/// Per-node power rates at 3.3 GHz / 45 nm.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChipPowerModel {
    /// Core + L1 switching power while executing, watts.
    pub core_active_w: f64,
    /// Core power while stalled (clock + idle datapath), watts.
    pub core_stalled_w: f64,
    /// Leakage per node (core + caches + slice), watts.
    pub leakage_per_node_w: f64,
    /// Clock frequency, Hz.
    pub clock_hz: f64,
}

/// Energy totals for a run, joules.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ChipEnergy {
    /// Interconnect energy.
    pub network_j: f64,
    /// Core + cache switching energy.
    pub core_j: f64,
    /// Leakage energy.
    pub leakage_j: f64,
}

impl ChipEnergy {
    /// Total chip energy.
    pub fn total_j(&self) -> f64 {
        self.network_j + self.core_j + self.leakage_j
    }

    /// Mean power over `cycles` at `clock_hz`.
    pub fn average_power_w(&self, cycles: u64, clock_hz: f64) -> f64 {
        if cycles == 0 {
            0.0
        } else {
            self.total_j() / (cycles as f64 / clock_hz)
        }
    }

    /// Energy-delay product (J·s) over `cycles`.
    pub fn edp(&self, cycles: u64, clock_hz: f64) -> f64 {
        self.total_j() * cycles as f64 / clock_hz
    }

    /// As labelled metrics for reporting.
    pub fn metrics(&self) -> MetricSet {
        let mut m = MetricSet::new();
        m.set("energy.network_j", self.network_j);
        m.set("energy.core_j", self.core_j);
        m.set("energy.leakage_j", self.leakage_j);
        m.set("energy.total_j", self.total_j());
        m
    }
}

impl ChipPowerModel {
    /// Calibrated 45 nm defaults (see module docs).
    pub fn paper_default() -> Self {
        ChipPowerModel {
            core_active_w: 7.0,
            core_stalled_w: 3.0,
            leakage_per_node_w: 1.7,
            clock_hz: 3.3e9,
        }
    }

    /// Computes the chip energy of a run.
    ///
    /// `active_cycles`/`stalled_cycles` are summed over all cores;
    /// `cycles` is the wall-clock of the run; `network_j` comes from the
    /// interconnect adapter.
    pub fn energy(
        &self,
        nodes: usize,
        cycles: u64,
        active_cycles: u64,
        stalled_cycles: u64,
        network_j: f64,
    ) -> ChipEnergy {
        let s = 1.0 / self.clock_hz;
        ChipEnergy {
            network_j,
            core_j: active_cycles as f64 * s * self.core_active_w
                + stalled_cycles as f64 * s * self.core_stalled_w,
            leakage_j: nodes as f64 * self.leakage_per_node_w * cycles as f64 * s,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_power_magnitude() {
        // 16 nodes, all cores active the whole run: power should land in
        // the paper's 120–160 W band before network energy.
        let m = ChipPowerModel::paper_default();
        let cycles = 1_000_000u64;
        let e = m.energy(16, cycles, 16 * cycles, 0, 0.0);
        let p = e.average_power_w(cycles, m.clock_hz);
        assert!((110.0..160.0).contains(&p), "P = {p} W");
    }

    #[test]
    fn stalled_cores_burn_less() {
        let m = ChipPowerModel::paper_default();
        let busy = m.energy(16, 1000, 16_000, 0, 0.0);
        let stalled = m.energy(16, 1000, 0, 16_000, 0.0);
        assert!(stalled.core_j < busy.core_j);
        assert_eq!(stalled.leakage_j, busy.leakage_j);
    }

    #[test]
    fn faster_runs_save_leakage() {
        let m = ChipPowerModel::paper_default();
        let slow = m.energy(16, 2000, 16_000, 16_000, 0.0);
        let fast = m.energy(16, 1000, 16_000, 0, 0.0);
        assert!(fast.leakage_j < slow.leakage_j);
        assert!(fast.total_j() < slow.total_j());
    }

    #[test]
    fn edp_and_metrics() {
        let e = ChipEnergy {
            network_j: 1.0,
            core_j: 2.0,
            leakage_j: 3.0,
        };
        assert_eq!(e.total_j(), 6.0);
        assert!(e.edp(3_300_000, 3.3e9) > 0.0);
        let m = e.metrics();
        assert_eq!(m.get("energy.total_j"), 6.0);
        assert_eq!(m.get("energy.core_j"), 2.0);
        assert_eq!(ChipEnergy::default().average_power_w(0, 3.3e9), 0.0);
    }
}
