//! Clean-fixture stand-in for `fsoi_sim::telemetry`: the wall-clock
//! observability plane is the one simulation-library path exempt from
//! rule D2's clock/entropy ident ban, so `Instant` here must not fire.
//! The env-read discipline still applies — only documented knobs appear.
//! Never compiled — only lexed.

use std::time::Instant;

pub fn span_nanos() -> u64 {
    let start = Instant::now();
    let enabled = std::env::var("FSOI_TELEMETRY").is_ok();
    if enabled {
        start.elapsed().as_nanos() as u64
    } else {
        0
    }
}
