//! Content-addressed cell cache: `(config, app, max_cycles) → RunReport`.
//!
//! Sweeps re-run identical cells constantly — re-plotting a figure,
//! re-gating a benchmark, extending a seed study — and every such cell is
//! a pure function of its inputs: the simulator is deterministic by
//! construction (seeded RNGs, no wall clock, index-keyed reductions), so
//! `CmpSystem::new(cfg, app).run(max)` always produces the same
//! `RunReport` for the same `(cfg, app, max)`. That makes the tuple a
//! sound cache key, and the cache a pure memoization: a hit returns the
//! exact bytes a cold run would have produced (pinned by the
//! byte-identity tests in `fsoi-bench`).
//!
//! The key is content-addressed, not positional: the full `Debug`
//! rendering of the config and app (every field, including the seed)
//! plus `max_cycles` forms a *preimage* string, and its FNV-1a hash
//! names the cache file. The preimage is stored in the file and verified
//! on every load, so a hash collision or a stale/corrupt file degrades
//! to a miss — the cache can go slow, never wrong.
//!
//! Enabled via the documented `FSOI_CACHE` knob (the cache directory);
//! unset or empty disables caching entirely. All filesystem failures are
//! swallowed: a read-only or vanished directory costs performance, not
//! correctness.

use crate::configs::SystemConfig;
use crate::metrics::RunReport;
use crate::workload::AppProfile;
use fsoi_sim::telemetry;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Format tag for the preimage/wire layout; bump on any change to the
/// `Debug` shape of the key types or the wire format so stale entries
/// miss instead of misparsing. v2: `RunReport` gained a trailing
/// `profile` wire line.
const FORMAT: &str = "fsoi-cell/v2";

/// Distinguishes concurrent writers' temp files within one process.
static TMP_COUNTER: AtomicU64 = AtomicU64::new(0);

/// A directory of cached cell reports.
#[derive(Debug, Clone)]
pub struct CellCache {
    dir: PathBuf,
}

impl CellCache {
    /// The cache configured by the `FSOI_CACHE` knob: the value is the
    /// cache directory. Unset or empty means "no cache".
    pub fn from_env() -> Option<CellCache> {
        match std::env::var("FSOI_CACHE") {
            Ok(dir) if !dir.trim().is_empty() => Some(CellCache::at(dir)),
            _ => None,
        }
    }

    /// A cache rooted at `dir` (created lazily on first store).
    pub fn at(dir: impl Into<PathBuf>) -> CellCache {
        CellCache { dir: dir.into() }
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Returns the cached report for `(cfg, app, max_cycles)` if present
    /// and intact, else runs `cold`, stores its result (best-effort) and
    /// returns it. Hits are byte-identical to what `cold` would produce
    /// because the simulator is deterministic and the wire format is
    /// bit-exact.
    pub fn run_or(
        &self,
        cfg: &SystemConfig,
        app: &AppProfile,
        max_cycles: u64,
        cold: impl FnOnce() -> RunReport,
    ) -> RunReport {
        let preimage = preimage(cfg, app, max_cycles);
        let path = self.entry_path(&preimage);
        if let Some(report) = load(&path, &preimage) {
            telemetry::cache_hit();
            return report;
        }
        telemetry::cache_miss();
        let report = cold();
        store(&path, &preimage, &report);
        report
    }

    /// Whether an intact entry for `(cfg, app, max_cycles)` exists.
    pub fn contains(&self, cfg: &SystemConfig, app: &AppProfile, max_cycles: u64) -> bool {
        let preimage = preimage(cfg, app, max_cycles);
        load(&self.entry_path(&preimage), &preimage).is_some()
    }

    /// The on-disk path the entry for `(cfg, app, max_cycles)` uses —
    /// lets tests inspect and tamper with specific entries.
    pub fn entry_path_for(&self, cfg: &SystemConfig, app: &AppProfile, max_cycles: u64) -> PathBuf {
        self.entry_path(&preimage(cfg, app, max_cycles))
    }

    /// File path for a preimage: `<dir>/<fnv1a64 hex>.cell`.
    fn entry_path(&self, preimage: &str) -> PathBuf {
        self.dir
            .join(format!("{:016x}.cell", fnv1a64(preimage.as_bytes())))
    }
}

/// The cache key preimage: a format tag plus the full `Debug` rendering
/// of every input the simulation depends on. `SystemConfig` includes the
/// seed and the network variant (with its nested config); `AppProfile`
/// includes every workload parameter; `max_cycles` bounds the run.
/// Nothing else reaches the simulator, so equal preimages imply equal
/// reports.
fn preimage(cfg: &SystemConfig, app: &AppProfile, max_cycles: u64) -> String {
    format!("{FORMAT}|{cfg:?}|{app:?}|{max_cycles}")
}

/// FNV-1a 64-bit hash — stable across platforms and processes (unlike
/// `std` hashers, which are seeded per process).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Loads and verifies one entry; any damage or mismatch is a miss.
/// Rejections are counted in the cache-telemetry plane: a preimage
/// mismatch (tampered, stale-format or hash-collided entry) bumps the
/// tamper counter, a wire-parse failure (truncated or corrupted payload)
/// bumps the corruption counter.
fn load(path: &Path, preimage: &str) -> Option<RunReport> {
    let text = fs::read_to_string(path).ok()?;
    let (stored_preimage, wire) = text.split_once('\n')?;
    if stored_preimage != preimage {
        telemetry::cache_tamper();
        return None; // hash collision or stale format — never trust it
    }
    let report = RunReport::from_wire(wire);
    if report.is_none() {
        telemetry::cache_corrupt();
    }
    report
}

/// Stores one entry atomically (write-to-temp, rename). Best-effort: any
/// failure leaves the cache without the entry and the run unaffected.
fn store(path: &Path, preimage: &str, report: &RunReport) {
    let Some(dir) = path.parent() else { return };
    if fs::create_dir_all(dir).is_err() {
        return;
    }
    let tmp = dir.join(format!(
        "w{}-{}.tmp",
        std::process::id(),
        TMP_COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    let payload = format!("{preimage}\n{}", report.to_wire());
    if fs::write(&tmp, payload).is_err() {
        let _ = fs::remove_file(&tmp);
        return;
    }
    if fs::rename(&tmp, path).is_err() {
        let _ = fs::remove_file(&tmp);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::BatchCell;
    use crate::configs::{NetworkKind, SystemConfig};
    use crate::workload::AppProfile;
    use std::sync::atomic::AtomicUsize;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("fsoi-cache-test-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn tiny_cell(seed: u64) -> BatchCell {
        let mut app = AppProfile::suite()[0];
        app.ops_per_core = 40;
        BatchCell {
            config: SystemConfig::paper_16(NetworkKind::fsoi(16)).with_seed(seed),
            app,
        }
    }

    #[test]
    fn hit_returns_the_cold_bytes_without_rerunning() {
        let cache = CellCache::at(tmp_dir("hit"));
        let cell = tiny_cell(7);
        let runs = AtomicUsize::new(0);
        let run = || {
            cache.run_or(&cell.config, &cell.app, 1_000_000, || {
                runs.fetch_add(1, Ordering::SeqCst);
                cell.run_cold(1_000_000)
            })
        };
        let cold = run();
        let hit = run();
        assert_eq!(runs.load(Ordering::SeqCst), 1, "second call must hit");
        assert_eq!(hit.registry().to_jsonl(), cold.registry().to_jsonl());
        assert_eq!(hit.to_wire(), cold.to_wire());
        let _ = fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn distinct_seeds_and_budgets_get_distinct_entries() {
        let cache = CellCache::at(tmp_dir("keys"));
        let a = tiny_cell(1);
        let b = tiny_cell(2);
        let ra = cache.run_or(&a.config, &a.app, 1_000_000, || a.run_cold(1_000_000));
        let rb = cache.run_or(&b.config, &b.app, 1_000_000, || b.run_cold(1_000_000));
        assert_ne!(ra.to_wire(), rb.to_wire(), "seed must be part of the key");
        assert!(cache.contains(&a.config, &a.app, 1_000_000));
        assert!(!cache.contains(&a.config, &a.app, 999_999));
        let _ = fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn corrupt_entries_fall_back_to_a_cold_run() {
        let cache = CellCache::at(tmp_dir("corrupt"));
        let cell = tiny_cell(3);
        let cold = cache.run_or(&cell.config, &cell.app, 1_000_000, || {
            cell.run_cold(1_000_000)
        });
        // Truncate every entry: preimage check / wire parse must fail
        // closed and rerun instead of returning garbage.
        for entry in fs::read_dir(cache.dir()).expect("cache dir exists") {
            let path = entry.expect("dir entry").path();
            fs::write(&path, "fsoi-cell/v1|bogus\n").expect("truncate entry");
        }
        let again = cache.run_or(&cell.config, &cell.app, 1_000_000, || {
            cell.run_cold(1_000_000)
        });
        assert_eq!(again.to_wire(), cold.to_wire());
        let _ = fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn fnv1a64_is_stable() {
        // Reference vectors for the standard FNV-1a 64 parameters.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_ne!(fnv1a64(b"ab"), fnv1a64(b"ba"));
    }

    #[test]
    fn from_env_requires_a_nonempty_value() {
        // Only inspects the (unset-by-default) knob; the env-mutating
        // positive path lives in the dedicated `cell_cache` integration
        // test binary to avoid races with other tests.
        if std::env::var("FSOI_CACHE").is_err() {
            assert!(CellCache::from_env().is_none());
        }
    }
}
