//! Exit-code contract of `scripts/bench_gate.sh`: pass on a matching
//! report, nonzero on a synthetic injected regression, nonzero when the
//! parallel sweep was not byte-identical, usage error on missing files.

use fsoi_bench::sweepbench::{ScalingPoint, SweepBenchReport};
use std::path::{Path, PathBuf};
use std::process::Command;

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("repo root resolves")
}

/// Synthetic report pinned to 40M simulated cycles per wall-second, so
/// the cells/sec and cycles/sec gates can be exercised independently.
fn report(cells_per_sec: f64, speedup: f64, byte_identical: bool) -> SweepBenchReport {
    let wall_ms = 80.0 / cells_per_sec * 1e3;
    report_with_sim_cycles(
        cells_per_sec,
        speedup,
        byte_identical,
        (wall_ms * 4e4) as u64,
    )
}

fn report_with_sim_cycles(
    cells_per_sec: f64,
    speedup: f64,
    byte_identical: bool,
    sim_cycles_total: u64,
) -> SweepBenchReport {
    let wall_ms = 80.0 / cells_per_sec * 1e3;
    SweepBenchReport {
        nodes: 16,
        apps: 16,
        networks: 5,
        cells: 80,
        ops_per_core: 1500,
        seed: 2010,
        build_ms: 0.5,
        merge_ms: 1.0,
        sim_cycles_total,
        cell_ms: vec![wall_ms / 80.0; 80],
        scaling: vec![
            ScalingPoint {
                threads: 1,
                wall_ms,
                cells_per_sec,
                speedup: 1.0,
            },
            ScalingPoint {
                threads: 8,
                wall_ms: wall_ms / speedup,
                cells_per_sec: cells_per_sec * speedup,
                speedup,
            },
        ],
        byte_identical,
    }
}

fn write_report(name: &str, r: &SweepBenchReport) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    std::fs::create_dir_all(&dir).expect("tmpdir");
    let path = dir.join(name);
    std::fs::write(&path, r.render_json()).expect("write synthetic report");
    path
}

fn run_gate(args: &[&str]) -> std::process::Output {
    Command::new("sh")
        .arg(repo_root().join("scripts/bench_gate.sh"))
        .args(args)
        .current_dir(repo_root())
        .output()
        .expect("bench_gate.sh runs")
}

#[test]
fn matching_reports_pass() {
    let base = write_report("gate_base_ok.json", &report(100.0, 1.8, true));
    let cur = write_report("gate_cur_ok.json", &report(100.0, 1.8, true));
    let out = run_gate(&[
        "--baseline",
        base.to_str().unwrap(),
        "--current",
        cur.to_str().unwrap(),
    ]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(0), "stdout: {stdout}");
    assert!(stdout.contains("bench_gate: PASS"), "{stdout}");
}

#[test]
fn small_regression_within_tolerance_passes() {
    let base = write_report("gate_base_tol.json", &report(100.0, 2.0, true));
    let cur = write_report("gate_cur_tol.json", &report(80.0, 1.5, true));
    let out = run_gate(&[
        "--baseline",
        base.to_str().unwrap(),
        "--current",
        cur.to_str().unwrap(),
        "--tol",
        "0.5",
        "--speedup-tol",
        "0.5",
    ]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "20%/25% drops sit inside a 50% tolerance: {}",
        String::from_utf8_lossy(&out.stdout)
    );
}

#[test]
fn injected_throughput_regression_fails() {
    let base = write_report("gate_base_reg.json", &report(100.0, 2.0, true));
    let cur = write_report("gate_cur_reg.json", &report(10.0, 2.0, true));
    let out = run_gate(&[
        "--baseline",
        base.to_str().unwrap(),
        "--current",
        cur.to_str().unwrap(),
        "--tol",
        "0.5",
    ]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(1), "stdout: {stdout}");
    assert!(stdout.contains("FAIL throughput"), "{stdout}");
}

#[test]
fn injected_scaling_regression_fails() {
    let base = write_report("gate_base_sp.json", &report(100.0, 4.0, true));
    let cur = write_report("gate_cur_sp.json", &report(100.0, 1.0, true));
    let out = run_gate(&[
        "--baseline",
        base.to_str().unwrap(),
        "--current",
        cur.to_str().unwrap(),
        "--speedup-tol",
        "0.5",
    ]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(1), "stdout: {stdout}");
    assert!(stdout.contains("FAIL scaling"), "{stdout}");
}

#[test]
fn injected_sim_throughput_regression_fails() {
    // Same cells/sec on both sides, but the current run retires far
    // fewer simulated cycles per second — only the v2 gate catches it.
    let base = write_report("gate_base_sim.json", &report(100.0, 2.0, true));
    let cur = write_report(
        "gate_cur_sim.json",
        &report_with_sim_cycles(100.0, 2.0, true, 1_000),
    );
    let out = run_gate(&[
        "--baseline",
        base.to_str().unwrap(),
        "--current",
        cur.to_str().unwrap(),
        "--tol",
        "0.5",
    ]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(1), "stdout: {stdout}");
    assert!(stdout.contains("FAIL sim throughput"), "{stdout}");
    assert!(stdout.contains("ok throughput"), "{stdout}");
}

#[test]
fn v1_schema_reports_are_rejected() {
    let v1 = report(100.0, 2.0, true)
        .render_json()
        .replace("fsoi-bench-sweep/v2", "fsoi-bench-sweep/v1");
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    let cur = dir.join("gate_cur_v1.json");
    std::fs::write(&cur, v1).expect("write v1 report");
    let base = write_report("gate_base_v1.json", &report(100.0, 2.0, true));
    let out = run_gate(&[
        "--baseline",
        base.to_str().unwrap(),
        "--current",
        cur.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(2), "old schemas are usage errors");
}

#[test]
fn update_rebaselines_only_on_pass() {
    let base = write_report("gate_base_upd.json", &report(100.0, 2.0, true));
    let good = write_report("gate_cur_upd_ok.json", &report(90.0, 1.9, true));
    let out = run_gate(&[
        "--baseline",
        base.to_str().unwrap(),
        "--current",
        good.to_str().unwrap(),
        "--update",
    ]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(0), "stdout: {stdout}");
    assert!(stdout.contains("re-baselined"), "{stdout}");
    assert_eq!(
        std::fs::read_to_string(&base).unwrap(),
        std::fs::read_to_string(&good).unwrap(),
        "baseline adopts the fresh report"
    );

    let bad = write_report("gate_cur_upd_bad.json", &report(90.0, 1.9, false));
    let out = run_gate(&[
        "--baseline",
        base.to_str().unwrap(),
        "--current",
        bad.to_str().unwrap(),
        "--update",
    ]);
    assert_eq!(out.status.code(), Some(1));
    assert_eq!(
        std::fs::read_to_string(&base).unwrap(),
        std::fs::read_to_string(&good).unwrap(),
        "failing gate leaves the baseline untouched"
    );
}

#[test]
fn non_byte_identical_report_fails_at_any_tolerance() {
    let base = write_report("gate_base_byte.json", &report(100.0, 2.0, true));
    let cur = write_report("gate_cur_byte.json", &report(100.0, 2.0, false));
    let out = run_gate(&[
        "--baseline",
        base.to_str().unwrap(),
        "--current",
        cur.to_str().unwrap(),
        "--tol",
        "0.99",
        "--speedup-tol",
        "0.99",
    ]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(1), "stdout: {stdout}");
    assert!(stdout.contains("FAIL determinism"), "{stdout}");
}

#[test]
fn missing_files_and_bad_args_are_usage_errors() {
    let cur = write_report("gate_cur_usage.json", &report(100.0, 2.0, true));
    let out = run_gate(&[
        "--baseline",
        "/nonexistent/fsoi-baseline.json",
        "--current",
        cur.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(2));
    let out = run_gate(&["--frobnicate"]);
    assert_eq!(out.status.code(), Some(2));
}
