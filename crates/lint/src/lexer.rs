//! A hand-rolled Rust lexer, sufficient for token-level lint rules.
//!
//! This is *not* a full Rust lexer: it only needs to be sound about the
//! things that would make a token-pattern scanner lie —
//!
//! * comments (line, doc, nested block) become [`TokKind::Comment`]
//!   tokens so that prose mentioning `HashMap` never trips a rule and so
//!   `// lint: allow(...)` annotations can be parsed,
//! * string/char/byte literals (including raw strings with `#` fences)
//!   become [`TokKind::Str`] tokens, so quoted code is inert,
//! * lifetimes are distinguished from char literals, so `'a` does not
//!   start an unterminated "string",
//! * everything else is identifiers, numbers and single-character
//!   punctuation with line numbers attached.
//!
//! The lexer never fails: unexpected bytes degrade to punctuation tokens,
//! which at worst makes a rule miss — never panic — on exotic input.

/// What a token is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`HashMap`, `fn`, `r#async`).
    Ident,
    /// A single punctuation character (`:`, `(`, `#`, …).
    Punct,
    /// A lifetime (`'a`), stored without the quote.
    Lifetime,
    /// A numeric literal (`42`, `0xFF`, `1.5e-3`), roughly tokenized.
    Num,
    /// A string, char, or byte literal; `text` keeps the raw source slice.
    Str,
    /// A line or block comment; `text` keeps the raw source slice.
    Comment,
}

/// One lexed token.
#[derive(Debug, Clone)]
pub struct Tok {
    /// The token's class.
    pub kind: TokKind,
    /// The raw source text of the token.
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
}

impl Tok {
    /// True for an identifier with exactly this text.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// True for a punctuation token with exactly this text.
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == TokKind::Punct && self.text == s
    }

    /// For a `Str` token: the literal's inner text when it is a plain
    /// (non-raw, non-byte) string literal, else `None`.
    pub fn plain_str_content(&self) -> Option<&str> {
        let t = self.text.as_str();
        if self.kind == TokKind::Str && t.len() >= 2 && t.starts_with('"') && t.ends_with('"') {
            Some(&t[1..t.len() - 1])
        } else {
            None
        }
    }
}

/// Lexes `src` into tokens. Whitespace is dropped; comments are kept.
pub fn lex(src: &str) -> Vec<Tok> {
    let b = src.as_bytes();
    let mut toks = Vec::with_capacity(src.len() / 6);
    let mut i = 0usize;
    let mut line: u32 = 1;

    // Pushes a token spanning `start..end`, tracking newlines inside it.
    macro_rules! push {
        ($kind:expr, $start:expr, $end:expr, $at:expr) => {{
            toks.push(Tok {
                kind: $kind,
                text: src[$start..$end].to_string(),
                line: $at,
            });
        }};
    }

    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                let start = i;
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                push!(TokKind::Comment, start, i, line);
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                // Nested block comment.
                let start = i;
                let at = line;
                let mut depth = 0usize;
                while i < b.len() {
                    if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                        if depth == 0 {
                            break;
                        }
                    } else {
                        if b[i] == b'\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
                push!(TokKind::Comment, start, i, at);
            }
            b'"' => {
                let (end, newlines) = scan_string(b, i);
                push!(TokKind::Str, i, end, line);
                line += newlines;
                i = end;
            }
            b'r' | b'b' if starts_raw_or_byte_literal(b, i) => {
                let (end, newlines, kind) = scan_prefixed_literal(b, i);
                push!(kind, i, end, line);
                line += newlines;
                i = end;
            }
            b'\'' => {
                // Lifetime or char literal. `'a'` is a char; `'a` (no
                // closing quote right after one symbol) is a lifetime.
                if is_lifetime(b, i) {
                    let start = i + 1;
                    let mut j = start;
                    while j < b.len() && (b[j] == b'_' || b[j].is_ascii_alphanumeric()) {
                        j += 1;
                    }
                    push!(TokKind::Lifetime, start, j, line);
                    i = j;
                } else {
                    let (end, newlines) = scan_char(b, i);
                    push!(TokKind::Str, i, end, line);
                    line += newlines;
                    i = end;
                }
            }
            c if c == b'_' || c.is_ascii_alphabetic() => {
                let start = i;
                while i < b.len() && (b[i] == b'_' || b[i].is_ascii_alphanumeric()) {
                    i += 1;
                }
                push!(TokKind::Ident, start, i, line);
            }
            c if c.is_ascii_digit() => {
                let start = i;
                i = scan_number(b, i);
                push!(TokKind::Num, start, i, line);
            }
            _ => {
                push!(TokKind::Punct, i, i + 1, line);
                i += 1;
            }
        }
    }
    toks
}

/// Does `b[i..]` start a raw string (`r"`, `r#`), byte string (`b"`),
/// or raw byte string (`br`)? A lone identifier like `result` must not.
fn starts_raw_or_byte_literal(b: &[u8], i: usize) -> bool {
    let mut j = i;
    if b[j] == b'b' {
        j += 1;
        if j < b.len() && b[j] == b'\'' {
            return true; // byte char b'x'
        }
        if j < b.len() && b[j] == b'r' {
            j += 1;
        }
    } else if b[j] == b'r' {
        j += 1;
    }
    while j < b.len() && b[j] == b'#' {
        j += 1;
    }
    j < b.len() && b[j] == b'"'
}

/// Scans `r#"…"#` / `b"…"` / `br##"…"##` / `b'x'` starting at `i`.
/// Returns (end index, newline count, token kind).
fn scan_prefixed_literal(b: &[u8], i: usize) -> (usize, u32, TokKind) {
    let mut j = i;
    let mut raw = false;
    if b[j] == b'b' {
        j += 1;
        if j < b.len() && b[j] == b'\'' {
            let (end, nl) = scan_char(b, j);
            return (end, nl, TokKind::Str);
        }
        if j < b.len() && b[j] == b'r' {
            raw = true;
            j += 1;
        }
    } else {
        raw = true;
        j += 1;
    }
    let mut fences = 0usize;
    while j < b.len() && b[j] == b'#' {
        fences += 1;
        j += 1;
    }
    if raw || fences > 0 {
        // Raw: ends at `"` followed by `fences` hashes; no escapes.
        j += 1; // the opening quote
        let mut nl = 0u32;
        while j < b.len() {
            if b[j] == b'\n' {
                nl += 1;
            }
            if b[j] == b'"' {
                let mut k = j + 1;
                let mut seen = 0usize;
                while k < b.len() && b[k] == b'#' && seen < fences {
                    k += 1;
                    seen += 1;
                }
                if seen == fences {
                    return (k, nl, TokKind::Str);
                }
            }
            j += 1;
        }
        (j, nl, TokKind::Str)
    } else {
        let (end, nl) = scan_string(b, j);
        (end, nl, TokKind::Str)
    }
}

/// Scans a `"…"` string with escapes, starting at the opening quote.
fn scan_string(b: &[u8], i: usize) -> (usize, u32) {
    let mut j = i + 1;
    let mut nl = 0u32;
    while j < b.len() {
        match b[j] {
            b'\\' => j += 2,
            b'"' => return (j + 1, nl),
            b'\n' => {
                nl += 1;
                j += 1;
            }
            _ => j += 1,
        }
    }
    (j, nl)
}

/// Scans a `'…'` char literal with escapes, starting at the quote.
fn scan_char(b: &[u8], i: usize) -> (usize, u32) {
    let mut j = i + 1;
    let mut nl = 0u32;
    while j < b.len() {
        match b[j] {
            b'\\' => j += 2,
            b'\'' => return (j + 1, nl),
            b'\n' => {
                nl += 1;
                j += 1;
            }
            _ => j += 1,
        }
    }
    (j, nl)
}

/// True when the `'` at `i` starts a lifetime rather than a char literal.
fn is_lifetime(b: &[u8], i: usize) -> bool {
    let Some(&first) = b.get(i + 1) else {
        return false;
    };
    if first == b'\\' || first == b'\'' {
        return false; // '\n' or ''' — char-ish
    }
    if !(first == b'_' || first.is_ascii_alphabetic()) {
        return false; // '0', '+', … are char literals
    }
    // `'a'` → char, `'a` / `'static` → lifetime. A char literal has the
    // closing quote immediately after exactly one symbol (multi-byte
    // UTF-8 chars also lex fine: their continuation bytes fail the
    // alphabetic test above, so they take the char-literal path).
    !matches!(b.get(i + 2), Some(b'\''))
}

/// Scans a numeric literal (decimal, hex/oct/bin, float with exponent).
fn scan_number(b: &[u8], i: usize) -> usize {
    let mut j = i;
    while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
        // Stop so `0..64` keeps its range dots, but eat `1.5`'s dot below.
        j += 1;
    }
    if j < b.len() && b[j] == b'.' && b.get(j + 1).is_some_and(|c| c.is_ascii_digit()) {
        j += 1;
        while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
            j += 1;
        }
    }
    // Exponent with a sign (`1e-3` is consumed above until `e`; the sign
    // and digits follow).
    if j < b.len()
        && (b[j] == b'+' || b[j] == b'-')
        && j > i
        && (b[j - 1] == b'e' || b[j - 1] == b'E')
        && b.get(j + 1).is_some_and(|c| c.is_ascii_digit())
    {
        j += 1;
        while j < b.len() && (b[j].is_ascii_digit() || b[j] == b'_') {
            j += 1;
        }
    }
    j
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_and_puncts() {
        let t = kinds("use std::collections::HashMap;");
        assert_eq!(t[0], (TokKind::Ident, "use".into()));
        assert!(t.contains(&(TokKind::Ident, "HashMap".into())));
        assert!(t.contains(&(TokKind::Punct, ";".into())));
    }

    #[test]
    fn comments_are_tokens_not_code() {
        let t = kinds("// HashMap here\nlet x = 1; /* HashSet\n there */");
        assert_eq!(t[0].0, TokKind::Comment);
        assert!(t[0].1.contains("HashMap"));
        assert!(!t
            .iter()
            .any(|(k, s)| *k == TokKind::Ident && s == "HashMap"));
        assert!(t
            .iter()
            .any(|(k, s)| *k == TokKind::Comment && s.contains("HashSet")));
    }

    #[test]
    fn line_numbers_track_comments_and_strings() {
        let toks = lex("a\n\"two\nlines\"\nb");
        let a = toks.iter().find(|t| t.is_ident("a")).unwrap();
        let b = toks.iter().find(|t| t.is_ident("b")).unwrap();
        assert_eq!(a.line, 1);
        assert_eq!(b.line, 4);
    }

    #[test]
    fn strings_swallow_code() {
        let t = kinds(r#"let s = "HashMap::new()";"#);
        assert!(!t
            .iter()
            .any(|(k, s)| *k == TokKind::Ident && s == "HashMap"));
        assert!(t.iter().any(|(k, _)| *k == TokKind::Str));
    }

    #[test]
    fn raw_strings_with_fences() {
        let t = kinds(r###"let s = r#"say "HashMap" loud"#; x"###);
        assert!(!t
            .iter()
            .any(|(k, s)| *k == TokKind::Ident && s == "HashMap"));
        assert!(t.iter().any(|(k, s)| *k == TokKind::Ident && s == "x"));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let t = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        assert!(t.iter().any(|(k, s)| *k == TokKind::Lifetime && s == "a"));
        assert!(t.iter().any(|(k, s)| *k == TokKind::Str && s == "'x'"));
        assert!(t.iter().any(|(k, s)| *k == TokKind::Str && s == "'\\n'"));
    }

    #[test]
    fn numbers_and_ranges() {
        let t = kinds("0..64 1.5e-3 0xFF_u64");
        assert_eq!(t[0], (TokKind::Num, "0".into()));
        assert_eq!(t[1], (TokKind::Punct, ".".into()));
        assert_eq!(t[2], (TokKind::Punct, ".".into()));
        assert_eq!(t[3], (TokKind::Num, "64".into()));
        assert!(t.contains(&(TokKind::Num, "1.5e-3".into())));
        assert!(t.contains(&(TokKind::Num, "0xFF_u64".into())));
    }

    #[test]
    fn byte_and_raw_byte_literals() {
        let t = kinds(r##"b"bytes" br#"raw"# b'x' break"##);
        let strs = t.iter().filter(|(k, _)| *k == TokKind::Str).count();
        assert_eq!(strs, 3);
        assert!(t.iter().any(|(k, s)| *k == TokKind::Ident && s == "break"));
    }

    #[test]
    fn plain_str_content_extraction() {
        let toks = lex(r#"env::var("FSOI_TRACE")"#);
        let s = toks.iter().find(|t| t.kind == TokKind::Str).unwrap();
        assert_eq!(s.plain_str_content(), Some("FSOI_TRACE"));
    }

    #[test]
    fn never_panics_on_garbage() {
        for src in ["'", "\"unterminated", "r#\"open", "/* open", "\\ @ ` $"] {
            let _ = lex(src);
        }
    }
}
