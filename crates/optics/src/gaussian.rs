//! Gaussian-beam propagation in free space.
//!
//! The FSOI link collimates each VCSEL's output with a micro-lens, bounces
//! it off micro-mirrors, and focuses it onto a photodetector with a second
//! micro-lens. Between the lenses the beam is a fundamental-mode Gaussian;
//! its diffraction over the up-to-2-cm flight determines how much light the
//! receiving aperture captures — the dominant term of the paper's 2.6 dB
//! path loss.

use crate::units::Length;
use crate::OpticsError;
use core::f64::consts::PI;

/// A fundamental-mode (TEM00) Gaussian beam, defined by its waist radius
/// (the 1/e² intensity radius at the narrowest point) and wavelength.
///
/// ```
/// use fsoi_optics::gaussian::GaussianBeam;
/// use fsoi_optics::units::Length;
///
/// // Beam collimated by the paper's 90 µm transmitter micro-lens.
/// let beam = GaussianBeam::new(
///     Length::from_micrometers(45.0),
///     Length::from_nanometers(980.0),
/// ).unwrap();
/// // After 2 cm the beam has spread well beyond its waist.
/// let w = beam.radius_at(Length::from_millimeters(20.0));
/// assert!(w.to_micrometers() > 100.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GaussianBeam {
    waist_radius: Length,
    wavelength: Length,
}

impl GaussianBeam {
    /// Creates a beam with the given waist radius and wavelength.
    ///
    /// # Errors
    ///
    /// Returns [`OpticsError::NonPositive`] if either argument is not
    /// strictly positive.
    pub fn new(waist_radius: Length, wavelength: Length) -> Result<Self, OpticsError> {
        if waist_radius.as_meters() <= 0.0 {
            return Err(OpticsError::NonPositive {
                what: "waist radius",
                value: waist_radius.as_meters(),
            });
        }
        if wavelength.as_meters() <= 0.0 {
            return Err(OpticsError::NonPositive {
                what: "wavelength",
                value: wavelength.as_meters(),
            });
        }
        Ok(GaussianBeam {
            waist_radius,
            wavelength,
        })
    }

    /// The beam's waist radius.
    pub fn waist_radius(&self) -> Length {
        self.waist_radius
    }

    /// The beam's wavelength.
    pub fn wavelength(&self) -> Length {
        self.wavelength
    }

    /// Rayleigh range `z_R = π w₀² / λ`: the distance over which the beam
    /// stays roughly collimated.
    pub fn rayleigh_range(&self) -> Length {
        let w0 = self.waist_radius.as_meters();
        let lambda = self.wavelength.as_meters();
        Length::from_meters(PI * w0 * w0 / lambda)
    }

    /// Far-field half-angle divergence `θ = λ / (π w₀)`, in radians.
    pub fn divergence(&self) -> f64 {
        self.wavelength.as_meters() / (PI * self.waist_radius.as_meters())
    }

    /// Beam radius (1/e² intensity) after propagating distance `z` from the
    /// waist: `w(z) = w₀ √(1 + (z/z_R)²)`.
    pub fn radius_at(&self, z: Length) -> Length {
        let zr = self.rayleigh_range().as_meters();
        let ratio = z.as_meters() / zr;
        Length::from_meters(self.waist_radius.as_meters() * (1.0 + ratio * ratio).sqrt())
    }

    /// Fraction of the beam's power passing through a centred circular
    /// aperture of radius `a` when the local beam radius is `w`:
    /// `T = 1 − exp(−2 a² / w²)`.
    ///
    /// This is the clipping (truncation) transmission of a hard-edged
    /// micro-lens or mirror.
    pub fn clip_transmission(beam_radius: Length, aperture_radius: Length) -> f64 {
        let w = beam_radius.as_meters();
        let a = aperture_radius.as_meters();
        if w <= 0.0 {
            return 1.0; // a point beam passes any aperture
        }
        1.0 - (-2.0 * (a / w).powi(2)).exp()
    }

    /// Fraction of power captured by an aperture of radius `a` placed a
    /// distance `z` from the waist.
    pub fn capture_fraction(&self, z: Length, aperture_radius: Length) -> f64 {
        Self::clip_transmission(self.radius_at(z), aperture_radius)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_beam() -> GaussianBeam {
        GaussianBeam::new(
            Length::from_micrometers(45.0),
            Length::from_nanometers(980.0),
        )
        .unwrap()
    }

    #[test]
    fn rejects_nonpositive() {
        assert!(
            GaussianBeam::new(Length::from_meters(0.0), Length::from_nanometers(980.0)).is_err()
        );
        assert!(
            GaussianBeam::new(Length::from_micrometers(45.0), Length::from_meters(-1.0)).is_err()
        );
    }

    #[test]
    fn rayleigh_range_matches_formula() {
        let b = paper_beam();
        // z_R = π (45 µm)² / 980 nm ≈ 6.49 mm
        let zr = b.rayleigh_range().as_meters();
        assert!((zr - 6.49e-3).abs() < 0.05e-3, "z_R = {zr}");
    }

    #[test]
    fn divergence_matches_formula() {
        let b = paper_beam();
        let theta = b.divergence();
        assert!((theta - 6.93e-3).abs() < 0.05e-3, "θ = {theta}");
    }

    #[test]
    fn radius_grows_monotonically() {
        let b = paper_beam();
        assert!(
            (b.radius_at(Length::from_meters(0.0)).as_meters() - b.waist_radius().as_meters())
                .abs()
                < 1e-12
        );
        let mut prev = 0.0;
        for mm in 0..=20 {
            let w = b.radius_at(Length::from_millimeters(mm as f64)).as_meters();
            assert!(w >= prev);
            prev = w;
        }
    }

    #[test]
    fn radius_after_2cm_is_about_146_um() {
        let b = paper_beam();
        let w = b.radius_at(Length::from_millimeters(20.0)).to_micrometers();
        assert!((w - 145.8).abs() < 2.0, "w(2 cm) = {w} µm");
    }

    #[test]
    fn clip_transmission_limits() {
        // A huge aperture passes everything.
        let t = GaussianBeam::clip_transmission(
            Length::from_micrometers(100.0),
            Length::from_micrometers(10_000.0),
        );
        assert!(t > 0.999_999);
        // Aperture equal to the beam radius passes 1 - e^-2 ≈ 86.5 %.
        let t = GaussianBeam::clip_transmission(
            Length::from_micrometers(100.0),
            Length::from_micrometers(100.0),
        );
        assert!((t - 0.8647).abs() < 1e-3);
        // Zero-width beam edge case.
        let t = GaussianBeam::clip_transmission(
            Length::from_meters(0.0),
            Length::from_micrometers(1.0),
        );
        assert!((t - 1.0).abs() < 1e-12);
    }

    #[test]
    fn capture_at_receiver_dominates_path_loss() {
        // The paper's receiver micro-lens is 190 µm across (95 µm radius).
        // Capturing a 146 µm beam with it passes ~57 %, i.e. ~2.4 dB —
        // consistent with the 2.6 dB total path loss of Table 1.
        let b = paper_beam();
        let t = b.capture_fraction(
            Length::from_millimeters(20.0),
            Length::from_micrometers(95.0),
        );
        let db = -10.0 * t.log10();
        assert!((db - 2.4).abs() < 0.2, "clipping loss = {db} dB");
    }

    #[test]
    fn getters() {
        let b = paper_beam();
        assert!((b.waist_radius().to_micrometers() - 45.0).abs() < 1e-9);
        assert!((b.wavelength().as_meters() - 9.8e-7).abs() < 1e-15);
    }
}
