//! Lazy shrink trees.
//!
//! A [`Tree`] pairs a generated value with a *lazily produced* list of
//! smaller variants (its children), each itself a tree. Generators build
//! trees rather than bare values so that shrinking is integrated: mapping
//! or tupling generators automatically maps/tuples their shrinks, the way
//! Hedgehog-style harnesses do it. Children are only materialised when the
//! runner actually walks them after a failure, so generation stays cheap.

use std::rc::Rc;

/// A generated value together with its lazily-computed shrink candidates.
pub struct Tree<T> {
    /// The concrete value at this node.
    pub value: T,
    children: Option<Rc<dyn Fn() -> Vec<Tree<T>>>>,
}

impl<T: Clone> Clone for Tree<T> {
    fn clone(&self) -> Self {
        Tree {
            value: self.value.clone(),
            children: self.children.clone(),
        }
    }
}

impl<T> Tree<T> {
    /// A tree with no shrink candidates.
    pub fn leaf(value: T) -> Self {
        Tree {
            value,
            children: None,
        }
    }

    /// A tree whose children are produced on demand by `f`.
    ///
    /// Children should be ordered most-aggressive first (the runner walks
    /// them greedily, committing to the first one that still fails).
    pub fn with_children(value: T, f: impl Fn() -> Vec<Tree<T>> + 'static) -> Self {
        Tree {
            value,
            children: Some(Rc::new(f)),
        }
    }

    /// Materialises this node's shrink candidates.
    pub fn children(&self) -> Vec<Tree<T>> {
        match &self.children {
            Some(f) => f(),
            None => Vec::new(),
        }
    }
}

impl<T: Clone + 'static> Tree<T> {
    /// Maps `f` over the value and, lazily, over every shrink candidate.
    pub fn map<U: Clone + 'static>(&self, f: Rc<dyn Fn(&T) -> U>) -> Tree<U> {
        let value = f(&self.value);
        let inner = self.clone();
        Tree::with_children(value, move || {
            inner.children().iter().map(|c| c.map(f.clone())).collect()
        })
    }
}

/// Combines two trees into a tree of pairs; shrinks each side independently
/// (left side first, so earlier tuple positions shrink first).
pub fn pair<A: Clone + 'static, B: Clone + 'static>(a: Tree<A>, b: Tree<B>) -> Tree<(A, B)> {
    let value = (a.value.clone(), b.value.clone());
    Tree::with_children(value, move || {
        let mut out = Vec::new();
        for ca in a.children() {
            out.push(pair(ca, b.clone()));
        }
        for cb in b.children() {
            out.push(pair(a.clone(), cb));
        }
        out
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn int_tree(v: u64) -> Tree<u64> {
        if v == 0 {
            Tree::leaf(v)
        } else {
            Tree::with_children(v, move || (0..v).rev().map(int_tree).collect())
        }
    }

    #[test]
    fn leaf_has_no_children() {
        assert!(Tree::leaf(7u64).children().is_empty());
    }

    #[test]
    fn map_transforms_value_and_children() {
        let t = int_tree(3).map(Rc::new(|v: &u64| v * 10));
        assert_eq!(t.value, 30);
        let kids: Vec<u64> = t.children().iter().map(|c| c.value).collect();
        assert_eq!(kids, vec![20, 10, 0]);
    }

    #[test]
    fn pair_shrinks_each_side() {
        let t = pair(int_tree(1), int_tree(1));
        assert_eq!(t.value, (1, 1));
        let kids: Vec<(u64, u64)> = t.children().iter().map(|c| c.value).collect();
        assert_eq!(kids, vec![(0, 1), (1, 0)]);
    }
}
