//! Raw network-engine throughput (Figures 9–11 substrate): cycles per
//! second of the FSOI and mesh simulators under sustained uniform random
//! traffic.

use fsoi_bench::microbench::{Criterion, Throughput};
use fsoi_bench::{criterion_group, criterion_main};
use fsoi_mesh::config::MeshConfig;
use fsoi_mesh::network::MeshNetwork;
use fsoi_mesh::packet::MeshPacket;
use fsoi_net::config::FsoiConfig;
use fsoi_net::network::FsoiNetwork;
use fsoi_net::packet::{Packet, PacketClass};
use fsoi_net::topology::NodeId;
use fsoi_sim::rng::Xoshiro256StarStar;

const CYCLES: u64 = 20_000;

fn drive_fsoi(seed: u64) -> u64 {
    let mut net = FsoiNetwork::new(FsoiConfig::nodes(16), seed);
    let mut rng = Xoshiro256StarStar::new(seed);
    for cycle in 0..CYCLES {
        if cycle % 2 == 0 {
            for src in 0..16usize {
                if rng.bernoulli(0.05) {
                    let mut dst = rng.next_below(15) as usize;
                    if dst >= src {
                        dst += 1;
                    }
                    let class = if rng.bernoulli(0.4) {
                        PacketClass::Data
                    } else {
                        PacketClass::Meta
                    };
                    let _ = net.inject(Packet::new(NodeId(src), NodeId(dst), class, cycle));
                }
            }
        }
        net.tick();
        net.drain_delivered();
    }
    net.stats().delivered[0] + net.stats().delivered[1]
}

fn drive_mesh(seed: u64) -> u64 {
    let mut net = MeshNetwork::new(MeshConfig::nodes(16));
    let mut rng = Xoshiro256StarStar::new(seed);
    for cycle in 0..CYCLES {
        for src in 0..16usize {
            if rng.bernoulli(0.02) {
                let mut dst = rng.next_below(15) as usize;
                if dst >= src {
                    dst += 1;
                }
                let pkt = if rng.bernoulli(0.4) {
                    MeshPacket::data(src, dst, cycle)
                } else {
                    MeshPacket::meta(src, dst, cycle)
                };
                let _ = net.inject(pkt);
            }
        }
        net.tick();
        net.drain_delivered();
    }
    net.stats().delivered
}

fn bench_engines(c: &mut Criterion) {
    let mut g = c.benchmark_group("network_engines");
    g.throughput(Throughput::Elements(CYCLES));
    g.sample_size(10);
    g.bench_function("fsoi_20k_cycles", |b| b.iter(|| drive_fsoi(7)));
    g.bench_function("mesh_20k_cycles", |b| b.iter(|| drive_mesh(7)));
    g.finish();
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);
