//! Hot-path throughput: cycles simulated per second through the
//! network's two advance paths.
//!
//! * `ticked_*` drives `tick()` every cycle — the per-cycle floor the
//!   dense slot table and `NodeMask` state keep low;
//! * `fast_forward_*` covers the same span through `run()`, which jumps
//!   straight to the next scheduled event. On sparse traffic this is the
//!   path `experiments` actually takes, so a regression here shows up
//!   directly in `BENCH_sweep.json`'s `sim_cycles_per_sec`.
//!
//! Both variants return the delivered-packet count so the work can't be
//! optimized away, and both run the idle tail (no traffic injected past
//! the first quarter) where fast-forward should win by a wide margin.

use fsoi_bench::microbench::{Criterion, Throughput};
use fsoi_bench::{criterion_group, criterion_main};
use fsoi_net::config::FsoiConfig;
use fsoi_net::network::FsoiNetwork;
use fsoi_net::packet::{Packet, PacketClass};
use fsoi_net::topology::NodeId;
use fsoi_sim::rng::Xoshiro256StarStar;
use fsoi_sim::Cycle;

const CYCLES: u64 = 40_000;

/// Injects sparse uniform-random traffic over the first quarter of the
/// span, then advances to `CYCLES` either cycle-by-cycle or through the
/// fast-forwarding `run()`.
fn drive(seed: u64, fast: bool) -> u64 {
    let mut net = FsoiNetwork::new(FsoiConfig::nodes(16), seed);
    let mut rng = Xoshiro256StarStar::new(seed);
    for burst in 0..(CYCLES / 400) {
        for src in 0..16usize {
            if rng.bernoulli(0.2) {
                let mut dst = rng.next_below(15) as usize;
                if dst >= src {
                    dst += 1;
                }
                let class = if rng.bernoulli(0.4) {
                    PacketClass::Data
                } else {
                    PacketClass::Meta
                };
                let _ = net.inject(Packet::new(NodeId(src), NodeId(dst), class, burst));
            }
        }
        let target = Cycle((burst + 1) * 100);
        if fast {
            net.advance_to(target);
        } else {
            while net.now() < target {
                net.tick();
            }
        }
        net.drain_delivered();
    }
    if fast {
        net.advance_to(Cycle(CYCLES));
    } else {
        while net.now() < Cycle(CYCLES) {
            net.tick();
        }
    }
    net.drain_delivered();
    net.stats().delivered[0] + net.stats().delivered[1]
}

fn bench_tick_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("tick_throughput");
    g.throughput(Throughput::Elements(CYCLES));
    g.sample_size(10);
    g.bench_function("ticked_40k_cycles", |b| b.iter(|| drive(11, false)));
    g.bench_function("fast_forward_40k_cycles", |b| b.iter(|| drive(11, true)));
    g.finish();
}

criterion_group!(benches, bench_tick_throughput);
criterion_main!(benches);
