//! Synchronization semantics: load-linked / store-conditional, locks and
//! barriers — plus the paper's §5.1 optimization hooks.
//!
//! The paper implements `ll`/`sc` "differently when feasible": boolean
//! synchronization variables can be *subscribed* over the confirmation
//! channel's reserved mini-cycles, so spin loops receive single-bit
//! updates without any regular packets. [`BooleanSubscriptionHub`] is the
//! directory-side registry for that path; the CMP simulator decides per
//! configuration whether updates ride the confirmation channel (optimized)
//! or full invalidation/reload rounds (baseline).

use crate::protocol::LineAddr;
use std::collections::{BTreeMap, BTreeSet};

/// Per-node link register for load-linked/store-conditional.
#[derive(Debug, Default)]
pub struct LlScMonitor {
    link: Option<LineAddr>,
    successes: u64,
    failures: u64,
}

impl LlScMonitor {
    /// Creates an empty monitor.
    pub fn new() -> Self {
        Self::default()
    }

    /// Load-linked: records the reservation.
    pub fn ll(&mut self, line: LineAddr) {
        self.link = Some(line);
    }

    /// Store-conditional: succeeds iff the reservation survives; always
    /// clears it.
    pub fn sc(&mut self, line: LineAddr) -> bool {
        let ok = self.link == Some(line);
        self.link = None;
        if ok {
            self.successes += 1;
        } else {
            self.failures += 1;
        }
        ok
    }

    /// An invalidation for `line` landed: kill a matching reservation.
    pub fn on_invalidate(&mut self, line: LineAddr) {
        if self.link == Some(line) {
            self.link = None;
        }
    }

    /// The active reservation, if any.
    pub fn reservation(&self) -> Option<LineAddr> {
        self.link
    }

    /// Successful store-conditionals.
    pub fn successes(&self) -> u64 {
        self.successes
    }

    /// Failed store-conditionals.
    pub fn failures(&self) -> u64 {
        self.failures
    }
}

/// A centralized sense-reversing barrier (the paper uses combining-tree
/// barriers for scale; the tree is composed of these nodes).
#[derive(Debug)]
pub struct Barrier {
    participants: usize,
    arrived: usize,
    sense: bool,
    episodes: u64,
}

impl Barrier {
    /// Creates a barrier for `participants` arrivals per episode.
    ///
    /// # Panics
    ///
    /// Panics if `participants == 0`.
    pub fn new(participants: usize) -> Self {
        assert!(participants > 0, "a barrier needs participants");
        Barrier {
            participants,
            arrived: 0,
            sense: false,
            episodes: 0,
        }
    }

    /// Registers an arrival; returns `true` when this arrival releases the
    /// barrier (the releaser flips the sense all spinners watch).
    pub fn arrive(&mut self) -> bool {
        self.arrived += 1;
        if self.arrived == self.participants {
            self.arrived = 0;
            self.sense = !self.sense;
            self.episodes += 1;
            true
        } else {
            false
        }
    }

    /// The sense value spinners compare against.
    pub fn sense(&self) -> bool {
        self.sense
    }

    /// Completed episodes.
    pub fn episodes(&self) -> u64 {
        self.episodes
    }

    /// Arrivals waiting in the current episode.
    pub fn waiting(&self) -> usize {
        self.arrived
    }
}

/// A test-and-set lock state machine (built over ll/sc by the cores; this
/// is the memory-side truth the workload generator consults).
#[derive(Debug, Default)]
pub struct SpinLock {
    holder: Option<usize>,
    acquisitions: u64,
    contended_acquisitions: u64,
}

impl SpinLock {
    /// Creates an unlocked lock.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attempts acquisition by `node`; returns success.
    pub fn try_acquire(&mut self, node: usize) -> bool {
        if self.holder.is_none() {
            self.holder = Some(node);
            self.acquisitions += 1;
            true
        } else {
            self.contended_acquisitions += 1;
            false
        }
    }

    /// Releases the lock.
    ///
    /// # Panics
    ///
    /// Panics if `node` does not hold it.
    pub fn release(&mut self, node: usize) {
        assert_eq!(self.holder, Some(node), "release by non-holder");
        self.holder = None;
    }

    /// Current holder.
    pub fn holder(&self) -> Option<usize> {
        self.holder
    }

    /// Successful acquisitions.
    pub fn acquisitions(&self) -> u64 {
        self.acquisitions
    }

    /// Failed (contended) attempts.
    pub fn contended(&self) -> u64 {
        self.contended_acquisitions
    }
}

/// Directory-side registry of boolean subscriptions (§5.1).
///
/// A node that `ll`s a boolean synchronization word reserves a mini-cycle
/// on its confirmation receiver and registers here. Subsequent updates to
/// the word are *pushed* to all subscribers as single-bit
/// confirmation-channel pulses — no meta/data packets. A normal store to
/// the containing line simply invalidates (unsubscribes) everyone.
#[derive(Debug, Default)]
pub struct BooleanSubscriptionHub {
    subs: BTreeMap<LineAddr, BTreeSet<usize>>,
    updates_pushed: u64,
    packets_saved: u64,
}

impl BooleanSubscriptionHub {
    /// Creates an empty hub.
    pub fn new() -> Self {
        Self::default()
    }

    /// Subscribes `node` to `line`.
    pub fn subscribe(&mut self, line: LineAddr, node: usize) {
        self.subs.entry(line).or_default().insert(node);
    }

    /// Unsubscribes `node` from `line`.
    pub fn unsubscribe(&mut self, line: LineAddr, node: usize) {
        if let Some(s) = self.subs.get_mut(&line) {
            s.remove(&node);
            if s.is_empty() {
                self.subs.remove(&line);
            }
        }
    }

    /// A boolean update to `line` from `writer`: returns the subscribers
    /// to push the bit to (excluding the writer). Each push replaces what
    /// would otherwise be an invalidation + a reload request + a data
    /// reply (three packets) per spinning subscriber.
    pub fn push_update(&mut self, line: LineAddr, writer: usize) -> Vec<usize> {
        let targets: Vec<usize> = self
            .subs
            .get(&line)
            .map(|s| s.iter().copied().filter(|&n| n != writer).collect())
            .unwrap_or_default();
        self.updates_pushed += targets.len() as u64;
        self.packets_saved += 3 * targets.len() as u64;
        targets
    }

    /// A normal (non-boolean) store to the line: all subscriptions die and
    /// the callers fall back to regular coherence. Returns the nodes to
    /// invalidate.
    pub fn invalidate_all(&mut self, line: LineAddr) -> Vec<usize> {
        self.subs
            .remove(&line)
            .map(|s| s.into_iter().collect())
            .unwrap_or_default()
    }

    /// Subscribers of a line.
    pub fn subscribers(&self, line: LineAddr) -> Vec<usize> {
        self.subs
            .get(&line)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Total single-bit updates pushed.
    pub fn updates_pushed(&self) -> u64 {
        self.updates_pushed
    }

    /// Regular packets avoided by the optimization so far.
    pub fn packets_saved(&self) -> u64 {
        self.packets_saved
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const L: LineAddr = LineAddr(0x200);

    #[test]
    fn ll_sc_roundtrip() {
        let mut m = LlScMonitor::new();
        m.ll(L);
        assert_eq!(m.reservation(), Some(L));
        assert!(m.sc(L));
        assert_eq!(m.successes(), 1);
        // Reservation is consumed.
        assert!(!m.sc(L));
        assert_eq!(m.failures(), 1);
    }

    #[test]
    fn invalidation_kills_reservation() {
        let mut m = LlScMonitor::new();
        m.ll(L);
        m.on_invalidate(L);
        assert!(!m.sc(L));
        // Unrelated invalidation leaves it alone.
        m.ll(L);
        m.on_invalidate(LineAddr(0x999000));
        assert!(m.sc(L));
    }

    #[test]
    fn sc_to_different_line_fails() {
        let mut m = LlScMonitor::new();
        m.ll(L);
        assert!(!m.sc(LineAddr(0x300)));
    }

    #[test]
    fn barrier_releases_on_last_arrival() {
        let mut b = Barrier::new(3);
        assert!(!b.arrive());
        assert!(!b.arrive());
        assert_eq!(b.waiting(), 2);
        let s0 = b.sense();
        assert!(b.arrive());
        assert_eq!(b.sense(), !s0, "sense flips on release");
        assert_eq!(b.episodes(), 1);
        assert_eq!(b.waiting(), 0);
        // Reusable.
        assert!(!b.arrive());
        assert!(!b.arrive());
        assert!(b.arrive());
        assert_eq!(b.episodes(), 2);
    }

    #[test]
    fn spinlock_mutual_exclusion() {
        let mut l = SpinLock::new();
        assert!(l.try_acquire(1));
        assert!(!l.try_acquire(2));
        assert_eq!(l.holder(), Some(1));
        l.release(1);
        assert!(l.try_acquire(2));
        assert_eq!(l.acquisitions(), 2);
        assert_eq!(l.contended(), 1);
    }

    #[test]
    #[should_panic(expected = "release by non-holder")]
    fn wrong_release_panics() {
        let mut l = SpinLock::new();
        l.try_acquire(1);
        l.release(2);
    }

    #[test]
    fn subscriptions_push_to_others() {
        let mut hub = BooleanSubscriptionHub::new();
        hub.subscribe(L, 1);
        hub.subscribe(L, 2);
        hub.subscribe(L, 3);
        let targets = hub.push_update(L, 2);
        assert_eq!(targets, vec![1, 3]);
        assert_eq!(hub.updates_pushed(), 2);
        assert_eq!(hub.packets_saved(), 6);
    }

    #[test]
    fn unsubscribe_and_invalidate() {
        let mut hub = BooleanSubscriptionHub::new();
        hub.subscribe(L, 1);
        hub.subscribe(L, 2);
        hub.unsubscribe(L, 1);
        assert_eq!(hub.subscribers(L), vec![2]);
        let killed = hub.invalidate_all(L);
        assert_eq!(killed, vec![2]);
        assert!(hub.subscribers(L).is_empty());
        assert!(hub.push_update(L, 0).is_empty());
    }

    #[test]
    #[should_panic(expected = "needs participants")]
    fn empty_barrier_panics() {
        Barrier::new(0);
    }
}
