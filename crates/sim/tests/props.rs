//! Property tests for the simulation kernel.

use fsoi_sim::event::EventQueue;
use fsoi_sim::queue::BoundedQueue;
use fsoi_sim::rng::Xoshiro256StarStar;
use fsoi_sim::stats::{Histogram, Summary};
use fsoi_sim::Cycle;
use proptest::prelude::*;

proptest! {
    /// Events pop in time order, FIFO within a timestamp — regardless of
    /// push order.
    #[test]
    fn event_queue_is_a_stable_priority_queue(times in prop::collection::vec(0u64..50, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(Cycle(t), i);
        }
        let mut prev: Option<(Cycle, usize)> = None;
        while let Some((t, id)) = q.pop() {
            if let Some((pt, pid)) = prev {
                prop_assert!(t >= pt, "time order");
                if t == pt {
                    prop_assert!(id > pid, "FIFO within a cycle");
                }
            }
            prev = Some((t, id));
        }
    }

    /// A bounded queue is exactly a FIFO of its accepted elements and
    /// never exceeds capacity.
    #[test]
    fn bounded_queue_is_fifo(cap in 1usize..20, ops in prop::collection::vec(any::<bool>(), 1..300)) {
        let mut q = BoundedQueue::new(cap);
        let mut model = std::collections::VecDeque::new();
        let mut n = 0u32;
        for push in ops {
            if push {
                let accepted = q.push(n).is_ok();
                prop_assert_eq!(accepted, model.len() < cap);
                if accepted {
                    model.push_back(n);
                }
                n += 1;
            } else {
                prop_assert_eq!(q.pop(), model.pop_front());
            }
            prop_assert!(q.len() <= cap);
            prop_assert_eq!(q.len(), model.len());
        }
    }

    /// Histogram totals and means agree with a plain summary of the same
    /// observations.
    #[test]
    fn histogram_matches_summary(values in prop::collection::vec(0u64..500, 1..300)) {
        let mut h = Histogram::new(10, 20);
        let mut s = Summary::new();
        for &v in &values {
            h.record(v);
            s.record(v as f64);
        }
        prop_assert_eq!(h.count(), values.len() as u64);
        prop_assert!((h.mean() - s.mean()).abs() < 1e-9);
        let binned: u64 = (0..h.num_bins()).map(|i| h.bin(i)).sum::<u64>() + h.overflow();
        prop_assert_eq!(binned, h.count());
    }

    /// Summary::merge is order-insensitive and equals sequential feeding.
    #[test]
    fn summary_merge_associates(a in prop::collection::vec(-1e3f64..1e3, 1..100),
                                b in prop::collection::vec(-1e3f64..1e3, 1..100)) {
        let feed = |xs: &[f64]| {
            let mut s = Summary::new();
            for &x in xs { s.record(x); }
            s
        };
        let mut merged = feed(&a);
        merged.merge(&feed(&b));
        let mut all = a.clone();
        all.extend_from_slice(&b);
        let seq = feed(&all);
        prop_assert_eq!(merged.count(), seq.count());
        prop_assert!((merged.mean() - seq.mean()).abs() < 1e-6);
        prop_assert!((merged.variance() - seq.variance()).abs() < 1e-4);
    }

    /// Uniform draws respect their bounds and cover residues.
    #[test]
    fn rng_bounds(seed in any::<u64>(), bound in 1u64..1000) {
        let mut r = Xoshiro256StarStar::new(seed);
        for _ in 0..200 {
            prop_assert!(r.next_below(bound) < bound);
            let v = r.range_inclusive(10, 10 + bound);
            prop_assert!((10..=10 + bound).contains(&v));
        }
    }

    /// Slot rounding lands on a boundary at or after the input.
    #[test]
    fn slot_rounding_properties(t in 0u64..1_000_000, slot in 1u64..100) {
        let rounded = Cycle(t).round_up_to_slot(slot);
        prop_assert!(rounded.as_u64() >= t);
        prop_assert!(rounded.is_slot_boundary(slot));
        prop_assert!(rounded.as_u64() - t < slot);
    }
}
