//! The sweep benchmark behind `experiments bench`: measures wall time,
//! throughput and thread scaling of the default evaluation sweep, and
//! renders a schema-versioned `BENCH_sweep.json` that
//! `scripts/bench_gate.sh` compares against the committed baseline.
//!
//! The report is plain JSON written with one `"key": value` pair per
//! line so the shell gate can extract fields with `sed` — keep it that
//! way when adding fields (and bump [`SCHEMA`] on breaking changes).
//!
//! Wall-clock measurement lives in two sanctioned homes: this crate
//! (`fsoi-bench` is harness code, outside the simulation crates that
//! `fsoi-lint` rule D2 holds to simulated time) and
//! `fsoi_sim::telemetry`, the explicitly nondeterministic observability
//! plane D2 carves out by name. Timing never feeds back into any
//! simulated number — the byte-identity check below proves it.

use crate::runner::{self, CellSpec, SweepOptions};
use fsoi_cmp::batch;
use std::time::Instant;

/// Report schema identifier; bump on breaking shape changes.
///
/// v2 adds the simulated-throughput fields (`sim_cycles_total`,
/// `sim_cycles_per_sec`) and the per-cell wall breakdown
/// (`cell_ms_min` / `cell_ms_mean` / `cell_ms_max`). `cells_per_sec`
/// alone hides workload-size changes: halving `ops_per_core` doubles it
/// without the simulator getting any faster. Simulated cycles per
/// wall-second is the workload-invariant number.
///
/// v3 adds `cpus` — the host's available parallelism at run time. A
/// scaling curve is only interpretable against the cores it had to work
/// with: `max_speedup ≈ 1.0` is the *expected* honest result on a 1-CPU
/// container and a regression on an 8-core runner, and the gate needs to
/// tell those apart.
///
/// v4 makes `nodes` a gated field: with arbitrary-N sweeps possible
/// (64/256-node design-space grids), a report is only comparable to a
/// baseline swept at the *same* node count — throughput per cell varies
/// by orders of magnitude between sizes — so `scripts/bench_gate.sh`
/// rejects a current/baseline pair whose `nodes` disagree. The rendered
/// shape is unchanged; the bump exists so every baseline regenerated
/// under the nodes-checked regime identifies itself.
pub const SCHEMA: &str = "fsoi-bench-sweep/v4";

/// One thread-count sample of the scaling curve.
#[derive(Debug, Clone)]
pub struct ScalingPoint {
    /// Worker threads used.
    pub threads: usize,
    /// Wall time for the whole sweep, milliseconds.
    pub wall_ms: f64,
    /// Cells completed per second.
    pub cells_per_sec: f64,
    /// Speedup vs the serial (threads = 1) sample.
    pub speedup: f64,
}

/// The full sweep benchmark result.
#[derive(Debug, Clone)]
pub struct SweepBenchReport {
    /// Node count of the swept system.
    pub nodes: usize,
    /// Applications in the sweep.
    pub apps: usize,
    /// Networks per application.
    pub networks: usize,
    /// Total cells (`apps × networks`).
    pub cells: usize,
    /// Memory operations per core per cell.
    pub ops_per_core: u64,
    /// Sweep seed.
    pub seed: u64,
    /// Host CPUs available to the run (`available_parallelism`); gives
    /// the scaling curve its context (see [`SCHEMA`]).
    pub cpus: usize,
    /// Per-phase breakdown: building the cell list, ms.
    pub build_ms: f64,
    /// Per-phase breakdown: merging reports into the registry, ms.
    pub merge_ms: f64,
    /// Total simulated cycles across all cells (from the serial pass;
    /// identical for every thread count by the byte-identity property).
    pub sim_cycles_total: u64,
    /// Wall milliseconds of each cell in the serial pass, in cell order.
    pub cell_ms: Vec<f64>,
    /// Scaling curve, one point per requested thread count (the first
    /// point is the serial baseline).
    pub scaling: Vec<ScalingPoint>,
    /// Whether every parallel run's merged export was byte-identical to
    /// the serial fold (must always be true; the gate fails otherwise).
    pub byte_identical: bool,
}

impl SweepBenchReport {
    /// The serial (first) scaling point, or `None` for an empty curve —
    /// a report built from zero thread counts must serialize gracefully,
    /// not panic on `scaling[0]`.
    pub fn serial(&self) -> Option<&ScalingPoint> {
        self.scaling.first()
    }

    /// The best speedup achieved by any *parallel* point (threads > 1).
    ///
    /// The serial point's speedup is 1.0 by construction, so folding it
    /// in would floor this at 1.0 and hide a parallel-slower-than-serial
    /// regression behind the serial baseline. Excluding it, a curve of
    /// `[1.0@1, 0.9@8]` honestly reports 0.9 and the gate's hard check
    /// can fire. Returns 1.0 (the neutral value) when no parallel point
    /// was sampled — an empty or serial-only curve claims nothing about
    /// scaling, and 0.0 from a bare fold would read as "infinitely
    /// slower" and trip the gate.
    pub fn max_speedup(&self) -> f64 {
        let best = self
            .scaling
            .iter()
            .filter(|p| p.threads > 1)
            .map(|p| p.speedup)
            .fold(f64::NEG_INFINITY, f64::max);
        if best.is_finite() {
            best
        } else {
            1.0
        }
    }

    /// The largest thread count sampled.
    pub fn threads_max(&self) -> usize {
        self.scaling.iter().map(|p| p.threads).max().unwrap_or(1)
    }

    /// Simulated cycles retired per wall-second in the serial pass — the
    /// workload-size-invariant throughput number (see [`SCHEMA`]).
    pub fn sim_cycles_per_sec(&self) -> f64 {
        let secs = self.serial().map_or(0.0, |s| s.wall_ms / 1e3);
        if secs > 0.0 {
            self.sim_cycles_total as f64 / secs
        } else {
            0.0
        }
    }

    /// Fastest cell in the serial pass, milliseconds.
    pub fn cell_ms_min(&self) -> f64 {
        if self.cell_ms.is_empty() {
            return 0.0;
        }
        self.cell_ms.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Mean serial cell time, milliseconds.
    pub fn cell_ms_mean(&self) -> f64 {
        if self.cell_ms.is_empty() {
            return 0.0;
        }
        self.cell_ms.iter().sum::<f64>() / self.cell_ms.len() as f64
    }

    /// Slowest cell in the serial pass, milliseconds.
    pub fn cell_ms_max(&self) -> f64 {
        self.cell_ms.iter().copied().fold(0.0, f64::max)
    }

    /// Renders the schema-versioned JSON document (one key per line;
    /// see the module docs for why the shape is load-bearing).
    pub fn render_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!("  \"schema\": \"{SCHEMA}\",\n"));
        s.push_str(&format!("  \"nodes\": {},\n", self.nodes));
        s.push_str(&format!("  \"apps\": {},\n", self.apps));
        s.push_str(&format!("  \"networks\": {},\n", self.networks));
        s.push_str(&format!("  \"cells\": {},\n", self.cells));
        s.push_str(&format!("  \"ops_per_core\": {},\n", self.ops_per_core));
        s.push_str(&format!("  \"seed\": {},\n", self.seed));
        s.push_str(&format!("  \"cpus\": {},\n", self.cpus));
        s.push_str(&format!("  \"build_ms\": {:.3},\n", self.build_ms));
        s.push_str(&format!("  \"merge_ms\": {:.3},\n", self.merge_ms));
        let (serial_wall, serial_cps) = self
            .serial()
            .map_or((0.0, 0.0), |s| (s.wall_ms, s.cells_per_sec));
        s.push_str(&format!("  \"wall_ms_serial\": {serial_wall:.3},\n"));
        s.push_str(&format!("  \"cells_per_sec_serial\": {serial_cps:.4},\n"));
        s.push_str(&format!(
            "  \"sim_cycles_total\": {},\n",
            self.sim_cycles_total
        ));
        s.push_str(&format!(
            "  \"sim_cycles_per_sec\": {:.1},\n",
            self.sim_cycles_per_sec()
        ));
        s.push_str(&format!("  \"cell_ms_min\": {:.3},\n", self.cell_ms_min()));
        s.push_str(&format!(
            "  \"cell_ms_mean\": {:.3},\n",
            self.cell_ms_mean()
        ));
        s.push_str(&format!("  \"cell_ms_max\": {:.3},\n", self.cell_ms_max()));
        s.push_str(&format!("  \"threads_max\": {},\n", self.threads_max()));
        s.push_str(&format!("  \"max_speedup\": {:.4},\n", self.max_speedup()));
        s.push_str(&format!("  \"byte_identical\": {},\n", self.byte_identical));
        s.push_str("  \"scaling\": [\n");
        for (i, p) in self.scaling.iter().enumerate() {
            let comma = if i + 1 == self.scaling.len() { "" } else { "," };
            s.push_str(&format!(
                "    {{\"threads\": {}, \"wall_ms\": {:.3}, \"cells_per_sec\": {:.4}, \"speedup\": {:.4}}}{comma}\n",
                p.threads, p.wall_ms, p.cells_per_sec, p.speedup
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }
}

/// Runs the benchmark: the full application suite over the Figure 6
/// network set, once per entry of `threads` (the first entry should be
/// 1 — it becomes the serial baseline all speedups are relative to).
///
/// Every run's merged registry export is compared byte-for-byte against
/// the serial fold; a mismatch sets `byte_identical: false`, which
/// `scripts/bench_gate.sh` treats as a hard failure.
pub fn run(opts: SweepOptions, networks: &[&str], threads: &[usize]) -> SweepBenchReport {
    assert!(!threads.is_empty(), "need at least one thread count");
    let t0 = Instant::now();
    let cells: Vec<CellSpec> = runner::suite_cells(networks, opts);
    let build_ms = ms_since(t0);
    let apps = if networks.is_empty() {
        0
    } else {
        cells.len() / networks.len()
    };

    let mut scaling = Vec::new();
    let mut serial_bytes: Option<String> = None;
    let mut merge_ms = 0.0;
    let mut byte_identical = true;
    let mut sim_cycles_total = 0;
    let mut cell_ms = Vec::new();
    for (i, &t) in threads.iter().enumerate() {
        // The serial pass runs cell-by-cell with a timer around each, to
        // feed the per-cell breakdown; parallel passes go through the
        // executor. Both produce byte-identical reports (checked below).
        let t1 = Instant::now();
        let batch = if i == 0 {
            let (reports, per_cell) = runner::run_cells_serial_timed(&cells);
            sim_cycles_total = reports.iter().map(|r| r.cycles).sum();
            cell_ms = per_cell;
            reports
        } else {
            runner::run_cells_threads(&cells, t)
        };
        let wall_ms = ms_since(t1);
        let t2 = Instant::now();
        let bytes = batch::merge_reports(&batch).to_jsonl();
        if i == 0 {
            merge_ms = ms_since(t2);
            serial_bytes = Some(bytes);
        } else if serial_bytes.as_deref() != Some(bytes.as_str()) {
            byte_identical = false;
        }
        let secs = wall_ms / 1e3;
        let cells_per_sec = if secs > 0.0 {
            cells.len() as f64 / secs
        } else {
            0.0
        };
        let speedup = scaling
            .first()
            .map(|s: &ScalingPoint| s.wall_ms / wall_ms.max(1e-9))
            .unwrap_or(1.0);
        scaling.push(ScalingPoint {
            threads: t,
            wall_ms,
            cells_per_sec,
            speedup,
        });
    }

    SweepBenchReport {
        nodes: opts.nodes,
        apps,
        networks: networks.len(),
        cells: cells.len(),
        ops_per_core: opts.ops_per_core,
        seed: opts.seed,
        cpus: host_cpus(),
        build_ms,
        merge_ms,
        sim_cycles_total,
        cell_ms,
        scaling,
        byte_identical,
    }
}

fn ms_since(t: Instant) -> f64 {
    t.elapsed().as_secs_f64() * 1e3
}

/// The host's available parallelism (1 when undeterminable).
pub fn host_cpus() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_report() -> SweepBenchReport {
        SweepBenchReport {
            nodes: 16,
            apps: 16,
            networks: 5,
            cells: 80,
            ops_per_core: 1500,
            seed: 2010,
            cpus: 8,
            build_ms: 0.5,
            merge_ms: 1.25,
            sim_cycles_total: 48_000_000,
            cell_ms: vec![10.0, 12.5, 15.0],
            scaling: vec![
                ScalingPoint {
                    threads: 1,
                    wall_ms: 1000.0,
                    cells_per_sec: 80.0,
                    speedup: 1.0,
                },
                ScalingPoint {
                    threads: 8,
                    wall_ms: 400.0,
                    cells_per_sec: 200.0,
                    speedup: 2.5,
                },
            ],
            byte_identical: true,
        }
    }

    #[test]
    fn json_has_one_gate_field_per_line() {
        let json = fake_report().render_json();
        for key in [
            "\"schema\": \"fsoi-bench-sweep/v4\"",
            "\"nodes\": 16",
            "\"cells\": 80",
            "\"cpus\": 8",
            "\"wall_ms_serial\": 1000.000",
            "\"cells_per_sec_serial\": 80.0000",
            "\"sim_cycles_total\": 48000000",
            "\"sim_cycles_per_sec\": 48000000.0",
            "\"cell_ms_min\": 10.000",
            "\"cell_ms_mean\": 12.500",
            "\"cell_ms_max\": 15.000",
            "\"threads_max\": 8",
            "\"max_speedup\": 2.5000",
            "\"byte_identical\": true",
        ] {
            assert!(
                json.lines().any(|l| l.contains(key)),
                "missing line with {key} in:\n{json}"
            );
        }
        assert!(json.starts_with("{\n") && json.ends_with("}\n"));
    }

    #[test]
    fn derived_fields_come_from_the_curve() {
        let r = fake_report();
        assert_eq!(r.serial().map(|s| s.threads), Some(1));
        assert_eq!(r.threads_max(), 8);
        assert!((r.max_speedup() - 2.5).abs() < 1e-12);
        // 48M simulated cycles over a 1s serial pass.
        assert!((r.sim_cycles_per_sec() - 48_000_000.0).abs() < 1e-6);
        assert!((r.cell_ms_min() - 10.0).abs() < 1e-12);
        assert!((r.cell_ms_mean() - 12.5).abs() < 1e-12);
        assert!((r.cell_ms_max() - 15.0).abs() < 1e-12);
    }

    #[test]
    fn empty_scaling_curve_is_guarded() {
        let r = SweepBenchReport {
            scaling: Vec::new(),
            cell_ms: Vec::new(),
            ..fake_report()
        };
        // An empty curve must neither panic (serial() used to index
        // scaling[0]) nor serialize a nonsense speedup (the bare fold
        // started at 0.0).
        assert!(r.serial().is_none());
        assert!((r.max_speedup() - 1.0).abs() < 1e-12);
        assert_eq!(r.threads_max(), 1);
        assert_eq!(r.sim_cycles_per_sec(), 0.0);
        let json = r.render_json();
        assert!(json.lines().any(|l| l.contains("\"max_speedup\": 1.0000")));
        assert!(json
            .lines()
            .any(|l| l.contains("\"wall_ms_serial\": 0.000")));
    }

    #[test]
    fn tiny_sweep_end_to_end_is_byte_identical() {
        let opts = SweepOptions {
            ops_per_core: 30,
            ..SweepOptions::quick_16()
        };
        let report = run(opts, &["fsoi", "mesh"], &[1, 2]);
        assert!(report.byte_identical);
        assert_eq!(report.cells, report.apps * report.networks);
        assert_eq!(report.scaling.len(), 2);
        assert!((report.scaling[0].speedup - 1.0).abs() < 1e-12);
        assert!(report.sim_cycles_total > 0, "serial pass sums cell clocks");
        assert_eq!(report.cell_ms.len(), report.cells);
        assert!(report.cell_ms_min() <= report.cell_ms_mean());
        assert!(report.cell_ms_mean() <= report.cell_ms_max());
    }
}
