//! The confirmation channel (§4.3.2, §5.1).
//!
//! Each node dedicates one VCSEL purely to *confirmations*: upon clean
//! receipt of a packet in cycle `n`, the receiver beams a confirmation to
//! the sender that arrives in cycle `n + 2`. By construction confirmations
//! never collide: at most one packet per lane is cleanly received per node
//! per slot, so at most one confirmation per lane is due back at any node
//! in a given cycle.
//!
//! Beyond acknowledging receipt, the channel carries two optimizations:
//!
//! * **Piggybacked booleans** — a requester can reserve a *mini-cycle* (one
//!   of the 12 optical bit times inside a CPU cycle) and the directory can
//!   answer `ll`/`sc` boolean values through it, forming one-bit
//!   "subscriptions" updated without regular packets (§5.1);
//! * **Retransmission hints** — after a data-lane collision the receiver
//!   selects a winner and notifies it over this channel (§5.2).

use crate::topology::NodeId;
use fsoi_sim::event::EventQueue;
use fsoi_sim::trace::{self, TraceEvent};
use fsoi_sim::Cycle;
use std::collections::BTreeMap;

/// What a confirmation beam can carry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfirmationKind {
    /// Plain acknowledgment of packet `packet_id`.
    Receipt {
        /// The confirmed packet.
        packet_id: u64,
    },
    /// A retransmission hint: "you won the next slot" (§5.2).
    WinnerHint {
        /// The slot (cycle of its start) the winner may use.
        slot_start: Cycle,
    },
    /// A boolean value delivered on a reserved mini-cycle (§5.1).
    BooleanUpdate {
        /// The reserved mini-cycle index that identifies the subscription.
        mini_cycle: u8,
        /// The boolean payload.
        value: bool,
    },
}

impl ConfirmationKind {
    /// Short wire name used in trace events.
    pub fn name(&self) -> &'static str {
        match self {
            ConfirmationKind::Receipt { .. } => "receipt",
            ConfirmationKind::WinnerHint { .. } => "hint",
            ConfirmationKind::BooleanUpdate { .. } => "bool",
        }
    }
}

/// A confirmation in flight.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Confirmation {
    /// Who sent the confirmation (the receiver of the original packet).
    pub from: NodeId,
    /// Whom it is addressed to.
    pub to: NodeId,
    /// Payload.
    pub kind: ConfirmationKind,
}

/// The chip-wide confirmation channel: schedules beams and enforces the
/// no-collision invariant.
#[derive(Debug)]
pub struct ConfirmationChannel {
    delay: u64,
    in_flight: EventQueue<Confirmation>,
    /// Booked arrival (cycle, dst, from) pairs, to assert the invariant
    /// that no two *receipt* confirmations from the same node arrive at the
    /// same destination cycle. (Distinct sources may confirm to the same
    /// node in a cycle — they are distinct beams caught by the dedicated
    /// confirmation receiver, which by design listens per-sender.)
    sent: u64,
}

impl ConfirmationChannel {
    /// Creates a channel with the configured fixed delay (paper: 2).
    pub fn new(delay: u64) -> Self {
        ConfirmationChannel {
            delay,
            in_flight: EventQueue::new(),
            sent: 0,
        }
    }

    /// The fixed receive-to-confirm delay.
    pub fn delay(&self) -> u64 {
        self.delay
    }

    /// Number of confirmations sent so far (for traffic/energy accounting).
    pub fn sent(&self) -> u64 {
        self.sent
    }

    /// Schedules a confirmation for a packet received at `received_at`; it
    /// arrives `delay` cycles later.
    pub fn send(&mut self, received_at: Cycle, confirmation: Confirmation) {
        self.in_flight.push(received_at + self.delay, confirmation);
        self.sent += 1;
        trace::emit_with(received_at, || TraceEvent::Confirm {
            src: confirmation.from.0 as u64,
            dst: confirmation.to.0 as u64,
            kind: confirmation.kind.name().to_string(),
        });
    }

    /// Schedules a confirmation with an explicit arrival time (used by the
    /// winner-hint path, which must land before the next data slot).
    pub fn send_at(&mut self, arrive_at: Cycle, confirmation: Confirmation) {
        self.in_flight.push(arrive_at, confirmation);
        self.sent += 1;
        trace::emit_with(arrive_at, || TraceEvent::Confirm {
            src: confirmation.from.0 as u64,
            dst: confirmation.to.0 as u64,
            kind: confirmation.kind.name().to_string(),
        });
    }

    /// Pops every confirmation due at or before `now`.
    pub fn drain_due(&mut self, now: Cycle) -> Vec<(Cycle, Confirmation)> {
        let mut out = Vec::new();
        while let Some(item) = self.in_flight.pop_due(now) {
            out.push(item);
        }
        out
    }

    /// Number of confirmations still in flight.
    pub fn pending(&self) -> usize {
        self.in_flight.len()
    }

    /// Arrival cycle of the earliest in-flight confirmation, if any (the
    /// fast-forward scheduler must not skip past a drain).
    pub fn next_due(&self) -> Option<Cycle> {
        self.in_flight.peek_time()
    }
}

/// Registry of mini-cycle reservations for boolean subscriptions (§5.1).
///
/// A CPU cycle contains several optical *mini-cycles* (12 in the default
/// configuration). A requester reserves one; the directory then answers —
/// and later *updates* — the subscribed boolean purely by pulsing the
/// confirmation laser in that mini-cycle, identified by relative position.
#[derive(Debug)]
pub struct MiniCycleRegistry {
    mini_cycles_per_cycle: u8,
    /// (owner node → allocated mini-cycles with a client tag).
    reservations: BTreeMap<NodeId, BTreeMap<u8, u64>>,
}

impl MiniCycleRegistry {
    /// Creates a registry with the given number of mini-cycles per CPU
    /// cycle (the per-VCSEL bits-per-cycle; 12 in Table 3).
    pub fn new(mini_cycles_per_cycle: u8) -> Self {
        assert!(mini_cycles_per_cycle > 0);
        MiniCycleRegistry {
            mini_cycles_per_cycle,
            reservations: BTreeMap::new(),
        }
    }

    /// Reserves the first free mini-cycle on `node`'s confirmation
    /// receiver, tagging it with a client-supplied id (e.g. a lock
    /// address). Returns `None` when all mini-cycles are taken.
    pub fn reserve(&mut self, node: NodeId, tag: u64) -> Option<u8> {
        let slots = self.reservations.entry(node).or_default();
        let mc = (0..self.mini_cycles_per_cycle).find(|mc| !slots.contains_key(mc))?;
        slots.insert(mc, tag);
        Some(mc)
    }

    /// Releases a reservation. Returns the tag it carried, if any.
    pub fn release(&mut self, node: NodeId, mini_cycle: u8) -> Option<u64> {
        self.reservations
            .get_mut(&node)
            .and_then(|slots| slots.remove(&mini_cycle))
    }

    /// Looks up the tag bound to a node's mini-cycle.
    pub fn tag_of(&self, node: NodeId, mini_cycle: u8) -> Option<u64> {
        self.reservations
            .get(&node)
            .and_then(|slots| slots.get(&mini_cycle))
            .copied()
    }

    /// Number of active reservations at `node`.
    pub fn active(&self, node: NodeId) -> usize {
        self.reservations.get(&node).map_or(0, |s| s.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn confirmation_arrives_after_fixed_delay() {
        let mut ch = ConfirmationChannel::new(2);
        let c = Confirmation {
            from: NodeId(1),
            to: NodeId(0),
            kind: ConfirmationKind::Receipt { packet_id: 7 },
        };
        ch.send(Cycle(10), c);
        assert_eq!(ch.next_due(), Some(Cycle(12)));
        assert!(ch.drain_due(Cycle(11)).is_empty());
        let due = ch.drain_due(Cycle(12));
        assert_eq!(due.len(), 1);
        assert_eq!(due[0].0, Cycle(12));
        assert_eq!(due[0].1, c);
        assert_eq!(ch.sent(), 1);
        assert_eq!(ch.pending(), 0);
        assert_eq!(ch.next_due(), None);
    }

    #[test]
    fn drain_due_returns_everything_due() {
        let mut ch = ConfirmationChannel::new(2);
        for i in 0..5u64 {
            ch.send(
                Cycle(i),
                Confirmation {
                    from: NodeId(1),
                    to: NodeId(0),
                    kind: ConfirmationKind::Receipt { packet_id: i },
                },
            );
        }
        assert_eq!(ch.pending(), 5);
        let due = ch.drain_due(Cycle(4));
        assert_eq!(due.len(), 3); // arrivals at 2, 3, 4
        assert_eq!(ch.pending(), 2);
    }

    #[test]
    fn winner_hint_uses_explicit_time() {
        let mut ch = ConfirmationChannel::new(2);
        ch.send_at(
            Cycle(9),
            Confirmation {
                from: NodeId(2),
                to: NodeId(5),
                kind: ConfirmationKind::WinnerHint {
                    slot_start: Cycle(10),
                },
            },
        );
        let due = ch.drain_due(Cycle(9));
        assert_eq!(due.len(), 1);
        match due[0].1.kind {
            ConfirmationKind::WinnerHint { slot_start } => assert_eq!(slot_start, Cycle(10)),
            other => panic!("unexpected kind {other:?}"),
        }
    }

    #[test]
    fn minicycle_reserve_release() {
        let mut reg = MiniCycleRegistry::new(12);
        let a = reg.reserve(NodeId(3), 100).unwrap();
        let b = reg.reserve(NodeId(3), 200).unwrap();
        assert_ne!(a, b);
        assert_eq!(reg.active(NodeId(3)), 2);
        assert_eq!(reg.tag_of(NodeId(3), a), Some(100));
        assert_eq!(reg.release(NodeId(3), a), Some(100));
        assert_eq!(reg.tag_of(NodeId(3), a), None);
        assert_eq!(reg.active(NodeId(3)), 1);
        // Released mini-cycle is reusable.
        let c = reg.reserve(NodeId(3), 300).unwrap();
        assert_eq!(c, a);
    }

    #[test]
    fn minicycles_exhaust() {
        let mut reg = MiniCycleRegistry::new(2);
        assert!(reg.reserve(NodeId(0), 1).is_some());
        assert!(reg.reserve(NodeId(0), 2).is_some());
        assert!(reg.reserve(NodeId(0), 3).is_none());
        // Other nodes have their own budget.
        assert!(reg.reserve(NodeId(1), 4).is_some());
    }

    #[test]
    fn boolean_update_kind_roundtrips() {
        let k = ConfirmationKind::BooleanUpdate {
            mini_cycle: 5,
            value: true,
        };
        match k {
            ConfirmationKind::BooleanUpdate { mini_cycle, value } => {
                assert_eq!(mini_cycle, 5);
                assert!(value);
            }
            _ => unreachable!(),
        }
    }
}
