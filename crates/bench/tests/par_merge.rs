//! The tentpole determinism property: a sweep executed on the parallel
//! executor, merged by the deterministic index-keyed reduction, exports
//! byte-identically to the serial fold — for any thread count and any
//! sweep shape, including empty and single-cell sweeps.

use fsoi_bench::runner::{run_cells_threads, CellSpec, SweepOptions, MAX_CYCLES};
use fsoi_check::{checker, select, vec_of};
use fsoi_cmp::batch::{merge_reports, run_batch, run_batch_forked, BatchCell};
use fsoi_cmp::cache::CellCache;
use fsoi_cmp::workload::AppProfile;
use fsoi_sim::par;

/// Small per-cell workload: property cases run many sweeps in debug.
fn tiny_opts(seed: u64) -> SweepOptions {
    SweepOptions {
        ops_per_core: 30,
        seed,
        ..SweepOptions::quick_16()
    }
}

fn cells_for(
    app_names: &[&'static str],
    net_names: &[&'static str],
    opts: SweepOptions,
) -> Vec<CellSpec> {
    app_names
        .iter()
        .flat_map(|a| {
            let app = AppProfile::by_name(a).expect("suite app");
            net_names
                .iter()
                .map(move |n| CellSpec::new(app, n, opts))
                .collect::<Vec<_>>()
        })
        .collect()
}

/// fsoi-check property: for random sweep shapes (including empty and
/// single-cell), random seeds and random thread counts, the merged
/// parallel export is byte-identical to the serial fold.
#[test]
fn merged_parallel_export_matches_serial_fold() {
    let apps: Vec<&'static str> = AppProfile::suite().iter().map(|a| a.name).collect();
    let nets: &[&'static str] = &["fsoi", "mesh", "L0"];
    checker!().cases(5).check(
        "merged_parallel_export_matches_serial_fold",
        (
            vec_of(select(&apps), 0..4),
            vec_of(select(nets), 0..3),
            0u64..1_000,
            select(&[2usize, 3, 8]),
        ),
        |(app_names, net_names, seed, threads)| {
            let opts = tiny_opts(3_000 + *seed);
            let cells = cells_for(app_names, net_names, opts);
            let serial = run_cells_threads(&cells, 1);
            let expected = merge_reports(&serial).to_jsonl();
            let parallel = run_cells_threads(&cells, *threads);
            let cycles = |rs: &[fsoi_cmp::metrics::RunReport]| -> Vec<u64> {
                rs.iter().map(|r| r.cycles).collect()
            };
            assert_eq!(
                cycles(&parallel),
                cycles(&serial),
                "reports must come back in cell order"
            );
            assert_eq!(
                merge_reports(&parallel).to_jsonl(),
                expected,
                "merged export must be byte-identical ({} cells, {} threads)",
                cells.len(),
                threads
            );
        },
    );
}

/// Pinned acceptance test: the same-seed sweep export is byte-identical
/// for thread counts 1, 2 and 8.
#[test]
fn sweep_output_byte_identical_across_thread_counts() {
    let opts = SweepOptions {
        ops_per_core: 200,
        ..SweepOptions::quick_16()
    };
    let cells = cells_for(&["ba", "mp", "fft", "oc"], &["fsoi", "mesh"], opts);
    let serial = merge_reports(&run_cells_threads(&cells, 1)).to_jsonl();
    assert!(!serial.is_empty(), "the serial export carries metrics");
    for threads in [2usize, 8] {
        let merged = merge_reports(&run_cells_threads(&cells, threads)).to_jsonl();
        assert_eq!(merged, serial, "threads = {threads}");
    }
}

/// Empty and single-cell sweeps are valid degenerate shapes.
#[test]
fn empty_and_single_cell_sweeps_merge() {
    let opts = tiny_opts(2010);
    assert_eq!(merge_reports(&run_cells_threads(&[], 8)).to_jsonl(), "");
    let one = cells_for(&["tsp"], &["fsoi"], opts);
    let serial = merge_reports(&run_cells_threads(&one, 1)).to_jsonl();
    let parallel = merge_reports(&run_cells_threads(&one, 8)).to_jsonl();
    assert!(!serial.is_empty());
    assert_eq!(parallel, serial);
}

/// The tentpole's two fast paths pinned against the cold path: a
/// template-forked batch and a cache-hit batch both export the exact
/// bytes of a cold serial run, for thread counts 1, 2 and 8.
#[test]
fn forked_and_cached_paths_match_the_cold_bytes() {
    // Seed variants of the same (config, app) cells form forkable
    // groups; one odd cell stays a singleton (cold path inside
    // `run_batch_forked`).
    let mut cells: Vec<BatchCell> = Vec::new();
    for seed in [2010, 2011, 2012] {
        for spec in cells_for(&["mp"], &["fsoi", "mesh"], tiny_opts(seed)) {
            cells.push(spec.to_batch_cell());
        }
    }
    cells.push(cells_for(&["fft"], &["L0"], tiny_opts(7))[0].to_batch_cell());

    let cold = merge_reports(&run_batch(&cells, 1, MAX_CYCLES)).to_jsonl();
    assert!(!cold.is_empty(), "the cold export carries metrics");
    for threads in [1usize, 2, 8] {
        let forked = merge_reports(&run_batch_forked(&cells, threads, MAX_CYCLES)).to_jsonl();
        assert_eq!(forked, cold, "forked path, threads = {threads}");
    }

    // Explicit cache directory — the `FSOI_CACHE` env var belongs to the
    // cell_cache test binary, not this one. Fill the cache serially,
    // then rerun threaded: every cell is a hit, and the merged bytes
    // must not move.
    let dir = std::path::PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("par_merge_cache");
    let _ = std::fs::remove_dir_all(&dir);
    let cache = CellCache::at(&dir);
    let run_cached = |threads: usize| {
        let reports = par::sweep(cells.len(), threads, |i| {
            cache.run_or(&cells[i].config, &cells[i].app, MAX_CYCLES, || {
                cells[i].run_cold(MAX_CYCLES)
            })
        });
        merge_reports(&reports).to_jsonl()
    };
    assert_eq!(run_cached(1), cold, "cold fill through the cache");
    for threads in [2usize, 8] {
        assert_eq!(
            run_cached(threads),
            cold,
            "cache-hit path, threads = {threads}"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// The multi-word-mask acceptance pin: a 256-node sweep — every sharer
/// mask, slot table and occupancy bitmask exercising all four `NodeMask`
/// words — through the forked and cached fast paths still exports the
/// cold serial bytes at thread counts 1, 2 and 8.
#[test]
fn forked_and_cached_256_node_sweep_matches_the_cold_bytes() {
    let opts_256 = |seed: u64| SweepOptions {
        ops_per_core: 8,
        seed,
        ..SweepOptions::quick_256()
    };
    // Two seed variants form a forkable group per (config, app) pair;
    // fsoi and crossbar cover the two newly-scaled network families.
    let mut cells: Vec<BatchCell> = Vec::new();
    for seed in [2010, 2011] {
        for spec in cells_for(&["mp"], &["fsoi", "crossbar"], opts_256(seed)) {
            cells.push(spec.to_batch_cell());
        }
    }

    let cold = merge_reports(&run_batch(&cells, 1, MAX_CYCLES)).to_jsonl();
    assert!(!cold.is_empty(), "the cold export carries metrics");
    for threads in [1usize, 2, 8] {
        let forked = merge_reports(&run_batch_forked(&cells, threads, MAX_CYCLES)).to_jsonl();
        assert_eq!(forked, cold, "forked path, threads = {threads}");
    }

    let dir = std::path::PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("par_merge_cache_256");
    let _ = std::fs::remove_dir_all(&dir);
    let cache = CellCache::at(&dir);
    let run_cached = |threads: usize| {
        let reports = par::sweep(cells.len(), threads, |i| {
            cache.run_or(&cells[i].config, &cells[i].app, MAX_CYCLES, || {
                cells[i].run_cold(MAX_CYCLES)
            })
        });
        merge_reports(&reports).to_jsonl()
    };
    assert_eq!(run_cached(1), cold, "cold fill through the cache");
    for threads in [2usize, 8] {
        assert_eq!(
            run_cached(threads),
            cold,
            "cache-hit path, threads = {threads}"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Poison-recovery regression at the batch layer: a panic inside one
/// cell must propagate to the caller (never wedge the sweep — the
/// pre-recovery failure mode was every surviving worker unwinding on a
/// poisoned queue), and the very next sweep over the same cells must
/// still export the exact serial bytes. See `fsoi_sim::par`'s `lock()`
/// helper for why recovering the poisoned guard is sound.
#[test]
fn panicking_cell_propagates_and_the_next_sweep_is_exact() {
    let cells = cells_for(&["ba", "mp", "fft", "oc"], &["fsoi", "mesh"], tiny_opts(99));
    let expected = merge_reports(&run_cells_threads(&cells, 1)).to_jsonl();
    for round in 0..3 {
        let poisoned = std::panic::catch_unwind(|| {
            par::sweep(cells.len(), 4, |i| {
                if i == 3 {
                    panic!("seeded cell failure, round {round}");
                }
                cells[i].to_batch_cell().run(MAX_CYCLES)
            })
        });
        let payload = poisoned.expect_err("the cell panic must reach the caller");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(
            msg.contains("seeded cell failure"),
            "the original payload survives: {msg:?}"
        );
        let merged = merge_reports(&run_cells_threads(&cells, 4)).to_jsonl();
        assert_eq!(merged, expected, "sweep after a poisoned round {round}");
    }
}

/// The `FSOI_THREADS` knob selects the default worker count without
/// changing a single output byte. (This test owns the env var: nothing
/// else in this binary reads it.)
#[test]
fn fsoi_threads_knob_is_not_observable_in_output() {
    // Two seeds of the same cells so the forked path has real groups.
    let mut cells = cells_for(&["mp", "rx"], &["fsoi"], tiny_opts(77));
    cells.extend(cells_for(&["mp", "rx"], &["fsoi"], tiny_opts(78)));
    let batch: Vec<BatchCell> = cells.iter().map(CellSpec::to_batch_cell).collect();
    let expected = merge_reports(&run_cells_threads(&cells, 1)).to_jsonl();
    for knob in ["1", "2", "8"] {
        std::env::set_var("FSOI_THREADS", knob);
        assert_eq!(par::thread_count().to_string(), knob);
        let reports = par::sweep(cells.len(), par::thread_count(), |i| {
            cells[i].to_batch_cell().run(MAX_CYCLES)
        });
        assert_eq!(
            merge_reports(&reports).to_jsonl(),
            expected,
            "FSOI_THREADS={knob}"
        );
        let forked = run_batch_forked(&batch, par::thread_count(), MAX_CYCLES);
        assert_eq!(
            merge_reports(&forked).to_jsonl(),
            expected,
            "forked path, FSOI_THREADS={knob}"
        );
    }
    std::env::remove_var("FSOI_THREADS");
}
