//! # fsoi — intra-chip free-space optical interconnect
//!
//! A full reproduction of *"An Intra-Chip Free-Space Optical Interconnect"*
//! (Xue et al., ISCA 2010): the FSOI network architecture, its optical
//! physical layer, an electrical mesh baseline, a MESI directory coherence
//! substrate, and a chip-multiprocessor simulator that regenerates every
//! table and figure of the paper's evaluation.
//!
//! This facade crate re-exports the workspace's sub-crates under one
//! namespace:
//!
//! * [`sim`] — deterministic simulation kernel (cycles, events, RNG, stats),
//! * [`optics`] — VCSELs, photodetectors, Gaussian-beam paths, link budgets,
//! * [`net`] — the FSOI interconnect itself (the paper's contribution),
//! * [`mesh`] — the packet-switched electrical mesh baseline,
//! * [`coherence`] — the MESI directory protocol of the paper's Table 2,
//! * [`cmp`] — the CMP system simulator, workloads, and energy model.
//!
//! # Quickstart
//!
//! ```
//! use fsoi::net::config::FsoiConfig;
//! use fsoi::net::network::FsoiNetwork;
//! use fsoi::net::packet::{Packet, PacketClass};
//! use fsoi::net::topology::NodeId;
//!
//! // A 16-node FSOI network with the paper's default configuration.
//! let mut net = FsoiNetwork::new(FsoiConfig::nodes(16), 42);
//!
//! // Beam a data packet from node 0 to node 5 and run until delivery.
//! net.inject(Packet::new(NodeId(0), NodeId(5), PacketClass::Data, 0)).unwrap();
//! while net.delivered_count() == 0 {
//!     net.tick();
//! }
//! let out = net.drain_delivered();
//! assert_eq!(out[0].packet.dst, NodeId(5));
//! ```
//!
//! To reproduce a paper experiment end to end, run the harness in
//! `crates/bench`:
//!
//! ```text
//! cargo run --release -p fsoi-bench --bin experiments -- table1
//! cargo run --release -p fsoi-bench --bin experiments -- fig6
//! ```

pub use fsoi_cmp as cmp;
pub use fsoi_coherence as coherence;
pub use fsoi_mesh as mesh;
pub use fsoi_net as net;
pub use fsoi_optics as optics;
pub use fsoi_ring as ring;
pub use fsoi_sim as sim;
