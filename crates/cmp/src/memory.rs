//! Off-chip memory channels.
//!
//! Table 3: memory latency 200 cycles, address-interleaved controllers —
//! 4 channels in the 16-node system, 8 in the 64-node system, each
//! serving one region of nodes and attached to the network at a
//! representative node. Table 4 studies two aggregate bandwidths:
//! 8.8 GB/s (the paper's default for the main results) and 52.8 GB/s.

use fsoi_sim::Cycle;

/// One memory channel: a fixed access latency plus a bandwidth-limited
/// service pipe.
#[derive(Debug, Clone)]
pub struct MemoryChannel {
    /// The network node this controller attaches to.
    pub node: usize,
    bytes_per_cycle: f64,
    latency: u64,
    busy_until: Cycle,
    served: u64,
    queued_cycles: u64,
}

impl MemoryChannel {
    /// Creates a channel attached at `node`.
    pub fn new(node: usize, bytes_per_cycle: f64, latency: u64) -> Self {
        assert!(bytes_per_cycle > 0.0);
        MemoryChannel {
            node,
            bytes_per_cycle,
            latency,
            busy_until: Cycle::ZERO,
            served: 0,
            queued_cycles: 0,
        }
    }

    /// Accepts a `bytes`-byte transfer at `now`; returns its completion
    /// time (queuing behind earlier transfers + transfer + access
    /// latency).
    pub fn request(&mut self, now: Cycle, bytes: u64) -> Cycle {
        let start = self.busy_until.max(now);
        self.queued_cycles += start - now;
        let service = (bytes as f64 / self.bytes_per_cycle).ceil() as u64;
        self.busy_until = start + service;
        self.served += 1;
        self.busy_until + self.latency
    }

    /// Transfers served.
    pub fn served(&self) -> u64 {
        self.served
    }

    /// Total cycles requests waited for the channel.
    pub fn queued_cycles(&self) -> u64 {
        self.queued_cycles
    }
}

/// The full memory system: interleaved channels mapped over nodes.
#[derive(Debug, Clone)]
pub struct MemorySystem {
    channels: Vec<MemoryChannel>,
    nodes: usize,
}

impl MemorySystem {
    /// Builds the system: `total_gb_per_s` split evenly over `channels`
    /// controllers placed at evenly spaced nodes of an `nodes`-node system
    /// clocked at `clock_hz`.
    pub fn new(
        nodes: usize,
        channels: usize,
        total_gb_per_s: f64,
        latency: u64,
        clock_hz: f64,
    ) -> Self {
        assert!(channels >= 1 && nodes >= channels);
        let per_channel_bytes_per_cycle = total_gb_per_s * 1e9 / channels as f64 / clock_hz;
        let step = nodes / channels;
        MemorySystem {
            channels: (0..channels)
                .map(|c| MemoryChannel::new(c * step, per_channel_bytes_per_cycle, latency))
                .collect(),
            nodes,
        }
    }

    /// The paper's 16-node default: 4 channels, 8.8 GB/s total,
    /// 200-cycle latency at 3.3 GHz.
    pub fn paper_16(total_gb_per_s: f64) -> Self {
        MemorySystem::new(16, 4, total_gb_per_s, 200, 3.3e9)
    }

    /// The paper's 64-node default: 8 channels.
    pub fn paper_64(total_gb_per_s: f64) -> Self {
        MemorySystem::new(64, 8, total_gb_per_s, 200, 3.3e9)
    }

    /// The channel index serving a directory slice (address region).
    pub fn channel_of(&self, dir_node: usize) -> usize {
        assert!(dir_node < self.nodes);
        dir_node * self.channels.len() / self.nodes
    }

    /// The network node where a directory's memory controller attaches.
    pub fn controller_node(&self, dir_node: usize) -> usize {
        self.channels[self.channel_of(dir_node)].node
    }

    /// Issues a line-sized request on behalf of `dir_node`'s slice and
    /// returns its completion time.
    pub fn request(&mut self, dir_node: usize, now: Cycle, bytes: u64) -> Cycle {
        let c = self.channel_of(dir_node);
        self.channels[c].request(now, bytes)
    }

    /// Total transfers across all channels.
    pub fn served(&self) -> u64 {
        self.channels.iter().map(|c| c.served()).sum()
    }

    /// Total channel queuing cycles.
    pub fn queued_cycles(&self) -> u64 {
        self.channels.iter().map(|c| c.queued_cycles()).sum()
    }

    /// Number of channels.
    pub fn channel_count(&self) -> usize {
        self.channels.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_request_costs_service_plus_latency() {
        let mut ch = MemoryChannel::new(0, 2.667, 200); // ≈ 8.8 GB/s ÷ 4 at 3.3 GHz
        let done = ch.request(Cycle(0), 32);
        // 32 B at 2.667 B/cycle = 12 cycles service + 200 latency.
        assert_eq!(done, Cycle(212));
        assert_eq!(ch.served(), 1);
        assert_eq!(ch.queued_cycles(), 0);
    }

    #[test]
    fn back_to_back_requests_queue_on_bandwidth() {
        let mut ch = MemoryChannel::new(0, 2.667, 200);
        let a = ch.request(Cycle(0), 32);
        let b = ch.request(Cycle(0), 32);
        assert_eq!(b - a, 12, "second transfer waits one service time");
        assert_eq!(ch.queued_cycles(), 12);
    }

    #[test]
    fn higher_bandwidth_shrinks_service() {
        let mut slow = MemoryChannel::new(0, 2.667, 200);
        let mut fast = MemoryChannel::new(0, 16.0, 200);
        let mut done_slow = Cycle(0);
        let mut done_fast = Cycle(0);
        for _ in 0..10 {
            done_slow = slow.request(Cycle(0), 32);
            done_fast = fast.request(Cycle(0), 32);
        }
        assert!(done_fast < done_slow);
    }

    #[test]
    fn interleaving_covers_all_channels() {
        let m = MemorySystem::paper_16(8.8);
        assert_eq!(m.channel_count(), 4);
        let mut seen = [false; 4];
        for dir in 0..16 {
            seen[m.channel_of(dir)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        // Quadrant mapping: nodes 0–3 → channel 0 at node 0, etc.
        assert_eq!(m.channel_of(0), 0);
        assert_eq!(m.channel_of(5), 1);
        assert_eq!(m.controller_node(5), 4);
        assert_eq!(m.channel_of(15), 3);
    }

    #[test]
    fn paper_64_has_8_channels() {
        let m = MemorySystem::paper_64(8.8);
        assert_eq!(m.channel_count(), 8);
        assert!(m.controller_node(63) < 64);
    }

    #[test]
    fn system_request_and_counters() {
        let mut m = MemorySystem::paper_16(8.8);
        let done = m.request(5, Cycle(10), 32);
        assert!(done > Cycle(210));
        assert_eq!(m.served(), 1);
        assert_eq!(m.queued_cycles(), 0);
    }
}
