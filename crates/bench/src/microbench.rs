//! A minimal, dependency-free stand-in for the `criterion` benchmarking
//! API surface used by the benches under `benches/`.
//!
//! The workspace must build and test fully offline (no registry access),
//! so the external `criterion` crate cannot be a dependency — even an
//! optional one would have to appear in `Cargo.lock` with a registry
//! checksum. Instead the benches compile against this shim, which mirrors
//! the subset of the API they use: [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`], [`Bencher::iter`], [`black_box`],
//! [`Throughput`], [`BenchmarkId`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Measurements are wall-clock means over a fixed warm-up plus a
//! time-targeted sampling phase — good enough to track the relative cost
//! of the paper's kernels; swap the import back to the real `criterion`
//! if publication-grade statistics are ever needed.

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// How many elements one iteration processes, for derived rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements (packets, cycles, transitions) per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// A formatted benchmark identifier (`group/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id rendered from a bare parameter, criterion-style.
    pub fn from_parameter<D: std::fmt::Display>(parameter: D) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }

    /// An id with a function name and a parameter.
    pub fn new<S: Into<String>, D: std::fmt::Display>(function: S, parameter: D) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }
}

/// Drives the closure under measurement.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over this sample's iteration budget.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// The top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _priv: (),
}

/// Target measurement time per benchmark.
const TARGET: Duration = Duration::from_millis(500);

fn run_one(name: &str, throughput: Option<Throughput>, mut f: impl FnMut(&mut Bencher)) {
    // Calibration pass: one iteration, to size the sample.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    let iters = (TARGET.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;
    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let mean_ns = b.elapsed.as_nanos() as f64 / b.iters as f64;
    let rate = throughput.map(|t| match t {
        Throughput::Elements(n) => format!(", {:.3e} elem/s", n as f64 * 1e9 / mean_ns),
        Throughput::Bytes(n) => format!(", {:.3e} B/s", n as f64 * 1e9 / mean_ns),
    });
    println!(
        "bench {name:<48} {mean_ns:>14.1} ns/iter ({iters} iters{})",
        rate.unwrap_or_default()
    );
}

impl Criterion {
    /// Benchmarks `f` under `name`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(name, None, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            throughput: None,
        }
    }
}

/// A group of benchmarks sharing a name prefix and throughput setting.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput used for derived rates.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Accepted for API compatibility; the shim sizes samples by time.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Benchmarks `f` under `group/name`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(&format!("{}/{}", self.name, name), self.throughput, f);
        self
    }

    /// Benchmarks `f` over a borrowed input under `group/id`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id.id), self.throughput, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (no-op; present for API compatibility).
    pub fn finish(self) {}
}

/// Declares a benchmark entry point from a list of `fn(&mut Criterion)`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::microbench::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default();
        let mut runs = 0u64;
        c.bench_function("smoke/add", |b| b.iter(|| runs = runs.wrapping_add(1)));
        assert!(runs >= 2, "calibration + measurement both iterate");
    }

    #[test]
    fn groups_run_with_throughput_and_inputs() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke_group");
        g.throughput(Throughput::Elements(10));
        g.sample_size(10);
        let mut hits = 0u64;
        g.bench_function("f", |b| b.iter(|| hits += 1));
        g.bench_with_input(BenchmarkId::from_parameter("x"), &3u64, |b, &x| {
            b.iter(|| hits += x)
        });
        g.finish();
        assert!(hits > 0);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::from_parameter(64).id, "64");
        assert_eq!(BenchmarkId::new("fig6", "fsoi").id, "fig6/fsoi");
    }
}
