//! Deterministic pseudo-random number generation.
//!
//! Every stochastic decision in the reproduction — workload generation,
//! back-off slot selection, Monte-Carlo collision studies — draws from the
//! generators here so that a given seed always reproduces the same
//! experiment bit-for-bit, on any platform.
//!
//! Two generators are provided:
//!
//! * [`SplitMix64`] — tiny, fast, used for seeding and for places where a
//!   64-bit state suffices;
//! * [`Xoshiro256StarStar`] — the workhorse generator (period `2^256 − 1`)
//!   used by simulators.

/// Sebastiano Vigna's SplitMix64 generator.
///
/// Primarily used to expand a single `u64` seed into the larger state of
/// [`Xoshiro256StarStar`], and as a lightweight per-component generator.
///
/// ```
/// use fsoi_sim::rng::SplitMix64;
/// let mut a = SplitMix64::new(7);
/// let mut b = SplitMix64::new(7);
/// assert_eq!(a.next_u64(), b.next_u64()); // deterministic
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a 64-bit seed. Any seed (including 0) is fine.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Returns the next 64 pseudo-random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// The xoshiro256** generator (Blackman & Vigna), period `2^256 − 1`.
///
/// This is the main generator used by all simulators in the workspace. It is
/// seeded via [`SplitMix64`], as its authors recommend, so a single `u64`
/// identifies a whole experiment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

impl Xoshiro256StarStar {
    /// Creates a generator from a 64-bit seed, expanded with SplitMix64.
    pub fn new(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = sm.next_u64();
        }
        // The all-zero state is invalid; SplitMix64 cannot produce four
        // consecutive zeros from any seed, but guard anyway.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Xoshiro256StarStar { s }
    }

    /// Returns the next 64 pseudo-random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform integer in `[0, bound)` using Lemire's rejection method
    /// (unbiased).
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let lo = m as u64;
            if lo >= bound || lo >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// A uniform integer in the inclusive range `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    #[inline]
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range");
        lo + self.next_below(hi - lo + 1)
    }

    /// A Bernoulli trial: `true` with probability `p` (clamped to `[0,1]`).
    #[inline]
    pub fn bernoulli(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.next_f64() < p
        }
    }

    /// Selects a uniformly random element of `slice`, or `None` if empty.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.next_below(slice.len() as u64) as usize])
        }
    }

    /// Samples a geometric distribution: the number of failures before the
    /// first success of a Bernoulli(`p`) process (support `0, 1, 2, …`).
    ///
    /// Used for inter-arrival gap generation in synthetic workloads.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `(0, 1]`.
    pub fn geometric(&mut self, p: f64) -> u64 {
        assert!(p > 0.0 && p <= 1.0, "p must be in (0, 1]");
        if p >= 1.0 {
            return 0;
        }
        let u = self.next_f64().max(f64::MIN_POSITIVE);
        (u.ln() / (1.0 - p).ln()).floor() as u64
    }

    /// Samples an exponential distribution with the given mean.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not finite and positive.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(mean.is_finite() && mean > 0.0, "mean must be positive");
        let u = self.next_f64();
        // 1 - u is in (0, 1]; ln of it is finite.
        -mean * (1.0 - u).ln()
    }

    /// Fisher–Yates shuffles `slice` in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// Derives an independent child generator; used to give each simulated
    /// node its own stream without correlation.
    pub fn fork(&mut self) -> Self {
        Xoshiro256StarStar::new(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_values() {
        // Reference sequence for seed 1234567 from the public-domain
        // reference implementation.
        let mut r = SplitMix64::new(1234567);
        let a = r.next_u64();
        let b = r.next_u64();
        assert_ne!(a, b);
        let mut r2 = SplitMix64::new(1234567);
        assert_eq!(a, r2.next_u64());
        assert_eq!(b, r2.next_u64());
    }

    #[test]
    fn xoshiro_is_deterministic_and_forks_differ() {
        let mut a = Xoshiro256StarStar::new(42);
        let mut b = Xoshiro256StarStar::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut f1 = a.fork();
        let mut f2 = a.fork();
        assert_ne!(f1.next_u64(), f2.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Xoshiro256StarStar::new(7);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn next_below_bounds_and_coverage() {
        let mut r = Xoshiro256StarStar::new(3);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            let v = r.next_below(7) as usize;
            assert!(v < 7);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn range_inclusive_hits_endpoints() {
        let mut r = Xoshiro256StarStar::new(11);
        let (mut lo_seen, mut hi_seen) = (false, false);
        for _ in 0..2_000 {
            let v = r.range_inclusive(3, 5);
            assert!((3..=5).contains(&v));
            lo_seen |= v == 3;
            hi_seen |= v == 5;
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn bernoulli_extremes() {
        let mut r = Xoshiro256StarStar::new(1);
        assert!(!r.bernoulli(0.0));
        assert!(r.bernoulli(1.0));
        assert!(!r.bernoulli(-0.5));
        assert!(r.bernoulli(1.5));
    }

    #[test]
    fn bernoulli_mean_close_to_p() {
        let mut r = Xoshiro256StarStar::new(99);
        let p = 0.3;
        let n = 100_000;
        let hits = (0..n).filter(|_| r.bernoulli(p)).count();
        let mean = hits as f64 / n as f64;
        assert!((mean - p).abs() < 0.01, "mean {mean} too far from {p}");
    }

    #[test]
    fn geometric_mean_matches_theory() {
        let mut r = Xoshiro256StarStar::new(5);
        let p = 0.25;
        let n = 50_000;
        let total: u64 = (0..n).map(|_| r.geometric(p)).sum();
        let mean = total as f64 / n as f64;
        let expect = (1.0 - p) / p; // 3.0
        assert!((mean - expect).abs() < 0.1, "mean {mean} vs {expect}");
        assert_eq!(r.geometric(1.0), 0);
    }

    #[test]
    fn exponential_mean_matches_theory() {
        let mut r = Xoshiro256StarStar::new(6);
        let n = 50_000;
        let total: f64 = (0..n).map(|_| r.exponential(10.0)).sum();
        let mean = total / n as f64;
        assert!((mean - 10.0).abs() < 0.3, "mean {mean}");
    }

    #[test]
    fn choose_and_shuffle() {
        let mut r = Xoshiro256StarStar::new(8);
        assert_eq!(r.choose::<u32>(&[]), None);
        let items = [1, 2, 3];
        for _ in 0..50 {
            assert!(items.contains(r.choose(&items).unwrap()));
        }
        let mut v: Vec<u32> = (0..100).collect();
        let orig = v.clone();
        r.shuffle(&mut v);
        assert_ne!(v, orig, "shuffle of 100 elements should permute");
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, orig, "shuffle must be a permutation");
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn next_below_zero_panics() {
        Xoshiro256StarStar::new(0).next_below(0);
    }
}
