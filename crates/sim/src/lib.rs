//! Deterministic simulation kernel for the intra-chip free-space optical
//! interconnect (FSOI) reproduction.
//!
//! This crate provides the low-level machinery shared by every simulator in
//! the workspace:
//!
//! * [`Cycle`] — a strongly-typed simulation timestamp,
//! * [`rng::SplitMix64`] and [`rng::Xoshiro256StarStar`] — fast,
//!   fully-deterministic pseudo-random number generators (no dependence on
//!   OS entropy, so every experiment is exactly reproducible),
//! * [`event::EventQueue`] — a stable (FIFO within a cycle) time-ordered
//!   event queue,
//! * [`det::DetMap`] / [`det::DetSet`] — order-deterministic associative
//!   containers (the sanctioned replacement for `HashMap`/`HashSet` in
//!   simulation code, enforced by `fsoi-lint` rule D1),
//! * [`stats`] — counters, streaming summaries, histograms and rate
//!   estimators used by all measurement code,
//! * [`metrics::Registry`] — named, labelled metrics with deterministic
//!   JSONL/table export, the single code path behind reported numbers,
//! * [`par`] — the work-stealing sweep executor: the only sanctioned home
//!   for threads in simulation code (`fsoi-lint` rule D3), with results
//!   merged by a deterministic reduction keyed on cell index so thread
//!   count is never observable in output,
//! * [`sync`] — the concurrency shim the executor is written against:
//!   forwards to `std::sync`/`std::thread` in normal builds and to the
//!   model checker inside a model execution,
//! * [`model`] (feature `model`) — a dependency-free loom-style
//!   bounded-schedule model checker that DFS-explores interleavings of
//!   code written against [`sync`], detecting deadlock, lost wakeups,
//!   leaked guards, and panics, with replayable traces,
//! * [`profile`] — the deterministic harness-observability plane:
//!   hierarchical span counters keyed by sim-domain quantities, with
//!   byte-identical exports across thread counts,
//! * [`telemetry`] — the wall-clock harness-observability plane: executor
//!   and cache telemetry, explicitly nondeterministic and the only
//!   sanctioned home for wall-clock reads (`fsoi-lint` rule D2),
//! * [`trace`] — cycle-stamped structured event tracing with a bounded
//!   flight recorder that dumps JSON lines when an invariant fails,
//! * [`queue::BoundedQueue`] — a bounded FIFO with occupancy accounting,
//!   modelling finite hardware buffers.
//!
//! # Example
//!
//! ```
//! use fsoi_sim::{Cycle, event::EventQueue};
//!
//! let mut q = EventQueue::new();
//! q.push(Cycle(10), "b");
//! q.push(Cycle(5), "a");
//! assert_eq!(q.pop(), Some((Cycle(5), "a")));
//! assert_eq!(q.pop(), Some((Cycle(10), "b")));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod det;
pub mod event;
pub mod metrics;
#[cfg(feature = "model")]
pub mod model;
pub mod par;
pub mod profile;
pub mod queue;
pub mod rng;
pub mod stats;
pub mod sync;
pub mod telemetry;
pub mod trace;

use core::fmt;
use core::ops::{Add, AddAssign, Sub};

/// A simulation timestamp, measured in processor clock cycles.
///
/// `Cycle` is a transparent newtype over `u64`; arithmetic is provided for
/// the common "now + latency" patterns. Subtraction panics on underflow in
/// debug builds (like `u64`), which catches scheduling-in-the-past bugs.
///
/// ```
/// use fsoi_sim::Cycle;
/// let t = Cycle(100) + 5;
/// assert_eq!(t, Cycle(105));
/// assert_eq!(t - Cycle(100), 5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycle(pub u64);

impl Cycle {
    /// The zero timestamp (simulation start).
    pub const ZERO: Cycle = Cycle(0);

    /// Returns the raw cycle count.
    #[inline]
    pub fn as_u64(self) -> u64 {
        self.0
    }

    /// Saturating subtraction: `self - other`, clamped at zero.
    #[inline]
    pub fn saturating_sub(self, other: Cycle) -> u64 {
        self.0.saturating_sub(other.0)
    }

    /// Checked subtraction; `None` if `other` is in the future of `self`.
    #[inline]
    pub fn checked_sub(self, other: Cycle) -> Option<u64> {
        self.0.checked_sub(other.0)
    }

    /// Rounds this timestamp *up* to the next multiple of `slot` cycles.
    ///
    /// Used for slotted transmission: a packet that becomes ready inside a
    /// slot must wait for the next slot boundary.
    ///
    /// ```
    /// use fsoi_sim::Cycle;
    /// assert_eq!(Cycle(7).round_up_to_slot(5), Cycle(10));
    /// assert_eq!(Cycle(10).round_up_to_slot(5), Cycle(10));
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `slot == 0`.
    #[inline]
    pub fn round_up_to_slot(self, slot: u64) -> Cycle {
        assert!(slot > 0, "slot length must be positive");
        Cycle(self.0.div_ceil(slot) * slot)
    }

    /// True if this timestamp lies on a boundary of `slot`-cycle slots.
    #[inline]
    pub fn is_slot_boundary(self, slot: u64) -> bool {
        slot > 0 && self.0.is_multiple_of(slot)
    }
}

impl fmt::Display for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cycle {}", self.0)
    }
}

impl Add<u64> for Cycle {
    type Output = Cycle;
    #[inline]
    fn add(self, rhs: u64) -> Cycle {
        Cycle(self.0 + rhs)
    }
}

impl AddAssign<u64> for Cycle {
    #[inline]
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub<Cycle> for Cycle {
    type Output = u64;
    #[inline]
    fn sub(self, rhs: Cycle) -> u64 {
        self.0 - rhs.0
    }
}

impl From<u64> for Cycle {
    #[inline]
    fn from(v: u64) -> Self {
        Cycle(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_arithmetic() {
        assert_eq!(Cycle(3) + 4, Cycle(7));
        assert_eq!(Cycle(7) - Cycle(3), 4);
        let mut c = Cycle(1);
        c += 2;
        assert_eq!(c, Cycle(3));
    }

    #[test]
    fn cycle_saturating_and_checked() {
        assert_eq!(Cycle(3).saturating_sub(Cycle(5)), 0);
        assert_eq!(Cycle(5).saturating_sub(Cycle(3)), 2);
        assert_eq!(Cycle(3).checked_sub(Cycle(5)), None);
        assert_eq!(Cycle(5).checked_sub(Cycle(3)), Some(2));
    }

    #[test]
    fn slot_rounding() {
        assert_eq!(Cycle(0).round_up_to_slot(5), Cycle(0));
        assert_eq!(Cycle(1).round_up_to_slot(5), Cycle(5));
        assert_eq!(Cycle(5).round_up_to_slot(5), Cycle(5));
        assert_eq!(Cycle(6).round_up_to_slot(2), Cycle(6));
        assert!(Cycle(10).is_slot_boundary(5));
        assert!(!Cycle(11).is_slot_boundary(5));
        assert!(!Cycle(11).is_slot_boundary(0));
    }

    #[test]
    #[should_panic(expected = "slot length must be positive")]
    fn slot_rounding_zero_panics() {
        let _ = Cycle(1).round_up_to_slot(0);
    }

    #[test]
    fn display_is_nonempty() {
        assert_eq!(Cycle(42).to_string(), "cycle 42");
    }

    #[test]
    fn from_u64() {
        let c: Cycle = 9u64.into();
        assert_eq!(c, Cycle(9));
        assert_eq!(c.as_u64(), 9);
    }
}
