//! Corona-comparison bench: ring-crossbar engine throughput under
//! uniform random traffic (the §7.1 comparison's substrate).

use fsoi_bench::microbench::{Criterion, Throughput};
use fsoi_bench::{criterion_group, criterion_main};
use fsoi_ring::config::RingConfig;
use fsoi_ring::network::{RingNetwork, RingPacket};
use fsoi_sim::rng::Xoshiro256StarStar;

const CYCLES: u64 = 20_000;

fn drive(seed: u64) -> u64 {
    let mut net = RingNetwork::new(RingConfig::nodes(64));
    let mut rng = Xoshiro256StarStar::new(seed);
    for cycle in 0..CYCLES {
        for src in 0..64usize {
            if rng.bernoulli(0.01) {
                let mut dst = rng.next_below(63) as usize;
                if dst >= src {
                    dst += 1;
                }
                let pkt = if rng.bernoulli(0.4) {
                    RingPacket::data(src, dst, cycle)
                } else {
                    RingPacket::meta(src, dst, cycle)
                };
                let _ = net.inject(pkt);
            }
        }
        net.tick();
        net.drain_delivered();
    }
    net.stats().delivered
}

fn bench_ring(c: &mut Criterion) {
    let mut g = c.benchmark_group("ring_crossbar");
    g.throughput(Throughput::Elements(CYCLES));
    g.sample_size(10);
    g.bench_function("64node_20k_cycles", |b| b.iter(|| drive(7)));
    g.finish();
}

criterion_group!(benches, bench_ring);
criterion_main!(benches);
