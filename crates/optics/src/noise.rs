//! Receiver noise and the Q-factor ⇄ bit-error-rate relations for OOK.
//!
//! For on-off keying with Gaussian noise, the bit error rate is
//! `BER = ½ erfc(Q/√2)` where the Q-factor is
//! `Q = (I₁ − I₀) / (σ₁ + σ₀)`. The paper's link targets BER 10⁻¹⁰
//! (Q ≈ 6.36) and notes that tolerating collisions allows relaxing the
//! target to ~10⁻⁵ (Q ≈ 4.26), a large engineering margin.

use crate::units::{Current, Frequency, ELEMENTARY_CHARGE};

/// Root-mean-square shot noise current on average current `i` over
/// bandwidth `bw`: `σ = √(2 q I B)`.
pub fn shot_noise_rms(i: Current, bw: Frequency) -> Current {
    let var = 2.0 * ELEMENTARY_CHARGE * i.as_amps().max(0.0) * bw.as_hz();
    Current::from_amps(var.sqrt())
}

/// RMS input-referred circuit (thermal + TIA) noise for a white
/// input-noise current density `density_a_per_rthz` (A/√Hz) over
/// bandwidth `bw`.
pub fn circuit_noise_rms(density_a_per_rthz: f64, bw: Frequency) -> Current {
    Current::from_amps(density_a_per_rthz * bw.as_hz().sqrt())
}

/// Combines independent noise contributions by root-sum-square.
pub fn combine_rms(contributions: &[Current]) -> Current {
    let var: f64 = contributions.iter().map(|c| c.as_amps().powi(2)).sum();
    Current::from_amps(var.sqrt())
}

/// The complementary error function, accurate to a relative error of about
/// `1.2 × 10⁻⁷` everywhere (Numerical Recipes' Chebyshev fit), which is
/// ample for BER work down to 10⁻¹⁵.
pub fn erfc(x: f64) -> f64 {
    let z = x.abs();
    let t = 1.0 / (1.0 + 0.5 * z);
    let ans = t
        * (-z * z - 1.26551223
            + t * (1.00002368
                + t * (0.37409196
                    + t * (0.09678418
                        + t * (-0.18628806
                            + t * (0.27886807
                                + t * (-1.13520398
                                    + t * (1.48851587 + t * (-0.82215223 + t * 0.17087277)))))))))
            .exp();
    if x >= 0.0 {
        ans
    } else {
        2.0 - ans
    }
}

/// OOK bit error rate for a given Q-factor: `BER = ½ erfc(Q/√2)`.
pub fn q_to_ber(q: f64) -> f64 {
    0.5 * erfc(q / core::f64::consts::SQRT_2)
}

/// Inverse of [`q_to_ber`]: the Q-factor required for a target BER,
/// computed by bisection.
///
/// # Panics
///
/// Panics if `ber` is not in `(0, 0.5)`.
pub fn ber_to_q(ber: f64) -> f64 {
    assert!(ber > 0.0 && ber < 0.5, "BER must be in (0, 0.5)");
    let (mut lo, mut hi) = (0.0f64, 40.0f64);
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if q_to_ber(mid) > ber {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// The Q-factor of an OOK decision: `(I₁ − I₀) / (σ₁ + σ₀)`.
///
/// Returns 0.0 if the eye is closed (`i1 <= i0`) or the noise is zero on
/// both rails (degenerate but defined).
pub fn q_factor(i1: Current, i0: Current, sigma1: Current, sigma0: Current) -> f64 {
    let eye = i1.as_amps() - i0.as_amps();
    let noise = sigma1.as_amps() + sigma0.as_amps();
    if eye <= 0.0 {
        return 0.0;
    }
    if noise <= 0.0 {
        return f64::INFINITY;
    }
    eye / noise
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erfc_reference_points() {
        assert!((erfc(0.0) - 1.0).abs() < 1e-7);
        assert!((erfc(1.0) - 0.157_299_2).abs() < 1e-6);
        assert!((erfc(-1.0) - 1.842_700_8).abs() < 1e-6);
        // erfc(2) = 0.004677735
        assert!((erfc(2.0) - 0.004_677_735).abs() < 1e-7);
    }

    #[test]
    fn q_ber_reference_points() {
        // Classic optical-communications anchors.
        assert!((q_to_ber(6.0) / 9.866e-10 - 1.0).abs() < 1e-3);
        assert!((q_to_ber(7.0) / 1.280e-12 - 1.0).abs() < 1e-2);
        // Q ≈ 6.36 ⇒ BER ≈ 1e-10.
        let ber = q_to_ber(6.361);
        assert!(ber > 0.8e-10 && ber < 1.2e-10, "BER = {ber}");
    }

    #[test]
    fn ber_to_q_inverts() {
        for &target in &[1e-5, 1e-9, 1e-10, 1e-12] {
            let q = ber_to_q(target);
            let back = q_to_ber(q);
            assert!(
                (back / target - 1.0).abs() < 1e-6,
                "roundtrip {target} -> {q} -> {back}"
            );
        }
        // The paper's relaxation: 1e-10 needs Q≈6.36, 1e-5 only Q≈4.26.
        assert!((ber_to_q(1e-10) - 6.36).abs() < 0.01);
        assert!((ber_to_q(1e-5) - 4.26).abs() < 0.01);
    }

    #[test]
    #[should_panic(expected = "BER must be in (0, 0.5)")]
    fn ber_to_q_rejects_out_of_range() {
        let _ = ber_to_q(0.7);
    }

    #[test]
    fn shot_noise_value() {
        // √(2 · 1.602e-19 · 50 µA · 36 GHz) ≈ 0.76 µA.
        let s = shot_noise_rms(Current::from_amps(50e-6), Frequency::from_ghz(36.0));
        assert!(
            (s.to_microamps() - 0.759).abs() < 0.01,
            "{}",
            s.to_microamps()
        );
        // Negative currents clamp to zero variance.
        let z = shot_noise_rms(Current::from_amps(-1.0), Frequency::from_ghz(1.0));
        assert_eq!(z.as_amps(), 0.0);
    }

    #[test]
    fn circuit_noise_value() {
        // 20 pA/√Hz over 36 GHz ≈ 3.79 µA.
        let s = circuit_noise_rms(20e-12, Frequency::from_ghz(36.0));
        assert!((s.to_microamps() - 3.79).abs() < 0.02);
    }

    #[test]
    fn combine_is_rss() {
        let c = combine_rms(&[Current::from_amps(3e-6), Current::from_amps(4e-6)]);
        assert!((c.to_microamps() - 5.0).abs() < 1e-9);
        assert_eq!(combine_rms(&[]).as_amps(), 0.0);
    }

    #[test]
    fn q_factor_cases() {
        let q = q_factor(
            Current::from_amps(50e-6),
            Current::from_amps(5e-6),
            Current::from_amps(4e-6),
            Current::from_amps(3.5e-6),
        );
        assert!((q - 6.0).abs() < 1e-9);
        // Closed eye.
        assert_eq!(
            q_factor(
                Current::from_amps(1e-6),
                Current::from_amps(2e-6),
                Current::from_amps(1e-6),
                Current::from_amps(1e-6)
            ),
            0.0
        );
        // Noiseless.
        assert!(q_factor(
            Current::from_amps(2e-6),
            Current::from_amps(1e-6),
            Current::from_amps(0.0),
            Current::from_amps(0.0)
        )
        .is_infinite());
    }
}
