//! Packets and the PID/~PID collision-detecting header code.
//!
//! The network defines two packet lengths (paper §4.3.2): 72-bit *meta*
//! packets (requests, acknowledgments) and 360-bit *data* packets (cache
//! lines). Because colliding OOK light pulses OR together, each header
//! carries both the sender id (PID) and its bitwise complement (~PID); any
//! collision makes at least one bit position read 1 in *both* fields,
//! which a receiver detects immediately. The OR-ed header also yields a
//! superset of the possible colliders, which the data-lane hint
//! optimization (§5.2) exploits.

use crate::topology::NodeId;
use fsoi_sim::Cycle;

/// The two packet lengths of the network. (The confirmation channel is a
/// separate single-bit mechanism, not a packet class.)
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PacketClass {
    /// 72-bit requests / acknowledgments; 2-cycle serialization.
    Meta,
    /// 360-bit cache-line transfers; 5-cycle serialization.
    Data,
}

impl PacketClass {
    /// Both classes, in lane order.
    pub const ALL: [PacketClass; 2] = [PacketClass::Meta, PacketClass::Data];

    /// A compact index (0 = meta, 1 = data) for per-lane arrays.
    #[inline]
    pub fn lane(self) -> usize {
        match self {
            PacketClass::Meta => 0,
            PacketClass::Data => 1,
        }
    }
}

/// A packet travelling the FSOI network.
///
/// The payload is abstracted to a `tag` the client (e.g. the coherence
/// layer) uses to recognize deliveries; the network itself never inspects
/// it — there is no routing, only direct source→destination beams.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Packet {
    /// Unique id assigned at injection.
    pub id: u64,
    /// Transmitting node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Meta or data.
    pub class: PacketClass,
    /// Opaque client tag carried with the packet.
    pub tag: u64,
    /// When the client injected the packet.
    pub enqueued_at: Cycle,
    /// Scheduling (request-spacing) delay applied before queuing, cycles.
    pub scheduling_delay: u64,
    /// Number of retransmissions so far.
    pub retries: u32,
    /// Cycle the first transmission attempt started (set by the network).
    pub first_tx_at: Option<Cycle>,
}

impl Packet {
    /// Creates a packet ready for injection.
    pub fn new(src: NodeId, dst: NodeId, class: PacketClass, tag: u64) -> Self {
        Packet {
            id: 0,
            src,
            dst,
            class,
            tag,
            enqueued_at: Cycle::ZERO,
            scheduling_delay: 0,
            retries: 0,
            first_tx_at: None,
        }
    }

    /// Builder-style: annotates the packet with a request-spacing delay.
    pub fn with_scheduling_delay(mut self, cycles: u64) -> Self {
        self.scheduling_delay = cycles;
        self
    }
}

/// The PID/~PID header field pair as transmitted, and — after collisions —
/// as OR-ed at the receiver.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HeaderCode {
    /// OR of the senders' id fields.
    pub pid: u32,
    /// OR of the senders' complemented id fields (masked to the id width).
    pub pid_complement: u32,
    /// Width in bits of the id fields.
    pub width: u32,
}

impl HeaderCode {
    /// Bits needed to encode ids `0..nodes`.
    pub fn id_width(nodes: usize) -> u32 {
        assert!(nodes >= 2, "a network needs at least two nodes");
        usize::BITS - (nodes - 1).leading_zeros()
    }

    /// Encodes a single sender's header.
    pub fn encode(src: NodeId, nodes: usize) -> Self {
        let width = Self::id_width(nodes);
        let mask = (1u32 << width) - 1;
        let pid = src.0 as u32 & mask;
        HeaderCode {
            pid,
            pid_complement: !pid & mask,
            width,
        }
    }

    /// The OR-superposition of this header with another (what a shared
    /// receiver sees when packets collide).
    pub fn superpose(self, other: HeaderCode) -> HeaderCode {
        debug_assert_eq!(self.width, other.width, "mismatched header widths");
        HeaderCode {
            pid: self.pid | other.pid,
            pid_complement: self.pid_complement | other.pid_complement,
            width: self.width,
        }
    }

    /// Superposes the headers of all `senders`.
    pub fn superpose_all(senders: &[NodeId], nodes: usize) -> HeaderCode {
        senders.iter().map(|&s| HeaderCode::encode(s, nodes)).fold(
            HeaderCode {
                pid: 0,
                pid_complement: 0,
                width: Self::id_width(nodes),
            },
            HeaderCode::superpose,
        )
    }

    /// True if this header shows evidence of a collision: some bit position
    /// reads 1 in both PID and ~PID.
    pub fn is_collided(self) -> bool {
        self.pid & self.pid_complement != 0
    }

    /// Decodes a clean (non-collided) header back to the sender id.
    ///
    /// Returns `None` if the header is collided.
    pub fn decode(self) -> Option<NodeId> {
        if self.is_collided() {
            None
        } else {
            Some(NodeId(self.pid as usize))
        }
    }

    /// The superset of nodes that *could* have participated in the
    /// collision: node `j` is possible iff its PID bits are covered by the
    /// received PID field and its complement bits by the received
    /// complement field (OR only ever sets bits, never clears them).
    pub fn possible_senders(self, nodes: usize) -> Vec<NodeId> {
        let mask = (1u32 << self.width) - 1;
        (0..nodes)
            .filter(|&j| {
                let pid = j as u32 & mask;
                let comp = !pid & mask;
                pid & !self.pid == 0 && comp & !self.pid_complement == 0
            })
            .map(NodeId)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_lane_indices() {
        assert_eq!(PacketClass::Meta.lane(), 0);
        assert_eq!(PacketClass::Data.lane(), 1);
        assert_eq!(PacketClass::ALL.len(), 2);
    }

    #[test]
    fn packet_construction() {
        let p = Packet::new(NodeId(1), NodeId(2), PacketClass::Data, 99).with_scheduling_delay(3);
        assert_eq!(p.src, NodeId(1));
        assert_eq!(p.dst, NodeId(2));
        assert_eq!(p.tag, 99);
        assert_eq!(p.scheduling_delay, 3);
        assert_eq!(p.retries, 0);
        assert!(p.first_tx_at.is_none());
    }

    #[test]
    fn id_width_values() {
        assert_eq!(HeaderCode::id_width(2), 1);
        assert_eq!(HeaderCode::id_width(16), 4);
        assert_eq!(HeaderCode::id_width(17), 5);
        assert_eq!(HeaderCode::id_width(64), 6);
    }

    #[test]
    fn clean_header_roundtrip() {
        for n in [2usize, 16, 64] {
            for i in 0..n {
                let h = HeaderCode::encode(NodeId(i), n);
                assert!(!h.is_collided());
                assert_eq!(h.decode(), Some(NodeId(i)));
            }
        }
    }

    #[test]
    fn any_two_distinct_senders_collide_detectably() {
        // The PID/~PID code guarantees detection of any 2-way collision:
        // differing ids differ in at least one bit, which reads 1 in both
        // fields after the OR.
        let n = 16;
        for a in 0..n {
            for b in 0..n {
                if a == b {
                    continue;
                }
                let h =
                    HeaderCode::encode(NodeId(a), n).superpose(HeaderCode::encode(NodeId(b), n));
                assert!(h.is_collided(), "{a} + {b} must be detected");
                assert_eq!(h.decode(), None);
            }
        }
    }

    #[test]
    fn multiway_collisions_detected() {
        let h = HeaderCode::superpose_all(&[NodeId(1), NodeId(6), NodeId(11)], 16);
        assert!(h.is_collided());
    }

    #[test]
    fn possible_senders_is_superset_of_actual() {
        let n = 16;
        let actual = [NodeId(3), NodeId(12)];
        let h = HeaderCode::superpose_all(&actual, n);
        let possible = h.possible_senders(n);
        for a in actual {
            assert!(possible.contains(&a), "superset must contain {a}");
        }
        // 3 = 0011, 12 = 1100: OR pid = 1111, OR comp = 1111 ⇒ every node
        // is possible — the worst case the paper's footnote 7 mentions.
        assert_eq!(possible.len(), n);
    }

    #[test]
    fn possible_senders_can_be_tight() {
        let n = 16;
        // 8 = 1000 and 9 = 1001 share three bits: OR pid = 1001,
        // comp(8) = 0111, comp(9) = 0110, OR comp = 0111.
        let h = HeaderCode::superpose_all(&[NodeId(8), NodeId(9)], n);
        let possible = h.possible_senders(n);
        assert_eq!(possible, vec![NodeId(8), NodeId(9)]);
    }

    #[test]
    fn single_sender_possible_set_is_itself() {
        let h = HeaderCode::encode(NodeId(5), 16);
        assert_eq!(h.possible_senders(16), vec![NodeId(5)]);
    }

    #[test]
    #[should_panic(expected = "at least two nodes")]
    fn tiny_network_panics() {
        HeaderCode::id_width(1);
    }
}
