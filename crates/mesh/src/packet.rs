//! Mesh packets and flits.
//!
//! Table 3: 72-bit flits; a meta packet is a single flit, a data packet
//! five flits (matching the optical network's 72-bit meta / 360-bit data
//! packets bit for bit).

use fsoi_sim::Cycle;

/// Flits per meta packet.
pub const META_FLITS: usize = 1;
/// Flits per data packet.
pub const DATA_FLITS: usize = 5;
/// Bits per flit.
pub const FLIT_BITS: usize = 72;

/// A packet travelling the mesh.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MeshPacket {
    /// Unique id assigned at injection.
    pub id: u64,
    /// Source node index.
    pub src: usize,
    /// Destination node index.
    pub dst: usize,
    /// Length in flits.
    pub flits: usize,
    /// Opaque client tag.
    pub tag: u64,
    /// Injection time.
    pub enqueued_at: Cycle,
}

impl MeshPacket {
    /// A 1-flit meta packet.
    pub fn meta(src: usize, dst: usize, tag: u64) -> Self {
        MeshPacket {
            id: 0,
            src,
            dst,
            flits: META_FLITS,
            tag,
            enqueued_at: Cycle::ZERO,
        }
    }

    /// A 5-flit data packet.
    pub fn data(src: usize, dst: usize, tag: u64) -> Self {
        MeshPacket {
            id: 0,
            src,
            dst,
            flits: DATA_FLITS,
            tag,
            enqueued_at: Cycle::ZERO,
        }
    }

    /// Total bits of the packet.
    pub fn bits(&self) -> usize {
        self.flits * FLIT_BITS
    }

    /// True for single-flit (meta) packets.
    pub fn is_meta(&self) -> bool {
        self.flits == META_FLITS
    }
}

/// Position of a flit within its packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlitKind {
    /// First flit: carries routing information.
    Head,
    /// Interior flit.
    Body,
    /// Final flit: releases the virtual channel. A single-flit packet's
    /// only flit is `HeadTail`.
    Tail,
    /// Head and tail at once (single-flit packets).
    HeadTail,
}

impl FlitKind {
    /// Does this flit start a packet?
    pub fn is_head(self) -> bool {
        matches!(self, FlitKind::Head | FlitKind::HeadTail)
    }

    /// Does this flit end a packet?
    pub fn is_tail(self) -> bool {
        matches!(self, FlitKind::Tail | FlitKind::HeadTail)
    }
}

/// One flit in flight.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Flit {
    /// The packet this flit belongs to (replicated for convenience).
    pub packet: MeshPacket,
    /// Head/body/tail marker.
    pub kind: FlitKind,
    /// Index within the packet (0 = head).
    pub seq: usize,
}

/// Splits a packet into its flit sequence.
pub fn flits_of(packet: MeshPacket) -> Vec<Flit> {
    (0..packet.flits)
        .map(|seq| Flit {
            packet,
            kind: match (seq, packet.flits) {
                (0, 1) => FlitKind::HeadTail,
                (0, _) => FlitKind::Head,
                (s, n) if s == n - 1 => FlitKind::Tail,
                _ => FlitKind::Body,
            },
            seq,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meta_and_data_sizes() {
        let m = MeshPacket::meta(0, 1, 5);
        assert_eq!(m.flits, 1);
        assert_eq!(m.bits(), 72);
        assert!(m.is_meta());
        let d = MeshPacket::data(0, 1, 5);
        assert_eq!(d.flits, 5);
        assert_eq!(d.bits(), 360);
        assert!(!d.is_meta());
    }

    #[test]
    fn single_flit_is_headtail() {
        let fs = flits_of(MeshPacket::meta(0, 1, 0));
        assert_eq!(fs.len(), 1);
        assert_eq!(fs[0].kind, FlitKind::HeadTail);
        assert!(fs[0].kind.is_head() && fs[0].kind.is_tail());
    }

    #[test]
    fn multi_flit_structure() {
        let fs = flits_of(MeshPacket::data(2, 3, 0));
        assert_eq!(fs.len(), 5);
        assert_eq!(fs[0].kind, FlitKind::Head);
        assert_eq!(fs[1].kind, FlitKind::Body);
        assert_eq!(fs[3].kind, FlitKind::Body);
        assert_eq!(fs[4].kind, FlitKind::Tail);
        assert!(fs[0].kind.is_head() && !fs[0].kind.is_tail());
        assert!(!fs[2].kind.is_head() && !fs[2].kind.is_tail());
        assert!(fs[4].kind.is_tail() && !fs[4].kind.is_head());
        for (i, f) in fs.iter().enumerate() {
            assert_eq!(f.seq, i);
        }
    }
}
