//! System configurations: the paper's 16- and 64-node CMPs over each
//! interconnect variant.

use crate::interconnect::{
    CrossbarAdapter, FsoiAdapter, IdealAdapter, Interconnect, MeshAdapter, RingAdapter,
};
use fsoi_mesh::config::MeshConfig;
use fsoi_mesh::ideal::IdealKind;
use fsoi_mesh::network::MeshNetwork;
use fsoi_net::config::FsoiConfig;
use fsoi_net::network::FsoiNetwork;
use fsoi_ring::config::RingConfig;
use fsoi_ring::crossbar::{CrossbarConfig, CrossbarNetwork};
use fsoi_ring::network::RingNetwork;

/// Which interconnect drives the system.
#[derive(Debug, Clone, PartialEq)]
pub enum NetworkKind {
    /// The free-space optical interconnect (optionally with a custom
    /// configuration).
    Fsoi(FsoiConfig),
    /// The baseline 4-cycle-router electrical mesh.
    Mesh(MeshConfig),
    /// The mesh with links narrowed to the given fraction of their width
    /// (Figure 11).
    MeshScaled(MeshConfig, f64),
    /// Corona-style token-ring nanophotonic crossbar (§7.1 comparison).
    Ring(RingConfig),
    /// Worst-case-loss ring-matrix crossbar (the PAPERS.md comparative
    /// study): dedicated passive paths, lasers sized for the worst-case
    /// insertion loss at the radix.
    Crossbar(CrossbarConfig),
    /// Idealized zero-latency network.
    L0,
    /// Idealized 1-cycle-router network.
    Lr1,
    /// Idealized 2-cycle-router network.
    Lr2,
}

impl NetworkKind {
    /// Default FSOI for `n` nodes.
    pub fn fsoi(n: usize) -> Self {
        NetworkKind::Fsoi(FsoiConfig::nodes(n))
    }

    /// Default mesh for `n` nodes.
    pub fn mesh(n: usize) -> Self {
        NetworkKind::Mesh(MeshConfig::nodes(n))
    }

    /// Default Corona-style ring crossbar for `n` nodes.
    pub fn ring(n: usize) -> Self {
        NetworkKind::Ring(RingConfig::nodes(n))
    }

    /// Default worst-case-loss matrix crossbar for `n` nodes.
    pub fn crossbar(n: usize) -> Self {
        NetworkKind::Crossbar(CrossbarConfig::nodes(n))
    }

    /// Short display name.
    pub fn name(&self) -> &'static str {
        match self {
            NetworkKind::Fsoi(_) => "fsoi",
            NetworkKind::Mesh(_) => "mesh",
            NetworkKind::MeshScaled(..) => "mesh-scaled",
            NetworkKind::Ring(_) => "ring",
            NetworkKind::Crossbar(_) => "crossbar",
            NetworkKind::L0 => "L0",
            NetworkKind::Lr1 => "Lr1",
            NetworkKind::Lr2 => "Lr2",
        }
    }
}

/// Full system configuration (Table 3 defaults).
#[derive(Debug, Clone, PartialEq)]
pub struct SystemConfig {
    /// Number of nodes (cores + L2 slices).
    pub nodes: usize,
    /// The interconnect.
    pub network: NetworkKind,
    /// Coherence line size in bytes (Table 3: 32 B L1 D lines).
    pub line_bytes: u64,
    /// L1 capacity in lines (8 KB / 32 B = 256).
    pub l1_lines: usize,
    /// L1 associativity.
    pub l1_ways: usize,
    /// L1 access latency, cycles.
    pub l1_latency: u64,
    /// L2 slice capacity in lines (64 KB / 32 B = 2048).
    pub l2_lines: usize,
    /// L2 access latency, cycles.
    pub l2_latency: u64,
    /// Aggregate memory bandwidth, GB/s (Table 4: 8.8 default, 52.8 high).
    pub mem_gb_per_s: f64,
    /// Memory access latency, cycles.
    pub mem_latency: u64,
    /// §5.1: substitute confirmations for invalidation acknowledgments.
    pub opt_confirmation_acks: bool,
    /// §5.1: boolean synchronization subscriptions over the confirmation
    /// channel.
    pub opt_subscriptions: bool,
    /// RNG seed.
    pub seed: u64,
}

impl SystemConfig {
    /// The paper's 16-node configuration over the given network.
    pub fn paper_16(network: NetworkKind) -> Self {
        SystemConfig {
            nodes: 16,
            network,
            line_bytes: 32,
            l1_lines: 256,
            l1_ways: 2,
            l1_latency: 2,
            l2_lines: 2048,
            l2_latency: 15,
            mem_gb_per_s: 8.8,
            mem_latency: 200,
            opt_confirmation_acks: true,
            opt_subscriptions: true,
            seed: 2010,
        }
    }

    /// The paper's 64-node configuration (phase-array FSOI, 8 memory
    /// channels).
    pub fn paper_64(network: NetworkKind) -> Self {
        SystemConfig::paper_n(64, network)
    }

    /// The paper's Table 3 per-node parameters scaled to an arbitrary
    /// node count — the constructor behind the beyond-the-paper
    /// design-space grids (e.g. 256 nodes). Caches, latencies and memory
    /// bandwidth are per-node/aggregate exactly as in
    /// [`SystemConfig::paper_16`]; only the node count changes.
    pub fn paper_n(nodes: usize, network: NetworkKind) -> Self {
        SystemConfig {
            nodes,
            ..SystemConfig::paper_16(network)
        }
    }

    /// Builder-style: toggles both §5.1/§5.2 optimizations at once (for
    /// the ablation studies).
    pub fn with_optimizations(mut self, on: bool) -> Self {
        self.opt_confirmation_acks = on;
        self.opt_subscriptions = on;
        self
    }

    /// Builder-style: sets the memory bandwidth (Table 4).
    pub fn with_mem_bandwidth(mut self, gb_per_s: f64) -> Self {
        self.mem_gb_per_s = gb_per_s;
        self
    }

    /// Builder-style: sets the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Instantiates the interconnect.
    pub fn build_network(&self) -> Box<dyn Interconnect> {
        let width = (self.nodes as f64).sqrt().round() as usize;
        match &self.network {
            NetworkKind::Fsoi(cfg) => {
                Box::new(FsoiAdapter::new(FsoiNetwork::new(cfg.clone(), self.seed)))
            }
            NetworkKind::Mesh(cfg) => Box::new(MeshAdapter::new(MeshNetwork::new(*cfg))),
            NetworkKind::MeshScaled(cfg, f) => {
                Box::new(MeshAdapter::new(MeshNetwork::new(*cfg)).with_width_fraction(*f))
            }
            NetworkKind::Ring(cfg) => Box::new(RingAdapter::new(RingNetwork::new(*cfg))),
            NetworkKind::Crossbar(cfg) => {
                Box::new(CrossbarAdapter::new(CrossbarNetwork::new(*cfg)))
            }
            NetworkKind::L0 => Box::new(IdealAdapter::new(IdealKind::L0, width)),
            NetworkKind::Lr1 => Box::new(IdealAdapter::new(IdealKind::Lr1, width)),
            NetworkKind::Lr2 => Box::new(IdealAdapter::new(IdealKind::Lr2, width)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_16_defaults_match_table3() {
        let c = SystemConfig::paper_16(NetworkKind::fsoi(16));
        assert_eq!(c.nodes, 16);
        assert_eq!(c.l1_lines * c.line_bytes as usize, 8 * 1024);
        assert_eq!(c.l2_lines * c.line_bytes as usize, 64 * 1024);
        assert_eq!(c.l1_latency, 2);
        assert_eq!(c.l2_latency, 15);
        assert_eq!(c.mem_latency, 200);
        assert!((c.mem_gb_per_s - 8.8).abs() < 1e-9);
    }

    #[test]
    fn builders() {
        let c = SystemConfig::paper_16(NetworkKind::mesh(16))
            .with_optimizations(false)
            .with_mem_bandwidth(52.8)
            .with_seed(7);
        assert!(!c.opt_confirmation_acks && !c.opt_subscriptions);
        assert!((c.mem_gb_per_s - 52.8).abs() < 1e-9);
        assert_eq!(c.seed, 7);
    }

    #[test]
    fn network_names_and_instantiation() {
        for kind in [
            NetworkKind::fsoi(16),
            NetworkKind::mesh(16),
            NetworkKind::ring(16),
            NetworkKind::crossbar(16),
            NetworkKind::L0,
            NetworkKind::Lr1,
            NetworkKind::Lr2,
        ] {
            let name = kind.name();
            let cfg = SystemConfig::paper_16(kind);
            let net = cfg.build_network();
            assert_eq!(net.name(), name);
        }
    }

    #[test]
    fn paper_64_scales_nodes() {
        let c = SystemConfig::paper_64(NetworkKind::fsoi(64));
        assert_eq!(c.nodes, 64);
    }

    #[test]
    fn paper_n_supports_the_256_node_grid() {
        for kind in [
            NetworkKind::fsoi(256),
            NetworkKind::mesh(256),
            NetworkKind::ring(256),
            NetworkKind::crossbar(256),
        ] {
            let name = kind.name();
            let cfg = SystemConfig::paper_n(256, kind);
            assert_eq!(cfg.nodes, 256);
            // Table 3 per-node parameters carry over unchanged.
            assert_eq!(cfg.l1_lines, 256);
            assert_eq!(cfg.l2_lines, 2048);
            let net = cfg.build_network();
            assert_eq!(net.name(), name);
        }
    }
}
