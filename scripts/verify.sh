#!/usr/bin/env sh
# Tier-1 verification gate, hermetic by construction: the workspace has no
# external dependencies, so --offline proves no network is ever consulted.
# Bench targets are feature-gated (`criterion`) and stay out of both steps.
set -eu
cd "$(dirname "$0")/.."
cargo build --release --offline --workspace
cargo test -q --offline --workspace
