#!/usr/bin/env sh
# Benchmark regression gate: compares a sweep benchmark report (schema
# fsoi-bench-sweep/v4, produced by `experiments bench`) against the
# committed baseline BENCH_sweep.json and exits nonzero on regression.
#
# Checks, each against its own tolerance:
#   * serial throughput (cells_per_sec_serial) must not drop more than
#     TOL (fractional, default 0.50 — CI machines vary a lot);
#   * simulated throughput (sim_cycles_per_sec) must not drop more than
#     TOL either — this is the workload-size-invariant number: halving
#     ops_per_core inflates cells/sec without the simulator getting
#     faster, but cannot inflate cycles/sec;
#   * best thread-scaling speedup (max_speedup) must not drop more than
#     SPEEDUP_TOL (default 0.50);
#   * byte_identical must be true in the current report — a parallel
#     sweep that diverges from the serial fold is a hard failure at any
#     tolerance.
#
# Hard scaling checks, independent of any baseline or tolerance (the old
# relative-only check was vacuous: with a bad baseline of 1.0 and tol
# 0.50, a parallel run 2x slower than serial still passed):
#   * if the current report sampled threads_max > 1, max_speedup must be
#     at least 1.0 — parallel slower than serial is a performance bug;
#   * if the current host has cpus > 1, the report must have sampled
#     threads_max > 1 AND achieved max_speedup > 1.0 — a multi-core
#     runner that cannot beat serial means the executor regressed.
#     (A 1-CPU host honestly reports cpus=1/threads_max=1 and skips
#     both: there is no parallelism to prove.)
#
# Usage:
#   scripts/bench_gate.sh                       # run the bench, compare
#   scripts/bench_gate.sh --current FILE        # compare existing report
#   scripts/bench_gate.sh --baseline FILE --tol 0.3 --speedup-tol 0.4
#   scripts/bench_gate.sh --update              # re-baseline: run the
#       bench (or gate an existing --current FILE), check it against the
#       current baseline as usual, then overwrite the baseline file with
#       the fresh report on success. A failing gate leaves the baseline
#       untouched.
set -eu
cd "$(dirname "$0")/.."

BASELINE=BENCH_sweep.json
CURRENT=
TOL=0.50
SPEEDUP_TOL=0.50
UPDATE=0
while [ $# -gt 0 ]; do
    case "$1" in
        --baseline)    BASELINE=$2; shift 2 ;;
        --current)     CURRENT=$2; shift 2 ;;
        --tol)         TOL=$2; shift 2 ;;
        --speedup-tol) SPEEDUP_TOL=$2; shift 2 ;;
        --update)      UPDATE=1; shift ;;
        *) echo "bench_gate: unknown argument $1" >&2; exit 2 ;;
    esac
done

if [ -z "$CURRENT" ]; then
    CURRENT=target/BENCH_current.json
    mkdir -p target
    echo "bench_gate: running the sweep benchmark -> $CURRENT"
    cargo run -q --release --offline -p fsoi-bench --bin experiments -- \
        bench --out "$CURRENT"
fi

[ -f "$BASELINE" ] || { echo "bench_gate: missing baseline $BASELINE" >&2; exit 2; }
[ -f "$CURRENT" ]  || { echo "bench_gate: missing current report $CURRENT" >&2; exit 2; }

# The report writes one "key": value pair per line precisely so this
# extraction stays a one-line sed.
field() {
    sed -n "s/^ *\"$2\": \([0-9][0-9.]*\).*/\1/p" "$1" | head -n 1
}

# On failure, put the offending field's baseline and fresh values side by
# side on stderr — the stdout FAIL lines stay as the human narrative, the
# stderr diff is the machine-greppable summary CI logs key on.
diff_stderr() {
    echo "bench_gate: diff $1: baseline=$2 current=$3" >&2
}

schema=$(sed -n 's/^ *"schema": "\([^"]*\)".*/\1/p' "$CURRENT" | head -n 1)
if [ "$schema" != "fsoi-bench-sweep/v4" ]; then
    echo "bench_gate: unexpected schema '$schema' in $CURRENT" >&2
    exit 2
fi

# v4: a report is only comparable to a baseline swept at the same node
# count — cell throughput differs by orders of magnitude between a
# 16-node sweep and a 256-node one, so a mismatch would make every
# tolerance check meaningless. Mismatch is a usage error (exit 2), not a
# performance regression.
base_nodes=$(field "$BASELINE" nodes)
cur_nodes=$(field "$CURRENT" nodes)
if [ -z "$base_nodes" ] || [ -z "$cur_nodes" ]; then
    echo "bench_gate: could not extract nodes from reports" >&2
    exit 2
fi
if [ "$base_nodes" != "$cur_nodes" ]; then
    echo "bench_gate: FAIL nodes: current report swept $cur_nodes nodes but baseline swept $base_nodes — not comparable" >&2
    diff_stderr nodes "$base_nodes" "$cur_nodes"
    exit 2
fi
echo "bench_gate: ok nodes: both reports swept $cur_nodes nodes"

base_cps=$(field "$BASELINE" cells_per_sec_serial)
cur_cps=$(field "$CURRENT" cells_per_sec_serial)
base_scps=$(field "$BASELINE" sim_cycles_per_sec)
cur_scps=$(field "$CURRENT" sim_cycles_per_sec)
base_sp=$(field "$BASELINE" max_speedup)
cur_sp=$(field "$CURRENT" max_speedup)
cur_tmax=$(field "$CURRENT" threads_max)
cur_cpus=$(field "$CURRENT" cpus)
byte=$(sed -n 's/^ *"byte_identical": \(true\|false\).*/\1/p' "$CURRENT" | head -n 1)

for pair in "cells_per_sec_serial=$base_cps/$cur_cps" \
            "sim_cycles_per_sec=$base_scps/$cur_scps" \
            "max_speedup=$base_sp/$cur_sp" \
            "threads_max=$cur_tmax/$cur_tmax" \
            "cpus=$cur_cpus/$cur_cpus"; do
    case "$pair" in
        *=/*|*/) echo "bench_gate: could not extract ${pair%%=*} from reports" >&2; exit 2 ;;
    esac
done

fail=0

if ! awk -v c="$cur_cps" -v b="$base_cps" -v t="$TOL" \
        'BEGIN { exit (c + 0 >= b * (1 - t)) ? 0 : 1 }'; then
    echo "bench_gate: FAIL throughput: $cur_cps cells/s < baseline $base_cps * (1 - $TOL)"
    diff_stderr cells_per_sec_serial "$base_cps" "$cur_cps"
    fail=1
else
    echo "bench_gate: ok throughput: $cur_cps cells/s (baseline $base_cps, tol $TOL)"
fi

if ! awk -v c="$cur_scps" -v b="$base_scps" -v t="$TOL" \
        'BEGIN { exit (c + 0 >= b * (1 - t)) ? 0 : 1 }'; then
    echo "bench_gate: FAIL sim throughput: $cur_scps cycles/s < baseline $base_scps * (1 - $TOL)"
    diff_stderr sim_cycles_per_sec "$base_scps" "$cur_scps"
    fail=1
else
    echo "bench_gate: ok sim throughput: $cur_scps cycles/s (baseline $base_scps, tol $TOL)"
fi

if ! awk -v c="$cur_sp" -v b="$base_sp" -v t="$SPEEDUP_TOL" \
        'BEGIN { exit (c + 0 >= b * (1 - t)) ? 0 : 1 }'; then
    echo "bench_gate: FAIL scaling: max speedup $cur_sp < baseline $base_sp * (1 - $SPEEDUP_TOL)"
    diff_stderr max_speedup "$base_sp" "$cur_sp"
    fail=1
else
    echo "bench_gate: ok scaling: max speedup $cur_sp (baseline $base_sp, tol $SPEEDUP_TOL)"
fi

# Hard checks: no baseline or tolerance can excuse parallel-slower-than-
# serial, and a multi-core host must demonstrate real speedup.
if awk -v m="$cur_tmax" 'BEGIN { exit (m + 0 > 1) ? 0 : 1 }' && \
   awk -v s="$cur_sp" 'BEGIN { exit (s + 0 < 1.0) ? 0 : 1 }'; then
    echo "bench_gate: FAIL scaling (hard): sampled $cur_tmax threads but max speedup $cur_sp < 1.0 — parallel is slower than serial"
    diff_stderr max_speedup "1.0(floor)" "$cur_sp"
    fail=1
fi
if awk -v c="$cur_cpus" 'BEGIN { exit (c + 0 > 1) ? 0 : 1 }'; then
    if ! awk -v m="$cur_tmax" 'BEGIN { exit (m + 0 > 1) ? 0 : 1 }'; then
        echo "bench_gate: FAIL scaling (hard): host has $cur_cpus cpus but the report only sampled threads_max=$cur_tmax"
        diff_stderr threads_max "$cur_cpus(cpus)" "$cur_tmax"
        fail=1
    elif ! awk -v s="$cur_sp" 'BEGIN { exit (s + 0 > 1.0) ? 0 : 1 }'; then
        echo "bench_gate: FAIL scaling (hard): host has $cur_cpus cpus but max speedup $cur_sp is not above 1.0"
        diff_stderr max_speedup "1.0(floor)" "$cur_sp"
        fail=1
    else
        echo "bench_gate: ok scaling (hard): $cur_cpus cpus, $cur_tmax threads, max speedup $cur_sp > 1.0"
    fi
else
    echo "bench_gate: ok scaling (hard): single-cpu host, serial-only curve is honest"
fi

if [ "$byte" != "true" ]; then
    echo "bench_gate: FAIL determinism: byte_identical is '$byte' — parallel sweep diverged from the serial fold"
    diff_stderr byte_identical true "$byte"
    fail=1
else
    echo "bench_gate: ok determinism: parallel sweep byte-identical to serial"
fi

if [ "$fail" -ne 0 ]; then
    echo "bench_gate: REGRESSION (see failures above)"
    exit 1
fi
if [ "$UPDATE" -eq 1 ]; then
    cp "$CURRENT" "$BASELINE"
    echo "bench_gate: re-baselined $BASELINE from $CURRENT"
fi
echo "bench_gate: PASS"
