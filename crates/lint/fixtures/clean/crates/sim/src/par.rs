//! Clean-fixture stand-in for `fsoi_sim::par`: `crates/sim/src/par.rs`
//! is a simulation-library path exempt from rule D3, so threads and
//! locks here must not fire — and the drain/steal shapes below are the
//! *fixed* (post-PR-6) forms, so rule D4b must stay quiet too.
//! Never compiled — only lexed.

use std::collections::VecDeque;
use std::sync::{Mutex, PoisonError};

fn recover<T>(e: PoisonError<T>) -> T {
    e.into_inner()
}

pub fn sweep_exempt() -> u64 {
    let queue: Mutex<VecDeque<u64>> = Mutex::new(VecDeque::new());
    std::thread::scope(|s| {
        let h = s.spawn(|| queue.lock().map(|q| q.len() as u64).unwrap_or(0));
        h.join().unwrap_or(0)
    })
}

/// The fixed steal loop: the own-queue guard is block-scoped, so it is
/// dead before the victim's lock is requested (D4b-clean).
pub fn drain_then_steal(queues: &[Mutex<VecDeque<u64>>], me: usize) -> Option<u64> {
    let own = {
        let mut q = queues[me].lock().unwrap_or_else(recover);
        q.pop_front()
    };
    own.or_else(|| {
        let got = queues[(me + 1) % queues.len()].lock().unwrap_or_else(recover).pop_back();
        got
    })
}

/// An explicit `drop(guard)` also ends the guard's life before the
/// blocking call (D4b-clean).
pub fn handoff(a: &Mutex<u64>, b: &Mutex<u64>) -> u64 {
    let first = a.lock().unwrap_or_else(recover);
    let seed = *first;
    drop(first);
    let second = b.lock().unwrap_or_else(recover);
    seed + *second
}
