//! The worst-case-loss matrix crossbar engine.
//!
//! The passive ring-matrix crossbar of the PAPERS.md comparative study
//! (*Optical Crossbars on Chip: a comparative study based on worst-case
//! losses*, arXiv 1512.07492) is the timing opposite of the Corona-style
//! token ring next door ([`crate::network::RingNetwork`]): every
//! source-destination pair has a dedicated passive path, so there is no
//! circulating token to win — a packet pays one cycle of (electrical)
//! output-port arbitration, its serialization, and the worst-case-path
//! flight time, and contention exists *only* at the destination port.
//!
//! The price is paid in the power column instead: the per-port laser must
//! be sized for the worst-case insertion loss of the whole matrix, which
//! grows linearly in dB with the radix
//! ([`fsoi_optics::crossbar::CrossbarLossModel`]), so the static power
//! per port climbs exponentially with node count. [`CrossbarConfig::nodes`]
//! wires that budget straight into the engine, which is how the
//! design-space grids get crossbar energy and latency out of the same
//! pipeline as FSOI, mesh and Corona.

use crate::config::RingConfig;
use crate::network::{RingDelivered, RingPacket};
use fsoi_optics::crossbar::CrossbarLossModel;
use fsoi_sim::event::EventQueue;
use fsoi_sim::queue::BoundedQueue;
use fsoi_sim::stats::Summary;
use fsoi_sim::Cycle;

/// Bit error rate the crossbar laser budget is sized for. The passive
/// matrix has no collision/retransmission mechanism to relax it, so it
/// keeps the strict optical-interconnect target.
const CROSSBAR_TARGET_BER: f64 = 1e-12;

/// Configuration of a [`CrossbarNetwork`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrossbarConfig {
    /// Number of ports (nodes).
    pub nodes: usize,
    /// Cycles of output-port arbitration before a packet launches.
    pub arbitration_cycles: u64,
    /// Serialization cycles of a 72-bit meta packet on a port's WDM
    /// bundle.
    pub meta_serialization: u64,
    /// Serialization cycles of a 360-bit data packet.
    pub data_serialization: u64,
    /// Flight time over the worst-case matrix path, cycles (~2 die edges
    /// of waveguide at group index ≈ 4).
    pub traversal_cycles: u64,
    /// Per-source injection queue capacity, packets.
    pub injection_queue: usize,
    /// Static power per port — the worst-case-loss-sized laser plus the
    /// receiver — watts.
    pub port_static_w: f64,
}

impl CrossbarConfig {
    /// A matrix crossbar for `n` nodes, its per-port power sized from the
    /// worst-case insertion loss at this radix
    /// ([`CrossbarLossModel::paper_default`]).
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn nodes(n: usize) -> Self {
        assert!(n >= 2, "a crossbar needs at least two nodes");
        let budget = CrossbarLossModel::paper_default().budget(n, CROSSBAR_TARGET_BER);
        CrossbarConfig {
            nodes: n,
            arbitration_cycles: 1,
            meta_serialization: 1,
            data_serialization: 3,
            traversal_cycles: 2,
            injection_queue: 16,
            port_static_w: budget.port_power_mw / 1000.0,
        }
    }

    /// Matches [`RingConfig`]'s serialization so latency comparisons
    /// against Corona isolate the arbitration difference.
    pub fn matches_ring_serialization(&self, ring: &RingConfig) -> bool {
        self.meta_serialization == ring.meta_serialization
            && self.data_serialization == ring.data_serialization
    }
}

/// Per-destination output port: dedicated paths in, one reader out.
#[derive(Debug)]
struct Port {
    /// When the port finishes its current packet.
    busy_until: Cycle,
    /// Waiting writers, FIFO (the electrical arbiter grants in request
    /// order; FIFO is the fair-service approximation).
    queue: BoundedQueue<RingPacket>,
    served: u64,
    port_wait: Summary,
}

/// Statistics of a crossbar run.
#[derive(Debug, Default)]
pub struct CrossbarStats {
    /// Packets accepted.
    pub injected: u64,
    /// Packets rejected (queue full).
    pub rejected: u64,
    /// Packets delivered.
    pub delivered: u64,
    /// End-to-end latency.
    pub latency: Summary,
    /// Output-port arbitration wait.
    pub port_wait: Summary,
}

/// The worst-case-loss matrix crossbar.
#[derive(Debug)]
pub struct CrossbarNetwork {
    cfg: CrossbarConfig,
    now: Cycle,
    ports: Vec<Port>,
    deliveries: EventQueue<RingPacket>,
    delivered: Vec<RingDelivered>,
    stats: CrossbarStats,
    next_id: u64,
}

impl CrossbarNetwork {
    /// Creates the crossbar.
    pub fn new(cfg: CrossbarConfig) -> Self {
        CrossbarNetwork {
            ports: (0..cfg.nodes)
                .map(|_| Port {
                    busy_until: Cycle::ZERO,
                    queue: BoundedQueue::new(cfg.injection_queue),
                    served: 0,
                    port_wait: Summary::new(),
                })
                .collect(),
            now: Cycle::ZERO,
            deliveries: EventQueue::new(),
            delivered: Vec::new(),
            stats: CrossbarStats::default(),
            next_id: 0,
            cfg,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &CrossbarConfig {
        &self.cfg
    }

    /// Current time.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Statistics so far.
    pub fn stats(&self) -> &CrossbarStats {
        &self.stats
    }

    /// Static power of the whole crossbar: every port's worst-case-sized
    /// laser plus receiver, watts.
    pub fn static_power_w(&self) -> f64 {
        self.cfg.port_static_w * self.cfg.nodes as f64
    }

    /// Injects a packet toward its destination port.
    ///
    /// # Errors
    ///
    /// Returns `Err(packet)` when the port's writer queue is full.
    ///
    /// # Panics
    ///
    /// Panics if `src == dst` or out of range.
    pub fn inject(&mut self, mut packet: RingPacket) -> Result<u64, RingPacket> {
        assert_ne!(packet.src, packet.dst, "no self-injection");
        assert!(packet.src < self.cfg.nodes && packet.dst < self.cfg.nodes);
        packet.id = self.next_id;
        packet.enqueued_at = self.now;
        match self.ports[packet.dst].queue.push(packet) {
            Ok(()) => {
                self.next_id += 1;
                self.stats.injected += 1;
                Ok(packet.id)
            }
            Err(p) => {
                self.stats.rejected += 1;
                Err(p)
            }
        }
    }

    /// Advances one cycle.
    pub fn tick(&mut self) {
        // Each output port serves its arbitration queue serially; the
        // paths themselves are dedicated, so ports never block each other.
        for d in 0..self.ports.len() {
            loop {
                let port = &self.ports[d];
                if port.queue.is_empty() || port.busy_until > self.now {
                    break;
                }
                let port = &mut self.ports[d];
                // lint: allow(P1) the is_empty check above guarantees a queued packet
                let packet = port.queue.pop().expect("non-empty");
                let start = self.now.max(port.busy_until) + self.cfg.arbitration_cycles;
                let ser = if packet.is_data {
                    self.cfg.data_serialization
                } else {
                    self.cfg.meta_serialization
                };
                let wait = start.saturating_sub(packet.enqueued_at.as_u64().into());
                port.port_wait.record(wait as f64);
                self.stats.port_wait.record(wait as f64);
                let done = start + ser;
                port.busy_until = done;
                port.served += 1;
                let arrive = done + self.cfg.traversal_cycles;
                self.deliveries.push(arrive, packet);
            }
        }
        self.now += 1;
        while let Some((at, packet)) = self.deliveries.pop_due(self.now) {
            self.stats.delivered += 1;
            self.stats.latency.record((at - packet.enqueued_at) as f64);
            self.delivered.push(RingDelivered {
                packet,
                delivered_at: at,
            });
        }
    }

    /// Takes deliveries since the last drain.
    pub fn drain_delivered(&mut self) -> Vec<RingDelivered> {
        std::mem::take(&mut self.delivered)
    }

    /// Undrained deliveries.
    pub fn delivered_count(&self) -> usize {
        self.delivered.len()
    }

    /// True when nothing is queued or in flight.
    pub fn is_idle(&self) -> bool {
        self.deliveries.is_empty() && self.ports.iter().all(|p| p.queue.is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::RingNetwork;

    fn run_until_idle(net: &mut CrossbarNetwork, max: u64) -> Vec<RingDelivered> {
        let mut out = Vec::new();
        for _ in 0..max {
            net.tick();
            out.extend(net.drain_delivered());
            if net.is_idle() {
                break;
            }
        }
        out
    }

    #[test]
    fn single_meta_packet_timing() {
        let mut net = CrossbarNetwork::new(CrossbarConfig::nodes(64));
        net.inject(RingPacket::meta(3, 40, 7)).unwrap();
        let out = run_until_idle(&mut net, 100);
        assert_eq!(out.len(), 1);
        // Arbitration 1 + serialization 1 + traversal 2 = 4.
        assert_eq!(out[0].latency(), 4);
        assert_eq!(out[0].packet.tag, 7);
    }

    #[test]
    fn no_token_beats_corona_on_idle_latency() {
        let mut xbar = CrossbarNetwork::new(CrossbarConfig::nodes(64));
        let mut ring = RingNetwork::new(RingConfig::nodes(64));
        assert!(xbar.config().matches_ring_serialization(ring.config()));
        xbar.inject(RingPacket::data(3, 40, 0)).unwrap();
        ring.inject(RingPacket::data(3, 40, 0)).unwrap();
        let x = run_until_idle(&mut xbar, 100);
        let mut r = Vec::new();
        for _ in 0..100 {
            ring.tick();
            r.extend(ring.drain_delivered());
            if ring.is_idle() {
                break;
            }
        }
        assert!(
            x[0].latency() < r[0].latency(),
            "dedicated paths skip the token: {} vs {}",
            x[0].latency(),
            r[0].latency()
        );
    }

    #[test]
    fn same_destination_serializes() {
        let mut net = CrossbarNetwork::new(CrossbarConfig::nodes(64));
        net.inject(RingPacket::data(1, 40, 0)).unwrap();
        net.inject(RingPacket::data(2, 40, 1)).unwrap();
        let out = run_until_idle(&mut net, 200);
        assert_eq!(out.len(), 2);
        let mut times: Vec<u64> = out.iter().map(|d| d.delivered_at.as_u64()).collect();
        times.sort_unstable();
        assert!(times[1] >= times[0] + 3, "{times:?}");
        assert!(net.stats().port_wait.mean() > 0.0);
    }

    #[test]
    fn different_destinations_run_concurrently() {
        let mut net = CrossbarNetwork::new(CrossbarConfig::nodes(256));
        for src in 0..8usize {
            net.inject(RingPacket::meta(src, src + 128, src as u64))
                .unwrap();
        }
        let out = run_until_idle(&mut net, 100);
        assert_eq!(out.len(), 8);
        assert!(out.iter().all(|d| d.latency() == 4));
    }

    #[test]
    fn queue_overflow_rejects() {
        let mut net = CrossbarNetwork::new(CrossbarConfig::nodes(16));
        let mut ok = 0;
        for i in 0..40u64 {
            if net.inject(RingPacket::data(1, 0, i)).is_ok() {
                ok += 1;
            }
        }
        assert_eq!(ok, 16);
        assert_eq!(net.stats().rejected, 24);
    }

    #[test]
    fn static_power_explodes_with_radix() {
        // The worst-case-loss sizing is the whole point: per-PORT power
        // (not just total) must climb steeply from 64 to 256 ports.
        let c64 = CrossbarConfig::nodes(64);
        let c256 = CrossbarConfig::nodes(256);
        assert!(c64.port_static_w > 0.0);
        assert!(
            c256.port_static_w > c64.port_static_w * 100.0,
            "64: {} W, 256: {} W",
            c64.port_static_w,
            c256.port_static_w
        );
        let n64 = CrossbarNetwork::new(c64);
        let n256 = CrossbarNetwork::new(c256);
        assert!(n256.static_power_w() > n64.static_power_w() * 400.0);
    }

    #[test]
    #[should_panic(expected = "no self-injection")]
    fn self_injection_panics() {
        let mut net = CrossbarNetwork::new(CrossbarConfig::nodes(16));
        let _ = net.inject(RingPacket::meta(3, 3, 0));
    }
}
