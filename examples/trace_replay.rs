//! Replays a flight-recorder JSONL dump into per-packet timelines and
//! per-lane collision/backoff statistics.
//!
//! ```text
//! cargo run --example trace_replay -- /tmp/fsoi-flight-1234-main.jsonl
//! ```
//!
//! Dumps are written automatically when a panic fires with tracing
//! compiled in (debug builds or `--features trace`); the panic message
//! names the file. `FSOI_TRACE_DUMP` pins the dump path.

use fsoi_sim::trace::{timelines, TraceEvent, TraceRecord};

const LANE_NAMES: [&str; 2] = ["meta", "data"];

fn lane_name(lane: u64) -> &'static str {
    LANE_NAMES.get(lane as usize).copied().unwrap_or("lane?")
}

/// One-line human rendering of an event, without the packet id (the
/// timeline heading already carries it).
fn describe(event: &TraceEvent) -> String {
    match event {
        TraceEvent::Inject {
            src,
            dst,
            lane,
            tag,
            ..
        } => {
            format!(
                "inject    {} -> {} ({}, tag {tag})",
                src,
                dst,
                lane_name(*lane)
            )
        }
        TraceEvent::Reject { src, dst, lane } => {
            format!(
                "reject    {} -> {} ({}): source queue full",
                src,
                dst,
                lane_name(*lane)
            )
        }
        TraceEvent::TxStart {
            attempt,
            slot,
            lane,
            ..
        } => {
            format!(
                "tx_start  attempt {attempt}, {} slot {slot}",
                lane_name(*lane)
            )
        }
        TraceEvent::Collide {
            rx, group, lane, ..
        } => {
            format!(
                "collide   at rx {rx} ({}), {group} packets in group",
                lane_name(*lane)
            )
        }
        TraceEvent::BitError { lane, .. } => {
            format!("bit_error dropped in flight ({})", lane_name(*lane))
        }
        TraceEvent::Backoff {
            retry,
            delay_slots,
            ready,
            lane,
            ..
        } => {
            format!(
                "backoff   retry {retry}, {delay_slots} {} slot(s) -> ready @{ready}",
                lane_name(*lane)
            )
        }
        TraceEvent::Hint { dst, winner } => {
            format!("hint      receiver {dst} names winner {winner}")
        }
        TraceEvent::Deliver {
            queuing,
            scheduling,
            network,
            resolution,
            retries,
            lane,
            ..
        } => {
            format!(
                "deliver   after {retries} retries ({}; latency: queue {queuing} + sched {scheduling} + net {network} + resolve {resolution})",
                lane_name(*lane)
            )
        }
        TraceEvent::Confirm { src, dst, kind } => {
            format!("confirm   {src} -> {dst} ({kind})")
        }
        TraceEvent::Dir {
            node,
            line,
            from,
            to,
        } => {
            format!("dir       node {node} line {line:#x}: {from} -> {to}")
        }
        TraceEvent::Mark { label, value } => format!("mark      {label} = {value}"),
    }
}

#[derive(Default)]
struct LaneStats {
    tx_starts: u64,
    collisions: u64,
    bit_errors: u64,
    backoffs: u64,
    backoff_slots: u64,
    delivered: u64,
    retries_at_delivery: u64,
}

fn main() {
    let Some(path) = std::env::args().nth(1) else {
        eprintln!("usage: trace_replay <dump.jsonl>");
        eprintln!("(flight-recorder dumps are announced by the panic message;");
        eprintln!(" set FSOI_TRACE_DUMP to pin the path)");
        std::process::exit(2);
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("trace_replay: cannot read {path}: {e}");
            std::process::exit(1);
        }
    };

    let mut records = Vec::new();
    let mut skipped = 0usize;
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        match TraceRecord::parse_jsonl(line) {
            Some(r) => records.push(r),
            None => skipped += 1,
        }
    }
    if records.is_empty() {
        eprintln!("trace_replay: no parseable trace records in {path} ({skipped} lines skipped)");
        std::process::exit(1);
    }
    let first = records.iter().map(|r| r.cycle).min().unwrap_or(0);
    let last = records.iter().map(|r| r.cycle).max().unwrap_or(0);

    let by_packet = timelines(&records);
    println!(
        "replay of {path}: {} events over cycles {first}..{last}, {} packets{}",
        records.len(),
        by_packet.len(),
        if skipped > 0 {
            format!(" ({skipped} unparseable lines skipped)")
        } else {
            String::new()
        },
    );

    println!("\nper-packet timelines:");
    for (id, events) in &by_packet {
        let heading = events
            .iter()
            .find_map(|r| match &r.event {
                TraceEvent::Inject { src, dst, lane, .. } => {
                    Some(format!(" ({} -> {}, {} lane)", src, dst, lane_name(*lane)))
                }
                _ => None,
            })
            .unwrap_or_default();
        println!("  packet {id}{heading}:");
        for r in events {
            println!("    @{:<8} {}", r.cycle, describe(&r.event));
        }
    }

    let mut lanes: [LaneStats; 2] = Default::default();
    let mut unattributed = 0u64;
    for r in &records {
        let Some(lane) = r.event.lane().filter(|&l| (l as usize) < lanes.len()) else {
            unattributed += 1;
            continue;
        };
        let s = &mut lanes[lane as usize];
        match &r.event {
            TraceEvent::TxStart { .. } => s.tx_starts += 1,
            TraceEvent::Collide { .. } => s.collisions += 1,
            TraceEvent::BitError { .. } => s.bit_errors += 1,
            TraceEvent::Backoff { delay_slots, .. } => {
                s.backoffs += 1;
                s.backoff_slots += delay_slots;
            }
            TraceEvent::Deliver { retries, .. } => {
                s.delivered += 1;
                s.retries_at_delivery += retries;
            }
            _ => {}
        }
    }

    println!("\nper-lane statistics:");
    println!(
        "  {:<5} {:>9} {:>10} {:>10} {:>8} {:>9} {:>12} {:>15}",
        "lane",
        "tx_starts",
        "collisions",
        "bit_errs",
        "backoffs",
        "delivered",
        "mean_retries",
        "mean_backoff"
    );
    for (i, s) in lanes.iter().enumerate() {
        let mean = |num: u64, den: u64| {
            if den == 0 {
                0.0
            } else {
                num as f64 / den as f64
            }
        };
        println!(
            "  {:<5} {:>9} {:>10} {:>10} {:>8} {:>9} {:>12.2} {:>12.2} sl",
            LANE_NAMES[i],
            s.tx_starts,
            s.collisions,
            s.bit_errors,
            s.backoffs,
            s.delivered,
            mean(s.retries_at_delivery, s.delivered),
            mean(s.backoff_slots, s.backoffs),
        );
    }
    if unattributed > 0 {
        println!("  ({unattributed} events carry no lane: confirms, hints, directory transitions, marks)");
    }
}
