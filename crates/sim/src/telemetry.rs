//! Wall-clock harness telemetry — the explicitly **nondeterministic**
//! plane of the harness observability subsystem.
//!
//! [`crate::profile`] counts what the *simulation* did (deterministic,
//! byte-identical across thread counts); this module observes what the
//! *host* did while running it: per-worker steal/chunk counts, queue
//! depths, busy/idle durations, per-phase wall time, and cell-cache
//! hit/miss/tamper/corrupt outcomes. None of these numbers are
//! reproducible — they depend on scheduling, load and cache state — so
//! they are excluded from every byte-identity gate and are reported in
//! a clearly separated `telemetry` section of the run manifest.
//!
//! This module is the **only** simulation-library code allowed to read
//! the wall clock (`fsoi-lint` rule D2 exempts exactly this file, the
//! way D3 exempts `par.rs` for threads). Everything else emits through
//! the functions here, which are no-ops — no clock read, one relaxed
//! atomic load — until [`set_enabled`] turns collection on (the
//! documented `FSOI_TELEMETRY` knob via [`enable_from_env`], or the
//! `experiments profile` subcommand programmatically). Cache outcome
//! counters are the exception: they are plain relaxed counters with no
//! clock involvement and stay on unconditionally so corruption events
//! are never silently dropped.
//!
//! State is a fixed set of process-wide atomics (no locks — rule D3
//! still applies here): per-worker `[AtomicU64; MAX_WORKERS]` arrays
//! indexed by worker id (clamped), phase buckets, and cache counters.
//! [`snapshot`] copies them into a plain [`Snapshot`] for rendering.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

/// Workers tracked individually; higher worker ids clamp into the last
/// slot (sweeps beyond 64 threads are aggregated, not lost).
pub const MAX_WORKERS: usize = 64;

static ENABLED: AtomicBool = AtomicBool::new(false);

static CHUNKS: [AtomicU64; MAX_WORKERS] = [const { AtomicU64::new(0) }; MAX_WORKERS];
static STEALS: [AtomicU64; MAX_WORKERS] = [const { AtomicU64::new(0) }; MAX_WORKERS];
static CELLS: [AtomicU64; MAX_WORKERS] = [const { AtomicU64::new(0) }; MAX_WORKERS];
static BUSY_NS: [AtomicU64; MAX_WORKERS] = [const { AtomicU64::new(0) }; MAX_WORKERS];
static IDLE_NS: [AtomicU64; MAX_WORKERS] = [const { AtomicU64::new(0) }; MAX_WORKERS];
static DEPTH_SUM: [AtomicU64; MAX_WORKERS] = [const { AtomicU64::new(0) }; MAX_WORKERS];
static DEPTH_SAMPLES: [AtomicU64; MAX_WORKERS] = [const { AtomicU64::new(0) }; MAX_WORKERS];

static PHASE_NS: [AtomicU64; Phase::COUNT] = [const { AtomicU64::new(0) }; Phase::COUNT];

static CACHE_HITS: AtomicU64 = AtomicU64::new(0);
static CACHE_MISSES: AtomicU64 = AtomicU64::new(0);
static CACHE_TAMPER: AtomicU64 = AtomicU64::new(0);
static CACHE_CORRUPT: AtomicU64 = AtomicU64::new(0);

/// A wall-clock phase bucket for [`span`] timings.
///
/// `Build`/`Warmup`/`Sim`/`Merge` partition a cell's lifecycle; the
/// `Sim*` buckets break the simulation loop down further (network
/// advance vs protocol/memory event processing vs core stepping — the
/// interconnect/coherence/memory split of the tick).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Cell or template construction (config + app → system).
    Build,
    /// Seed-independent pre-timing warmup (distributed-L2 preload).
    Warmup,
    /// The simulation loop proper (tick + fast-forward).
    Sim,
    /// Merging per-cell reports into one registry.
    Merge,
    /// Within `Sim`: interconnect tick plus delivery drain.
    SimNet,
    /// Within `Sim`: pending coherence/memory event processing.
    SimEvents,
    /// Within `Sim`: core stepping and per-cycle accounting.
    SimCores,
}

impl Phase {
    /// Number of phase buckets.
    pub const COUNT: usize = 7;

    const ALL: [Phase; Phase::COUNT] = [
        Phase::Build,
        Phase::Warmup,
        Phase::Sim,
        Phase::Merge,
        Phase::SimNet,
        Phase::SimEvents,
        Phase::SimCores,
    ];

    /// Stable lowercase name used in reports and the run manifest.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Build => "build",
            Phase::Warmup => "warmup",
            Phase::Sim => "sim",
            Phase::Merge => "merge",
            Phase::SimNet => "sim_net",
            Phase::SimEvents => "sim_events",
            Phase::SimCores => "sim_cores",
        }
    }
}

/// Whether telemetry collection is on.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns telemetry collection on or off (process-wide).
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Enables telemetry when the documented `FSOI_TELEMETRY` knob is set
/// to anything but `0` or empty. Telemetry never changes simulation
/// output, so this read cannot leak into any exported number.
pub fn enable_from_env() {
    if let Ok(v) = std::env::var("FSOI_TELEMETRY") {
        let v = v.trim();
        if !v.is_empty() && v != "0" {
            set_enabled(true);
        }
    }
}

/// Zeroes every counter and duration (collection stays on/off as-is).
pub fn reset() {
    for arr in [
        &CHUNKS,
        &STEALS,
        &CELLS,
        &BUSY_NS,
        &IDLE_NS,
        &DEPTH_SUM,
        &DEPTH_SAMPLES,
    ] {
        for a in arr.iter() {
            a.store(0, Ordering::Relaxed);
        }
    }
    for a in PHASE_NS.iter() {
        a.store(0, Ordering::Relaxed);
    }
    CACHE_HITS.store(0, Ordering::Relaxed);
    CACHE_MISSES.store(0, Ordering::Relaxed);
    CACHE_TAMPER.store(0, Ordering::Relaxed);
    CACHE_CORRUPT.store(0, Ordering::Relaxed);
}

fn slot(worker: usize) -> usize {
    worker.min(MAX_WORKERS - 1)
}

/// Records a chunk popped from the worker's own deque.
pub fn worker_chunk(worker: usize) {
    if enabled() {
        CHUNKS[slot(worker)].fetch_add(1, Ordering::Relaxed);
    }
}

/// Records a chunk stolen from another worker's deque.
pub fn worker_steal(worker: usize) {
    if enabled() {
        STEALS[slot(worker)].fetch_add(1, Ordering::Relaxed);
    }
}

/// Records `n` cells executed by the worker.
pub fn worker_cells(worker: usize, n: u64) {
    if enabled() {
        CELLS[slot(worker)].fetch_add(n, Ordering::Relaxed);
    }
}

/// Samples the worker's own queue depth (taken under the deque lock the
/// worker already holds, so sampling adds no extra contention).
pub fn worker_queue_depth(worker: usize, depth: u64) {
    if enabled() {
        let s = slot(worker);
        DEPTH_SUM[s].fetch_add(depth, Ordering::Relaxed);
        DEPTH_SAMPLES[s].fetch_add(1, Ordering::Relaxed);
    }
}

/// Records a cell-cache hit. Cache counters are always on (see module
/// docs); they involve no clock read.
pub fn cache_hit() {
    CACHE_HITS.fetch_add(1, Ordering::Relaxed);
}

/// Records a cell-cache miss (entry absent).
pub fn cache_miss() {
    CACHE_MISSES.fetch_add(1, Ordering::Relaxed);
}

/// Records a cache entry rejected by the preimage check (tampered,
/// stale format, or a hash collision) — degraded to a miss.
pub fn cache_tamper() {
    CACHE_TAMPER.fetch_add(1, Ordering::Relaxed);
}

/// Records a cache entry whose payload failed to parse (corrupt wire
/// bytes) — degraded to a miss.
pub fn cache_corrupt() {
    CACHE_CORRUPT.fetch_add(1, Ordering::Relaxed);
}

enum Target {
    Phase(Phase),
    WorkerBusy(usize),
    WorkerIdle(usize),
}

/// A drop guard adding elapsed wall time into a bucket. When telemetry
/// is disabled the guard is inert and **no clock is read** — the cost
/// is one relaxed atomic load.
#[derive(Debug)]
pub struct WallSpan {
    // (bucket, start); None when telemetry was off at creation.
    armed: Option<(usize, Instant)>,
    kind: u8,
}

impl WallSpan {
    fn new(target: Target) -> WallSpan {
        if !enabled() {
            return WallSpan {
                armed: None,
                kind: 0,
            };
        }
        let (idx, kind) = match target {
            Target::Phase(p) => (p as usize, 0u8),
            Target::WorkerBusy(w) => (slot(w), 1),
            Target::WorkerIdle(w) => (slot(w), 2),
        };
        WallSpan {
            armed: Some((idx, Instant::now())),
            kind,
        }
    }
}

impl Drop for WallSpan {
    fn drop(&mut self) {
        if let Some((idx, at)) = self.armed.take() {
            let ns = at.elapsed().as_nanos() as u64;
            let bucket = match self.kind {
                0 => &PHASE_NS[idx],
                1 => &BUSY_NS[idx],
                _ => &IDLE_NS[idx],
            };
            bucket.fetch_add(ns, Ordering::Relaxed);
        }
    }
}

/// Times a lifecycle phase until the returned guard drops.
pub fn span(phase: Phase) -> WallSpan {
    WallSpan::new(Target::Phase(phase))
}

/// Times a worker's busy period (executing cells) until the guard drops.
pub fn worker_busy(worker: usize) -> WallSpan {
    WallSpan::new(Target::WorkerBusy(worker))
}

/// Times a worker's idle period (looking for work) until the guard drops.
pub fn worker_idle(worker: usize) -> WallSpan {
    WallSpan::new(Target::WorkerIdle(worker))
}

/// One worker's executor counters, copied out of the atomics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// Worker index (clamped to [`MAX_WORKERS`] − 1).
    pub worker: usize,
    /// Chunks popped from the worker's own deque.
    pub chunks: u64,
    /// Chunks stolen from other workers' deques.
    pub steals: u64,
    /// Cells executed.
    pub cells: u64,
    /// Nanoseconds spent executing cells.
    pub busy_ns: u64,
    /// Nanoseconds spent acquiring work.
    pub idle_ns: u64,
    /// Sum of sampled own-queue depths.
    pub queue_depth_sum: u64,
    /// Number of queue-depth samples.
    pub queue_depth_samples: u64,
}

/// Cell-cache outcome counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Intact entries returned without rerunning.
    pub hits: u64,
    /// Entries absent from the cache.
    pub misses: u64,
    /// Entries rejected by the preimage check (tamper/stale/collision).
    pub tamper: u64,
    /// Entries whose payload failed to parse.
    pub corrupt: u64,
}

/// The cache outcome counters right now (always collected).
pub fn cache_stats() -> CacheStats {
    CacheStats {
        hits: CACHE_HITS.load(Ordering::Relaxed),
        misses: CACHE_MISSES.load(Ordering::Relaxed),
        tamper: CACHE_TAMPER.load(Ordering::Relaxed),
        corrupt: CACHE_CORRUPT.load(Ordering::Relaxed),
    }
}

/// A point-in-time copy of every telemetry counter.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// Workers with at least one nonzero counter, in index order.
    pub workers: Vec<WorkerStats>,
    /// Wall nanoseconds per [`Phase`], indexed by discriminant.
    pub phase_ns: [u64; Phase::COUNT],
    /// Cell-cache outcome counters.
    pub cache: CacheStats,
}

/// Copies the current telemetry state (workers with no activity are
/// omitted).
pub fn snapshot() -> Snapshot {
    let mut workers = Vec::new();
    for w in 0..MAX_WORKERS {
        let ws = WorkerStats {
            worker: w,
            chunks: CHUNKS[w].load(Ordering::Relaxed),
            steals: STEALS[w].load(Ordering::Relaxed),
            cells: CELLS[w].load(Ordering::Relaxed),
            busy_ns: BUSY_NS[w].load(Ordering::Relaxed),
            idle_ns: IDLE_NS[w].load(Ordering::Relaxed),
            queue_depth_sum: DEPTH_SUM[w].load(Ordering::Relaxed),
            queue_depth_samples: DEPTH_SAMPLES[w].load(Ordering::Relaxed),
        };
        let active = WorkerStats {
            worker: w,
            ..WorkerStats::default()
        } != ws;
        if active {
            workers.push(ws);
        }
    }
    let mut phase_ns = [0u64; Phase::COUNT];
    for (i, b) in PHASE_NS.iter().enumerate() {
        phase_ns[i] = b.load(Ordering::Relaxed);
    }
    Snapshot {
        workers,
        phase_ns,
        cache: cache_stats(),
    }
}

impl Snapshot {
    /// Total chunks popped across all workers.
    pub fn total_chunks(&self) -> u64 {
        self.workers.iter().map(|w| w.chunks).sum()
    }

    /// Total steals across all workers.
    pub fn total_steals(&self) -> u64 {
        self.workers.iter().map(|w| w.steals).sum()
    }

    /// Renders the snapshot as a JSON object; every line after the
    /// first is prefixed with `prefix` so callers can embed it at any
    /// indentation inside a larger document.
    pub fn to_json(&self, prefix: &str) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        out.push_str("{\n");
        let _ = write!(out, "{prefix}  \"workers\": [");
        for (i, w) in self.workers.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n{prefix}    {{\"worker\": {}, \"chunks\": {}, \"steals\": {}, \"cells\": {}, \
                 \"busy_ns\": {}, \"idle_ns\": {}, \"queue_depth_sum\": {}, \
                 \"queue_depth_samples\": {}}}",
                w.worker,
                w.chunks,
                w.steals,
                w.cells,
                w.busy_ns,
                w.idle_ns,
                w.queue_depth_sum,
                w.queue_depth_samples
            );
        }
        if self.workers.is_empty() {
            out.push_str("],\n");
        } else {
            let _ = write!(out, "\n{prefix}  ],\n");
        }
        let _ = write!(out, "{prefix}  \"phase_ns\": {{");
        for (i, p) in Phase::ALL.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "\"{}\": {}", p.name(), self.phase_ns[*p as usize]);
        }
        out.push_str("},\n");
        let _ = writeln!(
            out,
            "{prefix}  \"cache\": {{\"hits\": {}, \"misses\": {}, \"tamper\": {}, \
             \"corrupt\": {}}}",
            self.cache.hits, self.cache.misses, self.cache.tamper, self.cache.corrupt
        );
        let _ = write!(out, "{prefix}}}");
        out
    }

    /// Renders the snapshot as a human-readable report: a per-worker
    /// table plus a `#`-bar phase breakdown.
    pub fn to_table(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "telemetry (wall-clock plane — nondeterministic)");
        let _ = writeln!(
            out,
            "{:>6}  {:>7}  {:>7}  {:>6}  {:>10}  {:>10}  {:>9}",
            "worker", "chunks", "steals", "cells", "busy_ms", "idle_ms", "avg_depth"
        );
        for w in &self.workers {
            let avg_depth = if w.queue_depth_samples > 0 {
                w.queue_depth_sum as f64 / w.queue_depth_samples as f64
            } else {
                0.0
            };
            let _ = writeln!(
                out,
                "{:>6}  {:>7}  {:>7}  {:>6}  {:>10.3}  {:>10.3}  {:>9.2}",
                w.worker,
                w.chunks,
                w.steals,
                w.cells,
                w.busy_ns as f64 / 1e6,
                w.idle_ns as f64 / 1e6,
                avg_depth
            );
        }
        if self.workers.is_empty() {
            let _ = writeln!(out, "  (no executor activity recorded)");
        }
        let max_ns = self.phase_ns.iter().copied().max().unwrap_or(0).max(1);
        let _ = writeln!(out, "{:>10}  {:>12}  bar", "phase", "ms");
        for p in Phase::ALL {
            let ns = self.phase_ns[p as usize];
            let bar = "#".repeat(((ns as u128 * 40) / max_ns as u128) as usize);
            let _ = writeln!(out, "{:>10}  {:>12.3}  {bar}", p.name(), ns as f64 / 1e6);
        }
        let _ = writeln!(
            out,
            "cache: hits={} misses={} tamper={} corrupt={}",
            self.cache.hits, self.cache.misses, self.cache.tamper, self.cache.corrupt
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // One sequential test owns all global-state mutation: sim-crate unit
    // tests run concurrently in this process, and splitting the
    // scenarios across #[test] fns would race on the shared atomics.
    #[test]
    fn counters_spans_and_snapshot_lifecycle() {
        reset();
        assert!(!enabled(), "collection starts off");

        // Disabled: worker counters are no-ops, cache counters are not.
        worker_chunk(0);
        worker_steal(0);
        let before = cache_stats();
        cache_hit();
        cache_tamper();
        let after = cache_stats();
        assert_eq!(after.hits, before.hits + 1, "cache counters are always on");
        assert_eq!(after.tamper, before.tamper + 1);
        assert_eq!(snapshot().total_chunks(), 0, "disabled counters stay zero");

        set_enabled(true);
        worker_chunk(0);
        worker_chunk(0);
        worker_steal(1);
        worker_cells(0, 3);
        worker_queue_depth(0, 4);
        worker_chunk(MAX_WORKERS + 5); // clamps into the last slot
        {
            let _b = span(Phase::Build);
            let _w = worker_busy(0);
            let _i = worker_idle(1);
        }
        set_enabled(false);

        let snap = snapshot();
        // ">=" because other tests may sweep while collection was on.
        assert!(snap.total_chunks() >= 3);
        assert!(snap.total_steals() >= 1);
        let w0 = snap
            .workers
            .iter()
            .find(|w| w.worker == 0)
            .expect("worker 0");
        assert!(w0.chunks >= 2);
        assert!(w0.cells >= 3);
        assert!(w0.queue_depth_sum >= 4);
        assert!(w0.queue_depth_samples >= 1);
        let last = snap
            .workers
            .iter()
            .find(|w| w.worker == MAX_WORKERS - 1)
            .expect("clamped slot");
        assert!(last.chunks >= 1, "out-of-range worker clamps, not drops");

        let json = snap.to_json("  ");
        assert!(json.contains("\"workers\": ["), "{json}");
        assert!(json.contains("\"phase_ns\": {\"build\":"), "{json}");
        assert!(json.contains("\"cache\": {\"hits\":"), "{json}");
        let table = snap.to_table();
        assert!(table.contains("worker"), "{table}");
        assert!(table.contains("cache: hits="), "{table}");
        assert!(table.contains('#'), "phase bars render: {table}");

        // Disabled again: spans read no clock and add nothing.
        let idle_before = snapshot().workers.iter().map(|w| w.idle_ns).sum::<u64>();
        drop(worker_idle(0));
        let idle_after = snapshot().workers.iter().map(|w| w.idle_ns).sum::<u64>();
        assert_eq!(idle_before, idle_after);

        reset();
        assert_eq!(cache_stats(), CacheStats::default(), "reset zeroes cache");
    }

    #[test]
    fn phase_names_are_distinct_and_stable() {
        let mut names: Vec<&str> = Phase::ALL.iter().map(|p| p.name()).collect();
        assert_eq!(names.len(), Phase::COUNT);
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Phase::COUNT, "phase names must be unique");
        assert_eq!(Phase::Sim.name(), "sim");
        assert_eq!(Phase::SimNet.name(), "sim_net");
    }

    #[test]
    fn empty_snapshot_renders() {
        let snap = Snapshot::default();
        assert_eq!(snap.total_chunks(), 0);
        assert!(snap.to_json("").contains("\"workers\": []"));
        assert!(snap.to_table().contains("no executor activity"));
    }
}
