//! A wormhole virtual-channel router with the canonical 4-stage pipeline.
//!
//! Each input port has `V` virtual channels of `D`-flit buffers. A head
//! flit passes route computation (RC), virtual-channel allocation (VA),
//! switch allocation (SA), and switch traversal (ST) — 4 cycles in the
//! baseline — while body flits inherit the route and VC and stream one per
//! cycle behind it. Credit-based flow control bounds each downstream VC to
//! its buffer depth; XY routing keeps the network deadlock-free.
//!
//! The router exposes its state machine to the
//! [`MeshNetwork`](crate::network::MeshNetwork), which owns inter-router
//! wiring (links and credit returns).

use crate::config::MeshConfig;
use crate::packet::Flit;
use crate::routing::{xy_route, Port};
use fsoi_sim::Cycle;
use std::collections::VecDeque;

/// One virtual channel of one input port.
#[derive(Debug)]
struct VirtualChannel {
    /// Buffered flits with their arrival times.
    buf: VecDeque<(Flit, Cycle)>,
    /// Output port chosen by RC for the packet at the front.
    route: Option<usize>,
    /// Downstream VC granted by VA.
    out_vc: Option<usize>,
}

impl VirtualChannel {
    fn new() -> Self {
        VirtualChannel {
            buf: VecDeque::new(),
            route: None,
            out_vc: None,
        }
    }
}

/// A flit leaving the router this cycle.
#[derive(Debug, Clone, Copy)]
pub struct Departure {
    /// The flit.
    pub flit: Flit,
    /// Output port index.
    pub out_port: usize,
    /// Downstream VC.
    pub out_vc: usize,
    /// Input port it came from (for credit return upstream).
    pub in_port: usize,
    /// Input VC it came from.
    pub in_vc: usize,
}

/// The router proper.
#[derive(Debug)]
pub struct Router {
    node: usize,
    vcs: usize,
    vc_depth: usize,
    router_cycles: u64,
    width: usize,
    inputs: Vec<Vec<VirtualChannel>>, // [port][vc]
    /// Which (in_port, in_vc) holds each output VC, `None` if free.
    out_alloc: Vec<Vec<Option<(usize, usize)>>>, // [port][vc]
    /// Credits toward the downstream input buffer of each output VC.
    credits: Vec<Vec<usize>>, // [port][vc]
    /// Round-robin pointers for fair allocation.
    va_rr: Vec<usize>,
    sa_rr: usize,
    /// Input VCs that are live — buffered flits or an in-progress route.
    /// O(1) idle test: `allocate`/`switch` scan nothing when it is zero.
    live_vcs: usize,
    /// Bit `port * vcs + vc` set iff that input VC has buffered flits.
    /// Lets `allocate`/`switch` visit only occupied VCs — in the same
    /// order a full scan would, so arbitration is unchanged.
    occ: u32,
    /// Event counters for the power model.
    pub(crate) buffer_writes: u64,
    pub(crate) buffer_reads: u64,
    pub(crate) crossbar_traversals: u64,
    pub(crate) allocations: u64,
}

impl Router {
    /// Creates the router for mesh node `node`.
    pub fn new(cfg: &MeshConfig, node: usize) -> Self {
        assert!(5 * cfg.vcs <= 32, "occupancy mask is u32: at most 6 VCs");
        Router {
            node,
            vcs: cfg.vcs,
            vc_depth: cfg.vc_depth,
            router_cycles: cfg.router_cycles,
            width: cfg.width,
            inputs: (0..5)
                .map(|_| (0..cfg.vcs).map(|_| VirtualChannel::new()).collect())
                .collect(),
            out_alloc: vec![vec![None; cfg.vcs]; 5],
            credits: vec![vec![cfg.vc_depth; cfg.vcs]; 5],
            va_rr: vec![0; 5],
            sa_rr: 0,
            live_vcs: 0,
            occ: 0,
            buffer_writes: 0,
            buffer_reads: 0,
            crossbar_traversals: 0,
            allocations: 0,
        }
    }

    /// The mesh node this router serves.
    pub fn node(&self) -> usize {
        self.node
    }

    /// Free buffer slots in input (port, vc).
    pub fn buffer_free(&self, port: usize, vc: usize) -> usize {
        self.vc_depth - self.inputs[port][vc].buf.len()
    }

    /// True if some VC of `port` can accept a flit right now.
    pub fn can_accept(&self, port: usize) -> bool {
        (0..self.vcs).any(|vc| self.buffer_free(port, vc) > 0)
    }

    /// Accepts a flit into input (port, vc).
    ///
    /// # Panics
    ///
    /// Panics on buffer overflow — credit flow control must prevent it.
    pub fn receive_flit(&mut self, port: usize, vc: usize, flit: Flit, now: Cycle) {
        let ch = &mut self.inputs[port][vc];
        assert!(
            ch.buf.len() < self.vc_depth,
            "credit violation at node {} port {port} vc {vc}",
            self.node
        );
        if ch.buf.is_empty() && ch.route.is_none() {
            self.live_vcs += 1;
        }
        ch.buf.push_back((flit, now));
        self.occ |= 1 << (port * self.vcs + vc);
        self.buffer_writes += 1;
    }

    /// Returns a credit for output (port, vc) — the downstream router freed
    /// a buffer slot.
    pub fn credit_return(&mut self, port: usize, vc: usize) {
        self.credits[port][vc] += 1;
        debug_assert!(self.credits[port][vc] <= self.vc_depth);
    }

    /// Route computation + VC allocation for every input VC whose head
    /// flit is ready.
    ///
    /// RC and VA run as one pass in (port, vc) order. That matches the
    /// original two-pass formulation exactly: RC reads only its own
    /// channel, and VA's round-robin state evolves in the same (port, vc)
    /// order either way.
    pub fn allocate(&mut self, now: Cycle) {
        // Only occupied VCs can have a head at the front; walking the
        // occupancy mask LSB-first is the full scan's (port, vc) order.
        let mut bits = self.occ;
        while bits != 0 {
            let idx = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            let (port, vc) = (idx / self.vcs, idx % self.vcs);
            let ch = &self.inputs[port][vc];
            let Some(&(flit, _arr)) = ch.buf.front() else {
                continue;
            };
            if !flit.kind.is_head() {
                continue;
            }
            // RC: head at the front and no route yet.
            if ch.route.is_none() {
                let out = xy_route(self.node, flit.packet.dst, self.width);
                self.inputs[port][vc].route = Some(out.index());
            }
            // VA: separable, output-side round-robin over free out VCs.
            let ch = &self.inputs[port][vc];
            let (Some(out), None) = (ch.route, ch.out_vc) else {
                continue;
            };
            if out == Port::Local.index() {
                // Ejection has a dedicated sink: no VC contention.
                self.inputs[port][vc].out_vc = Some(0);
                continue;
            }
            // Find a free downstream VC, starting at the RR pointer.
            let start = self.va_rr[out];
            let grant = (0..self.vcs)
                .map(|k| (start + k) % self.vcs)
                .find(|&cand| self.out_alloc[out][cand].is_none());
            if let Some(g) = grant {
                self.out_alloc[out][g] = Some((port, vc));
                self.va_rr[out] = (g + 1) % self.vcs;
                self.inputs[port][vc].out_vc = Some(g);
                self.allocations += 1;
            }
        }
        let _ = now;
    }

    /// Switch allocation + traversal: picks at most one flit per output
    /// port and one per input port, removes the winners from their buffers
    /// and returns them for the network to deliver.
    pub fn switch(&mut self, now: Cycle) -> Vec<Departure> {
        let mut departures = Vec::new();
        self.switch_into(now, &mut departures);
        departures
    }

    /// [`switch`](Self::switch) into a caller-owned buffer (appended, not
    /// cleared), so the per-cycle network loop reuses one allocation.
    pub fn switch_into(&mut self, now: Cycle, departures: &mut Vec<Departure>) {
        let total = 5 * self.vcs;
        if self.live_vcs == 0 {
            // An empty scan grants nothing but still rotates the SA
            // round-robin pointer; rotate it here so arbitration after an
            // idle stretch matches the scanned version bit for bit.
            self.sa_rr = (self.sa_rr + 1) % total;
            return;
        }
        let mut out_taken = [false; 5];
        let mut in_taken = [false; 5];
        let start = self.sa_rr;
        // Visit occupied VCs in cyclic (port, vc) order from the RR
        // pointer: bits at or above `start` LSB-first, then the wrapped
        // bits below it — the exact subsequence of the full scan's visit
        // order that has a flit to consider.
        let occ = self.occ;
        let below = occ & ((1u32 << start) - 1);
        let mut bits = occ ^ below;
        let mut wrapped = false;
        loop {
            if bits == 0 {
                if wrapped || below == 0 {
                    break;
                }
                bits = below;
                wrapped = true;
                continue;
            }
            let idx = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            let (port, vc) = (idx / self.vcs, idx % self.vcs);
            if in_taken[port] {
                continue;
            }
            let ch = &self.inputs[port][vc];
            let Some(&(flit, arr)) = ch.buf.front() else {
                continue;
            };
            let (Some(out), Some(ovc)) = (ch.route, ch.out_vc) else {
                continue;
            };
            if out_taken[out] {
                continue;
            }
            // Pipeline latency: heads wait the full pipeline, body flits
            // stream one cycle behind.
            let ready_at = if flit.kind.is_head() {
                arr + self.router_cycles
            } else {
                arr + 1
            };
            if now < ready_at {
                continue;
            }
            // Credit check (ejection always has room).
            if out != Port::Local.index() {
                if self.credits[out][ovc] == 0 {
                    continue;
                }
                self.credits[out][ovc] -= 1;
            }
            // Commit.
            let ch = &mut self.inputs[port][vc];
            ch.buf.pop_front();
            self.buffer_reads += 1;
            self.crossbar_traversals += 1;
            if flit.kind.is_tail() {
                // Release the out VC and reset for the next packet.
                if out != Port::Local.index() {
                    self.out_alloc[out][ovc] = None;
                }
                ch.route = None;
                ch.out_vc = None;
            }
            let ch = &self.inputs[port][vc];
            if ch.buf.is_empty() {
                self.occ &= !(1 << idx);
                if ch.route.is_none() {
                    self.live_vcs -= 1;
                }
            }
            out_taken[out] = true;
            in_taken[port] = true;
            departures.push(Departure {
                flit,
                out_port: out,
                out_vc: ovc,
                in_port: port,
                in_vc: vc,
            });
        }
        self.sa_rr = (start + 1) % total;
    }

    /// True when every buffer is empty and no VC holds state.
    pub fn is_idle(&self) -> bool {
        debug_assert_eq!(
            self.live_vcs == 0,
            self.inputs
                .iter()
                .flatten()
                .all(|ch| ch.buf.is_empty() && ch.route.is_none()),
            "live_vcs counter out of sync at node {}",
            self.node
        );
        debug_assert!(
            (0..5 * self.vcs).all(|idx| {
                let occupied = !self.inputs[idx / self.vcs][idx % self.vcs].buf.is_empty();
                occupied == ((self.occ >> idx) & 1 == 1)
            }),
            "occupancy mask out of sync at node {}",
            self.node
        );
        self.live_vcs == 0
    }

    /// An input VC of the local port able to accept a new packet's head
    /// (empty and unclaimed), if any.
    pub fn free_local_vc(&self) -> Option<usize> {
        let local = Port::Local.index();
        (0..self.vcs).find(|&vc| {
            let ch = &self.inputs[local][vc];
            ch.buf.is_empty() && ch.route.is_none()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{flits_of, MeshPacket};

    fn router() -> Router {
        Router::new(&MeshConfig::nodes(16), 5) // node 5 = (1, 1)
    }

    #[test]
    fn head_waits_full_pipeline() {
        let mut r = router();
        let flits = flits_of(MeshPacket::meta(5, 6, 0)); // east neighbour
        r.receive_flit(Port::Local.index(), 0, flits[0], Cycle(10));
        r.allocate(Cycle(10));
        assert!(r.switch(Cycle(13)).is_empty(), "not ready before 4 cycles");
        let dep = r.switch(Cycle(14));
        assert_eq!(dep.len(), 1);
        assert_eq!(dep[0].out_port, Port::East.index());
    }

    #[test]
    fn body_flits_stream_behind_head() {
        let mut r = router();
        let flits = flits_of(MeshPacket::data(5, 6, 0));
        for (i, f) in flits.iter().enumerate() {
            r.receive_flit(Port::West.index(), 1, *f, Cycle(i as u64));
        }
        r.allocate(Cycle(0));
        let mut sent = 0;
        for t in 0..12 {
            sent += r.switch(Cycle(t)).len();
            r.allocate(Cycle(t));
        }
        assert_eq!(sent, 5, "whole packet streams through");
        assert!(r.is_idle());
    }

    #[test]
    fn credits_block_switch() {
        let mut cfg = MeshConfig::nodes(16);
        cfg.vc_depth = 1;
        cfg.vcs = 1; // single VC so both packets contend for the same credit
        let mut r = Router::new(&cfg, 5);
        let flits = flits_of(MeshPacket::meta(5, 6, 0));
        r.receive_flit(Port::Local.index(), 0, flits[0], Cycle(0));
        r.allocate(Cycle(0));
        // Drain the only credit of the granted out VC.
        let dep = r.switch(Cycle(10));
        assert_eq!(dep.len(), 1);
        let (op, ov) = (dep[0].out_port, dep[0].out_vc);
        // Next packet to the same destination: same out port, and with
        // depth-1 buffers the credit is gone until returned.
        let flits2 = flits_of(MeshPacket::meta(5, 6, 1));
        r.receive_flit(Port::Local.index(), 0, flits2[0], Cycle(11));
        r.allocate(Cycle(11));
        assert!(r.switch(Cycle(30)).is_empty(), "no credit, no traversal");
        r.credit_return(op, ov);
        assert_eq!(r.switch(Cycle(31)).len(), 1);
    }

    #[test]
    fn ejection_needs_no_credit() {
        let mut r = router();
        let flits = flits_of(MeshPacket::meta(0, 5, 0)); // destined here
        let mut fed = 0u64;
        let mut ejected = 0;
        for t in 0..200 {
            if fed < 20 && r.buffer_free(Port::West.index(), 0) > 0 {
                let mut f = flits[0];
                f.packet.id = fed;
                r.receive_flit(Port::West.index(), 0, f, Cycle(t));
                fed += 1;
            }
            r.allocate(Cycle(t));
            for d in r.switch(Cycle(t)) {
                assert_eq!(d.out_port, Port::Local.index());
                ejected += 1;
            }
        }
        assert_eq!(ejected, 20);
    }

    #[test]
    fn vc_allocation_is_exclusive_until_tail() {
        let mut cfg = MeshConfig::nodes(16);
        cfg.vcs = 1; // single VC: second packet must wait for the first
        let mut r = Router::new(&cfg, 5);
        let a = flits_of(MeshPacket::data(5, 6, 0));
        let b = flits_of(MeshPacket::data(5, 6, 1));
        for (i, f) in a.iter().enumerate() {
            r.receive_flit(Port::West.index(), 0, *f, Cycle(i as u64));
        }
        for (i, f) in b.iter().enumerate() {
            r.receive_flit(Port::North.index(), 0, *f, Cycle(i as u64));
        }
        r.allocate(Cycle(0));
        let mut order = Vec::new();
        for t in 0..40 {
            for d in r.switch(Cycle(t)) {
                order.push(d.flit.packet.tag);
            }
            r.allocate(Cycle(t));
        }
        assert_eq!(order.len(), 10);
        // No interleaving within the wormhole: once a packet starts on the
        // output VC, its five flits are contiguous.
        let first = order[0];
        assert!(order[..5].iter().all(|&t| t == first), "{order:?}");
        assert!(order[5..].iter().all(|&t| t != first), "{order:?}");
    }

    #[test]
    #[should_panic(expected = "credit violation")]
    fn overflow_panics() {
        let mut cfg = MeshConfig::nodes(16);
        cfg.vc_depth = 1;
        let mut r = Router::new(&cfg, 5);
        let f = flits_of(MeshPacket::meta(5, 6, 0))[0];
        r.receive_flit(0, 0, f, Cycle(0));
        r.receive_flit(0, 0, f, Cycle(0));
    }

    #[test]
    fn free_local_vc_tracks_occupancy() {
        let mut cfg = MeshConfig::nodes(16);
        cfg.vcs = 2;
        let mut r = Router::new(&cfg, 5);
        assert_eq!(r.free_local_vc(), Some(0));
        let f = flits_of(MeshPacket::data(5, 6, 0))[0];
        r.receive_flit(Port::Local.index(), 0, f, Cycle(0));
        assert_eq!(r.free_local_vc(), Some(1));
    }
}
