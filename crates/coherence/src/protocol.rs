//! Protocol vocabulary: the states, events and messages of Table 2.

use core::fmt;

/// A cache-line address (byte address with the offset bits stripped).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LineAddr(pub u64);

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {:#x}", self.0)
    }
}

impl LineAddr {
    /// The line containing byte address `addr` for `line_bytes`-byte lines.
    pub fn of(addr: u64, line_bytes: u64) -> Self {
        assert!(
            line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        LineAddr(addr & !(line_bytes - 1))
    }
}

/// L1 cache-controller states (Table 2, upper half). Transient states are
/// written `I.SD` etc. in the paper: previous → next stable state, with a
/// superscript for what is awaited (`D` data, `A` ack).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum L1State {
    /// Modified: sole dirty copy.
    M,
    /// Exclusive: sole clean copy.
    E,
    /// Shared.
    S,
    /// Invalid (not present).
    I,
    /// `I.Sᴰ`: read miss outstanding, waiting for data.
    ISD,
    /// `I.Mᴰ`: write miss outstanding, waiting for data.
    IMD,
    /// `S.Mᴬ`: upgrade outstanding, waiting for the exclusivity ack.
    SMA,
}

impl L1State {
    /// Is this a stable (non-transient) state?
    pub fn is_stable(self) -> bool {
        matches!(self, L1State::M | L1State::E | L1State::S | L1State::I)
    }

    /// Does the processor have read permission?
    pub fn can_read(self) -> bool {
        matches!(self, L1State::M | L1State::E | L1State::S)
    }

    /// Does the processor have write permission?
    pub fn can_write(self) -> bool {
        matches!(self, L1State::M | L1State::E)
    }
}

/// L2 directory-controller states (Table 2, lower half).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DirState {
    /// Not present in L2: memory must be fetched.
    DI,
    /// Valid in L2 with no L1 sharers.
    DV,
    /// Shared by one or more L1s (L2 copy clean).
    DS,
    /// Owned (possibly dirty) by exactly one L1.
    DM,
    /// `DI.DSᴰ`: memory fetch outstanding for a shared request.
    DIDSD,
    /// `DI.DMᴰ`: memory fetch outstanding for an exclusive request.
    DIDMD,
    /// `DS.DIᴬ`: L2 eviction of a shared line, collecting InvAcks.
    DSDIA,
    /// `DS.DMᴰᴬ`: exclusive request over sharers; collecting InvAcks, will
    /// send data.
    DSDMDA,
    /// `DS.DMᴬ`: upgrade over sharers; collecting InvAcks, will send
    /// ExcAck only.
    DSDMA,
    /// `DM.DIᴰ`: L2 eviction of an owned line, waiting the owner's data.
    DMDID,
    /// `DM.DSᴰ`: downgrade outstanding (shared request hit an owned line).
    DMDSD,
    /// `DM.DMᴰ`: ownership transfer outstanding (exclusive request hit an
    /// owned line).
    DMDMD,
    /// `DM.DSᴬ`: owner wrote back during a downgrade; waiting MemAck, will
    /// send Data(E).
    DMDSA,
    /// `DM.DMᴬ`: owner wrote back during an ownership transfer; waiting
    /// MemAck, will send Data(M).
    DMDMA,
}

impl DirState {
    /// Is this a stable state?
    pub fn is_stable(self) -> bool {
        matches!(
            self,
            DirState::DI | DirState::DV | DirState::DS | DirState::DM
        )
    }
}

/// The access mode granted with a data reply.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Grant {
    /// Shared, read-only.
    Shared,
    /// Exclusive, clean (silent upgrade to M allowed).
    Exclusive,
    /// Modified (ownership transferred with dirty data).
    Modified,
}

/// Request types an L1 sends to a directory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReqType {
    /// Read in shared mode.
    Sh,
    /// Read in exclusive mode (write miss).
    Ex,
    /// Upgrade (write hit on a Shared line).
    Upg,
}

/// A coherence message on the interconnect. The first field of each
/// variant's documentation notes the lane class it travels on: data
/// replies and writebacks carry a cache line (data packets); everything
/// else is a meta packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CoherenceMsg {
    /// Meta: L1 → directory request.
    Req {
        /// Request flavor.
        kind: ReqType,
        /// The line.
        line: LineAddr,
    },
    /// Data: directory → L1 data reply with a grant.
    Data {
        /// Granted access mode.
        grant: Grant,
        /// The line.
        line: LineAddr,
    },
    /// Meta: directory → L1 "you now own it" without data (upgrade path).
    ExcAck {
        /// The line.
        line: LineAddr,
    },
    /// Meta: directory → L1 invalidation.
    Inv {
        /// The line.
        line: LineAddr,
    },
    /// Meta: directory → L1 downgrade (owner must share).
    Dwg {
        /// The line.
        line: LineAddr,
    },
    /// Meta: L1 → directory invalidation acknowledgment. `with_data` marks
    /// `InvAck(D)` from an M-state owner (travels on the data lane).
    InvAck {
        /// The line.
        line: LineAddr,
        /// Dirty data attached (M-state victim).
        with_data: bool,
    },
    /// Meta/data: L1 → directory downgrade acknowledgment; `with_data`
    /// marks `DwgAck(D)` from an M-state owner.
    DwgAck {
        /// The line.
        line: LineAddr,
        /// Dirty data attached.
        with_data: bool,
    },
    /// Data: L1 → directory eviction of a dirty line.
    WriteBack {
        /// The line.
        line: LineAddr,
    },
    /// Meta: directory → L1 negative acknowledgment; retry later (used to
    /// probabilistically avoid fetch deadlock, §4.3.1 footnote 3).
    Retry {
        /// The line.
        line: LineAddr,
    },
    /// Meta: directory → memory controller fetch/write request.
    MemReq {
        /// The line.
        line: LineAddr,
        /// True for a write (writeback to DRAM).
        write: bool,
    },
    /// Data: memory controller → directory completion.
    MemAck {
        /// The line.
        line: LineAddr,
    },
}

impl CoherenceMsg {
    /// The line the message concerns.
    pub fn line(&self) -> LineAddr {
        match *self {
            CoherenceMsg::Req { line, .. }
            | CoherenceMsg::Data { line, .. }
            | CoherenceMsg::ExcAck { line }
            | CoherenceMsg::Inv { line }
            | CoherenceMsg::Dwg { line }
            | CoherenceMsg::InvAck { line, .. }
            | CoherenceMsg::DwgAck { line, .. }
            | CoherenceMsg::WriteBack { line }
            | CoherenceMsg::Retry { line }
            | CoherenceMsg::MemReq { line, .. }
            | CoherenceMsg::MemAck { line } => line,
        }
    }

    /// True if the message carries a full cache line (travels on the data
    /// lane; everything else is a meta packet).
    pub fn carries_data(&self) -> bool {
        match *self {
            CoherenceMsg::Data { .. }
            | CoherenceMsg::WriteBack { .. }
            | CoherenceMsg::MemAck { .. } => true,
            CoherenceMsg::InvAck { with_data, .. } | CoherenceMsg::DwgAck { with_data, .. } => {
                with_data
            }
            _ => false,
        }
    }
}

/// An outgoing message with its destination node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutMsg {
    /// Destination node index.
    pub to: usize,
    /// The message.
    pub msg: CoherenceMsg,
}

/// A protocol error: an event arrived in a state where Table 2 says
/// "error". In a correct system these indicate either a protocol bug or a
/// corrupted/duplicated message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtocolError {
    /// Which controller hit the error.
    pub controller: &'static str,
    /// Human-readable state name.
    pub state: String,
    /// Human-readable event name.
    pub event: String,
    /// The line involved.
    pub line: LineAddr,
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} protocol error: event {} in state {} for {}",
            self.controller, self.event, self.state, self.line
        )
    }
}

impl std::error::Error for ProtocolError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_addr_masks_offset() {
        assert_eq!(LineAddr::of(0x1234, 32), LineAddr(0x1220));
        assert_eq!(LineAddr::of(0x1220, 32), LineAddr(0x1220));
        assert_eq!(LineAddr::of(0x1f, 32), LineAddr(0));
        assert!(LineAddr(0x40).to_string().contains("0x40"));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_line_size_panics() {
        LineAddr::of(0, 33);
    }

    #[test]
    fn l1_state_predicates() {
        assert!(L1State::M.is_stable() && L1State::I.is_stable());
        assert!(!L1State::ISD.is_stable() && !L1State::SMA.is_stable());
        assert!(L1State::S.can_read() && !L1State::S.can_write());
        assert!(L1State::E.can_write() && L1State::M.can_write());
        assert!(!L1State::I.can_read());
        assert!(!L1State::IMD.can_read());
    }

    #[test]
    fn dir_state_predicates() {
        assert!(DirState::DI.is_stable() && DirState::DM.is_stable());
        assert!(!DirState::DSDMDA.is_stable() && !DirState::DMDMA.is_stable());
    }

    #[test]
    fn message_lines_and_classes() {
        let line = LineAddr(0x80);
        let req = CoherenceMsg::Req {
            kind: ReqType::Sh,
            line,
        };
        assert_eq!(req.line(), line);
        assert!(!req.carries_data());
        assert!(CoherenceMsg::Data {
            grant: Grant::Shared,
            line
        }
        .carries_data());
        assert!(CoherenceMsg::WriteBack { line }.carries_data());
        assert!(CoherenceMsg::MemAck { line }.carries_data());
        assert!(!CoherenceMsg::Inv { line }.carries_data());
        assert!(!CoherenceMsg::InvAck {
            line,
            with_data: false
        }
        .carries_data());
        assert!(CoherenceMsg::InvAck {
            line,
            with_data: true
        }
        .carries_data());
        assert!(CoherenceMsg::DwgAck {
            line,
            with_data: true
        }
        .carries_data());
        assert!(!CoherenceMsg::Retry { line }.carries_data());
        assert!(!CoherenceMsg::MemReq { line, write: false }.carries_data());
        assert!(!CoherenceMsg::ExcAck { line }.carries_data());
        assert!(!CoherenceMsg::Dwg { line }.carries_data());
    }

    #[test]
    fn protocol_error_display() {
        let e = ProtocolError {
            controller: "L1",
            state: "M".into(),
            event: "Data".into(),
            line: LineAddr(0x100),
        };
        assert!(e.to_string().contains("L1 protocol error"));
    }
}
