//! Bounded FIFO queues modelling finite hardware buffers.
//!
//! The paper's FSOI nodes have an "outgoing queue \[of\] 8 packets each for
//! data and meta lanes" (Table 3), and the mesh routers have 5×12-flit
//! buffers. [`BoundedQueue`] models such structures and records occupancy
//! statistics so queuing delay can be attributed precisely (Figure 6's
//! latency breakdown).

use std::collections::VecDeque;

/// A bounded FIFO with occupancy accounting.
///
/// ```
/// use fsoi_sim::queue::BoundedQueue;
///
/// let mut q = BoundedQueue::new(2);
/// assert!(q.push(1).is_ok());
/// assert!(q.push(2).is_ok());
/// assert_eq!(q.push(3), Err(3)); // full: item handed back
/// assert_eq!(q.pop(), Some(1));
/// ```
#[derive(Debug, Clone)]
pub struct BoundedQueue<T> {
    items: VecDeque<T>,
    capacity: usize,
    /// Total number of successful pushes, for utilization statistics.
    pushes: u64,
    /// Number of rejected pushes (overflow events).
    overflows: u64,
    /// Running sum of occupancy observed at each push, for mean occupancy.
    occupancy_sum: u64,
    /// High-water mark.
    max_occupancy: usize,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue holding at most `capacity` items.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        BoundedQueue {
            items: VecDeque::with_capacity(capacity),
            capacity,
            pushes: 0,
            overflows: 0,
            occupancy_sum: 0,
            max_occupancy: 0,
        }
    }

    /// Attempts to enqueue `item`.
    ///
    /// # Errors
    ///
    /// Returns `Err(item)` (handing the item back to the caller) when the
    /// queue is full; the caller decides whether to stall, drop, or NACK.
    pub fn push(&mut self, item: T) -> Result<(), T> {
        if self.items.len() >= self.capacity {
            self.overflows += 1;
            return Err(item);
        }
        self.items.push_back(item);
        self.pushes += 1;
        self.occupancy_sum += self.items.len() as u64;
        self.max_occupancy = self.max_occupancy.max(self.items.len());
        Ok(())
    }

    /// Dequeues the oldest item, if any.
    pub fn pop(&mut self) -> Option<T> {
        self.items.pop_front()
    }

    /// Peeks at the oldest item without removing it.
    pub fn front(&self) -> Option<&T> {
        self.items.front()
    }

    /// Mutable peek at the oldest item.
    pub fn front_mut(&mut self) -> Option<&mut T> {
        self.items.front_mut()
    }

    /// Current number of queued items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// True when no further item can be enqueued.
    pub fn is_full(&self) -> bool {
        self.items.len() >= self.capacity
    }

    /// Maximum number of items the queue can hold.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Remaining free slots.
    pub fn free(&self) -> usize {
        self.capacity - self.items.len()
    }

    /// Number of successful pushes so far.
    pub fn pushes(&self) -> u64 {
        self.pushes
    }

    /// Number of rejected pushes so far.
    pub fn overflows(&self) -> u64 {
        self.overflows
    }

    /// Highest occupancy ever observed.
    pub fn max_occupancy(&self) -> usize {
        self.max_occupancy
    }

    /// Mean occupancy observed at push time, or 0.0 if never pushed.
    pub fn mean_occupancy(&self) -> f64 {
        if self.pushes == 0 {
            0.0
        } else {
            self.occupancy_sum as f64 / self.pushes as f64
        }
    }

    /// Iterates over queued items from oldest to newest.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.items.iter()
    }

    /// Removes and returns the first item matching `pred`, preserving the
    /// order of the others. Used for reordering-free retransmission pulls.
    pub fn remove_first_matching(&mut self, pred: impl FnMut(&T) -> bool) -> Option<T> {
        let idx = self.items.iter().position(pred)?;
        self.items.remove(idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let mut q = BoundedQueue::new(4);
        for i in 0..4 {
            q.push(i).unwrap();
        }
        for i in 0..4 {
            assert_eq!(q.pop(), Some(i));
        }
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn rejects_when_full_and_counts_overflow() {
        let mut q = BoundedQueue::new(1);
        q.push('a').unwrap();
        assert!(q.is_full());
        assert_eq!(q.push('b'), Err('b'));
        assert_eq!(q.overflows(), 1);
        assert_eq!(q.pushes(), 1);
        q.pop();
        assert!(q.push('b').is_ok());
    }

    #[test]
    fn occupancy_statistics() {
        let mut q = BoundedQueue::new(8);
        q.push(1).unwrap(); // occ 1
        q.push(2).unwrap(); // occ 2
        q.push(3).unwrap(); // occ 3
        assert_eq!(q.max_occupancy(), 3);
        assert!((q.mean_occupancy() - 2.0).abs() < 1e-12);
        assert_eq!(q.free(), 5);
        assert_eq!(q.capacity(), 8);
    }

    #[test]
    fn front_and_iter() {
        let mut q = BoundedQueue::new(3);
        q.push(10).unwrap();
        q.push(20).unwrap();
        assert_eq!(q.front(), Some(&10));
        *q.front_mut().unwrap() += 1;
        assert_eq!(q.iter().copied().collect::<Vec<_>>(), vec![11, 20]);
    }

    #[test]
    fn remove_first_matching_preserves_order() {
        let mut q = BoundedQueue::new(5);
        for i in 0..5 {
            q.push(i).unwrap();
        }
        assert_eq!(q.remove_first_matching(|&x| x == 2), Some(2));
        assert_eq!(q.remove_first_matching(|&x| x == 9), None);
        let rest: Vec<_> = q.iter().copied().collect();
        assert_eq!(rest, vec![0, 1, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = BoundedQueue::<u8>::new(0);
    }
}
