//! Run reports: everything the experiment harness prints.

use crate::energy::ChipEnergy;
use crate::interconnect::LatencyAttribution;
use fsoi_sim::metrics::Registry;
use fsoi_sim::stats::Histogram;

/// Traffic classes used in Figure 10's data-lane collision breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataPacketKind {
    /// Memory fetch completions (MemAck).
    Memory,
    /// Directory → L1 data replies.
    Reply,
    /// Writebacks (incl. dirty InvAck/DwgAck).
    WriteBack,
}

impl DataPacketKind {
    /// Dense index 0..3.
    pub fn index(self) -> usize {
        match self {
            DataPacketKind::Memory => 0,
            DataPacketKind::Reply => 1,
            DataPacketKind::WriteBack => 2,
        }
    }

    /// Plot label.
    pub fn label(self) -> &'static str {
        match self {
            DataPacketKind::Memory => "Memory packets",
            DataPacketKind::Reply => "Reply",
            DataPacketKind::WriteBack => "WriteBack",
        }
    }

    /// Metric label value (lowercase, no spaces).
    pub fn metric_label(self) -> &'static str {
        match self {
            DataPacketKind::Memory => "memory",
            DataPacketKind::Reply => "reply",
            DataPacketKind::WriteBack => "writeback",
        }
    }

    /// All kinds in dense-index order.
    pub const ALL: [DataPacketKind; 3] = [
        DataPacketKind::Memory,
        DataPacketKind::Reply,
        DataPacketKind::WriteBack,
    ];
}

/// The complete result of one application × network run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Application name.
    pub app: String,
    /// Network name.
    pub network: String,
    /// Wall-clock cycles to finish the fixed workload.
    pub cycles: u64,
    /// Mean packet-latency attribution (Figure 6/7 stack).
    pub attribution: LatencyAttribution,
    /// Read-miss reply latency distribution (Figure 5).
    pub reply_latency: Histogram,
    /// Meta-lane first-transmission probability per node-slot (Figure 9 x).
    pub meta_tx_probability: f64,
    /// Data-lane transmission probability.
    pub data_tx_probability: f64,
    /// Meta collision rate (collided / transmissions).
    pub meta_collision_rate: f64,
    /// Data collision rate.
    pub data_collision_rate: f64,
    /// Packets sent per class `[meta, data]`.
    pub packets_sent: [u64; 2],
    /// Data packets delivered per kind (Figure 10 denominators).
    pub data_by_kind: [u64; 3],
    /// Data packets that collided at least once, per kind, plus a fourth
    /// bucket for re-collided retransmissions (Figure 10 numerators).
    pub collided_by_kind: [u64; 4],
    /// Meta packets elided thanks to confirmation-acks (§5.1).
    pub acks_elided: u64,
    /// Packets avoided by boolean subscriptions (§5.1).
    pub subscription_packets_saved: u64,
    /// Mean L1 miss rate across cores.
    pub l1_miss_rate: f64,
    /// Sum of per-core active cycles.
    pub active_cycles: u64,
    /// Sum of per-core stalled cycles.
    pub stalled_cycles: u64,
    /// Chip energy.
    pub energy: ChipEnergy,
    /// Mean collision-resolution delay among collided data packets.
    pub data_resolution_delay: f64,
    /// Hint accuracy: correct / issued (FSOI data lane).
    pub hint_accuracy: f64,
    /// Wrong-winner rate: wrong / issued.
    pub hint_wrong_rate: f64,
    /// Packets dropped by raw bit errors and recovered by retransmission.
    pub bit_error_drops: u64,
}

impl RunReport {
    /// Speedup of this run relative to a baseline's cycle count.
    pub fn speedup_vs(&self, baseline_cycles: u64) -> f64 {
        baseline_cycles as f64 / self.cycles as f64
    }

    /// Mean total packet latency.
    pub fn mean_packet_latency(&self) -> f64 {
        self.attribution.total()
    }

    /// Exports every figure/table input as named metrics into `reg`.
    ///
    /// This is the single code path behind snapshot output: the harness
    /// renders `Registry::to_table()` / `to_jsonl()` instead of formatting
    /// struct fields ad hoc, so two same-seed runs produce byte-identical
    /// snapshots. Every metric carries `app` and `network` labels, so
    /// reports from several runs can merge into one registry.
    pub fn export(&self, reg: &mut Registry) {
        let app = self.app.as_str();
        let net = self.network.as_str();
        let run: [(&str, &str); 2] = [("app", app), ("network", net)];
        let lane = |l: &'static str| -> [(&str, &str); 3] {
            [("app", app), ("network", net), ("lane", l)]
        };

        reg.inc("cmp.cycles", &run, self.cycles);
        reg.gauge("cmp.latency.queuing", &run, self.attribution.queuing);
        reg.gauge("cmp.latency.scheduling", &run, self.attribution.scheduling);
        reg.gauge("cmp.latency.network", &run, self.attribution.network);
        reg.gauge(
            "cmp.latency.resolution",
            &run,
            self.attribution.collision_resolution,
        );
        reg.gauge("cmp.latency.total", &run, self.attribution.total());
        reg.histogram("cmp.reply_latency", &run, self.reply_latency.clone());

        reg.gauge(
            "cmp.tx_probability",
            &lane("meta"),
            self.meta_tx_probability,
        );
        reg.gauge(
            "cmp.tx_probability",
            &lane("data"),
            self.data_tx_probability,
        );
        reg.gauge(
            "cmp.collision_rate",
            &lane("meta"),
            self.meta_collision_rate,
        );
        reg.gauge(
            "cmp.collision_rate",
            &lane("data"),
            self.data_collision_rate,
        );
        reg.inc("cmp.packets_sent", &lane("meta"), self.packets_sent[0]);
        reg.inc("cmp.packets_sent", &lane("data"), self.packets_sent[1]);

        for kind in DataPacketKind::ALL {
            let labels: [(&str, &str); 3] = [
                ("app", app),
                ("network", net),
                ("kind", kind.metric_label()),
            ];
            reg.inc(
                "cmp.data_delivered",
                &labels,
                self.data_by_kind[kind.index()],
            );
            reg.inc(
                "cmp.data_collided",
                &labels,
                self.collided_by_kind[kind.index()],
            );
        }
        reg.inc("cmp.data_recollided", &run, self.collided_by_kind[3]);

        reg.inc("cmp.acks_elided", &run, self.acks_elided);
        reg.inc(
            "cmp.subscription_packets_saved",
            &run,
            self.subscription_packets_saved,
        );
        reg.gauge("cmp.l1_miss_rate", &run, self.l1_miss_rate);
        reg.inc("cmp.active_cycles", &run, self.active_cycles);
        reg.inc("cmp.stalled_cycles", &run, self.stalled_cycles);

        reg.gauge("cmp.energy.network_j", &run, self.energy.network_j);
        reg.gauge("cmp.energy.core_j", &run, self.energy.core_j);
        reg.gauge("cmp.energy.leakage_j", &run, self.energy.leakage_j);
        reg.gauge("cmp.energy.total_j", &run, self.energy.total_j());

        reg.gauge(
            "cmp.data_resolution_delay",
            &run,
            self.data_resolution_delay,
        );
        reg.gauge("cmp.hint_accuracy", &run, self.hint_accuracy);
        reg.gauge("cmp.hint_wrong_rate", &run, self.hint_wrong_rate);
        reg.inc("cmp.bit_error_drops", &run, self.bit_error_drops);
    }

    /// A fresh registry holding only this report's metrics (see
    /// [`RunReport::export`]).
    pub fn registry(&self) -> Registry {
        let mut reg = Registry::new();
        self.export(&mut reg);
        reg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_indexing() {
        assert_eq!(DataPacketKind::Memory.index(), 0);
        assert_eq!(DataPacketKind::Reply.index(), 1);
        assert_eq!(DataPacketKind::WriteBack.index(), 2);
        assert!(DataPacketKind::Reply.label().contains("Reply"));
    }

    #[test]
    fn speedup_math() {
        let r = RunReport {
            app: "x".into(),
            network: "fsoi".into(),
            cycles: 500,
            attribution: LatencyAttribution::default(),
            reply_latency: Histogram::new(10, 20),
            meta_tx_probability: 0.0,
            data_tx_probability: 0.0,
            meta_collision_rate: 0.0,
            data_collision_rate: 0.0,
            packets_sent: [0, 0],
            data_by_kind: [0; 3],
            collided_by_kind: [0; 4],
            acks_elided: 0,
            subscription_packets_saved: 0,
            l1_miss_rate: 0.0,
            active_cycles: 0,
            stalled_cycles: 0,
            energy: ChipEnergy::default(),
            data_resolution_delay: 0.0,
            hint_accuracy: 0.0,
            hint_wrong_rate: 0.0,
            bit_error_drops: 0,
        };
        assert!((r.speedup_vs(1000) - 2.0).abs() < 1e-12);
    }

    fn sample_report() -> RunReport {
        RunReport {
            app: "tsp".into(),
            network: "fsoi".into(),
            cycles: 500,
            attribution: LatencyAttribution {
                queuing: 1.0,
                scheduling: 2.0,
                network: 3.0,
                collision_resolution: 4.0,
            },
            reply_latency: Histogram::new(10, 20),
            meta_tx_probability: 0.25,
            data_tx_probability: 0.125,
            meta_collision_rate: 0.5,
            data_collision_rate: 0.75,
            packets_sent: [10, 20],
            data_by_kind: [3, 4, 5],
            collided_by_kind: [1, 2, 3, 4],
            acks_elided: 6,
            subscription_packets_saved: 7,
            l1_miss_rate: 0.01,
            active_cycles: 400,
            stalled_cycles: 100,
            energy: ChipEnergy {
                network_j: 0.5,
                core_j: 1.5,
                leakage_j: 0.25,
            },
            data_resolution_delay: 9.0,
            hint_accuracy: 0.9,
            hint_wrong_rate: 0.1,
            bit_error_drops: 2,
        }
    }

    #[test]
    fn registry_export_covers_report_fields() {
        let r = sample_report();
        let reg = r.registry();
        let run = [("app", "tsp"), ("network", "fsoi")];
        assert_eq!(reg.counter("cmp.cycles", &run), 500);
        assert_eq!(reg.gauge_value("cmp.latency.total", &run), Some(10.0));
        assert_eq!(
            reg.gauge_value(
                "cmp.tx_probability",
                &[("app", "tsp"), ("network", "fsoi"), ("lane", "meta")]
            ),
            Some(0.25)
        );
        assert_eq!(
            reg.counter(
                "cmp.data_delivered",
                &[("app", "tsp"), ("network", "fsoi"), ("kind", "writeback")]
            ),
            5
        );
        assert_eq!(reg.counter("cmp.data_recollided", &run), 4);
        assert_eq!(reg.gauge_value("cmp.energy.total_j", &run), Some(2.25));
        assert_eq!(reg.counter("cmp.bit_error_drops", &run), 2);
    }

    #[test]
    fn registry_export_is_deterministic() {
        let r = sample_report();
        assert_eq!(r.registry().to_jsonl(), r.registry().to_jsonl());
        // Two reports merge into one registry without key clashes (the
        // app/network labels keep them apart).
        let mut merged = r.registry();
        let mut other = sample_report();
        other.network = "mesh".into();
        other.export(&mut merged);
        assert_eq!(merged.len(), 2 * r.registry().len());
    }
}
