//! Transimpedance amplifier (TIA) and limiting amplifier model.
//!
//! Table 1 specifies the receive chain as "TIA & limiting amp,
//! bandwidth = 36 GHz, gain = 15000 V/A" dissipating 4.2 mW. The power of
//! high-speed CML amplifier chains in a given CMOS node scales roughly
//! linearly with bandwidth; we expose that proportionality constant
//! (calibrated against Table 1's 45 nm numbers) so configurations at other
//! bandwidths remain physically plausible.

use crate::units::{Current, Frequency, Power, Voltage};
use crate::OpticsError;

/// Analog front-end power per unit bandwidth for 45 nm CML stages,
/// calibrated so a 36 GHz TIA + limiting amp dissipates Table 1's 4.2 mW.
pub const CML_MILLIWATTS_PER_GHZ_45NM: f64 = 4.2 / 36.0;

/// A transimpedance amplifier followed by a limiting amplifier.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tia {
    bandwidth: Frequency,
    transimpedance_v_per_a: f64,
    input_noise_density_a_rthz: f64,
    mw_per_ghz: f64,
}

impl Tia {
    /// Creates a TIA.
    ///
    /// `input_noise_density_a_rthz` is the input-referred white noise
    /// current density in A/√Hz.
    ///
    /// # Errors
    ///
    /// Returns [`OpticsError::NonPositive`] if any parameter is not
    /// strictly positive.
    pub fn new(
        bandwidth: Frequency,
        transimpedance_v_per_a: f64,
        input_noise_density_a_rthz: f64,
    ) -> Result<Self, OpticsError> {
        if bandwidth.as_hz() <= 0.0 {
            return Err(OpticsError::NonPositive {
                what: "TIA bandwidth",
                value: bandwidth.as_hz(),
            });
        }
        if transimpedance_v_per_a <= 0.0 {
            return Err(OpticsError::NonPositive {
                what: "transimpedance gain",
                value: transimpedance_v_per_a,
            });
        }
        if input_noise_density_a_rthz <= 0.0 {
            return Err(OpticsError::NonPositive {
                what: "input noise density",
                value: input_noise_density_a_rthz,
            });
        }
        Ok(Tia {
            bandwidth,
            transimpedance_v_per_a,
            input_noise_density_a_rthz,
            mw_per_ghz: CML_MILLIWATTS_PER_GHZ_45NM,
        })
    }

    /// The paper's Table 1 receiver: 36 GHz, 15 000 V/A; the input-referred
    /// noise density (19.5 pA/√Hz) is chosen so the full link budget closes
    /// at Table 1's BER of 10⁻¹⁰.
    pub fn paper_default() -> Self {
        Tia::new(Frequency::from_ghz(36.0), 15_000.0, 19.5e-12)
            // lint: allow(P1) fixed paper constants satisfy the constructor's range checks
            .expect("paper defaults are valid")
    }

    /// Small-signal bandwidth.
    pub fn bandwidth(&self) -> Frequency {
        self.bandwidth
    }

    /// Transimpedance gain in V/A.
    pub fn transimpedance(&self) -> f64 {
        self.transimpedance_v_per_a
    }

    /// Input-referred noise current density in A/√Hz.
    pub fn input_noise_density(&self) -> f64 {
        self.input_noise_density_a_rthz
    }

    /// RMS input-referred noise current integrated over the bandwidth.
    pub fn input_noise_rms(&self) -> Current {
        crate::noise::circuit_noise_rms(self.input_noise_density_a_rthz, self.bandwidth)
    }

    /// Output voltage swing for an input current.
    pub fn output_voltage(&self, input: Current) -> Voltage {
        Voltage::from_volts(input.as_amps() * self.transimpedance_v_per_a)
    }

    /// Static power dissipation of the receive chain (always on — the
    /// receiver cannot know when light will arrive).
    pub fn power(&self) -> Power {
        Power::from_milliwatts(self.mw_per_ghz * self.bandwidth.to_ghz())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_power_is_4_2_mw() {
        let t = Tia::paper_default();
        assert!((t.power().to_milliwatts() - 4.2).abs() < 1e-9);
    }

    #[test]
    fn output_voltage_scales_with_gain() {
        let t = Tia::paper_default();
        // 50 µA × 15000 V/A = 0.75 V.
        let v = t.output_voltage(Current::from_amps(50e-6));
        assert!((v.as_volts() - 0.75).abs() < 1e-9);
    }

    #[test]
    fn input_noise_rms_value() {
        let t = Tia::paper_default();
        // 19.5 pA/√Hz × √(36 GHz) ≈ 3.70 µA.
        let n = t.input_noise_rms().to_microamps();
        assert!((n - 3.70).abs() < 0.02, "σ = {n} µA");
    }

    #[test]
    fn validation() {
        assert!(Tia::new(Frequency::from_hz(0.0), 1.0, 1e-12).is_err());
        assert!(Tia::new(Frequency::from_ghz(36.0), 0.0, 1e-12).is_err());
        assert!(Tia::new(Frequency::from_ghz(36.0), 1.0, 0.0).is_err());
    }

    #[test]
    fn getters() {
        let t = Tia::paper_default();
        assert!((t.bandwidth().to_ghz() - 36.0).abs() < 1e-9);
        assert!((t.transimpedance() - 15_000.0).abs() < 1e-9);
        assert!((t.input_noise_density() - 19.5e-12).abs() < 1e-20);
    }
}
