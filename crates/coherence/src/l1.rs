//! The L1 cache controller — upper half of Table 2.
//!
//! Stable states M/E/S/I live in the cache array; transient states
//! (`I.Sᴰ`, `I.Mᴰ`, `S.Mᴬ`) live in MSHRs. Processor reads/writes that
//! cannot be satisfied return a miss (the core blocks or continues per its
//! own policy); network events drive the transitions, including the racy
//! ones: invalidations landing on transient lines, and the
//! upgrade-vs-invalidation race that turns `S.Mᴬ` into `I.Mᴰ`.

use crate::cache::{AllocOutcome, CacheArray};
use crate::protocol::{CoherenceMsg, Grant, L1State, LineAddr, OutMsg, ProtocolError, ReqType};
use fsoi_sim::det::DetMap;

/// What happened on a processor access.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Access {
    /// The access completed in cache.
    pub hit: bool,
    /// The access could not even allocate an MSHR (structural stall —
    /// retry next cycle). Implies `!hit`.
    pub stalled: bool,
    /// Messages to transmit.
    pub out: Vec<OutMsg>,
}

impl Access {
    fn hit() -> Self {
        Access {
            hit: true,
            stalled: false,
            out: Vec::new(),
        }
    }

    fn miss(out: Vec<OutMsg>) -> Self {
        Access {
            hit: false,
            stalled: false,
            out,
        }
    }

    fn stall() -> Self {
        Access {
            hit: false,
            stalled: true,
            out: Vec::new(),
        }
    }
}

/// Result of a network event at the L1.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct L1Reaction {
    /// Messages to transmit.
    pub out: Vec<OutMsg>,
    /// A miss completed: the processor's outstanding access to this line
    /// may resume.
    pub completed: Option<LineAddr>,
}

/// Per-miss bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Mshr {
    state: L1State,
}

/// L1 statistics.
#[derive(Debug, Default, Clone)]
pub struct L1Stats {
    /// Read hits.
    pub read_hits: u64,
    /// Read misses.
    pub read_misses: u64,
    /// Write hits.
    pub write_hits: u64,
    /// Write misses (including upgrades).
    pub write_misses: u64,
    /// Dirty writebacks sent.
    pub writebacks: u64,
    /// Invalidations received.
    pub invalidations: u64,
    /// Downgrades received.
    pub downgrades: u64,
    /// NACK retries performed.
    pub retries: u64,
    /// Upgrade→write-miss races (S.Mᴬ hit by Inv).
    pub upgrade_races: u64,
}

/// The L1 cache controller of one node.
#[derive(Debug, Clone)]
pub struct L1Controller {
    node: usize,
    array: CacheArray<L1State>,
    mshrs: DetMap<LineAddr, Mshr>,
    max_mshrs: usize,
    home_nodes: usize,
    stats: L1Stats,
}

impl L1Controller {
    /// Creates the controller: `capacity_bytes`/`ways`/`line_bytes` shape
    /// the array (Table 3: 8 KB, 2-way, 32 B). `node` is this L1's node
    /// id; homes are address-interleaved over `home_nodes` directories
    /// once [`set_home_nodes`](Self::set_home_nodes) is left at its
    /// default of the node count given here.
    pub fn new(node: usize, capacity_lines: usize, ways: usize, line_bytes: u64) -> Self {
        L1Controller {
            node,
            array: CacheArray::new(capacity_lines as u64 * line_bytes, ways, line_bytes),
            mshrs: DetMap::new(),
            max_mshrs: 8,
            home_nodes: 1,
            stats: L1Stats::default(),
        }
    }

    /// Sets the number of directory slices for home interleaving.
    pub fn set_home_nodes(&mut self, n: usize) {
        assert!(n >= 1);
        self.home_nodes = n;
    }

    /// Sets the MSHR budget (outstanding misses).
    pub fn set_max_mshrs(&mut self, n: usize) {
        assert!(n >= 1);
        self.max_mshrs = n;
    }

    /// This node's id.
    pub fn node(&self) -> usize {
        self.node
    }

    /// Statistics.
    pub fn stats(&self) -> &L1Stats {
        &self.stats
    }

    /// The home directory slice of a line (address-interleaved).
    pub fn home_of(&self, line: LineAddr) -> usize {
        ((line.0 / self.array.line_bytes()) % self.home_nodes as u64) as usize
    }

    /// The current state of a line (I when untracked).
    pub fn state_of(&self, line: LineAddr) -> L1State {
        if let Some(m) = self.mshrs.get(&line) {
            m.state
        } else {
            self.array.peek(line).copied().unwrap_or(L1State::I)
        }
    }

    /// Number of occupied MSHRs.
    pub fn outstanding(&self) -> usize {
        self.mshrs.len()
    }

    fn send_req(&self, kind: ReqType, line: LineAddr) -> OutMsg {
        OutMsg {
            to: self.home_of(line),
            msg: CoherenceMsg::Req { kind, line },
        }
    }

    /// Processor load.
    pub fn read(&mut self, line: LineAddr) -> Access {
        match self.state_of(line) {
            L1State::M | L1State::E | L1State::S => {
                self.array.lookup(line); // refresh LRU
                self.stats.read_hits += 1;
                Access::hit()
            }
            L1State::I => {
                if self.mshrs.len() >= self.max_mshrs {
                    return Access::stall();
                }
                self.stats.read_misses += 1;
                self.mshrs.insert(
                    line,
                    Mshr {
                        state: L1State::ISD,
                    },
                );
                Access::miss(vec![self.send_req(ReqType::Sh, line)])
            }
            // Transient (Table 2's `z`): the core must wait.
            _ => Access::stall(),
        }
    }

    /// Processor store.
    pub fn write(&mut self, line: LineAddr) -> Access {
        match self.state_of(line) {
            L1State::M => {
                self.array.lookup(line);
                self.stats.write_hits += 1;
                Access::hit()
            }
            L1State::E => {
                // Silent E→M upgrade ("do write/M").
                // lint: allow(P1) the E-state match arm proves the line is resident
                *self.array.lookup(line).expect("E line is resident") = L1State::M;
                self.stats.write_hits += 1;
                Access::hit()
            }
            L1State::S => {
                if self.mshrs.len() >= self.max_mshrs {
                    return Access::stall();
                }
                self.stats.write_misses += 1;
                self.mshrs.insert(
                    line,
                    Mshr {
                        state: L1State::SMA,
                    },
                );
                Access::miss(vec![self.send_req(ReqType::Upg, line)])
            }
            L1State::I => {
                if self.mshrs.len() >= self.max_mshrs {
                    return Access::stall();
                }
                self.stats.write_misses += 1;
                self.mshrs.insert(
                    line,
                    Mshr {
                        state: L1State::IMD,
                    },
                );
                Access::miss(vec![self.send_req(ReqType::Ex, line)])
            }
            _ => Access::stall(),
        }
    }

    /// Explicitly evicts a stable line (e.g. a flush). Dirty lines write
    /// back; clean lines leave silently. Lines with an outstanding
    /// transaction (e.g. an S.Mᴬ upgrade in flight) are pinned and cannot
    /// be evicted — the call is a no-op for them.
    pub fn evict(&mut self, line: LineAddr) -> Vec<OutMsg> {
        if self.mshrs.contains_key(&line) {
            return Vec::new();
        }
        match self.array.peek(line).copied() {
            Some(L1State::M) => {
                self.array.remove(line);
                self.stats.writebacks += 1;
                vec![OutMsg {
                    to: self.home_of(line),
                    msg: CoherenceMsg::WriteBack { line },
                }]
            }
            Some(_) => {
                self.array.remove(line);
                Vec::new()
            }
            None => Vec::new(),
        }
    }

    /// Installs a line granted by the directory, running the replacement
    /// (victim) transition if the set is full. Lines with an outstanding
    /// transaction (an S.Mᴬ upgrade holds its S copy in the array) are
    /// never victimized; if every way is pinned, the fill bypasses the
    /// cache — the value is consumed once and, for a modified fill,
    /// written straight back.
    fn install(&mut self, line: LineAddr, state: L1State, out: &mut Vec<OutMsg>) {
        let mshrs = &self.mshrs;
        let outcome = self
            .array
            .insert_evicting_where(line, state, |victim, _| !mshrs.contains_key(&victim));
        match outcome {
            Ok(AllocOutcome::Inserted) => {}
            Ok(AllocOutcome::Evicted {
                line: victim,
                payload,
            }) => {
                if payload == L1State::M {
                    self.stats.writebacks += 1;
                    out.push(OutMsg {
                        to: self.home_of(victim),
                        msg: CoherenceMsg::WriteBack { line: victim },
                    });
                }
                // S/E victims evict silently ("evict/I").
            }
            Err(_) => {
                // Cache bypass: nothing becomes resident. A modified fill
                // must return its (dirty) line home immediately.
                if state == L1State::M {
                    self.stats.writebacks += 1;
                    out.push(OutMsg {
                        to: self.home_of(line),
                        msg: CoherenceMsg::WriteBack { line },
                    });
                }
            }
        }
    }

    /// Handles a network message addressed to this L1.
    ///
    /// # Errors
    ///
    /// Returns a [`ProtocolError`] for the combinations Table 2 marks
    /// "error".
    pub fn handle(&mut self, msg: CoherenceMsg) -> Result<L1Reaction, ProtocolError> {
        let line = msg.line();
        let state = self.state_of(line);
        let err = |s: L1State, e: &str| {
            Err(ProtocolError {
                controller: "L1",
                state: format!("{s:?}"),
                event: e.to_string(),
                line,
            })
        };
        let mut reaction = L1Reaction::default();
        match msg {
            CoherenceMsg::Data { grant, .. } => match state {
                L1State::ISD => {
                    // "save & read/S or E".
                    let new = match grant {
                        Grant::Shared => L1State::S,
                        Grant::Exclusive | Grant::Modified => L1State::E,
                    };
                    self.mshrs.remove(&line);
                    let mut out = Vec::new();
                    self.install(line, new, &mut out);
                    reaction.out = out;
                    reaction.completed = Some(line);
                }
                L1State::IMD => {
                    // "save & write/M".
                    self.mshrs.remove(&line);
                    let mut out = Vec::new();
                    self.install(line, L1State::M, &mut out);
                    reaction.out = out;
                    reaction.completed = Some(line);
                }
                s => return err(s, "Data"),
            },
            CoherenceMsg::ExcAck { .. } => match state {
                L1State::SMA => {
                    // "do write/M".
                    self.mshrs.remove(&line);
                    *self
                        .array
                        .lookup(line)
                        // lint: allow(P1) the S.MA match arm proves the line is resident
                        .expect("S.MA line remains resident") = L1State::M;
                    reaction.completed = Some(line);
                }
                s => return err(s, "ExcAck"),
            },
            CoherenceMsg::Inv { .. } => {
                self.stats.invalidations += 1;
                let with_data = state == L1State::M;
                match state {
                    L1State::I => {}
                    L1State::S | L1State::E | L1State::M => {
                        self.array.remove(line);
                    }
                    L1State::ISD | L1State::IMD => {
                        // Ack and stay: the outstanding fill is unaffected.
                    }
                    L1State::SMA => {
                        // Upgrade race: our S copy dies; the request in
                        // flight becomes a full write miss ("InvAck/I.MD").
                        self.stats.upgrade_races += 1;
                        self.array.remove(line);
                        self.mshrs.insert(
                            line,
                            Mshr {
                                state: L1State::IMD,
                            },
                        );
                    }
                }
                reaction.out.push(OutMsg {
                    to: self.home_of(line),
                    msg: CoherenceMsg::InvAck { line, with_data },
                });
            }
            CoherenceMsg::Dwg { .. } => {
                self.stats.downgrades += 1;
                let with_data = state == L1State::M;
                match state {
                    L1State::I | L1State::ISD | L1State::IMD => {}
                    L1State::E | L1State::M => {
                        // lint: allow(P1) the E/M match arm proves the line is resident
                        *self.array.lookup(line).expect("resident") = L1State::S;
                    }
                    s @ (L1State::S | L1State::SMA) => return err(s, "Dwg"),
                }
                reaction.out.push(OutMsg {
                    to: self.home_of(line),
                    msg: CoherenceMsg::DwgAck { line, with_data },
                });
            }
            CoherenceMsg::Retry { .. } => {
                self.stats.retries += 1;
                let kind = match state {
                    L1State::ISD => ReqType::Sh,
                    L1State::IMD => ReqType::Ex,
                    L1State::SMA => ReqType::Upg,
                    s => return err(s, "Retry"),
                };
                reaction.out.push(self.send_req(kind, line));
            }
            other => {
                return err(state, &format!("{other:?}"));
            }
        }
        Ok(reaction)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l1() -> L1Controller {
        let mut c = L1Controller::new(3, 64, 2, 32);
        c.set_home_nodes(16);
        c
    }

    fn data(line: LineAddr, grant: Grant) -> CoherenceMsg {
        CoherenceMsg::Data { grant, line }
    }

    #[test]
    fn read_miss_requests_shared() {
        let mut c = l1();
        let line = LineAddr(0x40);
        let a = c.read(line);
        assert!(!a.hit && !a.stalled);
        assert_eq!(a.out.len(), 1);
        assert_eq!(a.out[0].to, c.home_of(line));
        assert_eq!(
            a.out[0].msg,
            CoherenceMsg::Req {
                kind: ReqType::Sh,
                line
            }
        );
        assert_eq!(c.state_of(line), L1State::ISD);
        assert_eq!(c.stats().read_misses, 1);
    }

    #[test]
    fn fill_shared_then_hit() {
        let mut c = l1();
        let line = LineAddr(0x40);
        c.read(line);
        let r = c.handle(data(line, Grant::Shared)).unwrap();
        assert_eq!(r.completed, Some(line));
        assert_eq!(c.state_of(line), L1State::S);
        assert!(c.read(line).hit);
        assert_eq!(c.outstanding(), 0);
    }

    #[test]
    fn fill_exclusive_enables_silent_write() {
        let mut c = l1();
        let line = LineAddr(0x40);
        c.read(line);
        c.handle(data(line, Grant::Exclusive)).unwrap();
        assert_eq!(c.state_of(line), L1State::E);
        assert!(c.write(line).hit, "E→M is silent");
        assert_eq!(c.state_of(line), L1State::M);
    }

    #[test]
    fn write_miss_requests_exclusive() {
        let mut c = l1();
        let line = LineAddr(0x80);
        let a = c.write(line);
        assert_eq!(
            a.out[0].msg,
            CoherenceMsg::Req {
                kind: ReqType::Ex,
                line
            }
        );
        assert_eq!(c.state_of(line), L1State::IMD);
        c.handle(data(line, Grant::Modified)).unwrap();
        assert_eq!(c.state_of(line), L1State::M);
    }

    #[test]
    fn shared_write_upgrades() {
        let mut c = l1();
        let line = LineAddr(0x40);
        c.read(line);
        c.handle(data(line, Grant::Shared)).unwrap();
        let a = c.write(line);
        assert!(!a.hit);
        assert_eq!(
            a.out[0].msg,
            CoherenceMsg::Req {
                kind: ReqType::Upg,
                line
            }
        );
        assert_eq!(c.state_of(line), L1State::SMA);
        let r = c.handle(CoherenceMsg::ExcAck { line }).unwrap();
        assert_eq!(r.completed, Some(line));
        assert_eq!(c.state_of(line), L1State::M);
    }

    #[test]
    fn upgrade_race_becomes_write_miss() {
        // Table 2: S.Mᴬ + Inv → InvAck / I.Mᴰ.
        let mut c = l1();
        let line = LineAddr(0x40);
        c.read(line);
        c.handle(data(line, Grant::Shared)).unwrap();
        c.write(line);
        assert_eq!(c.state_of(line), L1State::SMA);
        let r = c.handle(CoherenceMsg::Inv { line }).unwrap();
        assert_eq!(
            r.out[0].msg,
            CoherenceMsg::InvAck {
                line,
                with_data: false
            }
        );
        assert_eq!(c.state_of(line), L1State::IMD);
        assert_eq!(c.stats().upgrade_races, 1);
        // The eventual data grants M.
        c.handle(data(line, Grant::Modified)).unwrap();
        assert_eq!(c.state_of(line), L1State::M);
    }

    #[test]
    fn invalidation_of_dirty_line_carries_data() {
        let mut c = l1();
        let line = LineAddr(0x40);
        c.write(line);
        c.handle(data(line, Grant::Modified)).unwrap();
        let r = c.handle(CoherenceMsg::Inv { line }).unwrap();
        assert_eq!(
            r.out[0].msg,
            CoherenceMsg::InvAck {
                line,
                with_data: true
            }
        );
        assert_eq!(c.state_of(line), L1State::I);
    }

    #[test]
    fn downgrade_of_dirty_line() {
        let mut c = l1();
        let line = LineAddr(0x40);
        c.write(line);
        c.handle(data(line, Grant::Modified)).unwrap();
        let r = c.handle(CoherenceMsg::Dwg { line }).unwrap();
        assert_eq!(
            r.out[0].msg,
            CoherenceMsg::DwgAck {
                line,
                with_data: true
            }
        );
        assert_eq!(c.state_of(line), L1State::S);
        assert_eq!(c.stats().downgrades, 1);
    }

    #[test]
    fn downgrade_of_exclusive_clean_line() {
        let mut c = l1();
        let line = LineAddr(0x40);
        c.read(line);
        c.handle(data(line, Grant::Exclusive)).unwrap();
        let r = c.handle(CoherenceMsg::Dwg { line }).unwrap();
        assert_eq!(
            r.out[0].msg,
            CoherenceMsg::DwgAck {
                line,
                with_data: false
            }
        );
        assert_eq!(c.state_of(line), L1State::S);
    }

    #[test]
    fn racy_inv_and_dwg_in_invalid_state_are_acked() {
        let mut c = l1();
        let line = LineAddr(0x40);
        let r = c.handle(CoherenceMsg::Inv { line }).unwrap();
        assert_eq!(r.out.len(), 1);
        let r = c.handle(CoherenceMsg::Dwg { line }).unwrap();
        assert_eq!(r.out.len(), 1);
        assert_eq!(c.state_of(line), L1State::I);
    }

    #[test]
    fn inv_during_pending_fill_acks_and_stays() {
        let mut c = l1();
        let line = LineAddr(0x40);
        c.read(line);
        let r = c.handle(CoherenceMsg::Inv { line }).unwrap();
        assert_eq!(r.out.len(), 1);
        assert_eq!(c.state_of(line), L1State::ISD, "fill still pending");
        c.handle(data(line, Grant::Shared)).unwrap();
        assert_eq!(c.state_of(line), L1State::S);
    }

    #[test]
    fn shared_line_downgrade_is_protocol_error() {
        let mut c = l1();
        let line = LineAddr(0x40);
        c.read(line);
        c.handle(data(line, Grant::Shared)).unwrap();
        assert!(c.handle(CoherenceMsg::Dwg { line }).is_err());
    }

    #[test]
    fn unexpected_data_is_protocol_error() {
        let mut c = l1();
        assert!(c.handle(data(LineAddr(0x40), Grant::Shared)).is_err());
    }

    #[test]
    fn retry_resends_matching_request() {
        let mut c = l1();
        let line = LineAddr(0x40);
        c.read(line);
        let r = c.handle(CoherenceMsg::Retry { line }).unwrap();
        assert_eq!(
            r.out[0].msg,
            CoherenceMsg::Req {
                kind: ReqType::Sh,
                line
            }
        );
        assert_eq!(c.stats().retries, 1);
        // Write-miss retry resends Ex; upgrade retry resends Upg.
        let wline = LineAddr(0x80);
        c.write(wline);
        let r = c.handle(CoherenceMsg::Retry { line: wline }).unwrap();
        assert_eq!(
            r.out[0].msg,
            CoherenceMsg::Req {
                kind: ReqType::Ex,
                line: wline
            }
        );
    }

    #[test]
    fn transient_accesses_stall() {
        let mut c = l1();
        let line = LineAddr(0x40);
        c.read(line);
        assert!(c.read(line).stalled);
        assert!(c.write(line).stalled);
    }

    #[test]
    fn mshr_exhaustion_stalls() {
        let mut c = l1();
        c.set_max_mshrs(2);
        assert!(!c.read(LineAddr(0x40)).stalled);
        assert!(!c.read(LineAddr(0x80)).stalled);
        assert!(c.read(LineAddr(0xc0)).stalled);
        assert_eq!(c.outstanding(), 2);
    }

    #[test]
    fn capacity_eviction_writes_back_dirty_victims() {
        let mut c = L1Controller::new(0, 2, 1, 32); // 2 sets × 1 way
        c.set_home_nodes(4);
        let a = LineAddr(0x00);
        let b = LineAddr(0x40); // same set as a (2 sets × 32 B stride)
        c.write(a);
        c.handle(data(a, Grant::Modified)).unwrap();
        assert_eq!(c.state_of(a), L1State::M);
        c.read(b);
        let r = c.handle(data(b, Grant::Shared)).unwrap();
        assert_eq!(
            r.out,
            vec![OutMsg {
                to: c.home_of(a),
                msg: CoherenceMsg::WriteBack { line: a }
            }]
        );
        assert_eq!(c.state_of(a), L1State::I);
        assert_eq!(c.state_of(b), L1State::S);
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn explicit_evictions() {
        let mut c = l1();
        let line = LineAddr(0x40);
        c.read(line);
        c.handle(data(line, Grant::Shared)).unwrap();
        assert!(c.evict(line).is_empty(), "clean eviction is silent");
        assert_eq!(c.state_of(line), L1State::I);
        c.write(line);
        c.handle(data(line, Grant::Modified)).unwrap();
        let out = c.evict(line);
        assert!(matches!(out[0].msg, CoherenceMsg::WriteBack { .. }));
        assert!(c.evict(LineAddr(0xdead0)).is_empty(), "absent is no-op");
        // A line with a pending upgrade is pinned against eviction.
        let pinned = LineAddr(0x80);
        c.read(pinned);
        c.handle(data(pinned, Grant::Shared)).unwrap();
        c.write(pinned); // S.MA
        assert!(c.evict(pinned).is_empty(), "S.MA is pinned");
        assert_eq!(c.state_of(pinned), L1State::SMA);
    }

    #[test]
    fn upgrade_line_is_never_victimized() {
        // 1 set × 2 ways: an S.Mᴬ upgrade pins its way; fills that would
        // evict it bypass the cache instead.
        let mut c = L1Controller::new(0, 2, 2, 32);
        c.set_home_nodes(4);
        let a = LineAddr(0x00);
        let b = LineAddr(0x40);
        let d = LineAddr(0x80);
        // a: Shared, then upgrade in flight (S.MA pins way 0).
        c.read(a);
        c.handle(data(a, Grant::Shared)).unwrap();
        c.write(a);
        assert_eq!(c.state_of(a), L1State::SMA);
        // b fills way 1.
        c.read(b);
        c.handle(data(b, Grant::Shared)).unwrap();
        // d's fill finds only b evictable.
        c.read(d);
        let r = c.handle(data(d, Grant::Shared)).unwrap();
        assert!(r.out.is_empty(), "clean victim, no writeback");
        assert_eq!(c.state_of(a), L1State::SMA, "upgrade still pending");
        assert_eq!(c.state_of(b), L1State::I, "b was the victim");
        // The ExcAck still lands on a resident S line.
        c.handle(CoherenceMsg::ExcAck { line: a }).unwrap();
        assert_eq!(c.state_of(a), L1State::M);
    }

    #[test]
    fn fill_bypasses_when_every_way_is_pinned() {
        // 1 set × 2 ways, both pinned by upgrades: a modified fill cannot
        // become resident and writes straight back.
        let mut c = L1Controller::new(0, 2, 2, 32);
        c.set_home_nodes(4);
        let a = LineAddr(0x00);
        let b = LineAddr(0x40);
        let d = LineAddr(0x80);
        for &l in &[a, b] {
            c.read(l);
            c.handle(data(l, Grant::Shared)).unwrap();
            c.write(l); // S.MA pins the way
        }
        c.write(d); // I.MD
        let r = c.handle(data(d, Grant::Modified)).unwrap();
        assert_eq!(r.completed, Some(d), "the store itself completes");
        assert_eq!(
            r.out,
            vec![OutMsg {
                to: c.home_of(d),
                msg: CoherenceMsg::WriteBack { line: d }
            }],
            "bypassed modified fill returns home dirty"
        );
        assert_eq!(c.state_of(d), L1State::I);
    }

    #[test]
    fn home_interleaving() {
        let mut c = l1();
        c.set_home_nodes(16);
        assert_eq!(c.home_of(LineAddr(0)), 0);
        assert_eq!(c.home_of(LineAddr(32)), 1);
        assert_eq!(c.home_of(LineAddr(32 * 17)), 1);
    }
}
