//! Deliberately-violating fixture. Never compiled — only lexed by
//! `fsoi-lint`. Running `fsoi-lint check --root` against this tree must
//! exit nonzero with every rule firing at least once.

use std::collections::HashMap; // D1: default-hasher map

pub fn sampled_now() -> u64 {
    let t = std::time::Instant::now(); // D2: wall clock
    let _ = std::env::var("FSOI_UNDOCUMENTED"); // D2: undocumented knob
    let _ = std::env::var(knob_name()); // D2: non-literal env read
    let mut s = HashSet::new(); // D1: default-hasher set
    s.insert(0u8);
    trace::emit(TraceEvent::Tick { at: 0 }); // T1: eager emission
    s.len() as u64
}

pub fn last(v: &[u64]) -> u64 {
    *v.last().unwrap() // P1: unannotated unwrap
}

pub fn head(v: &[u64]) -> u64 {
    *v.first().expect("non-empty") // lint: allow(Q9) A1: unknown rule
}

pub fn boom() {
    panic!("unjustified"); // P1: unannotated panic
}

pub fn racing_sweep() {
    let shared = std::sync::Mutex::new(0u64); // D3: lock in sim code
    let h = std::thread::spawn(move || 1u64); // D3: ad-hoc thread
    let _ = (shared, h);
}

pub fn reasonless(v: Option<u64>) -> u64 {
    v.unwrap() // lint: allow(P1)
}

pub fn reformed() -> u64 {
    // lint: allow(T1) A2: well-formed, but the eager emit it excused is gone
    7
}
