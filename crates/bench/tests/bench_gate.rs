//! Exit-code contract of `scripts/bench_gate.sh`: pass on a matching
//! report, nonzero on a synthetic injected regression, nonzero when the
//! parallel sweep was not byte-identical, usage error on missing files.

use fsoi_bench::sweepbench::{ScalingPoint, SweepBenchReport};
use std::path::{Path, PathBuf};
use std::process::Command;

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("repo root resolves")
}

/// Synthetic report pinned to 40M simulated cycles per wall-second, so
/// the cells/sec and cycles/sec gates can be exercised independently.
fn report(cells_per_sec: f64, speedup: f64, byte_identical: bool) -> SweepBenchReport {
    let wall_ms = 80.0 / cells_per_sec * 1e3;
    report_with_sim_cycles(
        cells_per_sec,
        speedup,
        byte_identical,
        (wall_ms * 4e4) as u64,
    )
}

fn report_with_sim_cycles(
    cells_per_sec: f64,
    speedup: f64,
    byte_identical: bool,
    sim_cycles_total: u64,
) -> SweepBenchReport {
    let wall_ms = 80.0 / cells_per_sec * 1e3;
    SweepBenchReport {
        nodes: 16,
        apps: 16,
        networks: 5,
        cells: 80,
        ops_per_core: 1500,
        seed: 2010,
        cpus: 8,
        build_ms: 0.5,
        merge_ms: 1.0,
        sim_cycles_total,
        cell_ms: vec![wall_ms / 80.0; 80],
        scaling: vec![
            ScalingPoint {
                threads: 1,
                wall_ms,
                cells_per_sec,
                speedup: 1.0,
            },
            ScalingPoint {
                threads: 8,
                wall_ms: wall_ms / speedup,
                cells_per_sec: cells_per_sec * speedup,
                speedup,
            },
        ],
        byte_identical,
    }
}

/// A report whose scaling curve sampled only the serial point — what an
/// honest 1-CPU host (or a forced `--threads 1` run) produces.
fn serial_only_report(cells_per_sec: f64, cpus: usize) -> SweepBenchReport {
    let mut r = report(cells_per_sec, 1.0, true);
    r.cpus = cpus;
    r.scaling.truncate(1);
    r
}

fn write_report(name: &str, r: &SweepBenchReport) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    std::fs::create_dir_all(&dir).expect("tmpdir");
    let path = dir.join(name);
    std::fs::write(&path, r.render_json()).expect("write synthetic report");
    path
}

fn run_gate(args: &[&str]) -> std::process::Output {
    Command::new("sh")
        .arg(repo_root().join("scripts/bench_gate.sh"))
        .args(args)
        .current_dir(repo_root())
        .output()
        .expect("bench_gate.sh runs")
}

#[test]
fn matching_reports_pass() {
    let base = write_report("gate_base_ok.json", &report(100.0, 1.8, true));
    let cur = write_report("gate_cur_ok.json", &report(100.0, 1.8, true));
    let out = run_gate(&[
        "--baseline",
        base.to_str().unwrap(),
        "--current",
        cur.to_str().unwrap(),
    ]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(0), "stdout: {stdout}");
    assert!(stdout.contains("bench_gate: PASS"), "{stdout}");
}

#[test]
fn small_regression_within_tolerance_passes() {
    let base = write_report("gate_base_tol.json", &report(100.0, 2.0, true));
    let cur = write_report("gate_cur_tol.json", &report(80.0, 1.5, true));
    let out = run_gate(&[
        "--baseline",
        base.to_str().unwrap(),
        "--current",
        cur.to_str().unwrap(),
        "--tol",
        "0.5",
        "--speedup-tol",
        "0.5",
    ]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "20%/25% drops sit inside a 50% tolerance: {}",
        String::from_utf8_lossy(&out.stdout)
    );
}

#[test]
fn injected_throughput_regression_fails() {
    let base = write_report("gate_base_reg.json", &report(100.0, 2.0, true));
    let cur = write_report("gate_cur_reg.json", &report(10.0, 2.0, true));
    let out = run_gate(&[
        "--baseline",
        base.to_str().unwrap(),
        "--current",
        cur.to_str().unwrap(),
        "--tol",
        "0.5",
    ]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(1), "stdout: {stdout}");
    assert!(stdout.contains("FAIL throughput"), "{stdout}");
}

#[test]
fn regression_diff_lands_on_stderr_with_both_values() {
    // The human narrative stays on stdout; stderr carries the offending
    // field with baseline and fresh values side by side, so CI logs can
    // grep one stream for the numbers that moved.
    let base = write_report("gate_base_err.json", &report(100.0, 2.0, true));
    let cur = write_report("gate_cur_err.json", &report(10.0, 2.0, false));
    let out = run_gate(&[
        "--baseline",
        base.to_str().unwrap(),
        "--current",
        cur.to_str().unwrap(),
        "--tol",
        "0.5",
    ]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(1), "stdout: {stdout}");
    assert!(
        stderr.contains("bench_gate: diff cells_per_sec_serial: baseline=100.0000 current=10.0000"),
        "stderr: {stderr}"
    );
    assert!(
        stderr.contains("bench_gate: diff byte_identical: baseline=true current=false"),
        "stderr: {stderr}"
    );
    assert!(
        !stdout.contains("bench_gate: diff"),
        "diff lines belong to stderr only: {stdout}"
    );
}

#[test]
fn injected_scaling_regression_fails() {
    let base = write_report("gate_base_sp.json", &report(100.0, 4.0, true));
    let cur = write_report("gate_cur_sp.json", &report(100.0, 1.0, true));
    let out = run_gate(&[
        "--baseline",
        base.to_str().unwrap(),
        "--current",
        cur.to_str().unwrap(),
        "--speedup-tol",
        "0.5",
    ]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(1), "stdout: {stdout}");
    assert!(stdout.contains("FAIL scaling"), "{stdout}");
}

#[test]
fn injected_sim_throughput_regression_fails() {
    // Same cells/sec on both sides, but the current run retires far
    // fewer simulated cycles per second — only the v2 gate catches it.
    let base = write_report("gate_base_sim.json", &report(100.0, 2.0, true));
    let cur = write_report(
        "gate_cur_sim.json",
        &report_with_sim_cycles(100.0, 2.0, true, 1_000),
    );
    let out = run_gate(&[
        "--baseline",
        base.to_str().unwrap(),
        "--current",
        cur.to_str().unwrap(),
        "--tol",
        "0.5",
    ]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(1), "stdout: {stdout}");
    assert!(stdout.contains("FAIL sim throughput"), "{stdout}");
    assert!(stdout.contains("ok throughput"), "{stdout}");
}

#[test]
fn old_schema_reports_are_rejected() {
    let base = write_report("gate_base_v1.json", &report(100.0, 2.0, true));
    for old in [
        "fsoi-bench-sweep/v1",
        "fsoi-bench-sweep/v2",
        "fsoi-bench-sweep/v3",
    ] {
        let stale = report(100.0, 2.0, true)
            .render_json()
            .replace("fsoi-bench-sweep/v4", old);
        let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
        let cur = dir.join("gate_cur_old_schema.json");
        std::fs::write(&cur, stale).expect("write stale-schema report");
        let out = run_gate(&[
            "--baseline",
            base.to_str().unwrap(),
            "--current",
            cur.to_str().unwrap(),
        ]);
        assert_eq!(out.status.code(), Some(2), "{old} is a usage error");
    }
}

#[test]
fn node_count_mismatch_is_a_usage_error() {
    // A 64-node sweep is orders of magnitude slower per cell than a
    // 16-node one; gating it against a 16-node baseline would make the
    // tolerance checks meaningless. v4 rejects the pair outright.
    let base = write_report("gate_base_nodes.json", &report(100.0, 2.0, true));
    let mismatched = report(100.0, 2.0, true)
        .render_json()
        .replace("\"nodes\": 16", "\"nodes\": 64");
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    let cur = dir.join("gate_cur_nodes.json");
    std::fs::write(&cur, mismatched).expect("write mismatched-nodes report");
    let out = run_gate(&[
        "--baseline",
        base.to_str().unwrap(),
        "--current",
        cur.to_str().unwrap(),
    ]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(2), "stderr: {stderr}");
    assert!(stderr.contains("FAIL nodes"), "{stderr}");
    assert!(stderr.contains("not comparable"), "{stderr}");
    assert!(
        stderr.contains("bench_gate: diff nodes: baseline=16 current=64"),
        "{stderr}"
    );
}

#[test]
fn matching_node_counts_are_reported() {
    let base = write_report("gate_base_nodes_ok.json", &report(100.0, 2.0, true));
    let cur = write_report("gate_cur_nodes_ok.json", &report(100.0, 2.0, true));
    let out = run_gate(&[
        "--baseline",
        base.to_str().unwrap(),
        "--current",
        cur.to_str().unwrap(),
    ]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(0), "stdout: {stdout}");
    assert!(
        stdout.contains("ok nodes: both reports swept 16 nodes"),
        "{stdout}"
    );
}

#[test]
fn parallel_slower_than_serial_hard_fails() {
    // The vacuous case the relative check let through: the baseline
    // itself regressed (speedup 0.9), so current == baseline passes the
    // relative gate at any tolerance. The hard check still fires.
    let mut r = report(100.0, 0.9, true);
    r.cpus = 1; // isolate the threads_max>1 check from the cpus check
    let base = write_report("gate_base_hard_slow.json", &r);
    let cur = write_report("gate_cur_hard_slow.json", &r);
    let out = run_gate(&[
        "--baseline",
        base.to_str().unwrap(),
        "--current",
        cur.to_str().unwrap(),
        "--tol",
        "0.99",
        "--speedup-tol",
        "0.99",
    ]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(1), "stdout: {stdout}");
    assert!(stdout.contains("FAIL scaling (hard)"), "{stdout}");
    assert!(
        stdout.contains("parallel is slower than serial"),
        "{stdout}"
    );
}

#[test]
fn multi_cpu_host_without_speedup_fails() {
    // cpus=8 but the best sampled speedup is exactly 1.0 — a multi-core
    // runner must actually beat serial, baseline agreement is no excuse.
    let base = write_report("gate_base_hard_flat.json", &report(100.0, 1.0, true));
    let cur = write_report("gate_cur_hard_flat.json", &report(100.0, 1.0, true));
    let out = run_gate(&[
        "--baseline",
        base.to_str().unwrap(),
        "--current",
        cur.to_str().unwrap(),
        "--tol",
        "0.99",
        "--speedup-tol",
        "0.99",
    ]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(1), "stdout: {stdout}");
    assert!(stdout.contains("not above 1.0"), "{stdout}");
}

#[test]
fn multi_cpu_host_with_serial_only_curve_fails() {
    let r = serial_only_report(100.0, 8);
    let base = write_report("gate_base_hard_ser8.json", &r);
    let cur = write_report("gate_cur_hard_ser8.json", &r);
    let out = run_gate(&[
        "--baseline",
        base.to_str().unwrap(),
        "--current",
        cur.to_str().unwrap(),
    ]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(1), "stdout: {stdout}");
    assert!(stdout.contains("only sampled threads_max=1"), "{stdout}");
}

#[test]
fn single_cpu_serial_only_report_passes() {
    // The honest shape a 1-CPU host produces (and the committed
    // baseline's shape when re-baselined on such a host).
    let r = serial_only_report(100.0, 1);
    let base = write_report("gate_base_hard_ser1.json", &r);
    let cur = write_report("gate_cur_hard_ser1.json", &r);
    let out = run_gate(&[
        "--baseline",
        base.to_str().unwrap(),
        "--current",
        cur.to_str().unwrap(),
    ]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(0), "stdout: {stdout}");
    assert!(stdout.contains("serial-only curve is honest"), "{stdout}");
}

#[test]
fn update_rebaselines_only_on_pass() {
    let base = write_report("gate_base_upd.json", &report(100.0, 2.0, true));
    let good = write_report("gate_cur_upd_ok.json", &report(90.0, 1.9, true));
    let out = run_gate(&[
        "--baseline",
        base.to_str().unwrap(),
        "--current",
        good.to_str().unwrap(),
        "--update",
    ]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(0), "stdout: {stdout}");
    assert!(stdout.contains("re-baselined"), "{stdout}");
    assert_eq!(
        std::fs::read_to_string(&base).unwrap(),
        std::fs::read_to_string(&good).unwrap(),
        "baseline adopts the fresh report"
    );

    let bad = write_report("gate_cur_upd_bad.json", &report(90.0, 1.9, false));
    let out = run_gate(&[
        "--baseline",
        base.to_str().unwrap(),
        "--current",
        bad.to_str().unwrap(),
        "--update",
    ]);
    assert_eq!(out.status.code(), Some(1));
    assert_eq!(
        std::fs::read_to_string(&base).unwrap(),
        std::fs::read_to_string(&good).unwrap(),
        "failing gate leaves the baseline untouched"
    );
}

#[test]
fn non_byte_identical_report_fails_at_any_tolerance() {
    let base = write_report("gate_base_byte.json", &report(100.0, 2.0, true));
    let cur = write_report("gate_cur_byte.json", &report(100.0, 2.0, false));
    let out = run_gate(&[
        "--baseline",
        base.to_str().unwrap(),
        "--current",
        cur.to_str().unwrap(),
        "--tol",
        "0.99",
        "--speedup-tol",
        "0.99",
    ]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(1), "stdout: {stdout}");
    assert!(stdout.contains("FAIL determinism"), "{stdout}");
}

#[test]
fn missing_files_and_bad_args_are_usage_errors() {
    let cur = write_report("gate_cur_usage.json", &report(100.0, 2.0, true));
    let out = run_gate(&[
        "--baseline",
        "/nonexistent/fsoi-baseline.json",
        "--current",
        cur.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(2));
    let out = run_gate(&["--frobnicate"]);
    assert_eq!(out.status.code(), Some(2));
}
