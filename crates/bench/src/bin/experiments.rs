//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! cargo run --release -p fsoi-bench --bin experiments -- <cmd> [--full]
//!
//! cmd: table1 | fig3 | fig4 | fig5 | fig6 | fig7 | fig8 | fig9 | fig10 |
//!      fig11 | table4 | bm | opts | corona | l1 | ber | receivers |
//!      seeds | snapshot | bench | profile | grid | all
//! ```
//!
//! `--full` uses larger workloads (closer statistics, slower).
//!
//! `snapshot` dumps the metric registry (table + JSONL) for the Figure 6
//! 16-node runs — the single code path behind every exported number. Two
//! same-seed invocations emit byte-identical output.
//!
//! `bench [--out PATH] [--threads 1,2,8]` runs the sweep benchmark:
//! wall time, cells/sec and thread scaling over the default Figure 6
//! sweep, written as schema-versioned JSON (default `BENCH_sweep.json`)
//! for `scripts/bench_gate.sh` to compare against the committed baseline.
//! Sweeps parallelize across (app, network, seed) cells; `FSOI_THREADS`
//! caps the worker count without changing any output byte.
//!
//! `grid [--nodes N] [--ops N] [--apps LIST] [--networks LIST]
//! [--out PATH]` runs a beyond-the-paper design-space grid: the four-way
//! network comparison (FSOI, mesh, Corona ring, worst-case-loss
//! crossbar) at an arbitrary node count (default 64; the NodeMask
//! capacity of 256 is the ceiling). Every cell runs at worker counts
//! {1, 2, 8} and its exported metric registry must be byte-identical
//! across all three — the determinism contract checked at the grid
//! sizes, not assumed. `--out` writes a machine-greppable grid summary
//! (`fsoi-grid/v1`) for CI artifacts.
//!
//! `profile [--out PATH] [--det PATH] [--ops N]` runs the standard
//! 80-cell sweep under both harness observability planes and writes the
//! versioned run manifest (default `RUN_manifest.json`): config hash and
//! seed, build info, the deterministic span profile (byte-identical for
//! any `FSOI_THREADS`) and the wall-clock executor/cache telemetry
//! (explicitly nondeterministic). `--det` additionally writes the raw
//! deterministic-plane bytes (profile + merged registry JSONL) for
//! byte-identity gates; `--ops` overrides ops-per-core for quick runs.

use fsoi_bench::runner::{
    network_by_name, run_app, run_cells, run_cells_threads, run_cells_threads_profiled,
    suite_cells, sweep_apps, CellSpec, SweepOptions, MAX_CYCLES,
};
use fsoi_cmp::workload::AppProfile;
use fsoi_net::analysis::backoff as ab;
use fsoi_net::analysis::bandwidth::BandwidthAllocationModel;
use fsoi_net::analysis::collision as ac;
use fsoi_net::backoff::BackoffPolicy;
use fsoi_optics::link::OpticalLink;
use fsoi_sim::stats::geometric_mean;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let cmd = args.first().map(String::as_str).unwrap_or("all");
    let scale = if full { 2 } else { 1 };
    match cmd {
        "table1" => table1(),
        "fig3" => fig3(),
        "fig4" => fig4(full),
        "fig5" => fig5(scale),
        "fig6" => fig6(scale),
        "fig7" => fig7(scale),
        "fig8" => fig8(scale),
        "fig9" => fig9(scale),
        "fig10" => fig10(scale),
        "fig11" => fig11(scale),
        "table4" => table4(scale),
        "bm" => bm(),
        "opts" => opts(scale),
        "corona" => corona(scale),
        "l1" => l1_sensitivity(scale),
        "ber" => ber_relaxation(scale),
        "receivers" => receivers(scale),
        "seeds" => seed_stability(scale),
        "snapshot" => snapshot(scale),
        "bench" => bench(&args[1..]),
        "profile" => profile(&args[1..]),
        "grid" => grid(&args[1..]),
        "all" => {
            table1();
            fig3();
            fig4(full);
            fig5(scale);
            fig6(scale);
            fig7(scale);
            fig8(scale);
            fig9(scale);
            fig10(scale);
            fig11(scale);
            table4(scale);
            bm();
            opts(scale);
            corona(scale);
            l1_sensitivity(scale);
            ber_relaxation(scale);
            receivers(scale);
            seed_stability(scale);
        }
        "diag" => diag(),
        other => {
            eprintln!("unknown experiment: {other}");
            std::process::exit(2);
        }
    }
}

/// Calibration diagnostics (not a paper figure).
fn diag() {
    header("diag: per-app miss rates and latency makeup");
    let opts = SweepOptions::quick_16();
    println!(
        "  {:<6} {:>7} {:>8} {:>8} {:>9} {:>9} {:>8} {:>8} {:>8}",
        "app", "miss%", "fsoi cyc", "mesh cyc", "replyF", "replyM", "speedup", "p(meta)", "collD%"
    );
    for app in AppProfile::suite() {
        let f = run_app(app, network_by_name("fsoi", 16), opts);
        let m = run_app(app, network_by_name("mesh", 16), opts);
        println!(
            "  {:<6} {:>6.1}% {:>8} {:>8} {:>9.1} {:>9.1} {:>8.2} {:>7.2}% {:>7.1}%",
            app.name,
            100.0 * f.l1_miss_rate,
            f.cycles,
            m.cycles,
            f.reply_latency.mean(),
            m.reply_latency.mean(),
            m.cycles as f64 / f.cycles as f64,
            100.0 * f.meta_tx_probability,
            100.0 * f.data_collision_rate,
        );
    }
}

fn header(title: &str) {
    println!("\n================================================================");
    println!("{title}");
    println!("================================================================");
}

// ---------------------------------------------------------------- Table 1

fn table1() {
    header("Table 1: Optical link parameters (paper values in parentheses)");
    let budget = OpticalLink::paper_default().budget();
    let paper: &[(&str, &str)] = &[
        ("Trans. distance", "2 cm"),
        ("Optical path loss", "2.6 dB"),
        ("Link bandwidth", "-"),
        ("Data rate", "40 Gbps"),
        ("Signal-to-noise ratio", "7.5 dB"),
        ("Q factor", "~6.4"),
        ("Bit-error-rate (BER)", "1e-10"),
        ("Cycle-to-cycle jitter", "1.7 ps"),
        ("Laser driver power", "6.3 mW"),
        ("VCSEL power", "0.96 mW"),
        ("Transmitter (standby)", "0.43 mW"),
        ("Receiver power", "4.2 mW"),
        ("TX energy/bit", "-"),
        ("RX energy/bit", "-"),
    ];
    for (row, (label, paper_v)) in budget.table1_rows().iter().zip(paper) {
        println!("  {:<26} {:>12}   ({label}: {paper_v})", row.0, row.1);
    }
}

// ---------------------------------------------------------------- Figure 3

fn fig3() {
    header("Figure 3: collision probability / p vs transmission probability");
    let ps = [
        0.33, 0.25, 0.20, 0.15, 0.10, 0.07, 0.05, 0.04, 0.03, 0.02, 0.01,
    ];
    print!("  {:>6}", "p");
    for r in 1..=4 {
        print!("  R={r} theory");
    }
    println!("   R=2 Monte-Carlo");
    for &p in &ps {
        print!("  {:>5.0}%", p * 100.0);
        for r in 1..=4 {
            print!(
                "  {:>9.2}%",
                100.0 * ac::normalized_collision_probability(p, 16, r)
            );
        }
        let mc = ac::monte_carlo(p, 16, 2, 60_000, 42);
        println!(
            "   {:>8.2}%",
            100.0 * mc.node_collision_rate / mc.measured_p.max(1e-9)
        );
    }
    println!("  (N = 16; the paper notes near-independence from N.)");
}

// ---------------------------------------------------------------- Figure 4

fn fig4(full: bool) {
    header("Figure 4: collision resolution delay vs (W, B) — meta packets");
    let trials = if full { 60_000 } else { 15_000 };
    let ws = [1.0, 1.5, 2.0, 2.7, 3.5, 5.0];
    let bs = [1.05, 1.1, 1.3, 1.5, 2.0];
    for &g in &[0.01, 0.10] {
        println!("  G = {:.0}%", g * 100.0);
        print!("  {:>6}", "W\\B");
        for b in bs {
            print!(" {b:>7.2}");
        }
        println!();
        let mut best = (f64::INFINITY, 0.0, 0.0);
        for &w in &ws {
            print!("  {w:>6.1}");
            for &b in &bs {
                let d = ab::resolution_delay(BackoffPolicy::new(w, b), g, 2, 2, trials, 9);
                if d < best.0 {
                    best = (d, w, b);
                }
                print!(" {d:>7.2}");
            }
            println!();
        }
        println!(
            "  minimum: {:.2} cycles at W = {}, B = {}  (paper: 7.26 at W = 2.7, B = 1.1)",
            best.0, best.1, best.2
        );
    }
    println!("\n  Pathological 64-node burst (63 colliders), §4.3.2:");
    for (label, policy) in [
        ("W=2.7 B=1.1", BackoffPolicy::PAPER_OPTIMUM),
        ("W=2.7 B=2.0", BackoffPolicy::BINARY),
        ("fixed W=3", BackoffPolicy::fixed(3.0)),
    ] {
        let e = ab::pathological_burst(63, policy, 2, 2);
        println!(
            "    {label:<12} retries = {:>10.3e}   cycles = {:>10.3e}",
            e.retries, e.cycles
        );
    }
    println!("    (paper: ~26 retries/416 cycles; ~5 retries/199 cycles; 8.2e10 retries)");
}

// ---------------------------------------------------------------- Figure 5

fn fig5(scale: u64) {
    fig5_at(16, scale);
}

/// The Figure 5 latency distribution at an arbitrary node count. Bin
/// geometry (count, width, overflow threshold) is read off the reports'
/// own histograms, so the figure follows the simulator if the histogram
/// shape ever changes and works unmodified at the beyond-the-paper grid
/// sizes.
fn fig5_at(nodes: usize, scale: u64) {
    header(&format!(
        "Figure 5: distribution of read-miss reply latency ({nodes}-node FSOI)"
    ));
    let mut opts = SweepOptions::for_nodes(nodes);
    opts.ops_per_core *= scale;
    let results = sweep_apps(&["fsoi"], opts);
    let geometry = {
        let h = &results[0].reports[0].reply_latency;
        (h.num_bins(), h.bin_width())
    };
    let (num_bins, bin_width) = geometry;
    // Merge by re-binning each app's histogram.
    let mut total = 0u64;
    let mut bins = vec![0u64; num_bins];
    let mut overflow = 0u64;
    for r in &results {
        let h = &r.reports[0].reply_latency;
        assert_eq!(
            (h.num_bins(), h.bin_width()),
            geometry,
            "every app's histogram shares one bin geometry"
        );
        for (i, bin) in bins.iter_mut().enumerate() {
            *bin += h.bin(i);
        }
        overflow += h.overflow();
        total += h.count();
    }
    println!("  latency bin     fraction of requests");
    for (i, &c) in bins.iter().enumerate() {
        let frac = 100.0 * c as f64 / total.max(1) as f64;
        if frac >= 0.05 {
            println!(
                "  {:>4}-{:<4}      {:>5.1}%  {}",
                i as u64 * bin_width,
                (i as u64 + 1) * bin_width - 1,
                frac,
                "#".repeat((frac * 1.2) as usize)
            );
        }
    }
    println!(
        "  >{:<4}          {:>5.1}%",
        num_bins as u64 * bin_width,
        100.0 * overflow as f64 / total.max(1) as f64
    );
    if nodes == 16 {
        println!("  (paper: heavily concentrated in a few slots; peak bucket ≈ 41 %)");
    }
}

// ------------------------------------------------------------- Figures 6/7

fn perf_figure(nodes: usize, scale: u64) {
    let mut opts = SweepOptions::for_nodes(nodes);
    opts.ops_per_core *= scale;
    let nets = ["mesh", "fsoi", "L0", "Lr1", "Lr2"];
    let results = sweep_apps(&nets, opts);

    println!("  (a) mean packet latency, cycles");
    println!(
        "  {:<6} {:>7} {:>7} {:>7} {:>7} {:>9} {:>7}",
        "app", "queue", "sched", "net", "coll", "FSOI tot", "mesh"
    );
    let mut fsoi_lat = Vec::new();
    let mut mesh_lat = Vec::new();
    for r in &results {
        let f = &r.reports[1].attribution;
        let m = &r.reports[0].attribution;
        fsoi_lat.push(f.total());
        mesh_lat.push(m.total());
        println!(
            "  {:<6} {:>7.1} {:>7.1} {:>7.1} {:>7.1} {:>9.1} {:>7.1}",
            r.app,
            f.queuing,
            f.scheduling,
            f.network,
            f.collision_resolution,
            f.total(),
            m.total()
        );
    }
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    // Reference numbers exist only at the paper's two sizes.
    let paper_lat = match nodes {
        16 => "paper 16-node: 7.5 vs mesh",
        64 => "paper 64-node: 12.6 vs mesh",
        _ => "beyond the paper's sizes",
    };
    println!(
        "  {:<6} {:>41.1} {:>7.1}   ({paper_lat})",
        "avg",
        avg(&fsoi_lat),
        avg(&mesh_lat),
    );

    println!("\n  (b) speedup over the mesh baseline");
    println!(
        "  {:<6} {:>7} {:>7} {:>7} {:>7}",
        "app", "FSOI", "L0", "Lr1", "Lr2"
    );
    let mut speedups = vec![Vec::new(); 4];
    for r in &results {
        let base = r.reports[0].cycles;
        print!("  {:<6}", r.app);
        for (k, idx) in [1usize, 2, 3, 4].iter().enumerate() {
            let s = r.reports[*idx].speedup_vs(base);
            speedups[k].push(s);
            print!(" {s:>7.2}");
        }
        println!();
    }
    print!("  {:<6}", "gmean");
    for s in &speedups {
        print!(" {:>7.2}", geometric_mean(s).unwrap_or(0.0));
    }
    let paper = match nodes {
        16 => "(paper: 1.36 / 1.43 / 1.32 / 1.22)",
        64 => "(paper: 1.75 / 1.91 / 1.55 / 1.29)",
        _ => "(beyond the paper's sizes; no reference numbers)",
    };
    println!("  {paper}");
}

fn fig6(scale: u64) {
    header("Figure 6: performance of 16-node systems");
    perf_figure(16, scale);
}

fn fig7(scale: u64) {
    header("Figure 7: performance of 64-node systems (phase-array FSOI)");
    perf_figure(64, scale);
}

// ---------------------------------------------------------------- Figure 8

fn fig8(scale: u64) {
    header("Figure 8: energy relative to the mesh baseline (16 nodes)");
    let mut opts = SweepOptions::quick_16();
    opts.ops_per_core *= scale;
    let results = sweep_apps(&["mesh", "fsoi"], opts);
    println!(
        "  {:<6} {:>9} {:>9} {:>9} {:>9}   {:>9}",
        "app", "net", "core", "leak", "total", "net ratio"
    );
    let mut totals = Vec::new();
    let mut net_ratios = Vec::new();
    for r in &results {
        let mesh_e = &r.reports[0].energy;
        let fsoi_e = &r.reports[1].energy;
        let rel = |x: f64| 100.0 * x / mesh_e.total_j();
        totals.push(fsoi_e.total_j() / mesh_e.total_j());
        net_ratios.push(mesh_e.network_j / fsoi_e.network_j.max(1e-12));
        println!(
            "  {:<6} {:>8.1}% {:>8.1}% {:>8.1}% {:>8.1}%   {:>8.1}x",
            r.app,
            rel(fsoi_e.network_j),
            rel(fsoi_e.core_j),
            rel(fsoi_e.leakage_j),
            rel(fsoi_e.total_j()),
            mesh_e.network_j / fsoi_e.network_j.max(1e-12)
        );
    }
    let avg_total = totals.iter().sum::<f64>() / totals.len() as f64;
    let avg_ratio = net_ratios.iter().sum::<f64>() / net_ratios.len() as f64;
    println!(
        "  avg FSOI energy = {:.1}% of mesh (paper: 59.4%, i.e. 40.6% savings); network energy ratio = {:.0}x (paper: ~20x)",
        100.0 * avg_total,
        avg_ratio
    );
}

// ---------------------------------------------------------------- Figure 9

fn fig9(scale: u64) {
    header("Figure 9: meta-lane collisions with/without confirmation-as-ack");
    let mut opts = SweepOptions::quick_16();
    opts.ops_per_core *= scale;
    println!(
        "  {:<6} {:>10} {:>10} | {:>10} {:>10}   (optimized | baseline)",
        "app", "p(tx)", "coll", "p(tx)", "coll"
    );
    let mut meta_with = 0.0;
    let mut meta_without = 0.0;
    let mut pk_with = 0u64;
    let mut pk_without = 0u64;
    let baseline = SweepOptions {
        optimizations: false,
        ..opts
    };
    let cells: Vec<CellSpec> = AppProfile::suite()
        .into_iter()
        .flat_map(|app| {
            [
                CellSpec::new(app, "fsoi", opts),
                CellSpec::new(app, "fsoi", baseline),
            ]
        })
        .collect();
    let reports = run_cells(&cells);
    for (app, pair) in AppProfile::suite().into_iter().zip(reports.chunks(2)) {
        let (with, without) = (&pair[0], &pair[1]);
        meta_with += with.meta_collision_rate;
        meta_without += without.meta_collision_rate;
        pk_with += with.packets_sent[0] + with.packets_sent[1];
        pk_without += without.packets_sent[0] + without.packets_sent[1];
        println!(
            "  {:<6} {:>9.2}% {:>9.2}% | {:>9.2}% {:>9.2}%",
            app.name,
            100.0 * with.meta_tx_probability,
            100.0 * with.meta_collision_rate,
            100.0 * without.meta_tx_probability,
            100.0 * without.meta_collision_rate,
        );
    }
    let n = AppProfile::suite().len() as f64;
    println!(
        "  avg meta collision rate: {:.2}% optimized vs {:.2}% baseline ({:.1}% fewer collisions; paper: −31.5%)",
        100.0 * meta_with / n,
        100.0 * meta_without / n,
        100.0 * (1.0 - meta_with / meta_without.max(1e-12))
    );
    println!(
        "  total packets: {:.1}% fewer with optimization (paper: −5.1%)",
        100.0 * (1.0 - pk_with as f64 / pk_without.max(1) as f64)
    );
}

// --------------------------------------------------------------- Figure 10

fn fig10(scale: u64) {
    header("Figure 10: data-lane collision breakdown, with/without §5.2 optimizations");
    let mut opts = SweepOptions::quick_16();
    opts.ops_per_core *= scale;
    println!(
        "  {:<6} | {:>8} {:>8} {:>8} {:>8} {:>7} | {:>7}",
        "app", "memory", "reply", "wback", "retrans", "rate+", "rate-"
    );
    let mut with_rates = Vec::new();
    let mut without_rates = Vec::new();
    // Disable hints + spacing (network-level §5.2 knobs).
    let stripped = fsoi_net::config::FsoiConfig::nodes(16)
        .with_hints(false)
        .with_request_spacing(false);
    let cells: Vec<CellSpec> = AppProfile::suite()
        .into_iter()
        .flat_map(|app| {
            [
                CellSpec::new(app, "fsoi", opts),
                CellSpec {
                    app,
                    network: fsoi_cmp::configs::NetworkKind::Fsoi(stripped.clone()),
                    opts,
                },
            ]
        })
        .collect();
    let reports = run_cells(&cells);
    for (app, pair) in AppProfile::suite().into_iter().zip(reports.chunks(2)) {
        let (with, without) = (&pair[0], &pair[1]);
        let total: u64 = with.collided_by_kind.iter().take(3).sum();
        let pct = |x: u64| {
            if total == 0 {
                0.0
            } else {
                100.0 * x as f64 / total as f64
            }
        };
        with_rates.push(with.data_collision_rate);
        without_rates.push(without.data_collision_rate);
        println!(
            "  {:<6} | {:>7.1}% {:>7.1}% {:>7.1}% {:>7.1}% {:>6.1}% | {:>6.1}%",
            app.name,
            pct(with.collided_by_kind[0]),
            pct(with.collided_by_kind[1]),
            pct(with.collided_by_kind[2]),
            pct(with.collided_by_kind[3]),
            100.0 * with.data_collision_rate,
            100.0 * without.data_collision_rate,
        );
    }
    let avg = |v: &[f64]| 100.0 * v.iter().sum::<f64>() / v.len() as f64;
    println!(
        "  avg data collision rate: {:.1}% with optimizations vs {:.1}% without (paper: 5.8% vs 9.4%)",
        avg(&with_rates),
        avg(&without_rates)
    );
}

// --------------------------------------------------------------- Figure 11

fn fig11(scale: u64) {
    header("Figure 11: performance vs relative bandwidth (100% → 50%)");
    let mut opts = SweepOptions::quick_16();
    opts.ops_per_core *= scale;
    // Subset of apps for the sweep (the paper plots the average).
    let apps: Vec<AppProfile> = ["oc", "rx", "em", "mp", "fft", "ray"]
        .iter()
        .map(|n| AppProfile::by_name(n).unwrap())
        .collect();
    println!(
        "  {:>10} {:>12} {:>12}",
        "bandwidth", "FSOI perf", "mesh perf"
    );
    let fracs = [1.0, 0.9, 0.8, 0.7, 0.6, 0.5];
    let mut fsoi_base = 0.0;
    let mut mesh_base = 0.0;
    for (i, &f) in fracs.iter().enumerate() {
        // FSOI: scale the lane widths from the Fig-11 base configuration.
        let lanes = fsoi_net::lane::Lanes::fig11_base().scaled_bandwidth(f);
        let cfg = fsoi_net::config::FsoiConfig::nodes(16).with_lanes(lanes);
        let fsoi_cycles: f64 = apps
            .iter()
            .map(|a| {
                run_app(*a, fsoi_cmp::configs::NetworkKind::Fsoi(cfg.clone()), opts).cycles as f64
            })
            .sum();
        // Mesh: links narrowed to the same fraction — packets serialize
        // into proportionally more flits.
        let mesh_cycles: f64 = apps
            .iter()
            .map(|a| run_mesh_scaled(*a, f, opts) as f64)
            .sum();
        if i == 0 {
            fsoi_base = fsoi_cycles;
            mesh_base = mesh_cycles;
        }
        println!(
            "  {:>9.0}% {:>11.3} {:>11.3}",
            f * 100.0,
            fsoi_base / fsoi_cycles,
            mesh_base / mesh_cycles
        );
    }
    println!("  (paper: both degrade; FSOI is the less sensitive of the two)");
}

/// Runs an app on a mesh whose links are narrowed to `fraction` of the
/// baseline width (packets serialize into proportionally more flits).
fn run_mesh_scaled(app: AppProfile, fraction: f64, opts: SweepOptions) -> u64 {
    use fsoi_cmp::configs::{NetworkKind, SystemConfig};
    use fsoi_cmp::system::CmpSystem;
    let mut app = app;
    app.ops_per_core = opts.ops_per_core;
    let mesh = fsoi_mesh::config::MeshConfig::nodes(opts.nodes);
    let cfg = SystemConfig::paper_16(NetworkKind::MeshScaled(mesh, fraction))
        .with_mem_bandwidth(opts.mem_gb_per_s)
        .with_optimizations(opts.optimizations)
        .with_seed(opts.seed);
    CmpSystem::new(cfg, app)
        .run(fsoi_bench::runner::MAX_CYCLES)
        .cycles
}

// ---------------------------------------------------------------- Table 4

fn table4(scale: u64) {
    header("Table 4: impact of off-chip memory bandwidth (8.8 vs 52.8 GB/s)");
    for nodes in [16usize, 64] {
        let mut opts = SweepOptions::for_nodes(nodes);
        opts.ops_per_core *= scale;
        println!("  {nodes}-core system");
        println!(
            "  {:<24} {:>10} {:>10}",
            "speedup over mesh", "8.8 GB/s", "52.8 GB/s"
        );
        // One flat cell list per node count: bw-major, then network, then
        // app — the mesh baseline is simulated once per bandwidth point.
        let nets = ["mesh", "fsoi", "L0", "Lr1", "Lr2"];
        let napps = AppProfile::suite().len();
        let mut cells = Vec::new();
        for bw in [8.8, 52.8] {
            let mut o = opts;
            o.mem_gb_per_s = bw;
            for net in nets {
                for app in AppProfile::suite() {
                    cells.push(CellSpec::new(app, net, o));
                }
            }
        }
        let reports = run_cells(&cells);
        let cycles = |bw_i: usize, net_i: usize, app_i: usize| {
            reports[bw_i * nets.len() * napps + net_i * napps + app_i].cycles
        };
        for (net_i, net) in nets.iter().enumerate().skip(1) {
            let mut cols = Vec::new();
            for bw_i in 0..2 {
                let speeds: Vec<f64> = (0..napps)
                    .map(|a| cycles(bw_i, 0, a) as f64 / cycles(bw_i, net_i, a) as f64)
                    .collect();
                cols.push(geometric_mean(&speeds).unwrap_or(0.0));
            }
            println!("  {:<24} {:>10.2} {:>10.2}", net, cols[0], cols[1]);
        }
    }
    println!("  (paper 16-core FSOI: 1.32 / 1.36; 64-core FSOI: 1.61 / 1.75)");
}

// --------------------------------------------------------------- B_M study

fn bm() {
    header("§4.3.2: meta/data bandwidth allocation — optimum B_M");
    let model = BandwidthAllocationModel::paper_default();
    println!("  {:>6} {:>12}", "B_M", "latency (au)");
    for i in 1..20 {
        let b = i as f64 * 0.05;
        println!("  {b:>6.2} {:>12.3}", model.latency(b));
    }
    println!(
        "  optimum B_M = {:.3} (paper: 0.285) → integer split of 9 VCSELs = {:?} (paper: 3 meta / 6 data)",
        model.optimal_bm(),
        model.integer_split(9)
    );
}

// ------------------------------------------------------------------- §7.3

fn opts(scale: u64) {
    header("§7.3: optimization effectiveness summary");
    let mut o = SweepOptions::quick_16();
    o.ops_per_core *= scale;
    // Hints: resolution delay and accuracy on a contended app.
    let app = AppProfile::by_name("mp").unwrap();
    let with = run_app(app, network_by_name("fsoi", 16), o);
    let no_hints = {
        let cfg = fsoi_net::config::FsoiConfig::nodes(16).with_hints(false);
        run_app(app, fsoi_cmp::configs::NetworkKind::Fsoi(cfg), o)
    };
    println!(
        "  hint accuracy          = {:.1}%   (paper: 94%)",
        100.0 * with.hint_accuracy
    );
    println!(
        "  wrong-winner rate      = {:.1}%   (paper: 2.3%)",
        100.0 * with.hint_wrong_rate
    );
    println!(
        "  data resolution delay  = {:.1} cycles with hints vs {:.1} without (paper: 29 vs 41)",
        with.data_resolution_delay, no_hints.data_resolution_delay
    );
    // Subscriptions: speedup on sync-heavy apps.
    let sync_apps = ["ba", "ro", "ray", "ws", "fmm", "ilink", "tsp"];
    let mut speeds = Vec::new();
    let mut saved = 0u64;
    for name in sync_apps {
        let a = AppProfile::by_name(name).unwrap();
        let on = run_app(a, network_by_name("fsoi", 16), o);
        let off = run_app(
            a,
            network_by_name("fsoi", 16),
            SweepOptions {
                optimizations: false,
                ..o
            },
        );
        speeds.push(off.cycles as f64 / on.cycles as f64);
        saved += on.subscription_packets_saved;
    }
    println!(
        "  sync apps speedup from §5.1 = {:.2} (paper: 1.07); packets saved = {saved}",
        geometric_mean(&speeds).unwrap_or(0.0)
    );
}

// ----------------------------------------------------------------- corona

/// §7.1's one-liner: "the system is 1.06 times faster than a corona-style
/// design in a 64-way system."
fn corona(scale: u64) {
    header("§7.1: FSOI vs a corona-style WDM token-ring crossbar (64 nodes)");
    let mut opts = SweepOptions::quick_64();
    opts.ops_per_core *= scale;
    let mut speeds = Vec::new();
    println!(
        "  {:<6} {:>10} {:>10} {:>8} {:>10} {:>10}",
        "app", "fsoi cyc", "ring cyc", "ratio", "fsoi lat", "ring lat"
    );
    let cells: Vec<CellSpec> = AppProfile::suite()
        .into_iter()
        .flat_map(|app| {
            [
                CellSpec::new(app, "fsoi", opts),
                CellSpec {
                    app,
                    network: fsoi_cmp::configs::NetworkKind::ring(64),
                    opts,
                },
            ]
        })
        .collect();
    let reports = run_cells(&cells);
    for (app, pair) in AppProfile::suite().into_iter().zip(reports.chunks(2)) {
        let (f, r) = (&pair[0], &pair[1]);
        let ratio = r.cycles as f64 / f.cycles as f64;
        speeds.push(ratio);
        println!(
            "  {:<6} {:>10} {:>10} {:>8.3} {:>10.1} {:>10.1}",
            app.name,
            f.cycles,
            r.cycles,
            ratio,
            f.mean_packet_latency(),
            r.mean_packet_latency()
        );
    }
    println!(
        "  geomean FSOI-over-ring speedup = {:.2}  (paper: 1.06)",
        geometric_mean(&speeds).unwrap_or(0.0)
    );
}

// --------------------------------------------------------------------- L1

/// §7.1's "Impact of L1 cache size": with realistic 32 KB L1s the miss
/// rates halve and the FSOI speedup dips (paper: 1.36 → 1.27 at 16 nodes)
/// without changing any qualitative conclusion.
fn l1_sensitivity(scale: u64) {
    header("§7.1: impact of L1 cache size (8 KB scaled vs 32 KB realistic)");
    let mut o = SweepOptions::quick_16();
    o.ops_per_core *= scale;
    for (label, lines) in [("8 KB (paper default)", 256usize), ("32 KB", 1024)] {
        let mut speeds = Vec::new();
        let mut miss = 0.0;
        for app in AppProfile::suite() {
            let run = |kind| {
                let mut a = app;
                a.ops_per_core = o.ops_per_core;
                let mut cfg = fsoi_cmp::configs::SystemConfig::paper_16(kind).with_seed(o.seed);
                cfg.l1_lines = lines;
                fsoi_cmp::system::CmpSystem::new(cfg, a).run(fsoi_bench::runner::MAX_CYCLES)
            };
            let mesh = run(fsoi_cmp::configs::NetworkKind::mesh(16));
            let fsoi = run(fsoi_cmp::configs::NetworkKind::fsoi(16));
            speeds.push(mesh.cycles as f64 / fsoi.cycles as f64);
            miss += fsoi.l1_miss_rate;
        }
        println!(
            "  {label:<22}: FSOI speedup gmean {:.2}, avg miss rate {:.1}%",
            geometric_mean(&speeds).unwrap_or(0.0),
            100.0 * miss / 16.0
        );
    }
    println!("  (paper: 1.36 → 1.27; average miss 4.8% → 3.0%)");
    println!("  NOTE: our synthetic reference process carries little");
    println!("  L1-capacity-sensitive mass (misses are streaming, sharing and");
    println!("  cold accesses), so the dip does not reproduce — a known limit");
    println!("  of substitution 1 in DESIGN.md.");
}

// -------------------------------------------------------------------- BER

/// §4.3.1: "once we accept collisions … the bit error rates of the
/// signaling chain can be relaxed significantly (from 1e-10 to, say,
/// 1e-5) without any tangible impact on performance."
fn ber_relaxation(scale: u64) {
    header("§4.3.1: relaxing the link BER (errors ride the collision machinery)");
    let mut o = SweepOptions::quick_16();
    o.ops_per_core *= scale;
    let apps = ["ba", "oc", "mp", "fft"];
    println!(
        "  {:>9} {:>12} {:>14}",
        "BER", "cycles (sum)", "error drops"
    );
    let mut base = 0.0;
    for &ber in &[1e-10f64, 1e-6, 1e-5, 1e-4] {
        let mut cycles = 0u64;
        let mut drops = 0u64;
        for name in apps {
            let mut app = AppProfile::by_name(name).unwrap();
            app.ops_per_core = o.ops_per_core;
            let cfg = fsoi_net::config::FsoiConfig::nodes(16).with_bit_error_rate(ber);
            let sys_cfg = fsoi_cmp::configs::SystemConfig::paper_16(
                fsoi_cmp::configs::NetworkKind::Fsoi(cfg),
            )
            .with_seed(o.seed);
            let mut sys = fsoi_cmp::system::CmpSystem::new(sys_cfg, app);
            let r = sys.run(fsoi_bench::runner::MAX_CYCLES);
            cycles += r.cycles;
            drops += r.bit_error_drops;
        }
        if base == 0.0 {
            base = cycles as f64;
        }
        println!(
            "  {ber:>9.0e} {cycles:>12} {drops:>14}   (slowdown {:+.2}%)",
            100.0 * (cycles as f64 / base - 1.0)
        );
    }
    println!("  (paper: relaxation to 1e-5 has no tangible performance impact)");
}

// -------------------------------------------------------------- receivers

/// §4.3.1 structuring step 1: "having a few (e.g., 2-3) receivers per
/// node is a good option. Further increasing the number will lead to
/// diminishing returns." Full-system ablation over R = 1..4.
fn receivers(scale: u64) {
    header("§4.3.1: receivers per lane — full-system ablation (R = 1..4)");
    let mut o = SweepOptions::quick_16();
    o.ops_per_core *= scale;
    let apps = ["mp", "rx", "oc", "ro"];
    println!(
        "  {:>3} {:>12} {:>12} {:>12}",
        "R", "cycles (sum)", "meta coll%", "data coll%"
    );
    // R-major cell list: every (R, app) pair is an independent cell.
    let mut cells = Vec::new();
    for r in 1..=4usize {
        let mut lanes = fsoi_net::lane::Lanes::paper_default();
        lanes.meta.receivers = r;
        lanes.data.receivers = r;
        let cfg = fsoi_net::config::FsoiConfig::nodes(16).with_lanes(lanes);
        for name in apps {
            cells.push(CellSpec {
                app: AppProfile::by_name(name).unwrap(),
                network: fsoi_cmp::configs::NetworkKind::Fsoi(cfg.clone()),
                opts: o,
            });
        }
    }
    let reports = run_cells(&cells);
    let mut prev_cycles = 0u64;
    for (ri, row) in reports.chunks(apps.len()).enumerate() {
        let r = ri + 1;
        let (mut cyc, mut mc, mut dc) = (0u64, 0.0, 0.0);
        for rep in row {
            cyc += rep.cycles;
            mc += rep.meta_collision_rate;
            dc += rep.data_collision_rate;
        }
        let n = apps.len() as f64;
        let delta = if prev_cycles == 0 {
            String::new()
        } else {
            format!(
                "  ({:+.1}% vs R-1)",
                100.0 * (cyc as f64 / prev_cycles as f64 - 1.0)
            )
        };
        println!(
            "  {r:>3} {cyc:>12} {:>11.2}% {:>11.2}%{delta}",
            100.0 * mc / n,
            100.0 * dc / n
        );
        prev_cycles = cyc;
    }
    println!("  (paper: collisions fall ~1/R; beyond 2-3 receivers, diminishing returns)");
}

// --------------------------------------------------------------- snapshot

/// Dumps the full metric registry for the Figure 6 16-node runs, first as
/// the aligned human-readable table, then as JSONL. Every number in the
/// performance tables flows through `RunReport::export`, so regenerated
/// EXPERIMENTS.md figures and these snapshots can never disagree.
fn snapshot(scale: u64) {
    header("snapshot: metric registry for the Figure 6 16-node runs");
    let mut opts = SweepOptions::quick_16();
    opts.ops_per_core *= scale;
    let results = sweep_apps(&["mesh", "fsoi"], opts);
    let mut reg = fsoi_sim::metrics::Registry::new();
    for r in &results {
        for report in &r.reports {
            report.export(&mut reg);
        }
    }
    print!("{}", reg.to_table());
    println!("\n--- JSONL ---");
    print!("{}", reg.to_jsonl());
}

// ------------------------------------------------------------------ bench

/// Runs the sweep benchmark and writes the schema-versioned JSON report
/// (see `fsoi_bench::sweepbench`). Exits nonzero if any parallel run's
/// merged export differed from the serial fold.
fn bench(args: &[String]) {
    header("bench: default-sweep wall time, throughput and thread scaling");
    let mut out_path = String::from("BENCH_sweep.json");
    let mut threads = default_bench_threads();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                out_path = args
                    .get(i + 1)
                    .unwrap_or_else(|| {
                        eprintln!("bench: --out needs a path");
                        std::process::exit(2);
                    })
                    .clone();
                i += 2;
            }
            "--threads" => {
                let list = args.get(i + 1).unwrap_or_else(|| {
                    eprintln!("bench: --threads needs a comma list, e.g. 1,2,8");
                    std::process::exit(2);
                });
                threads = list
                    .split(',')
                    .map(|t| {
                        t.trim().parse().unwrap_or_else(|_| {
                            eprintln!("bench: bad thread count {t:?}");
                            std::process::exit(2);
                        })
                    })
                    .collect();
                i += 2;
            }
            "--full" => i += 1,
            other => {
                eprintln!("bench: unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    if threads.first() != Some(&1) {
        threads.insert(0, 1); // speedups are relative to the serial run
    }
    println!(
        "  host cpus: {}; thread counts: {threads:?}",
        fsoi_bench::sweepbench::host_cpus()
    );
    let opts = SweepOptions::quick_16();
    let networks = ["mesh", "fsoi", "L0", "Lr1", "Lr2"];
    println!(
        "  sweep: {} apps x {} networks = {} cells (ops/core {}, seed {})",
        AppProfile::suite().len(),
        networks.len(),
        AppProfile::suite().len() * networks.len(),
        opts.ops_per_core,
        opts.seed
    );
    let report = fsoi_bench::sweepbench::run(opts, &networks, &threads);
    println!(
        "  {:>7} {:>12} {:>12} {:>8}",
        "threads", "wall ms", "cells/sec", "speedup"
    );
    for p in &report.scaling {
        println!(
            "  {:>7} {:>12.1} {:>12.2} {:>8.2}",
            p.threads, p.wall_ms, p.cells_per_sec, p.speedup
        );
    }
    println!(
        "  phases: build {:.2} ms, merge {:.2} ms; byte-identical: {}",
        report.build_ms, report.merge_ms, report.byte_identical
    );
    println!(
        "  sim throughput: {:.1} Mcycles/sec ({} cycles); cell ms min/mean/max {:.1}/{:.1}/{:.1}",
        report.sim_cycles_per_sec() / 1e6,
        report.sim_cycles_total,
        report.cell_ms_min(),
        report.cell_ms_mean(),
        report.cell_ms_max()
    );
    if let Err(e) = std::fs::write(&out_path, report.render_json()) {
        eprintln!("bench: cannot write {out_path}: {e}");
        std::process::exit(2);
    }
    println!("  wrote {out_path}");
    if !report.byte_identical {
        eprintln!("bench: FAIL — parallel merged export diverged from the serial fold");
        std::process::exit(1);
    }
}

// ------------------------------------------------------------------- grid

/// One cell's exported metric registry as sorted JSONL — the byte-level
/// identity the grid compares across worker counts.
fn cell_export(r: &fsoi_cmp::metrics::RunReport) -> String {
    let mut reg = fsoi_sim::metrics::Registry::new();
    r.export(&mut reg);
    reg.to_jsonl()
}

/// Beyond-the-paper design-space grid (fig6/fig7-style rows at sizes the
/// paper never evaluated): every requested application on every
/// requested network at one node count. Three properties are asserted,
/// not just printed:
///
/// * every cell completes within the cycle bound with positive latency,
///   energy and traffic (the shape class a healthy run must land in);
/// * `nodes > 16` grids use the phase-array transmitter (a dedicated
///   VCSEL per destination stops scaling past 16);
/// * each cell's exported registry is byte-identical across worker
///   counts {1, 2, 8} — the determinism contract, checked at the grid
///   sizes rather than assumed from the 16-node tests.
fn grid(args: &[String]) {
    let mut nodes = 64usize;
    let mut ops_override: Option<u64> = None;
    let mut apps_arg = String::from("ba,oc,mp,fft");
    let mut networks_arg = String::from("fsoi,mesh,ring,crossbar");
    let mut out_path: Option<String> = None;
    let mut i = 0;
    let take = |args: &[String], i: usize, flag: &str| -> String {
        args.get(i + 1)
            .unwrap_or_else(|| {
                eprintln!("grid: {flag} needs a value");
                std::process::exit(2);
            })
            .clone()
    };
    while i < args.len() {
        match args[i].as_str() {
            "--nodes" => {
                let v = take(args, i, "--nodes");
                nodes = v.parse().unwrap_or_else(|_| {
                    eprintln!("grid: bad node count {v:?}");
                    std::process::exit(2);
                });
                i += 2;
            }
            "--ops" => {
                let v = take(args, i, "--ops");
                ops_override = Some(v.parse().unwrap_or_else(|_| {
                    eprintln!("grid: bad ops count {v:?}");
                    std::process::exit(2);
                }));
                i += 2;
            }
            "--apps" => {
                apps_arg = take(args, i, "--apps");
                i += 2;
            }
            "--networks" => {
                networks_arg = take(args, i, "--networks");
                i += 2;
            }
            "--out" => {
                out_path = Some(take(args, i, "--out"));
                i += 2;
            }
            "--full" => i += 1,
            other => {
                eprintln!("grid: unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    header(&format!(
        "grid: {nodes}-node design-space grid over {networks_arg}"
    ));
    let mut opts = SweepOptions::for_nodes(nodes);
    if let Some(ops) = ops_override {
        opts.ops_per_core = ops;
    }
    if nodes > 16 {
        match network_by_name("fsoi", nodes) {
            fsoi_cmp::configs::NetworkKind::Fsoi(cfg) => assert!(
                matches!(
                    cfg.array,
                    fsoi_net::config::TransmitterArray::PhaseArray { .. }
                ),
                "grid sizes beyond 16 nodes must select the phase-array transmitter"
            ),
            _ => unreachable!("network_by_name(\"fsoi\") builds an FSOI config"),
        }
    }
    let networks: Vec<String> = networks_arg.split(',').map(|s| s.trim().into()).collect();
    let apps: Vec<AppProfile> = apps_arg
        .split(',')
        .map(|n| {
            AppProfile::by_name(n.trim()).unwrap_or_else(|| {
                eprintln!("grid: unknown app {n:?}");
                std::process::exit(2);
            })
        })
        .collect();
    let cells: Vec<CellSpec> = apps
        .iter()
        .flat_map(|app| {
            networks
                .iter()
                .map(|net| CellSpec::new(*app, net, opts))
                .collect::<Vec<_>>()
        })
        .collect();
    let thread_counts = [1usize, 2, 8];
    println!(
        "  {} apps x {} networks = {} cells (ops/core {}, seed {}); worker counts {thread_counts:?}",
        apps.len(),
        networks.len(),
        cells.len(),
        opts.ops_per_core,
        opts.seed
    );

    let mut exports: Vec<Vec<String>> = Vec::new();
    let mut reports_by_threads = Vec::new();
    for &t in &thread_counts {
        let reports = run_cells_threads(&cells, t);
        exports.push(reports.iter().map(cell_export).collect());
        reports_by_threads.push(reports);
    }
    let byte_identical = exports[1..].iter().all(|e| *e == exports[0]);
    let reports = &reports_by_threads[0];

    println!(
        "  {:<6} {:<9} {:>10} {:>9} {:>11} {:>11} {:>9}",
        "app", "network", "cycles", "lat cyc", "net uJ", "total uJ", "packets"
    );
    let mut lines = Vec::new();
    for (ci, (cell, r)) in cells.iter().zip(reports).enumerate() {
        let app = cell.app.name;
        let net = cell.network.name();
        let packets: u64 = r.packets_sent.iter().sum();
        let lat = r.mean_packet_latency();
        // Shape-class pins: a healthy cell completes inside the cycle
        // bound and reports positive latency, energy and traffic.
        assert!(
            r.cycles > 0 && r.cycles < MAX_CYCLES,
            "cell {ci} ({app}/{net}) did not complete: {} cycles",
            r.cycles
        );
        assert!(
            lat.is_finite() && lat > 0.0,
            "cell {ci} ({app}/{net}) has degenerate latency {lat}"
        );
        assert!(
            r.energy.total_j().is_finite() && r.energy.total_j() > 0.0,
            "cell {ci} ({app}/{net}) has degenerate energy"
        );
        assert!(packets > 0, "cell {ci} ({app}/{net}) moved no packets");
        println!(
            "  {:<6} {:<9} {:>10} {:>9.1} {:>11.2} {:>11.2} {:>9}",
            app,
            net,
            r.cycles,
            lat,
            r.energy.network_j * 1e6,
            r.energy.total_j() * 1e6,
            packets
        );
        lines.push(format!(
            "cell app={app} net={net} cycles={} latency={lat:.3} network_j={:.6e} total_j={:.6e} packets={packets}",
            r.cycles, r.energy.network_j, r.energy.total_j()
        ));
    }
    // Cross-network shape pins, where both baselines are in the grid:
    // the tokenless crossbar always beats Corona on latency (one
    // arbitration cycle vs waiting for the token), and once the radix is
    // large its worst-case-loss laser sizing makes it out-spend Corona
    // by orders of magnitude (the crossover sits between 64 and 256
    // ports: ~17 dB of worst-case loss at 64 is still affordable, ~65 dB
    // at 256 is not).
    if networks.iter().any(|n| n == "crossbar") && networks.iter().any(|n| n == "ring") {
        let cell = |app_i: usize, name: &str| {
            let net_i = networks.iter().position(|n| n == name).unwrap();
            &reports[app_i * networks.len() + net_i]
        };
        for (app_i, app) in apps.iter().enumerate() {
            assert!(
                cell(app_i, "crossbar").mean_packet_latency()
                    < cell(app_i, "ring").mean_packet_latency(),
                "tokenless crossbar should beat Corona's latency on {} at {nodes} nodes",
                app.name
            );
            if nodes >= 256 {
                assert!(
                    cell(app_i, "crossbar").energy.network_j
                        > 100.0 * cell(app_i, "ring").energy.network_j,
                    "worst-case-loss crossbar should out-spend Corona 100x on {} at {nodes} nodes",
                    app.name
                );
            }
        }
        println!("  ok shape: crossbar beats Corona on latency on every app");
        if nodes >= 256 {
            println!("  ok shape: crossbar network energy exceeds 100x Corona's on every app");
        }
    }
    println!(
        "  ok shape: all {} cells completed with positive latency, energy and traffic",
        cells.len()
    );
    println!("  byte-identical across workers {thread_counts:?}: {byte_identical}");

    if let Some(path) = &out_path {
        let mut summary = String::from("fsoi-grid/v1\n");
        summary.push_str(&format!("nodes {nodes}\n"));
        summary.push_str(&format!("ops_per_core {}\n", opts.ops_per_core));
        summary.push_str(&format!("seed {}\n", opts.seed));
        summary.push_str(&format!("networks {}\n", networks.join(",")));
        summary.push_str(&format!(
            "apps {}\n",
            apps.iter().map(|a| a.name).collect::<Vec<_>>().join(",")
        ));
        summary.push_str(&format!(
            "threads {}\n",
            thread_counts.map(|t| t.to_string()).join(",")
        ));
        summary.push_str(&format!("byte_identical {byte_identical}\n"));
        for line in &lines {
            summary.push_str(line);
            summary.push('\n');
        }
        if let Err(e) = std::fs::write(path, summary) {
            eprintln!("grid: cannot write {path}: {e}");
            std::process::exit(2);
        }
        println!("  wrote {path}");
    }
    if !byte_identical {
        eprintln!("grid: FAIL — a cell's export diverged across worker counts");
        std::process::exit(1);
    }
}

// ---------------------------------------------------------------- profile

/// Runs the standard 80-cell sweep (16 apps × 5 networks at
/// `quick_16`) under both harness observability planes and writes the
/// versioned run manifest. The `deterministic` section — span profile,
/// merged-registry size, content hash — is a pure function of the cell
/// list and is byte-identical for any `FSOI_THREADS`; the `telemetry`
/// section (worker/steal/phase/cache counters) is wall-clock data and
/// deliberately excluded from byte-identity gates.
fn profile(args: &[String]) {
    header("profile: harness observability over the standard 80-cell sweep");
    let mut out_path = String::from("RUN_manifest.json");
    let mut det_path: Option<String> = None;
    let mut ops_override: Option<u64> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                out_path = args
                    .get(i + 1)
                    .unwrap_or_else(|| {
                        eprintln!("profile: --out needs a path");
                        std::process::exit(2);
                    })
                    .clone();
                i += 2;
            }
            "--det" => {
                det_path = Some(
                    args.get(i + 1)
                        .unwrap_or_else(|| {
                            eprintln!("profile: --det needs a path");
                            std::process::exit(2);
                        })
                        .clone(),
                );
                i += 2;
            }
            "--ops" => {
                let n = args.get(i + 1).unwrap_or_else(|| {
                    eprintln!("profile: --ops needs a count");
                    std::process::exit(2);
                });
                ops_override = Some(n.parse().unwrap_or_else(|_| {
                    eprintln!("profile: bad ops count {n:?}");
                    std::process::exit(2);
                }));
                i += 2;
            }
            "--full" => i += 1,
            other => {
                eprintln!("profile: unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    fsoi_sim::telemetry::reset();
    fsoi_sim::telemetry::set_enabled(true);
    let mut opts = SweepOptions::quick_16();
    if let Some(ops) = ops_override {
        opts.ops_per_core = ops;
    }
    let networks = ["mesh", "fsoi", "L0", "Lr1", "Lr2"];
    let cells = suite_cells(&networks, opts);
    let threads = fsoi_sim::par::thread_count();
    println!(
        "  sweep: {} cells (ops/core {}, seed {}), {} worker threads",
        cells.len(),
        opts.ops_per_core,
        opts.seed,
        threads
    );

    // The content-addressed identity of the run: the same preimage
    // inputs the cell cache keys on, hashed over every cell in order.
    let mut key_bytes = String::new();
    for cell in &cells {
        let bc = cell.to_batch_cell();
        key_bytes.push_str(&format!("{:?}|{:?}|{MAX_CYCLES}\n", bc.config, bc.app));
    }
    let config_hash = fsoi_cmp::cache::fnv1a64(key_bytes.as_bytes());

    let (reports, profile) = run_cells_threads_profiled(&cells, threads);
    let registry = fsoi_cmp::batch::merge_reports(&reports);
    let snap = fsoi_sim::telemetry::snapshot();
    fsoi_sim::telemetry::set_enabled(false);

    // Deterministic-plane bytes: the span profile plus the merged
    // registry, both in sorted JSONL. `scripts/verify.sh` byte-compares
    // this file across FSOI_THREADS values.
    let det_bytes = format!("{}{}", profile.to_jsonl(), registry.to_jsonl());
    let det_hash = fsoi_cmp::cache::fnv1a64(det_bytes.as_bytes());
    if let Some(path) = &det_path {
        if let Err(e) = std::fs::write(path, &det_bytes) {
            eprintln!("profile: cannot write {path}: {e}");
            std::process::exit(2);
        }
        println!("  wrote deterministic-plane export to {path}");
    }

    let manifest = render_manifest(
        &opts,
        &networks,
        cells.len(),
        config_hash,
        &profile,
        registry.len(),
        det_hash,
        threads,
        &snap,
    );
    if let Err(e) = std::fs::write(&out_path, manifest) {
        eprintln!("profile: cannot write {out_path}: {e}");
        std::process::exit(2);
    }
    println!("  wrote {out_path}\n");
    println!("deterministic span profile:");
    for line in profile.to_tree().lines() {
        println!("  {line}");
    }
    println!();
    print!("{}", snap.to_table());
}

/// Renders the `fsoi-run-manifest/v1` JSON document (hand-rolled, no
/// JSON dependency; one key per line, stable field order).
#[allow(clippy::too_many_arguments)]
fn render_manifest(
    opts: &SweepOptions,
    networks: &[&str],
    cells: usize,
    config_hash: u64,
    profile: &fsoi_sim::profile::Profile,
    registry_metrics: usize,
    det_hash: u64,
    threads: usize,
    snap: &fsoi_sim::telemetry::Snapshot,
) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"fsoi-run-manifest/v1\",\n");
    out.push_str("  \"config\": {\n");
    let _ = writeln!(out, "    \"cells\": {cells},");
    let _ = writeln!(out, "    \"networks\": \"{}\",", networks.join(","));
    let _ = writeln!(out, "    \"nodes\": {},", opts.nodes);
    let _ = writeln!(out, "    \"ops_per_core\": {},", opts.ops_per_core);
    let _ = writeln!(out, "    \"mem_gb_per_s\": {:?},", opts.mem_gb_per_s);
    let _ = writeln!(out, "    \"optimizations\": {},", opts.optimizations);
    let _ = writeln!(out, "    \"seed\": {},", opts.seed);
    let _ = writeln!(out, "    \"max_cycles\": {MAX_CYCLES},");
    let _ = writeln!(out, "    \"config_hash\": \"{config_hash:016x}\"");
    out.push_str("  },\n");
    // Build identity without reaching for git: the package version and
    // build profile fully identify a released binary, and omitting VCS
    // state keeps the manifest reproducible from a bare source tarball.
    out.push_str("  \"build\": {\n");
    let _ = writeln!(out, "    \"package\": \"{}\",", env!("CARGO_PKG_NAME"));
    let _ = writeln!(out, "    \"version\": \"{}\",", env!("CARGO_PKG_VERSION"));
    let _ = writeln!(out, "    \"debug_assertions\": {}", cfg!(debug_assertions));
    out.push_str("  },\n");
    out.push_str("  \"deterministic\": {\n");
    out.push_str("    \"spans\": {\n");
    let n_spans = profile.len();
    for (i, (path, count)) in profile.iter().enumerate() {
        let comma = if i + 1 == n_spans { "" } else { "," };
        let _ = writeln!(out, "      \"{path}\": {count}{comma}");
    }
    out.push_str("    },\n");
    let _ = writeln!(out, "    \"registry_metrics\": {registry_metrics},");
    let _ = writeln!(out, "    \"det_hash\": \"{det_hash:016x}\"");
    out.push_str("  },\n");
    out.push_str("  \"telemetry\": {\n");
    let _ = writeln!(out, "    \"threads\": {threads},");
    let _ = writeln!(
        out,
        "    \"host_cpus\": {},",
        fsoi_bench::sweepbench::host_cpus()
    );
    let _ = writeln!(out, "    \"snapshot\": {}", snap.to_json("    "));
    out.push_str("  }\n");
    out.push_str("}\n");
    out
}

/// Default thread counts for the scaling curve, adapted to the host:
/// sampling 8 threads on a 1-CPU container only measures oversubscription
/// overhead and poisons the committed baseline with a bogus "<1.0
/// speedup" (exactly what happened to the original `BENCH_sweep.json`).
/// A 1-CPU host samples the serial point only; multi-core hosts sample
/// `[1, 2, min(8, cpus)]`. `--threads` overrides.
fn default_bench_threads() -> Vec<usize> {
    let cpus = fsoi_bench::sweepbench::host_cpus();
    if cpus == 1 {
        return vec![1];
    }
    let mut threads = vec![1, 2, cpus.min(8)];
    threads.dedup();
    threads
}

// ------------------------------------------------------------------ seeds

/// Robustness check: the Figure 6 headline (FSOI speedup geomean) across
/// independent seeds — the reproduction's claims must not be seed
/// artifacts.
fn seed_stability(scale: u64) {
    header("seed stability: Figure 6 FSOI speedup geomean across seeds");
    let mut o = SweepOptions::quick_16();
    o.ops_per_core *= scale;
    let seeds = [2010u64, 7, 42, 1234, 99999];
    // Seed-major cell list, [mesh, fsoi] interleaved per app.
    let mut cells = Vec::new();
    for seed in seeds {
        let mut os = o;
        os.seed = seed;
        for app in AppProfile::suite() {
            cells.push(CellSpec::new(app, "mesh", os));
            cells.push(CellSpec::new(app, "fsoi", os));
        }
    }
    let reports = run_cells(&cells);
    let napps = AppProfile::suite().len();
    let mut gmeans = Vec::new();
    for (si, seed) in seeds.iter().enumerate() {
        let row = &reports[si * 2 * napps..(si + 1) * 2 * napps];
        let speeds: Vec<f64> = row
            .chunks(2)
            .map(|pair| pair[0].cycles as f64 / pair[1].cycles as f64)
            .collect();
        let g = geometric_mean(&speeds).unwrap_or(0.0);
        println!("  seed {seed:>6}: gmean {g:.3}");
        gmeans.push(g);
    }
    let mean = gmeans.iter().sum::<f64>() / gmeans.len() as f64;
    let var = gmeans.iter().map(|g| (g - mean).powi(2)).sum::<f64>() / gmeans.len() as f64;
    println!(
        "  across seeds: {mean:.3} ± {:.3} (paper: 1.36; claims are stable, not seed artifacts)",
        var.sqrt()
    );
}
