//! Full-system run: a 16-core CMP with the MESI directory protocol over
//! both the free-space optical interconnect and the electrical mesh,
//! reporting the paper's headline metrics side by side.
//!
//! ```text
//! cargo run --release --example cmp_coherence [app]
//! ```
//!
//! `app` is one of the suite names (ba ch fmm fft lu oc ro rx ray ws em
//! ilink ja mp sh tsp); default `mp` (mp3d — the coherence-heaviest).

use fsoi::cmp::configs::{NetworkKind, SystemConfig};
use fsoi::cmp::system::CmpSystem;
use fsoi::cmp::workload::AppProfile;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "mp".to_string());
    let app = AppProfile::by_name(&name).unwrap_or_else(|| {
        eprintln!("unknown app {name}; pick one of:");
        for p in AppProfile::suite() {
            eprint!(" {}", p.name);
        }
        eprintln!();
        std::process::exit(2);
    });
    println!(
        "app {name}: gap {:.1} cycles, {}% loads, base miss ≈ {:.1}%, {} locks, barrier every {} ops",
        app.mean_gap,
        (100.0 * app.read_fraction) as u32,
        100.0 * app.expected_base_miss_rate(),
        app.locks,
        app.barrier_interval
    );

    let mut rows = Vec::new();
    for kind in [NetworkKind::mesh(16), NetworkKind::fsoi(16)] {
        let cfg = SystemConfig::paper_16(kind);
        let label = cfg.network.name().to_string();
        let mut sys = CmpSystem::new(cfg, app);
        let r = sys.run(50_000_000);
        rows.push((label, r));
    }
    let mesh_cycles = rows[0].1.cycles;

    println!(
        "\n{:<6} {:>9} {:>8} {:>10} {:>10} {:>9} {:>9} {:>9}",
        "net", "cycles", "speedup", "pkt lat", "reply lat", "miss%", "coll(d)%", "energy"
    );
    for (label, r) in &rows {
        println!(
            "{:<6} {:>9} {:>8.2} {:>10.1} {:>10.1} {:>8.1}% {:>8.1}% {:>8.1}%",
            label,
            r.cycles,
            mesh_cycles as f64 / r.cycles as f64,
            r.mean_packet_latency(),
            r.reply_latency.mean(),
            100.0 * r.l1_miss_rate,
            100.0 * r.data_collision_rate,
            100.0 * r.energy.total_j() / rows[0].1.energy.total_j(),
        );
    }

    let fsoi = &rows[1].1;
    println!("\nFSOI details");
    println!(
        "  latency breakdown  : queuing {:.1} + scheduling {:.1} + network {:.1} + collisions {:.1}",
        fsoi.attribution.queuing,
        fsoi.attribution.scheduling,
        fsoi.attribution.network,
        fsoi.attribution.collision_resolution
    );
    println!(
        "  packets            : {} meta + {} data; {} acks elided via confirmations, {} packets saved by subscriptions",
        fsoi.packets_sent[0], fsoi.packets_sent[1], fsoi.acks_elided, fsoi.subscription_packets_saved
    );
    println!(
        "  hint accuracy      : {:.0}% ({:.1}% wrong-winner)",
        100.0 * fsoi.hint_accuracy,
        100.0 * fsoi.hint_wrong_rate
    );
    println!("\nread-miss reply latency distribution (FSOI)");
    let h = &fsoi.reply_latency;
    for i in 0..h.num_bins() {
        let frac = h.fraction(i);
        if frac > 0.005 {
            println!(
                "  {:>3}-{:<3} {:>5.1}% {}",
                i * 10,
                (i + 1) * 10 - 1,
                100.0 * frac,
                "#".repeat((frac * 120.0) as usize)
            );
        }
    }
}
