//! Generator combinators.
//!
//! A [`Gen`] draws a whole [`Tree`] — the value plus its shrink
//! candidates — from the deterministic `fsoi_sim` Xoshiro256\*\* stream.
//! Plain `std::ops::Range`s over the integer types and `f64` implement
//! [`Gen`] directly, so property signatures read like the proptest suites
//! they replace: `(0.0f64..1.0, 3usize..128)` is a generator of pairs.
//!
//! Integers shrink by halving the distance toward the range's lower
//! bound; vectors shrink by removing chunks, then single elements, then
//! shrinking elements in place; every combinator preserves the generator's
//! invariants (ranges stay in range, vecs respect their minimum length,
//! sets stay duplicate-free).

use crate::tree::{pair, Tree};
use fsoi_sim::rng::Xoshiro256StarStar;
use std::fmt::Debug;
use std::ops::Range;
use std::rc::Rc;

/// A deterministic generator of shrinkable values.
pub trait Gen {
    /// The type of generated values.
    type Value: Clone + Debug + 'static;

    /// Draws one value (with its shrink tree) from `rng`.
    fn tree(&self, rng: &mut Xoshiro256StarStar) -> Tree<Self::Value>;

    /// Maps a pure function over generated values (shrinks map through).
    ///
    /// Named `gen_map` (not `map`) so ranges — which are both generators
    /// and iterators — stay unambiguous in test code.
    fn gen_map<U, F>(self, f: F) -> Map<Self, U, F>
    where
        Self: Sized,
        U: Clone + Debug + 'static,
        F: Fn(&Self::Value) -> U + 'static,
    {
        Map {
            inner: self,
            f: Rc::new(f),
            _marker: std::marker::PhantomData,
        }
    }
}

// ---------------------------------------------------------------------------
// Integer ranges
// ---------------------------------------------------------------------------

macro_rules! int_range_gen {
    ($($t:ty),+) => {$(
        impl Gen for Range<$t> {
            type Value = $t;

            fn tree(&self, rng: &mut Xoshiro256StarStar) -> Tree<$t> {
                assert!(self.start < self.end, "empty integer range");
                let span = (self.end - self.start) as u64;
                let v = self.start + rng.next_below(span) as $t;
                int_tree(v, self.start)
            }
        }

        impl Gen for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn tree(&self, rng: &mut Xoshiro256StarStar) -> Tree<$t> {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty integer range");
                let v = rng.range_inclusive(lo as u64, hi as u64) as $t;
                int_tree(v, lo)
            }
        }
    )+};
}

int_range_gen!(u8, u16, u32, u64, usize);

/// Shrink candidates for an integer: the lower bound, then values that
/// halve the remaining distance (aggressive jumps first).
fn int_tree<T>(v: T, lo: T) -> Tree<T>
where
    T: Copy + Clone + Debug + PartialEq + PartialOrd + 'static,
    T: std::ops::Sub<Output = T> + std::ops::Div<Output = T> + From<u8>,
{
    if v == lo {
        return Tree::leaf(v);
    }
    Tree::with_children(v, move || {
        let mut out = vec![lo];
        let (zero, two) = (T::from(0u8), T::from(2u8));
        let mut d = (v - lo) / two;
        while d != zero {
            let c = v - d;
            if c != lo {
                out.push(c);
            }
            d = d / two;
        }
        out.into_iter().map(|c| int_tree(c, lo)).collect()
    })
}

// ---------------------------------------------------------------------------
// Floating-point ranges
// ---------------------------------------------------------------------------

impl Gen for Range<f64> {
    type Value = f64;

    fn tree(&self, rng: &mut Xoshiro256StarStar) -> Tree<f64> {
        assert!(self.start < self.end, "empty f64 range");
        let v = self.start + rng.next_f64() * (self.end - self.start);
        f64_tree(v, self.start)
    }
}

fn f64_tree(v: f64, lo: f64) -> Tree<f64> {
    let eps = 1e-12 * lo.abs().max(v.abs()).max(1.0);
    if v - lo <= eps {
        return Tree::leaf(v);
    }
    Tree::with_children(v, move || {
        let mut out = vec![lo];
        let mut step = (v - lo) / 2.0;
        while step > eps {
            let c = v - step;
            if c > lo {
                out.push(c);
            }
            step /= 2.0;
        }
        out.into_iter().map(|c| f64_tree(c, lo)).collect()
    })
}

// ---------------------------------------------------------------------------
// Booleans
// ---------------------------------------------------------------------------

/// A fair coin that shrinks `true` to `false`.
#[derive(Debug, Clone, Copy)]
pub struct AnyBool;

/// Generates `true`/`false` with equal probability; `true` shrinks to `false`.
pub fn any_bool() -> AnyBool {
    AnyBool
}

impl Gen for AnyBool {
    type Value = bool;

    fn tree(&self, rng: &mut Xoshiro256StarStar) -> Tree<bool> {
        if rng.next_below(2) == 1 {
            Tree::with_children(true, || vec![Tree::leaf(false)])
        } else {
            Tree::leaf(false)
        }
    }
}

// ---------------------------------------------------------------------------
// Choice from a fixed slate (enums of protocol ops, parameter slates, ...)
// ---------------------------------------------------------------------------

/// Uniform choice over a fixed list; shrinks toward earlier entries.
#[derive(Clone)]
pub struct Select<T> {
    items: Rc<Vec<T>>,
}

/// A generator choosing uniformly from `items`; shrinks toward `items[0]`,
/// so list the "simplest" variant first.
pub fn select<T: Clone + Debug + 'static>(items: &[T]) -> Select<T> {
    assert!(!items.is_empty(), "select over an empty slate");
    Select {
        items: Rc::new(items.to_vec()),
    }
}

impl<T: Clone + Debug + 'static> Gen for Select<T> {
    type Value = T;

    fn tree(&self, rng: &mut Xoshiro256StarStar) -> Tree<T> {
        let idx = rng.next_below(self.items.len() as u64) as usize;
        let items = self.items.clone();
        int_tree(idx, 0usize).map(Rc::new(move |i: &usize| items[*i].clone()))
    }
}

// ---------------------------------------------------------------------------
// Map
// ---------------------------------------------------------------------------

/// See [`Gen::gen_map`].
pub struct Map<G, U, F> {
    inner: G,
    f: Rc<F>,
    _marker: std::marker::PhantomData<fn() -> U>,
}

impl<G, U, F> Gen for Map<G, U, F>
where
    G: Gen,
    U: Clone + Debug + 'static,
    F: Fn(&G::Value) -> U + 'static,
{
    type Value = U;

    fn tree(&self, rng: &mut Xoshiro256StarStar) -> Tree<U> {
        let f = self.f.clone();
        self.inner.tree(rng).map(Rc::new(move |v: &G::Value| f(v)))
    }
}

// ---------------------------------------------------------------------------
// Tuples
// ---------------------------------------------------------------------------

impl<A: Gen, B: Gen> Gen for (A, B) {
    type Value = (A::Value, B::Value);

    fn tree(&self, rng: &mut Xoshiro256StarStar) -> Tree<Self::Value> {
        let a = self.0.tree(rng);
        let b = self.1.tree(rng);
        pair(a, b)
    }
}

impl<A: Gen, B: Gen, C: Gen> Gen for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);

    fn tree(&self, rng: &mut Xoshiro256StarStar) -> Tree<Self::Value> {
        let ab = pair(self.0.tree(rng), self.1.tree(rng));
        pair(ab, self.2.tree(rng)).map(Rc::new(|((a, b), c): &((A::Value, B::Value), C::Value)| {
            (a.clone(), b.clone(), c.clone())
        }))
    }
}

impl<A: Gen, B: Gen, C: Gen, D: Gen> Gen for (A, B, C, D) {
    type Value = (A::Value, B::Value, C::Value, D::Value);

    #[allow(clippy::type_complexity)]
    fn tree(&self, rng: &mut Xoshiro256StarStar) -> Tree<Self::Value> {
        let ab = pair(self.0.tree(rng), self.1.tree(rng));
        let cd = pair(self.2.tree(rng), self.3.tree(rng));
        pair(ab, cd).map(Rc::new(
            |((a, b), (c, d)): &((A::Value, B::Value), (C::Value, D::Value))| {
                (a.clone(), b.clone(), c.clone(), d.clone())
            },
        ))
    }
}

// ---------------------------------------------------------------------------
// Vectors
// ---------------------------------------------------------------------------

/// See [`vec_of`].
pub struct VecGen<G> {
    elem: G,
    len: Range<usize>,
}

/// A vector of `elem`-generated values with length drawn from `len`
/// (half-open, like proptest's size ranges). Shrinks by dropping chunks,
/// then single elements (down to `len.start`), then shrinking elements
/// in place.
pub fn vec_of<G: Gen>(elem: G, len: Range<usize>) -> VecGen<G> {
    assert!(len.start < len.end, "empty length range");
    VecGen { elem, len }
}

impl<G: Gen> Gen for VecGen<G> {
    type Value = Vec<G::Value>;

    fn tree(&self, rng: &mut Xoshiro256StarStar) -> Tree<Self::Value> {
        let span = (self.len.end - self.len.start) as u64;
        let n = self.len.start + rng.next_below(span) as usize;
        let elems: Vec<Tree<G::Value>> = (0..n).map(|_| self.elem.tree(rng)).collect();
        vec_tree(elems, self.len.start)
    }
}

fn vec_tree<T: Clone + Debug + 'static>(elems: Vec<Tree<T>>, min: usize) -> Tree<Vec<T>> {
    let value: Vec<T> = elems.iter().map(|t| t.value.clone()).collect();
    Tree::with_children(value, move || {
        let len = elems.len();
        let mut out = Vec::new();
        if len > min {
            // Chunk removals, biggest first: drop a prefix or suffix of
            // `k` elements while staying at or above the minimum length.
            let mut k = len - min;
            loop {
                out.push(vec_tree(elems[k..].to_vec(), min));
                out.push(vec_tree(elems[..len - k].to_vec(), min));
                if k == 1 {
                    break;
                }
                k /= 2;
            }
            // Single-element removals at every position.
            for i in 0..len {
                let mut e = elems.clone();
                e.remove(i);
                out.push(vec_tree(e, min));
            }
        }
        // In-place element shrinks.
        for i in 0..len {
            for c in elems[i].children() {
                let mut e = elems.clone();
                e[i] = c;
                out.push(vec_tree(e, min));
            }
        }
        out
    })
}

// ---------------------------------------------------------------------------
// Distinct sorted sets (ports of the btree_set-based proptest generators)
// ---------------------------------------------------------------------------

/// See [`set_of`].
pub struct SetGen {
    values: Range<usize>,
    size: Range<usize>,
}

/// A sorted, duplicate-free `Vec<usize>` with elements drawn from `values`
/// and cardinality from `size` (both half-open). Shrinks by removing
/// elements (down to `size.start`) and nudging elements toward
/// `values.start` without creating duplicates.
pub fn set_of(values: Range<usize>, size: Range<usize>) -> SetGen {
    assert!(size.start < size.end, "empty size range");
    assert!(
        values.end - values.start >= size.end,
        "value range too small to fill the requested set size"
    );
    SetGen { values, size }
}

impl Gen for SetGen {
    type Value = Vec<usize>;

    fn tree(&self, rng: &mut Xoshiro256StarStar) -> Tree<Vec<usize>> {
        let span = (self.size.end - self.size.start) as u64;
        let target = self.size.start + rng.next_below(span) as usize;
        let vspan = (self.values.end - self.values.start) as u64;
        let mut picked = Vec::new();
        while picked.len() < target {
            let c = self.values.start + rng.next_below(vspan) as usize;
            if !picked.contains(&c) {
                picked.push(c);
            }
        }
        picked.sort_unstable();
        set_tree(picked, self.size.start, self.values.start)
    }
}

fn set_tree(v: Vec<usize>, min: usize, lo: usize) -> Tree<Vec<usize>> {
    Tree::with_children(v.clone(), move || {
        let mut out = Vec::new();
        if v.len() > min {
            for i in 0..v.len() {
                let mut s = v.clone();
                s.remove(i);
                out.push(set_tree(s, min, lo));
            }
        }
        for i in 0..v.len() {
            let e = v[i];
            if e == lo {
                continue;
            }
            let mut d = (e - lo).div_ceil(2);
            while d > 0 {
                let c = e - d;
                if !v.contains(&c) {
                    let mut s = v.clone();
                    s[i] = c;
                    s.sort_unstable();
                    out.push(set_tree(s, min, lo));
                }
                d /= 2;
            }
        }
        out
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> Xoshiro256StarStar {
        Xoshiro256StarStar::new(0xDEAD_BEEF)
    }

    #[test]
    fn int_range_stays_in_range_and_shrinks_toward_lo() {
        let mut r = rng();
        for _ in 0..200 {
            let t = (5u64..40).tree(&mut r);
            assert!((5..40).contains(&t.value));
            for c in t.children() {
                assert!((5..40).contains(&c.value));
                assert!(c.value < t.value);
            }
        }
    }

    #[test]
    fn inclusive_range_hits_both_ends() {
        let mut r = rng();
        let mut seen = [false; 3];
        for _ in 0..200 {
            let t = (0u8..=2).tree(&mut r);
            seen[t.value as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn f64_range_stays_in_range() {
        let mut r = rng();
        for _ in 0..200 {
            let t = (0.25f64..0.75).tree(&mut r);
            assert!((0.25..0.75).contains(&t.value));
            for c in t.children().iter().take(4) {
                assert!(c.value >= 0.25 && c.value < t.value);
            }
        }
    }

    #[test]
    fn vec_respects_min_len_under_shrink() {
        let mut r = rng();
        let t = vec_of(0u64..10, 2..9).tree(&mut r);
        assert!(t.value.len() >= 2 && t.value.len() < 9);
        for c in t.children() {
            assert!(c.value.len() >= 2);
        }
    }

    #[test]
    fn set_is_sorted_and_distinct_under_shrink() {
        let mut r = rng();
        for _ in 0..50 {
            let t = set_of(0..64, 2..8).tree(&mut r);
            let check = |v: &Vec<usize>| {
                assert!(v.windows(2).all(|w| w[0] < w[1]), "sorted+distinct: {v:?}");
            };
            check(&t.value);
            for c in t.children() {
                check(&c.value);
            }
        }
    }

    #[test]
    fn select_shrinks_toward_first_item() {
        let mut r = rng();
        loop {
            let t = select(&["a", "b", "c"]).tree(&mut r);
            if t.value != "a" {
                assert_eq!(t.children()[0].value, "a");
                break;
            }
        }
    }

    #[test]
    fn map_composes_with_shrinking() {
        let mut r = rng();
        let g = (1u64..100).gen_map(|v| v * 2);
        loop {
            let t = g.tree(&mut r);
            assert_eq!(t.value % 2, 0);
            if t.value > 2 {
                assert_eq!(t.children()[0].value, 2, "maps the shrunk lower bound");
                break;
            }
        }
    }
}
