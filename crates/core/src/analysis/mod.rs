//! Closed-form and Monte-Carlo models from the paper's analysis sections.
//!
//! The paper makes early design decisions with "simpler analytical means"
//! and validates them against detailed simulation (§7.3). This module
//! reproduces those models:
//!
//! * [`collision`] — collision probability vs transmission probability and
//!   receiver count (**Figure 3**), including the per-packet approximation
//!   of footnote 4;
//! * [`bandwidth`] — the meta/data bandwidth-allocation latency model whose
//!   optimum is `B_M ≈ 0.285` (§4.3.2, item 3);
//! * [`backoff`] — the collision-resolution-delay model over `(W, B)`
//!   (**Figure 4**) and the pathological all-to-one burst analysis;
//! * [`queueing`] — the M/D/1 source-queue model behind the queuing
//!   component of the Figure 6/7 latency breakdown.

pub mod backoff;
pub mod bandwidth;
pub mod collision;
pub mod queueing;
