//! Optical clock distribution (paper footnote 2).
//!
//! The FSOI design assumes "the whole chip is synchronous (e.g., using
//! optical clock distribution)" — no per-link clock recovery circuits.
//! An optical clock is broadcast through a path-matched H-tree (or an
//! additional free-space beam set); each node's photodetector + clock
//! buffer converts it to the local electrical clock.
//!
//! The module answers the question the networking layer depends on: is
//! the chip-wide clock uncertainty (systematic skew from tree mismatch +
//! random jitter from the receive chains) small against the 25 ps optical
//! bit time, so that slot boundaries align globally?

use crate::units::{Frequency, Length, TimeSpan};

/// Group index of the on-chip clock distribution medium (silica/polymer
/// waveguide H-tree ≈ 1.5; free-space ≈ 1.0).
const DEFAULT_GROUP_INDEX: f64 = 1.5;
/// Speed of light in vacuum, m/s.
const C: f64 = 2.997_924_58e8;

/// A path-matched H-tree broadcasting the optical clock to `leaves`
/// endpoints over a die of the given half-span.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpticalClockTree {
    /// Number of leaf endpoints (one per node).
    pub leaves: usize,
    /// Routing length from source to any leaf (H-trees are path-matched;
    /// this is the common length), metres.
    pub path_length: Length,
    /// Residual per-leaf length mismatch after fabrication, metres
    /// (process control of the tree arms).
    pub length_mismatch: Length,
    /// Group index of the distribution medium.
    pub group_index: f64,
    /// RMS jitter added by each leaf's receive chain (PD + clock buffer),
    /// seconds.
    pub receiver_jitter: TimeSpan,
}

impl OpticalClockTree {
    /// A 16-node tree over the 2 cm die: ~15 mm matched arms, ±30 µm
    /// fabrication mismatch, 0.4 ps receiver jitter.
    pub fn paper_16() -> Self {
        OpticalClockTree {
            leaves: 16,
            path_length: Length::from_millimeters(15.0),
            length_mismatch: Length::from_micrometers(30.0),
            group_index: DEFAULT_GROUP_INDEX,
            receiver_jitter: TimeSpan::from_picoseconds(0.4),
        }
    }

    /// The 64-node variant (finer tiling, same die).
    pub fn paper_64() -> Self {
        OpticalClockTree {
            leaves: 64,
            ..Self::paper_16()
        }
    }

    /// Propagation delay from the source to the leaves, picoseconds.
    pub fn insertion_delay_ps(&self) -> f64 {
        self.path_length.as_meters() * self.group_index / C * 1e12
    }

    /// Worst-case systematic skew between any two leaves from the length
    /// mismatch, picoseconds.
    pub fn skew_ps(&self) -> f64 {
        // Two leaves can be off in opposite directions.
        2.0 * self.length_mismatch.as_meters() * self.group_index / C * 1e12
    }

    /// RMS jitter between two leaves' recovered clocks (independent
    /// receive chains), picoseconds.
    pub fn pair_jitter_ps(&self) -> f64 {
        self.receiver_jitter.to_picoseconds() * std::f64::consts::SQRT_2
    }

    /// Total worst-case clock uncertainty between two nodes: systematic
    /// skew plus a ±3σ jitter allowance, picoseconds.
    pub fn uncertainty_ps(&self) -> f64 {
        self.skew_ps() + 3.0 * self.pair_jitter_ps()
    }

    /// Fraction of the optical bit time consumed by clock uncertainty at
    /// the given line rate. The slotted network needs this well below one
    /// (the serializer padding of [`crate::thermal`]'s sibling module,
    /// `fsoi-net::skew`, absorbs whole-bit offsets; sub-bit uncertainty
    /// eats eye margin directly).
    pub fn bit_time_fraction(&self, line_rate: Frequency) -> f64 {
        let bit_ps = 1e12 / line_rate.as_hz();
        self.uncertainty_ps() / bit_ps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insertion_delay_is_tens_of_ps() {
        let t = OpticalClockTree::paper_16();
        // 15 mm × 1.5 / c ≈ 75 ps.
        let d = t.insertion_delay_ps();
        assert!((70.0..80.0).contains(&d), "delay = {d} ps");
    }

    #[test]
    fn skew_is_sub_picosecond() {
        let t = OpticalClockTree::paper_16();
        // ±30 µm mismatch at n=1.5: 2 × 0.15 ps = 0.3 ps.
        let s = t.skew_ps();
        assert!((0.2..0.4).contains(&s), "skew = {s} ps");
    }

    #[test]
    fn uncertainty_fits_the_40gbps_bit() {
        // The whole point: chip-wide clock uncertainty must be a small
        // fraction of the 25 ps bit so global slotting works.
        let t = OpticalClockTree::paper_16();
        let f = t.bit_time_fraction(Frequency::from_ghz(40.0));
        assert!(f < 0.1, "uncertainty is {:.1}% of a bit", f * 100.0);
        // And utterly negligible against a 303 ps core cycle.
        let core = t.bit_time_fraction(Frequency::from_ghz(3.3));
        assert!(core < 0.01);
    }

    #[test]
    fn jitter_combines_across_two_receivers() {
        let t = OpticalClockTree::paper_16();
        let expect = 0.4 * std::f64::consts::SQRT_2;
        assert!((t.pair_jitter_ps() - expect).abs() < 1e-12);
        assert!(t.uncertainty_ps() > t.skew_ps());
    }

    #[test]
    fn sixty_four_leaves_same_tree_character() {
        let t16 = OpticalClockTree::paper_16();
        let t64 = OpticalClockTree::paper_64();
        assert_eq!(t64.leaves, 64);
        assert!((t64.uncertainty_ps() - t16.uncertainty_ps()).abs() < 1e-12);
    }
}
