//! End-to-end FSOI link budget — regenerates the paper's **Table 1**.
//!
//! The budget chains the models of this crate: the VCSEL's OOK power
//! levels, the Gaussian beam launched by the transmitter micro-lens, the
//! diagonal free-space path's loss, the photodetector's photocurrents, and
//! the TIA's noise, yielding the Q-factor, BER, bandwidth, jitter, and the
//! power/energy numbers the architecture-level simulators charge per bit.
//!
//! ```
//! use fsoi_optics::link::OpticalLink;
//! let budget = OpticalLink::paper_default().budget();
//! assert!((budget.path_loss_db - 2.6).abs() < 0.3);      // Table 1: 2.6 dB
//! assert!(budget.bit_error_rate < 1e-9);                 // Table 1: 1e-10
//! assert!((budget.rx_power_mw - 4.2).abs() < 0.1);       // Table 1: 4.2 mW
//! ```

use crate::gaussian::GaussianBeam;
use crate::noise;
use crate::path::OpticalPath;
use crate::photodetector::Photodetector;
use crate::tia::{Tia, CML_MILLIWATTS_PER_GHZ_45NM};
use crate::units::{Frequency, Length, Power, Resistance, Voltage};
use crate::vcsel::Vcsel;
use crate::OpticsError;

/// Driver output self-capacitance added to the VCSEL's parasitic load.
const DRIVER_SELF_CAPACITANCE: f64 = 40e-15;
/// Leakage of the powered-down driver in standby (bias DAC stays alive).
const DRIVER_STANDBY_LEAKAGE_MW: f64 = 0.15;
/// Switching activity factor of the driver output stage for random data.
const SWITCHING_ACTIVITY: f64 = 0.25;
/// TIA input resistance seen by the photodetector.
const TIA_INPUT_RESISTANCE_OHMS: f64 = 50.0;
/// Peaking/equalization factor with which the driver extends the VCSEL's
/// parasitic pole.
const DRIVER_PEAKING: f64 = 6.0;

/// A complete single-bit FSOI link: transmitter, optics, and receiver.
#[derive(Debug, Clone)]
pub struct OpticalLink {
    vcsel: Vcsel,
    photodetector: Photodetector,
    tia: Tia,
    path: OpticalPath,
    tx_aperture: Length,
    wavelength: Length,
    data_rate: Frequency,
    driver_bandwidth: Frequency,
    supply: Voltage,
}

/// The computed link budget: every row of the paper's Table 1 plus the
/// per-bit energies used by the architectural energy model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkBudget {
    /// Total optical path loss in dB (Table 1: 2.6 dB).
    pub path_loss_db: f64,
    /// Geometric flight distance in metres (Table 1: 2 cm).
    pub distance_m: f64,
    /// Received optical power for a logical one, dBm.
    pub received_one_dbm: f64,
    /// Received optical power for a logical zero, dBm.
    pub received_zero_dbm: f64,
    /// Photocurrent for a one, µA.
    pub photocurrent_one_ua: f64,
    /// Photocurrent for a zero, µA.
    pub photocurrent_zero_ua: f64,
    /// RMS noise on the one rail, µA.
    pub noise_one_ua: f64,
    /// RMS noise on the zero rail, µA.
    pub noise_zero_ua: f64,
    /// The OOK Q-factor at the decision point.
    pub q_factor: f64,
    /// Signal-to-noise ratio in dB, defined as `10 log₁₀ Q`
    /// (Table 1: 7.5 dB; see EXPERIMENTS.md on the definition).
    pub snr_db: f64,
    /// Bit error rate (Table 1: 10⁻¹⁰).
    pub bit_error_rate: f64,
    /// Overall link small-signal bandwidth, GHz.
    pub link_bandwidth_ghz: f64,
    /// 10–90 % rise time, ps.
    pub rise_time_ps: f64,
    /// RMS cycle-to-cycle jitter, ps (Table 1: 1.7 ps).
    pub jitter_ps: f64,
    /// Speed-of-light propagation delay, ps.
    pub propagation_delay_ps: f64,
    /// Laser driver power, mW (Table 1: 6.3 mW).
    pub driver_power_mw: f64,
    /// VCSEL electrical power, mW (Table 1: 0.96 mW).
    pub vcsel_power_mw: f64,
    /// Total transmitter power while transmitting, mW.
    pub tx_active_mw: f64,
    /// Transmitter standby power, mW (Table 1: 0.43 mW).
    pub tx_standby_mw: f64,
    /// Receiver power (always on), mW (Table 1: 4.2 mW).
    pub rx_power_mw: f64,
    /// Transmit energy per bit, pJ.
    pub tx_energy_per_bit_pj: f64,
    /// Receive energy per bit, pJ.
    pub rx_energy_per_bit_pj: f64,
    /// Data rate, Gbps (Table 1: 40 Gbps).
    pub data_rate_gbps: f64,
}

impl OpticalLink {
    /// The paper's Table 1 link: 2 cm diagonal, 980 nm, 40 Gbps, 43 GHz
    /// driver, 90/190 µm micro-lenses.
    pub fn paper_default() -> Self {
        OpticalLink {
            vcsel: Vcsel::paper_default(),
            photodetector: Photodetector::paper_default(),
            tia: Tia::paper_default(),
            path: OpticalPath::paper_diagonal(),
            tx_aperture: Length::from_micrometers(90.0),
            wavelength: Length::from_nanometers(980.0),
            data_rate: Frequency::from_ghz(40.0),
            driver_bandwidth: Frequency::from_ghz(43.0),
            supply: Voltage::from_volts(1.0),
        }
    }

    /// Creates a link from explicit components.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        vcsel: Vcsel,
        photodetector: Photodetector,
        tia: Tia,
        path: OpticalPath,
        tx_aperture: Length,
        wavelength: Length,
        data_rate: Frequency,
        driver_bandwidth: Frequency,
    ) -> Self {
        OpticalLink {
            vcsel,
            photodetector,
            tia,
            path,
            tx_aperture,
            wavelength,
            data_rate,
            driver_bandwidth,
            supply: Voltage::from_volts(1.0),
        }
    }

    /// The collimated beam launched by the transmitter micro-lens (waist
    /// radius = half the lens aperture).
    pub fn beam(&self) -> GaussianBeam {
        GaussianBeam::new(
            Length::from_meters(self.tx_aperture.as_meters() / 2.0),
            self.wavelength,
        )
        // lint: allow(P1) inputs were validated by this link's own constructor
        .expect("apertures and wavelengths are validated on construction")
    }

    /// The VCSEL of this link.
    pub fn vcsel(&self) -> &Vcsel {
        &self.vcsel
    }

    /// The optical path of this link.
    pub fn path(&self) -> &OpticalPath {
        &self.path
    }

    /// The configured data rate.
    pub fn data_rate(&self) -> Frequency {
        self.data_rate
    }

    /// The overall small-signal link bandwidth: root-sum-square combination
    /// of the driver, (equalized) VCSEL, photodetector and TIA poles.
    pub fn link_bandwidth(&self) -> Frequency {
        let stages = [
            self.driver_bandwidth.as_hz(),
            self.vcsel.modulation_bandwidth(DRIVER_PEAKING).as_hz(),
            self.photodetector
                .bandwidth_into(Resistance::from_ohms(TIA_INPUT_RESISTANCE_OHMS))
                .as_hz(),
            self.tia.bandwidth().as_hz(),
        ];
        let inv_sq: f64 = stages.iter().map(|f| 1.0 / (f * f)).sum();
        Frequency::from_hz(1.0 / inv_sq.sqrt())
    }

    /// Laser-driver power: static CML analog power scaling with the driver
    /// bandwidth, plus dynamic switching of the VCSEL + driver load.
    pub fn driver_power(&self) -> Power {
        let static_mw = CML_MILLIWATTS_PER_GHZ_45NM * self.driver_bandwidth.to_ghz();
        let c_load = self.vcsel.parasitic_capacitance().as_farads() + DRIVER_SELF_CAPACITANCE;
        let v = self.supply.as_volts();
        let dynamic_w = SWITCHING_ACTIVITY * c_load * v * v * self.data_rate.as_hz();
        Power::from_milliwatts(static_mw) + Power::from_watts(dynamic_w)
    }

    /// Computes the full link budget.
    pub fn budget(&self) -> LinkBudget {
        let beam = self.beam();
        let loss = self.path.total_loss(&beam);

        let p1 = self.vcsel.one_level_power().attenuate(loss);
        let p0 = self.vcsel.zero_level_power().attenuate(loss);
        let i1 = self.photodetector.photocurrent(p1);
        let i0 = self.photodetector.photocurrent(p0);

        let bw = self.tia.bandwidth();
        let circuit = self.tia.input_noise_rms();
        let sigma1 = noise::combine_rms(&[circuit, noise::shot_noise_rms(i1, bw)]);
        let sigma0 = noise::combine_rms(&[circuit, noise::shot_noise_rms(i0, bw)]);
        let q = noise::q_factor(i1, i0, sigma1, sigma0);
        let ber = noise::q_to_ber(q);

        let link_bw = self.link_bandwidth();
        let rise_time_ps = 0.35 / link_bw.as_hz() * 1e12;
        // Noise-to-jitter conversion at the eye crossing: the crossing
        // slope is ≈ eye/t_r, so σ_jitter = σ_noise / slope ≈ t_r / (2 Q)
        // for balanced rails.
        let jitter_ps = rise_time_ps / (2.0 * q.max(1e-9));

        let driver = self.driver_power();
        let vcsel_p = self.vcsel.electrical_power();
        let tx_active = driver + vcsel_p;
        let tx_standby =
            self.vcsel.standby_power() + Power::from_milliwatts(DRIVER_STANDBY_LEAKAGE_MW);
        let rx = self.tia.power();
        let bits_per_s = self.data_rate.as_hz();

        LinkBudget {
            path_loss_db: loss.db(),
            distance_m: self.path.length().as_meters(),
            received_one_dbm: p1.to_dbm(),
            received_zero_dbm: p0.to_dbm(),
            photocurrent_one_ua: i1.to_microamps(),
            photocurrent_zero_ua: i0.to_microamps(),
            noise_one_ua: sigma1.to_microamps(),
            noise_zero_ua: sigma0.to_microamps(),
            q_factor: q,
            snr_db: 10.0 * q.max(1e-300).log10(),
            bit_error_rate: ber,
            link_bandwidth_ghz: link_bw.to_ghz(),
            rise_time_ps,
            jitter_ps,
            propagation_delay_ps: self.path.propagation_delay_ps(),
            driver_power_mw: driver.to_milliwatts(),
            vcsel_power_mw: vcsel_p.to_milliwatts(),
            tx_active_mw: tx_active.to_milliwatts(),
            tx_standby_mw: tx_standby.to_milliwatts(),
            rx_power_mw: rx.to_milliwatts(),
            tx_energy_per_bit_pj: tx_active.as_watts() / bits_per_s * 1e12,
            rx_energy_per_bit_pj: rx.as_watts() / bits_per_s * 1e12,
            data_rate_gbps: self.data_rate.to_ghz(),
        }
    }

    /// Checks that the budget closes at the target BER.
    ///
    /// # Errors
    ///
    /// Returns [`OpticsError::LinkDoesNotClose`] when the achieved Q-factor
    /// falls below the Q required for `target_ber`.
    pub fn validate(&self, target_ber: f64) -> Result<LinkBudget, OpticsError> {
        let budget = self.budget();
        let required = noise::ber_to_q(target_ber);
        if budget.q_factor < required {
            return Err(OpticsError::LinkDoesNotClose {
                q_factor: budget.q_factor,
                required,
            });
        }
        Ok(budget)
    }
}

impl LinkBudget {
    /// Renders the budget as `(label, value)` rows matching the layout of
    /// the paper's Table 1, for the experiment harness to print.
    pub fn table1_rows(&self) -> Vec<(String, String)> {
        vec![
            (
                "Trans. distance".into(),
                format!("{:.0} cm", self.distance_m * 100.0),
            ),
            (
                "Optical path loss".into(),
                format!("{:.1} dB", self.path_loss_db),
            ),
            (
                "Link bandwidth".into(),
                format!("{:.1} GHz", self.link_bandwidth_ghz),
            ),
            (
                "Data rate".into(),
                format!("{:.0} Gbps", self.data_rate_gbps),
            ),
            (
                "Signal-to-noise ratio".into(),
                format!("{:.1} dB", self.snr_db),
            ),
            ("Q factor".into(), format!("{:.2}", self.q_factor)),
            (
                "Bit-error-rate (BER)".into(),
                format!("{:.1e}", self.bit_error_rate),
            ),
            (
                "Cycle-to-cycle jitter".into(),
                format!("{:.1} ps", self.jitter_ps),
            ),
            (
                "Laser driver power".into(),
                format!("{:.1} mW", self.driver_power_mw),
            ),
            (
                "VCSEL power".into(),
                format!("{:.2} mW", self.vcsel_power_mw),
            ),
            (
                "Transmitter (standby)".into(),
                format!("{:.2} mW", self.tx_standby_mw),
            ),
            (
                "Receiver power".into(),
                format!("{:.1} mW", self.rx_power_mw),
            ),
            (
                "TX energy/bit".into(),
                format!("{:.3} pJ", self.tx_energy_per_bit_pj),
            ),
            (
                "RX energy/bit".into(),
                format!("{:.3} pJ", self.rx_energy_per_bit_pj),
            ),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_path_loss() {
        let b = OpticalLink::paper_default().budget();
        assert!(
            (b.path_loss_db - 2.6).abs() < 0.2,
            "loss = {}",
            b.path_loss_db
        );
        assert!((b.distance_m - 0.02).abs() < 1e-12);
    }

    #[test]
    fn table1_ber_and_q() {
        let b = OpticalLink::paper_default().budget();
        assert!(
            b.bit_error_rate < 5e-10 && b.bit_error_rate > 1e-12,
            "BER = {:.2e} (paper: 1e-10)",
            b.bit_error_rate
        );
        assert!((b.q_factor - 6.36).abs() < 0.4, "Q = {}", b.q_factor);
        // SNR defined as 10 log10 Q lands near the paper's 7.5 dB.
        assert!((b.snr_db - 7.5).abs() < 0.8, "SNR = {} dB", b.snr_db);
    }

    #[test]
    fn table1_powers() {
        let b = OpticalLink::paper_default().budget();
        assert!(
            (b.driver_power_mw - 6.3).abs() < 0.15,
            "driver = {}",
            b.driver_power_mw
        );
        assert!((b.vcsel_power_mw - 0.96).abs() < 1e-6);
        assert!((b.tx_standby_mw - 0.43).abs() < 1e-6);
        assert!((b.rx_power_mw - 4.2).abs() < 1e-6);
    }

    #[test]
    fn table1_jitter() {
        let b = OpticalLink::paper_default().budget();
        assert!(
            (b.jitter_ps - 1.7).abs() < 0.3,
            "jitter = {} ps",
            b.jitter_ps
        );
    }

    #[test]
    fn propagation_delay_speed_of_light() {
        let b = OpticalLink::paper_default().budget();
        assert!((b.propagation_delay_ps - 66.7).abs() < 0.3);
    }

    #[test]
    fn energies_per_bit() {
        let b = OpticalLink::paper_default().budget();
        // (6.3 + 0.96) mW / 40 Gbps ≈ 0.18 pJ/bit TX; 4.2/40 = 0.105 RX.
        assert!((b.tx_energy_per_bit_pj - 0.18).abs() < 0.02);
        assert!((b.rx_energy_per_bit_pj - 0.105).abs() < 0.005);
    }

    #[test]
    fn validate_closes_at_1e9_but_not_1e15() {
        let link = OpticalLink::paper_default();
        assert!(link.validate(1e-9).is_ok());
        assert!(matches!(
            link.validate(1e-15),
            Err(OpticsError::LinkDoesNotClose { .. })
        ));
    }

    #[test]
    fn relaxed_ber_frees_margin() {
        // The paper argues collisions let the BER target relax from 1e-10
        // to 1e-5: check the Q headroom that frees (6.36 -> 4.26).
        let needed_strict = noise::ber_to_q(1e-10);
        let needed_relaxed = noise::ber_to_q(1e-5);
        assert!(needed_strict - needed_relaxed > 2.0);
        let b = OpticalLink::paper_default().budget();
        assert!(
            b.q_factor > needed_relaxed + 1.5,
            "large margin at relaxed BER"
        );
    }

    #[test]
    fn table1_rows_render() {
        let rows = OpticalLink::paper_default().budget().table1_rows();
        assert!(rows.len() >= 12);
        assert!(rows.iter().any(|(k, _)| k.contains("path loss")));
        assert!(rows.iter().all(|(_, v)| !v.is_empty()));
    }

    #[test]
    fn shorter_path_closes_better() {
        let link = OpticalLink::paper_default();
        let mut short_path = OpticalPath::new(Length::from_micrometers(95.0)).unwrap();
        short_path
            .push(crate::path::PathElement::FreeSpace(
                Length::from_millimeters(5.0),
            ))
            .unwrap();
        let short = OpticalLink::new(
            Vcsel::paper_default(),
            Photodetector::paper_default(),
            Tia::paper_default(),
            short_path,
            Length::from_micrometers(90.0),
            Length::from_nanometers(980.0),
            Frequency::from_ghz(40.0),
            Frequency::from_ghz(43.0),
        );
        assert!(short.budget().q_factor > link.budget().q_factor);
    }

    #[test]
    fn accessors() {
        let link = OpticalLink::paper_default();
        assert!((link.data_rate().to_ghz() - 40.0).abs() < 1e-9);
        assert!((link.beam().waist_radius().to_micrometers() - 45.0).abs() < 1e-9);
        assert!((link.vcsel().extinction_ratio() - 11.0).abs() < 1e-9);
        assert!((link.path().length().as_meters() - 0.02).abs() < 1e-12);
        assert!(link.link_bandwidth().to_ghz() > 14.0);
    }
}
