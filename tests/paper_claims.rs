//! Integration tests pinning the paper's analytic claims — the numbers a
//! reader can check against the text without running workloads.

use fsoi::net::analysis::backoff::{pathological_burst, resolution_delay};
use fsoi::net::analysis::bandwidth::BandwidthAllocationModel;
use fsoi::net::analysis::collision::{monte_carlo, node_collision_probability};
use fsoi::net::backoff::BackoffPolicy;
use fsoi::net::lane::Lanes;
use fsoi::net::packet::PacketClass;
use fsoi::net::topology::{array_area_mm2, dedicated_vcsel_count};
use fsoi::optics::link::OpticalLink;
use fsoi::optics::noise::ber_to_q;

#[test]
fn table1_link_budget_matches_paper() {
    let b = OpticalLink::paper_default().budget();
    assert!((b.distance_m - 0.02).abs() < 1e-12, "2 cm diagonal");
    assert!((b.path_loss_db - 2.6).abs() < 0.2, "2.6 dB path loss");
    assert!(b.bit_error_rate < 1e-9, "BER 1e-10 class");
    assert!((b.jitter_ps - 1.7).abs() < 0.3, "1.7 ps jitter");
    assert!((b.driver_power_mw - 6.3).abs() < 0.2, "6.3 mW driver");
    assert!((b.vcsel_power_mw - 0.96).abs() < 0.01, "0.96 mW VCSEL");
    assert!((b.tx_standby_mw - 0.43).abs() < 0.01, "0.43 mW standby");
    assert!((b.rx_power_mw - 4.2).abs() < 0.01, "4.2 mW receiver");
    assert!((b.data_rate_gbps - 40.0).abs() < 1e-9, "40 Gbps");
}

#[test]
fn section_431_vcsel_inventory() {
    // "for N = 16, k = 9 … approximately 2000 VCSELs" occupying "about
    // 5 mm²" at 20 µm devices and 30 µm spacing.
    let count = dedicated_vcsel_count(16, 9);
    assert!((2000..2300).contains(&count));
    assert!((array_area_mm2(2000, 20.0, 30.0) - 5.0).abs() < 0.1);
}

#[test]
fn section_431_relaxed_ber_margin() {
    // "the bit error rates of the signaling chain can be relaxed
    // significantly (from 1e-10 to, say, 1e-5)".
    assert!((ber_to_q(1e-10) - 6.36).abs() < 0.01);
    assert!((ber_to_q(1e-5) - 4.26).abs() < 0.01);
}

#[test]
fn figure3_collision_probability_shape() {
    // Inverse proportionality in R, weak N dependence, Monte-Carlo
    // agreement.
    let p = 0.10;
    let r1 = node_collision_probability(p, 16, 1);
    let r2 = node_collision_probability(p, 16, 2);
    assert!((r1 / r2 - 2.0).abs() < 0.3);
    let n16 = node_collision_probability(p, 16, 2);
    let n64 = node_collision_probability(p, 64, 2);
    assert!((n16 - n64).abs() / n16 < 0.12);
    let mc = monte_carlo(p, 16, 2, 150_000, 3);
    assert!((mc.node_collision_rate - n16).abs() < 0.2 * n16);
}

#[test]
fn section_432_slotting_and_serialization() {
    // "a serialization latency of 2 (processor) cycles for a (72-bit)
    // meta packet and 5 cycles for a (360-bit) data packet".
    let lanes = Lanes::paper_default();
    assert_eq!(lanes.serialization_cycles(PacketClass::Meta), 2);
    assert_eq!(lanes.serialization_cycles(PacketClass::Data), 5);
    assert_eq!(lanes.meta.packet_bits, 72);
    assert_eq!(lanes.data.packet_bits, 360);
    assert_eq!(lanes.meta.vcsels, 3);
    assert_eq!(lanes.data.vcsels, 6);
}

#[test]
fn section_432_bandwidth_allocation_optimum() {
    // "the optimal latency value occurs at B_M = 0.285: about 30% of the
    // bandwidth should be allocated to transmit meta packets" → 3 of 9
    // VCSELs.
    let model = BandwidthAllocationModel::paper_default();
    assert!((model.optimal_bm() - 0.285).abs() < 0.005);
    assert_eq!(model.integer_split(9), (3, 6));
}

#[test]
fn figure4_backoff_optimum_region() {
    // The paper's optimum (W = 2.7, B = 1.1) must beat binary back-off
    // and both a too-small and a too-large starting window.
    let d = |w, b| resolution_delay(BackoffPolicy::new(w, b), 0.01, 2, 2, 25_000, 11);
    let opt = d(2.7, 1.1);
    assert!((6.0..10.5).contains(&opt), "paper computed 7.26, got {opt}");
    assert!(opt < d(2.7, 2.0), "B = 1.1 beats doubling");
    assert!(opt < d(1.0, 1.1), "W = 1 recollides");
    assert!(opt < d(8.0, 1.1), "W = 8 waits too long");
}

#[test]
fn section_432_pathological_burst() {
    // "it takes an average of about 26 retries (for a total of 416
    // cycles)… with a fixed window size of 3, it would take 8.2e10…
    // Setting B to 2 shortens this to about 5 retries (199 cycles)."
    let opt = pathological_burst(63, BackoffPolicy::PAPER_OPTIMUM, 2, 2);
    assert!((20.0..34.0).contains(&opt.retries), "{}", opt.retries);
    assert!((250.0..600.0).contains(&opt.cycles), "{}", opt.cycles);
    let binary = pathological_burst(63, BackoffPolicy::BINARY, 2, 2);
    assert!((4.0..9.0).contains(&binary.retries), "{}", binary.retries);
    let fixed = pathological_burst(63, BackoffPolicy::fixed(3.0), 2, 2);
    assert!(
        (5e10..1.2e11).contains(&fixed.retries),
        "{:.2e}",
        fixed.retries
    );
}

#[test]
fn figure11_bandwidth_scaling_configuration() {
    // Footnote 9's base configuration: both lanes at 6 VCSELs so meta
    // serializes in 1 cycle and data in 5 — matching the mesh flit
    // timing; halving doubles both.
    let base = Lanes::fig11_base();
    assert_eq!(base.serialization_cycles(PacketClass::Meta), 1);
    assert_eq!(base.serialization_cycles(PacketClass::Data), 5);
    let half = base.scaled_bandwidth(0.5);
    assert_eq!(half.serialization_cycles(PacketClass::Meta), 2);
    assert_eq!(half.serialization_cycles(PacketClass::Data), 10);
}
