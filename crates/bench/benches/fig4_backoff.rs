//! Figure 4 bench: the back-off resolution-delay model and the
//! pathological-burst series.

use fsoi_bench::microbench::{black_box, Criterion};
use fsoi_bench::{criterion_group, criterion_main};
use fsoi_net::analysis::backoff::{pathological_burst, resolution_delay};
use fsoi_net::backoff::BackoffPolicy;

fn bench_backoff(c: &mut Criterion) {
    c.bench_function("fig4/resolution_delay_2k_trials", |b| {
        b.iter(|| {
            resolution_delay(
                black_box(BackoffPolicy::PAPER_OPTIMUM),
                0.01,
                2,
                2,
                2_000,
                9,
            )
        })
    });
    c.bench_function("fig4/pathological_burst_63", |b| {
        b.iter(|| pathological_burst(black_box(63), BackoffPolicy::PAPER_OPTIMUM, 2, 2))
    });
    let mut rng = fsoi_sim::rng::Xoshiro256StarStar::new(1);
    c.bench_function("fig4/draw_delay_slots", |b| {
        b.iter(|| BackoffPolicy::PAPER_OPTIMUM.draw_delay_slots(black_box(3), &mut rng))
    });
}

criterion_group!(benches, bench_backoff);
criterion_main!(benches);
