//! End-to-end pin of the `experiments profile` observability contract:
//! the run manifest's deterministic-plane section (and the raw `--det`
//! export) must be byte-identical for `FSOI_THREADS` ∈ {1, 2, 8} on the
//! standard 80-cell sweep, while the telemetry section reports real
//! executor activity (chunks or steals) on multi-thread runs.

use std::path::PathBuf;
use std::process::Command;

fn tmp(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name)
}

/// Runs `experiments profile` in a fresh process (fresh telemetry
/// counters) with a small per-core workload and returns
/// `(manifest, deterministic export)`.
fn run_profile(threads: &str) -> (String, String) {
    let out = tmp(&format!("RUN_manifest_t{threads}.json"));
    let det = tmp(&format!("RUN_det_t{threads}.txt"));
    let status = Command::new(env!("CARGO_BIN_EXE_experiments"))
        .args([
            "profile",
            "--ops",
            "30",
            "--out",
            out.to_str().expect("utf8 path"),
            "--det",
            det.to_str().expect("utf8 path"),
        ])
        .env("FSOI_THREADS", threads)
        .env_remove("FSOI_CACHE") // cache hits must not perturb the planes
        .status()
        .expect("spawn experiments profile");
    assert!(status.success(), "profile failed for threads={threads}");
    (
        std::fs::read_to_string(&out).expect("manifest written"),
        std::fs::read_to_string(&det).expect("det export written"),
    )
}

/// The manifest's `deterministic` section, exclusive of `telemetry`.
fn det_section(manifest: &str) -> &str {
    let start = manifest
        .find("\"deterministic\": {")
        .expect("deterministic section present");
    let end = manifest
        .find("\"telemetry\": {")
        .expect("telemetry section present");
    &manifest[start..end]
}

/// Sums every `<key><integer>` occurrence, e.g. all workers' chunk
/// counts for `"\"chunks\": "`.
fn sum_counts(text: &str, key: &str) -> u64 {
    let mut total = 0u64;
    let mut rest = text;
    while let Some(pos) = rest.find(key) {
        rest = &rest[pos + key.len()..];
        let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
        total += digits.parse::<u64>().unwrap_or(0);
    }
    total
}

#[test]
fn deterministic_plane_is_byte_identical_across_thread_counts() {
    let (m1, d1) = run_profile("1");
    let (m2, d2) = run_profile("2");
    let (m8, d8) = run_profile("8");

    // Raw deterministic-plane export: profile + merged registry JSONL.
    assert!(!d1.is_empty(), "deterministic export must not be empty");
    assert!(d1.contains("\"span\":\"sim/cycles\""), "{d1}");
    assert_eq!(d1, d2, "threads=2 deterministic export diverged");
    assert_eq!(d1, d8, "threads=8 deterministic export diverged");

    // Manifest: versioned schema, deterministic section thread-blind.
    for m in [&m1, &m2, &m8] {
        assert!(m.contains("\"schema\": \"fsoi-run-manifest/v1\""), "{m}");
        assert!(m.contains("\"config_hash\": \""), "{m}");
    }
    assert_eq!(det_section(&m1), det_section(&m2));
    assert_eq!(det_section(&m1), det_section(&m8));
    assert!(
        !det_section(&m1).contains("thread"),
        "deterministic section must not mention threads: {}",
        det_section(&m1)
    );

    // Telemetry plane: real executor activity on multi-thread runs.
    for (threads, m) in [("2", &m2), ("8", &m8)] {
        let activity = sum_counts(m, "\"chunks\": ") + sum_counts(m, "\"steals\": ");
        assert!(
            activity > 0,
            "threads={threads}: telemetry shows no chunks or steals: {m}"
        );
    }
}
