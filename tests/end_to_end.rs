//! End-to-end system tests: full CMP runs over every interconnect,
//! checking the paper's qualitative performance structure and the
//! effectiveness of the §5 optimizations.

use fsoi::cmp::configs::{NetworkKind, SystemConfig};
use fsoi::cmp::system::CmpSystem;
use fsoi::cmp::workload::AppProfile;

const MAX: u64 = 50_000_000;

fn small(name: &str, ops: u64) -> AppProfile {
    let mut app = AppProfile::by_name(name).expect("known app");
    app.ops_per_core = ops;
    app
}

#[test]
fn performance_ordering_holds_per_paper() {
    // Figure 6's structure: L0 ≥ FSOI > Lr1 > Lr2, all faster than mesh.
    let app = small("oc", 800);
    let cycles = |kind| {
        CmpSystem::new(SystemConfig::paper_16(kind), app)
            .run(MAX)
            .cycles
    };
    let mesh = cycles(NetworkKind::mesh(16));
    let fsoi = cycles(NetworkKind::fsoi(16));
    let l0 = cycles(NetworkKind::L0);
    let lr1 = cycles(NetworkKind::Lr1);
    let lr2 = cycles(NetworkKind::Lr2);
    assert!(l0 <= fsoi, "L0 {l0} bounds FSOI {fsoi}");
    assert!(fsoi < lr1, "FSOI {fsoi} beats Lr1 {lr1}");
    assert!(lr1 < lr2, "Lr1 {lr1} beats Lr2 {lr2}");
    assert!(lr2 < mesh, "Lr2 {lr2} beats the mesh {mesh}");
}

#[test]
fn fsoi_packet_latency_is_single_digit_and_mesh_is_not() {
    let app = small("ba", 800);
    let run = |kind| CmpSystem::new(SystemConfig::paper_16(kind), app).run(MAX);
    let fsoi = run(NetworkKind::fsoi(16));
    let mesh = run(NetworkKind::mesh(16));
    assert!(
        fsoi.mean_packet_latency() < 10.0,
        "paper: 7.5 cycles; got {}",
        fsoi.mean_packet_latency()
    );
    assert!(
        mesh.mean_packet_latency() > 2.0 * fsoi.mean_packet_latency(),
        "mesh {} vs FSOI {}",
        mesh.mean_packet_latency(),
        fsoi.mean_packet_latency()
    );
}

#[test]
fn speedup_gap_widens_at_64_nodes() {
    // Figure 7's headline: the FSOI advantage grows with scale.
    let speedup = |nodes: usize, ops: u64| {
        let app = small("ray", ops);
        let mk = |kind| {
            let cfg = if nodes == 16 {
                SystemConfig::paper_16(kind)
            } else {
                SystemConfig::paper_64(kind)
            };
            CmpSystem::new(cfg, app).run(MAX).cycles as f64
        };
        mk(NetworkKind::mesh(nodes)) / mk(NetworkKind::fsoi(nodes))
    };
    let s16 = speedup(16, 700);
    let s64 = speedup(64, 250);
    assert!(s16 > 1.1, "16-node speedup {s16}");
    assert!(s64 > s16, "64-node {s64} must exceed 16-node {s16}");
}

#[test]
fn network_energy_is_an_order_of_magnitude_below_mesh() {
    let app = small("fft", 800);
    let run = |kind| CmpSystem::new(SystemConfig::paper_16(kind), app).run(MAX);
    let fsoi = run(NetworkKind::fsoi(16));
    let mesh = run(NetworkKind::mesh(16));
    let ratio = mesh.energy.network_j / fsoi.energy.network_j;
    assert!(ratio > 10.0, "paper: ~20x; got {ratio:.1}x");
    assert!(
        fsoi.energy.total_j() < 0.8 * mesh.energy.total_j(),
        "paper: ~40% total savings"
    );
}

#[test]
fn confirmation_ack_elision_cuts_meta_traffic_and_collisions() {
    let app = small("mp", 900);
    let run = |on| {
        let cfg = SystemConfig::paper_16(NetworkKind::fsoi(16)).with_optimizations(on);
        CmpSystem::new(cfg, app).run(MAX)
    };
    let with = run(true);
    let without = run(false);
    assert!(with.acks_elided > 0);
    assert!(with.packets_sent[0] < without.packets_sent[0]);
    // The paper notes the optimized run speeds up, which *raises* the
    // per-slot transmission probability — so the per-transmission
    // collision rate may tick up even as absolute collisions fall. Bound
    // it instead of ordering it.
    assert!(
        with.meta_collision_rate < 1.5 * without.meta_collision_rate.max(0.005),
        "collision rate must not explode: {} vs {}",
        with.meta_collision_rate,
        without.meta_collision_rate
    );
    // Absolute meta-lane collision volume (rate × traffic) must not grow.
    let abs_with = with.meta_collision_rate * with.packets_sent[0] as f64;
    let abs_without = without.meta_collision_rate * without.packets_sent[0] as f64;
    assert!(
        abs_with < 1.1 * abs_without,
        "absolute collisions must not grow: {abs_with:.0} vs {abs_without:.0}"
    );
}

#[test]
fn data_lane_optimizations_cut_collision_cost() {
    // §5.2 ablation: hints + request spacing reduce the data collision
    // rate or its resolution cost.
    let app = small("mp", 900);
    let with = CmpSystem::new(SystemConfig::paper_16(NetworkKind::fsoi(16)), app).run(MAX);
    let plain = fsoi::net::config::FsoiConfig::nodes(16)
        .with_hints(false)
        .with_request_spacing(false);
    let without = CmpSystem::new(SystemConfig::paper_16(NetworkKind::Fsoi(plain)), app).run(MAX);
    let cost_with = with.data_collision_rate * with.data_resolution_delay.max(1.0);
    let cost_without = without.data_collision_rate * without.data_resolution_delay.max(1.0);
    assert!(
        cost_with < cost_without,
        "collision cost must drop: {cost_with:.3} vs {cost_without:.3}"
    );
    assert!(
        with.hint_accuracy > 0.8,
        "paper: 94%; got {}",
        with.hint_accuracy
    );
}

#[test]
fn more_memory_bandwidth_never_hurts() {
    let app = small("rx", 600);
    let run = |bw| {
        let cfg = SystemConfig::paper_16(NetworkKind::fsoi(16)).with_mem_bandwidth(bw);
        CmpSystem::new(cfg, app).run(MAX).cycles
    };
    assert!(run(52.8) <= run(8.8));
}

#[test]
fn runs_are_deterministic_and_seed_sensitive() {
    let app = small("ilink", 500);
    let run = |seed| {
        let cfg = SystemConfig::paper_16(NetworkKind::fsoi(16)).with_seed(seed);
        CmpSystem::new(cfg, app).run(MAX).cycles
    };
    assert_eq!(run(7), run(7));
    assert_ne!(run(7), run(8));
}

#[test]
fn every_app_completes_on_fsoi() {
    for mut app in AppProfile::suite() {
        app.ops_per_core = 250;
        let r = CmpSystem::new(SystemConfig::paper_16(NetworkKind::fsoi(16)), app).run(MAX);
        assert!(r.cycles > 0, "{} must finish", r.app);
        assert!(r.packets_sent[0] > 0 && r.packets_sent[1] > 0, "{}", r.app);
    }
}

#[test]
fn steady_state_miss_rates_are_in_band() {
    // Short runs are cold-start dominated; check the band at a length
    // where the L1 hot sets are established. The light and heavy ends of
    // the suite must separate.
    let rate = |name| {
        let r = CmpSystem::new(
            SystemConfig::paper_16(NetworkKind::fsoi(16)),
            small(name, 2_000),
        )
        .run(MAX);
        r.l1_miss_rate
    };
    let light = rate("ws");
    let heavy = rate("mp");
    assert!(light > 0.005 && light < 0.18, "ws miss rate {light}");
    assert!(heavy > light, "mp ({heavy}) heavier than ws ({light})");
    assert!(heavy < 0.30, "mp miss rate {heavy}");
}
