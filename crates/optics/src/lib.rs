//! Optical physical layer for the intra-chip free-space optical
//! interconnect (FSOI) of Xue et al., ISCA 2010.
//!
//! The paper's Table 1 characterizes a single-bit FSOI link crossing the
//! chip diagonally (2 cm) at 980 nm and 40 Gbps: a back-emitting VCSEL,
//! collimating/focusing micro-lenses on the GaAs substrate, a series of
//! micro-mirrors in free space, and a resonant-cavity photodetector feeding
//! a TIA + limiting amplifier. This crate rebuilds that signal chain from
//! first-order device physics:
//!
//! * [`units`] — strongly-typed physical quantities (power, length, current…),
//! * [`gaussian`] — Gaussian-beam propagation and aperture clipping,
//! * [`vcsel`] — the laser's L-I curve, parasitics and modulation,
//! * [`photodetector`] — responsivity and capacitance,
//! * [`tia`] — transimpedance amplifier bandwidth/gain/noise,
//! * [`noise`] — shot/thermal noise and the Q-factor ⇄ BER relations,
//! * [`path`] — composable optical paths (mirrors, lenses, free space),
//! * [`ook`] — on-off-keying superposition (colliding beams OR together),
//! * [`link`] — the end-to-end link budget that regenerates **Table 1**,
//! * [`crossbar`] — worst-case-loss budget of a ring-matrix crossbar (the
//!   PAPERS.md comparative-study baseline for the design-space grids).
//!
//! # Example: recompute the paper's link budget
//!
//! ```
//! use fsoi_optics::link::OpticalLink;
//!
//! let link = OpticalLink::paper_default();
//! let budget = link.budget();
//! // The paper reports 2.6 dB path loss and a 1e-10 bit error rate.
//! assert!((budget.path_loss_db - 2.6).abs() < 0.3);
//! assert!(budget.bit_error_rate < 1e-9);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod clock;
pub mod crossbar;
pub mod gaussian;
pub mod link;
pub mod noise;
pub mod ook;
pub mod path;
pub mod photodetector;
pub mod thermal;
pub mod tia;
pub mod units;
pub mod vcsel;

use core::fmt;

/// Errors produced when an optical configuration is physically meaningless.
#[derive(Debug, Clone, PartialEq)]
pub enum OpticsError {
    /// A quantity that must be strictly positive was zero or negative.
    NonPositive {
        /// Which quantity was invalid.
        what: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A probability or efficiency was outside `[0, 1]`.
    OutOfUnitRange {
        /// Which quantity was invalid.
        what: &'static str,
        /// The offending value.
        value: f64,
    },
    /// The link budget closes with insufficient received power.
    LinkDoesNotClose {
        /// Achieved Q-factor.
        q_factor: f64,
        /// Required Q-factor.
        required: f64,
    },
}

impl fmt::Display for OpticsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OpticsError::NonPositive { what, value } => {
                write!(f, "{what} must be positive, got {value}")
            }
            OpticsError::OutOfUnitRange { what, value } => {
                write!(f, "{what} must lie in [0, 1], got {value}")
            }
            OpticsError::LinkDoesNotClose { q_factor, required } => {
                write!(
                    f,
                    "link budget does not close: Q-factor {q_factor:.2} below required {required:.2}"
                )
            }
        }
    }
}

impl std::error::Error for OpticsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_nonempty() {
        let e = OpticsError::NonPositive {
            what: "wavelength",
            value: -1.0,
        };
        assert!(e.to_string().contains("wavelength"));
        let e = OpticsError::OutOfUnitRange {
            what: "reflectivity",
            value: 1.5,
        };
        assert!(e.to_string().contains("reflectivity"));
        let e = OpticsError::LinkDoesNotClose {
            q_factor: 3.0,
            required: 6.0,
        };
        assert!(e.to_string().contains("does not close"));
    }
}
