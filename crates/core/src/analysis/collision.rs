//! Collision-probability analysis (Figure 3 and footnote 4).
//!
//! Under the simplified model — every node transmits with probability `p`
//! per slot to a uniformly random destination, and the `N − 1` senders of
//! each destination are divided evenly among its `R` receivers — the
//! probability that *some* receiver of a given node sees a collision in a
//! slot is
//!
//! ```text
//! P = 1 − [ (1 − p/(N−1))^n  +  n · p/(N−1) · (1 − p/(N−1))^(n−1) ]^R
//! ```
//!
//! with `n = (N − 1)/R` senders sharing each receiver: each receiver is
//! collision-free when zero or one of its senders targets it. Figure 3
//! plots this normalized to `p` for `R = 1..4`, showing collision
//! frequency inversely proportional to the receiver count — the basis for
//! the paper's choice of 2 receivers per lane.

use fsoi_sim::rng::Xoshiro256StarStar;

/// The Figure 3 closed form: probability a given node experiences a
/// collision in a slot.
///
/// # Panics
///
/// Panics unless `nodes >= 2`, `receivers >= 1` and `p ∈ [0, 1]`.
pub fn node_collision_probability(p: f64, nodes: usize, receivers: usize) -> f64 {
    assert!(nodes >= 2, "need at least two nodes");
    assert!(receivers >= 1, "need at least one receiver");
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    let n = (nodes - 1) as f64 / receivers as f64;
    if n <= 1.0 {
        // One (or fewer) senders per receiver: collisions are impossible.
        return 0.0;
    }
    let q = p / (nodes - 1) as f64; // P(a specific sender targets this node)
    let none = (1.0 - q).powf(n);
    let one = n * q * (1.0 - q).powf(n - 1.0);
    1.0 - (none + one).powi(receivers as i32)
}

/// Figure 3's y-axis: the node collision probability normalized to the
/// transmission probability.
pub fn normalized_collision_probability(p: f64, nodes: usize, receivers: usize) -> f64 {
    if p == 0.0 {
        0.0
    } else {
        node_collision_probability(p, nodes, receivers) / p
    }
}

/// Footnote 4's per-packet view for the 2-receiver design: the probability
/// that a *transmitted* packet collides. A packet collides when at least
/// one of the other senders sharing its receiver (≈ `(N−1)/2 − 1` nodes)
/// transmits to the same destination in the same slot:
///
/// ```text
/// P ≈ 1 − (1 − p/(N−1))^((N−1)/2 − 1) ≈ p/2 − p²/8 + …
/// ```
pub fn per_packet_collision_probability(p: f64, nodes: usize) -> f64 {
    assert!(nodes >= 3, "need at least three nodes for sharing");
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    let sharers = (nodes - 1) as f64 / 2.0 - 1.0;
    let q = p / (nodes - 1) as f64;
    1.0 - (1.0 - q).powf(sharers)
}

/// Result of a Monte-Carlo collision experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MonteCarloResult {
    /// Fraction of slots in which the observed node had a collision.
    pub node_collision_rate: f64,
    /// Fraction of transmitted packets that collided.
    pub packet_collision_rate: f64,
    /// Measured per-node transmission probability (sanity check ≈ `p`).
    pub measured_p: f64,
}

/// Monte-Carlo validation of the closed form: simulates `slots` slots of
/// the idealized model (every node transmits w.p. `p` to a uniform
/// destination; senders share receivers round-robin) and measures both the
/// per-node and per-packet collision rates.
pub fn monte_carlo(
    p: f64,
    nodes: usize,
    receivers: usize,
    slots: u64,
    seed: u64,
) -> MonteCarloResult {
    assert!(nodes >= 2 && receivers >= 1);
    let mut rng = Xoshiro256StarStar::new(seed);
    let mut node_collisions = 0u64;
    let mut packet_collisions = 0u64;
    let mut transmissions = 0u64;
    // occupancy[dst][rx] = number of packets in this slot.
    let mut occupancy = vec![vec![0u32; receivers]; nodes];
    for _ in 0..slots {
        for row in &mut occupancy {
            row.fill(0);
        }
        let mut sent: Vec<(usize, usize)> = Vec::new(); // (dst, rx)
        for src in 0..nodes {
            if !rng.bernoulli(p) {
                continue;
            }
            transmissions += 1;
            let mut dst = rng.next_below(nodes as u64 - 1) as usize;
            if dst >= src {
                dst += 1;
            }
            let rx = crate::topology::receiver_index(
                crate::topology::NodeId(src),
                crate::topology::NodeId(dst),
                nodes,
                receivers,
            );
            occupancy[dst][rx] += 1;
            sent.push((dst, rx));
        }
        // Node 0's view for the node-collision rate (all nodes are
        // symmetric; using one avoids double counting).
        if occupancy[0].iter().any(|&c| c >= 2) {
            node_collisions += 1;
        }
        packet_collisions += sent
            .iter()
            .filter(|&&(dst, rx)| occupancy[dst][rx] >= 2)
            .count() as u64;
    }
    MonteCarloResult {
        node_collision_rate: node_collisions as f64 / slots as f64,
        packet_collision_rate: if transmissions == 0 {
            0.0
        } else {
            packet_collisions as f64 / transmissions as f64
        },
        measured_p: transmissions as f64 / (slots as f64 * nodes as f64),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_p_means_zero_collisions() {
        assert_eq!(node_collision_probability(0.0, 16, 2), 0.0);
        assert_eq!(normalized_collision_probability(0.0, 16, 2), 0.0);
        assert_eq!(per_packet_collision_probability(0.0, 16), 0.0);
    }

    #[test]
    fn more_receivers_fewer_collisions() {
        let p = 0.10;
        let mut prev = f64::INFINITY;
        for r in 1..=4 {
            let c = node_collision_probability(p, 16, r);
            assert!(c < prev, "R={r}: {c} !< {prev}");
            prev = c;
        }
    }

    #[test]
    fn collision_frequency_roughly_inverse_in_receivers() {
        // Paper: "to a first-order approximation, collision frequency is
        // inversely proportional to the number of receivers."
        let p = 0.05;
        let c1 = node_collision_probability(p, 16, 1);
        let c2 = node_collision_probability(p, 16, 2);
        let c4 = node_collision_probability(p, 16, 4);
        assert!((c1 / c2 - 2.0).abs() < 0.35, "c1/c2 = {}", c1 / c2);
        assert!((c2 / c4 - 2.0).abs() < 0.35, "c2/c4 = {}", c2 / c4);
    }

    #[test]
    fn weak_dependence_on_node_count() {
        // Paper: "the result has an extremely weak dependency on the number
        // of nodes in a system (N) as long as it is not too small."
        let p = 0.10;
        let a = normalized_collision_probability(p, 16, 2);
        let b = normalized_collision_probability(p, 64, 2);
        let c = normalized_collision_probability(p, 256, 2);
        assert!((a - b).abs() / a < 0.12, "{a} vs {b}");
        assert!((b - c).abs() / b < 0.05, "{b} vs {c}");
    }

    #[test]
    fn normalized_curve_increases_with_p() {
        let mut prev = 0.0;
        for &p in &[0.01, 0.05, 0.10, 0.20, 0.33] {
            let c = normalized_collision_probability(p, 16, 2);
            assert!(c > prev);
            prev = c;
        }
        // At p = 33 %, R = 1 the normalized probability reaches tens of
        // percent (the top of Figure 3's y-axis).
        let top = normalized_collision_probability(0.33, 16, 1);
        assert!(top > 0.10 && top < 0.35, "top = {top}");
    }

    #[test]
    fn footnote4_series_expansion() {
        // For small p, per-packet probability ≈ p/2.
        for &p in &[0.01, 0.02, 0.05] {
            let exact = per_packet_collision_probability(p, 16);
            let approx = p / 2.0 - p * p / 8.0;
            assert!(
                (exact - approx).abs() < 0.1 * p,
                "p={p}: exact {exact} vs series {approx}"
            );
        }
    }

    #[test]
    fn monte_carlo_matches_closed_form() {
        for &(p, r) in &[(0.05, 1usize), (0.10, 2), (0.20, 2), (0.10, 4)] {
            let theory = node_collision_probability(p, 16, r);
            let mc = monte_carlo(p, 16, r, 200_000, 7);
            assert!((mc.measured_p - p).abs() < 0.01);
            assert!(
                (mc.node_collision_rate - theory).abs() < 0.15 * theory.max(0.002),
                "p={p} R={r}: sim {} vs theory {theory}",
                mc.node_collision_rate
            );
        }
    }

    #[test]
    fn monte_carlo_packet_rate_matches_footnote() {
        let p = 0.10;
        let mc = monte_carlo(p, 16, 2, 300_000, 11);
        let theory = per_packet_collision_probability(p, 16);
        assert!(
            (mc.packet_collision_rate - theory).abs() < 0.15 * theory,
            "sim {} vs theory {theory}",
            mc.packet_collision_rate
        );
    }

    #[test]
    #[should_panic(expected = "p must be a probability")]
    fn invalid_p_panics() {
        node_collision_probability(1.5, 16, 2);
    }
}
