//! Deterministic harness profile: hierarchical span counters keyed by
//! sim-domain quantities.
//!
//! The harness observability plane is split in two (see DESIGN.md
//! § "Harness observability plane"). This module is the **deterministic
//! plane**: counts of things the *simulation* did — cycles simulated,
//! ticks stepped, fast-forward jumps and cycles skipped, events
//! processed, cells forked vs built cold. Every count is a pure function
//! of the cell inputs, so a [`Profile`] is byte-identical across thread
//! counts, cache states and hosts, and its exports may sit inside
//! byte-identity gates. Wall-clock and scheduling observations
//! (steal counts, idle time, phase durations) are *not* allowed here —
//! they live in [`crate::telemetry`], the explicitly nondeterministic
//! plane.
//!
//! Spans are named by `/`-separated paths ("sim/ff/cycles_skipped");
//! the hierarchy is implied by the path segments, and [`Profile::to_tree`]
//! renders it as an indented tree. Exports:
//!
//! * [`Profile::to_jsonl`] — one sorted JSON line per span,
//! * [`Profile::to_tree`] — the human-readable tree report,
//! * [`Profile::export`] — fold into a [`metrics::Registry`] as
//!   `prof.<path>` counters,
//! * [`Profile::to_wire_fragment`] / [`Profile::from_wire_fragment`] —
//!   a single-line bit-exact encoding for the cell-cache wire format.
//!
//! ```
//! use fsoi_sim::profile::Profile;
//! let mut p = Profile::new();
//! p.add("sim/ticks", 10);
//! p.add("sim/ff/jumps", 3);
//! assert_eq!(p.get("sim/ticks"), 10);
//! let round = Profile::from_wire_fragment(&p.to_wire_fragment()).unwrap();
//! assert_eq!(round, p);
//! ```

use crate::det::DetMap;
use crate::metrics::Registry;
use std::fmt::Write as _;

/// A deterministic set of named span counters (see module docs).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Profile {
    counts: DetMap<String, u64>,
}

impl Profile {
    /// Creates an empty profile.
    pub fn new() -> Profile {
        Profile::default()
    }

    /// Adds `delta` to the span at `path` (saturating), creating it at
    /// zero. Paths are `/`-separated segment names; they must not
    /// contain spaces, colons or newlines (reserved by the wire and
    /// export formats).
    pub fn add(&mut self, path: &str, delta: u64) {
        debug_assert!(
            !path.is_empty() && !path.contains([' ', ':', '\n', '"', '{', '}']),
            "span path {path:?} contains reserved characters"
        );
        let cur = self.counts.get(&path.to_string()).copied().unwrap_or(0);
        self.counts
            .insert(path.to_string(), cur.saturating_add(delta));
    }

    /// Reads a span count (0 when absent).
    pub fn get(&self, path: &str) -> u64 {
        self.counts.get(&path.to_string()).copied().unwrap_or(0)
    }

    /// Adds every span of `other` into `self` (saturating per span).
    pub fn merge(&mut self, other: &Profile) {
        for (path, count) in other.iter() {
            self.add(path, count);
        }
    }

    /// Number of distinct spans.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// True when no span has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Iterates `(path, count)` in lexicographic path order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counts.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Exports every span as one JSON line, sorted by path — the
    /// deterministic-plane export compared byte-for-byte across thread
    /// counts by `scripts/verify.sh`.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(self.counts.len() * 48);
        for (path, count) in self.iter() {
            let _ = writeln!(out, "{{\"span\":\"{path}\",\"count\":{count}}}");
        }
        out
    }

    /// Renders the spans as an indented tree grouped by path segment,
    /// counts right-aligned — the text report `experiments profile`
    /// prints.
    pub fn to_tree(&self) -> String {
        // (depth, segment, leaf count) rows; interior segments print
        // once and children nest under them.
        let mut rows: Vec<(usize, String, Option<u64>)> = Vec::new();
        let mut printed: Vec<String> = Vec::new();
        for (path, count) in self.iter() {
            let segs: Vec<&str> = path.split('/').collect();
            let mut common = 0;
            while common < printed.len() && common < segs.len() && printed[common] == segs[common] {
                common += 1;
            }
            printed.truncate(common);
            for (d, seg) in segs.iter().enumerate().skip(common) {
                let leaf = d + 1 == segs.len();
                rows.push((d, (*seg).to_string(), leaf.then_some(count)));
                printed.push((*seg).to_string());
            }
        }
        let label_w = rows
            .iter()
            .map(|(d, s, _)| 2 * d + s.len())
            .max()
            .unwrap_or(4)
            .max(4);
        let count_w = rows
            .iter()
            .filter_map(|(_, _, c)| c.map(|c| c.to_string().len()))
            .max()
            .unwrap_or(1);
        let mut out = String::new();
        let _ = writeln!(out, "{:<label_w$}  {:>count_w$}", "span", "n");
        for (d, seg, count) in rows {
            let pad = "  ".repeat(d);
            match count {
                Some(c) => {
                    let _ = writeln!(out, "{:<label_w$}  {c:>count_w$}", format!("{pad}{seg}"));
                }
                None => {
                    let _ = writeln!(out, "{pad}{seg}");
                }
            }
        }
        out
    }

    /// Folds every span into `registry` as a `prof.<path>` counter
    /// (path separators become `.`), carrying `labels`.
    pub fn export(&self, registry: &mut Registry, labels: &[(&str, &str)]) {
        for (path, count) in self.iter() {
            let name = format!("prof.{}", path.replace('/', "."));
            registry.inc(&name, labels, count);
        }
    }

    /// Encodes the profile as one line of sorted `path:count` pairs
    /// (`-` when empty) — the fragment embedded in the cell-cache wire
    /// format. Bit-exact: [`Profile::from_wire_fragment`] round-trips.
    pub fn to_wire_fragment(&self) -> String {
        if self.counts.is_empty() {
            return "-".to_string();
        }
        let mut out = String::with_capacity(self.counts.len() * 32);
        for (i, (path, count)) in self.iter().enumerate() {
            if i > 0 {
                out.push(' ');
            }
            let _ = write!(out, "{path}:{count}");
        }
        out
    }

    /// Decodes a [`Profile::to_wire_fragment`] line; `None` on any
    /// malformed pair (the cache fails closed and treats it as a miss).
    pub fn from_wire_fragment(s: &str) -> Option<Profile> {
        let s = s.trim();
        let mut p = Profile::new();
        if s == "-" {
            return Some(p);
        }
        for pair in s.split(' ') {
            let (path, count) = pair.split_once(':')?;
            if path.is_empty() {
                return None;
            }
            p.add(path, count.parse::<u64>().ok()?);
        }
        Some(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_get_and_saturate() {
        let mut p = Profile::new();
        assert!(p.is_empty());
        p.add("a/b", 2);
        p.add("a/b", 3);
        assert_eq!(p.get("a/b"), 5);
        assert_eq!(p.get("missing"), 0);
        p.add("a/b", u64::MAX);
        assert_eq!(p.get("a/b"), u64::MAX, "span counts saturate, not wrap");
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn merge_sums_spans() {
        let mut a = Profile::new();
        a.add("x", 1);
        a.add("y/z", 2);
        let mut b = Profile::new();
        b.add("y/z", 3);
        b.add("w", 4);
        a.merge(&b);
        assert_eq!(a.get("x"), 1);
        assert_eq!(a.get("y/z"), 5);
        assert_eq!(a.get("w"), 4);
    }

    #[test]
    fn jsonl_is_sorted_and_stable() {
        let mut p = Profile::new();
        p.add("sim/ticks", 7);
        p.add("cells/forked", 3);
        let jsonl = p.to_jsonl();
        assert_eq!(jsonl, p.clone().to_jsonl(), "export must be deterministic");
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0], "{\"span\":\"cells/forked\",\"count\":3}");
        assert_eq!(lines[1], "{\"span\":\"sim/ticks\",\"count\":7}");
    }

    #[test]
    fn wire_fragment_round_trips() {
        let mut p = Profile::new();
        p.add("sim/cycles", 123_456);
        p.add("sim/ff/jumps", 9);
        let frag = p.to_wire_fragment();
        assert_eq!(frag, "sim/cycles:123456 sim/ff/jumps:9");
        assert_eq!(Profile::from_wire_fragment(&frag), Some(p));
        assert_eq!(Profile::from_wire_fragment("-"), Some(Profile::new()));
        assert_eq!(Profile::new().to_wire_fragment(), "-");
    }

    #[test]
    fn malformed_wire_fragments_are_rejected() {
        assert_eq!(Profile::from_wire_fragment("no-colon"), None);
        assert_eq!(Profile::from_wire_fragment("a:nan"), None);
        assert_eq!(Profile::from_wire_fragment(":3"), None);
        assert_eq!(
            Profile::from_wire_fragment("a:1  b:2"),
            None,
            "double space"
        );
    }

    #[test]
    fn tree_nests_by_path_segment() {
        let mut p = Profile::new();
        p.add("sim/ticks", 10);
        p.add("sim/ff/jumps", 2);
        p.add("cells", 80);
        let tree = p.to_tree();
        assert!(tree.contains("cells"), "{tree}");
        assert!(tree.contains("  ff"), "interior segment nests: {tree}");
        assert!(tree.contains("    jumps"), "leaf nests deeper: {tree}");
        assert!(tree.contains("80"), "{tree}");
    }

    #[test]
    fn export_lands_as_prof_counters() {
        let mut p = Profile::new();
        p.add("sim/ff/jumps", 4);
        let mut reg = Registry::new();
        p.export(&mut reg, &[("app", "bn")]);
        assert_eq!(reg.counter("prof.sim.ff.jumps", &[("app", "bn")]), 4);
    }
}
