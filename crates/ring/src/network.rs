//! The MWSR token-ring crossbar engine.

use crate::config::RingConfig;
use fsoi_sim::event::EventQueue;
use fsoi_sim::queue::BoundedQueue;
use fsoi_sim::stats::Summary;
use fsoi_sim::Cycle;

/// A packet on the ring crossbar.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RingPacket {
    /// Unique id assigned at injection.
    pub id: u64,
    /// Source node.
    pub src: usize,
    /// Destination node (owner of the home channel used).
    pub dst: usize,
    /// True for 360-bit data packets, false for 72-bit meta.
    pub is_data: bool,
    /// Opaque client tag.
    pub tag: u64,
    /// Injection time.
    pub enqueued_at: Cycle,
}

impl RingPacket {
    /// A meta packet.
    pub fn meta(src: usize, dst: usize, tag: u64) -> Self {
        RingPacket {
            id: 0,
            src,
            dst,
            is_data: false,
            tag,
            enqueued_at: Cycle::ZERO,
        }
    }

    /// A data packet.
    pub fn data(src: usize, dst: usize, tag: u64) -> Self {
        RingPacket {
            id: 0,
            src,
            dst,
            is_data: true,
            tag,
            enqueued_at: Cycle::ZERO,
        }
    }
}

/// A delivered packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RingDelivered {
    /// The packet.
    pub packet: RingPacket,
    /// Delivery time at the destination.
    pub delivered_at: Cycle,
}

impl RingDelivered {
    /// End-to-end latency.
    pub fn latency(&self) -> u64 {
        self.delivered_at - self.packet.enqueued_at
    }
}

/// Per-destination home channel: one token, one writer at a time.
#[derive(Debug)]
struct Channel {
    /// The channel is granted to writers serially; this is when the token
    /// frees up next.
    token_free_at: Cycle,
    /// Whether the previous grant ended recently (a hot token passes
    /// writer-to-writer cheaply; a cold one must circulate).
    last_release: Option<Cycle>,
    /// Waiting writers, FIFO (the token visits writers in ring order; FIFO
    /// is a fair-service approximation).
    queue: BoundedQueue<RingPacket>,
    served: u64,
    token_wait: Summary,
}

/// Statistics of a ring run.
#[derive(Debug, Default)]
pub struct RingStats {
    /// Packets accepted.
    pub injected: u64,
    /// Packets rejected (queue full).
    pub rejected: u64,
    /// Packets delivered.
    pub delivered: u64,
    /// End-to-end latency.
    pub latency: Summary,
    /// Token acquisition wait.
    pub token_wait: Summary,
}

/// The Corona-style crossbar.
#[derive(Debug)]
pub struct RingNetwork {
    cfg: RingConfig,
    now: Cycle,
    channels: Vec<Channel>,
    deliveries: EventQueue<RingPacket>,
    delivered: Vec<RingDelivered>,
    stats: RingStats,
    next_id: u64,
}

impl RingNetwork {
    /// Creates the crossbar.
    pub fn new(cfg: RingConfig) -> Self {
        RingNetwork {
            channels: (0..cfg.nodes)
                .map(|_| Channel {
                    token_free_at: Cycle::ZERO,
                    last_release: None,
                    queue: BoundedQueue::new(cfg.injection_queue),
                    served: 0,
                    token_wait: Summary::new(),
                })
                .collect(),
            now: Cycle::ZERO,
            deliveries: EventQueue::new(),
            delivered: Vec::new(),
            stats: RingStats::default(),
            next_id: 0,
            cfg,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &RingConfig {
        &self.cfg
    }

    /// Current time.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Statistics so far.
    pub fn stats(&self) -> &RingStats {
        &self.stats
    }

    /// Static optical power of the whole crossbar (ring tuning +
    /// modulators), watts.
    pub fn static_power_w(&self) -> f64 {
        self.cfg.channel_static_w * self.cfg.nodes as f64
    }

    /// Injects a packet onto its destination's home channel.
    ///
    /// # Errors
    ///
    /// Returns `Err(packet)` when the channel's writer queue is full.
    ///
    /// # Panics
    ///
    /// Panics if `src == dst` or out of range.
    pub fn inject(&mut self, mut packet: RingPacket) -> Result<u64, RingPacket> {
        assert_ne!(packet.src, packet.dst, "no self-injection");
        assert!(packet.src < self.cfg.nodes && packet.dst < self.cfg.nodes);
        packet.id = self.next_id;
        packet.enqueued_at = self.now;
        match self.channels[packet.dst].queue.push(packet) {
            Ok(()) => {
                self.next_id += 1;
                self.stats.injected += 1;
                Ok(packet.id)
            }
            Err(p) => {
                self.stats.rejected += 1;
                Err(p)
            }
        }
    }

    /// Advances one cycle.
    pub fn tick(&mut self) {
        // Grant tokens: each channel serves its queue serially.
        for d in 0..self.channels.len() {
            loop {
                let ch = &self.channels[d];
                if ch.queue.is_empty() || ch.token_free_at > self.now {
                    break;
                }
                let ch = &mut self.channels[d];
                // lint: allow(P1) the is_empty check above guarantees a queued packet
                let packet = ch.queue.pop().expect("non-empty");
                // Token acquisition: if the token was just released by a
                // contending writer, passing it on is cheap; a cold token
                // must circulate half the loop on average.
                let acquisition = match ch.last_release {
                    Some(rel)
                        if self.now.saturating_sub(rel) < self.cfg.ring_circulation_cycles =>
                    {
                        self.cfg.token_pass_cycles
                    }
                    _ => self.cfg.idle_token_wait(),
                };
                let start = self.now.max(ch.token_free_at) + acquisition;
                let ser = if packet.is_data {
                    self.cfg.data_serialization
                } else {
                    self.cfg.meta_serialization
                };
                let wait = start.saturating_sub(packet.enqueued_at.as_u64().into());
                ch.token_wait.record(wait as f64);
                self.stats.token_wait.record(acquisition as f64);
                let done = start + ser;
                ch.token_free_at = done;
                ch.last_release = Some(done);
                ch.served += 1;
                // Flight: the reader sits somewhere on the loop; half a
                // circulation on average.
                let arrive = done + self.cfg.ring_circulation_cycles / 2;
                self.deliveries.push(arrive, packet);
            }
        }
        self.now += 1;
        while let Some((at, packet)) = self.deliveries.pop_due(self.now) {
            self.stats.delivered += 1;
            self.stats.latency.record((at - packet.enqueued_at) as f64);
            self.delivered.push(RingDelivered {
                packet,
                delivered_at: at,
            });
        }
    }

    /// Takes deliveries since the last drain.
    pub fn drain_delivered(&mut self) -> Vec<RingDelivered> {
        std::mem::take(&mut self.delivered)
    }

    /// Undrained deliveries.
    pub fn delivered_count(&self) -> usize {
        self.delivered.len()
    }

    /// True when nothing is queued or in flight.
    pub fn is_idle(&self) -> bool {
        self.deliveries.is_empty() && self.channels.iter().all(|c| c.queue.is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_until_idle(net: &mut RingNetwork, max: u64) -> Vec<RingDelivered> {
        let mut out = Vec::new();
        for _ in 0..max {
            net.tick();
            out.extend(net.drain_delivered());
            if net.is_idle() {
                break;
            }
        }
        out
    }

    #[test]
    fn single_meta_packet_timing() {
        let mut net = RingNetwork::new(RingConfig::nodes(64));
        net.inject(RingPacket::meta(3, 40, 7)).unwrap();
        let out = run_until_idle(&mut net, 100);
        assert_eq!(out.len(), 1);
        // Idle token wait 4 + serialization 1 + half-loop flight 4 = 9.
        assert_eq!(out[0].latency(), 9);
        assert_eq!(out[0].packet.tag, 7);
    }

    #[test]
    fn data_packet_adds_serialization() {
        let mut net = RingNetwork::new(RingConfig::nodes(64));
        net.inject(RingPacket::data(3, 40, 0)).unwrap();
        let out = run_until_idle(&mut net, 100);
        assert_eq!(out[0].latency(), 11); // 4 + 3 + 4
    }

    #[test]
    fn same_destination_serializes() {
        // Two writers to one home channel: the second waits for the
        // token, no collisions ever.
        let mut net = RingNetwork::new(RingConfig::nodes(64));
        net.inject(RingPacket::data(1, 40, 0)).unwrap();
        net.inject(RingPacket::data(2, 40, 1)).unwrap();
        let out = run_until_idle(&mut net, 200);
        assert_eq!(out.len(), 2);
        let mut times: Vec<u64> = out.iter().map(|d| d.delivered_at.as_u64()).collect();
        times.sort_unstable();
        // Second grant pays a hot-token pass (2) + serialization.
        assert!(times[1] >= times[0] + 3, "{times:?}");
    }

    #[test]
    fn different_destinations_run_concurrently() {
        let mut net = RingNetwork::new(RingConfig::nodes(64));
        for src in 0..8usize {
            net.inject(RingPacket::meta(src, src + 8, src as u64))
                .unwrap();
        }
        let out = run_until_idle(&mut net, 100);
        assert_eq!(out.len(), 8);
        // All identical latencies: channels are independent.
        assert!(out.iter().all(|d| d.latency() == 9));
    }

    #[test]
    fn all_to_one_drains_without_loss() {
        let mut net = RingNetwork::new(RingConfig::nodes(16));
        let mut injected = 0;
        for src in 1..16usize {
            if net.inject(RingPacket::data(src, 0, src as u64)).is_ok() {
                injected += 1;
            }
        }
        let out = run_until_idle(&mut net, 2_000);
        assert_eq!(out.len(), injected);
        assert!(net.stats().token_wait.mean() > 0.0);
    }

    #[test]
    fn queue_overflow_rejects() {
        let mut net = RingNetwork::new(RingConfig::nodes(16));
        let mut ok = 0;
        for i in 0..40u64 {
            if net.inject(RingPacket::data(1, 0, i)).is_ok() {
                ok += 1;
            }
        }
        assert_eq!(ok, 16);
        assert_eq!(net.stats().rejected, 24);
    }

    #[test]
    fn static_power_scales_with_channels() {
        let small = RingNetwork::new(RingConfig::nodes(16));
        let big = RingNetwork::new(RingConfig::nodes(64));
        assert!(big.static_power_w() > small.static_power_w());
        assert!((big.static_power_w() - 0.26 * 64.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "no self-injection")]
    fn self_injection_panics() {
        let mut net = RingNetwork::new(RingConfig::nodes(16));
        let _ = net.inject(RingPacket::meta(3, 3, 0));
    }
}
