//! Property tests for the simulation kernel (on the in-repo `fsoi-check`
//! harness; see that crate's docs for seeding and `.regressions` replay).

use fsoi_check::{any_bool, checker, vec_of};
use fsoi_sim::event::EventQueue;
use fsoi_sim::queue::BoundedQueue;
use fsoi_sim::rng::Xoshiro256StarStar;
use fsoi_sim::stats::{Histogram, Summary};
use fsoi_sim::Cycle;

/// Events pop in time order, FIFO within a timestamp — regardless of
/// push order.
#[test]
fn event_queue_is_a_stable_priority_queue() {
    checker!().check(
        "event_queue_is_a_stable_priority_queue",
        vec_of(0u64..50, 1..200),
        |times| {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.push(Cycle(t), i);
            }
            let mut prev: Option<(Cycle, usize)> = None;
            while let Some((t, id)) = q.pop() {
                if let Some((pt, pid)) = prev {
                    assert!(t >= pt, "time order");
                    if t == pt {
                        assert!(id > pid, "FIFO within a cycle");
                    }
                }
                prev = Some((t, id));
            }
        },
    );
}

/// A bounded queue is exactly a FIFO of its accepted elements and never
/// exceeds capacity.
#[test]
fn bounded_queue_is_fifo() {
    checker!().check(
        "bounded_queue_is_fifo",
        (1usize..20, vec_of(any_bool(), 1..300)),
        |(cap, ops)| {
            let cap = *cap;
            let mut q = BoundedQueue::new(cap);
            let mut model = std::collections::VecDeque::new();
            let mut n = 0u32;
            for &push in ops {
                if push {
                    let accepted = q.push(n).is_ok();
                    assert_eq!(accepted, model.len() < cap);
                    if accepted {
                        model.push_back(n);
                    }
                    n += 1;
                } else {
                    assert_eq!(q.pop(), model.pop_front());
                }
                assert!(q.len() <= cap);
                assert_eq!(q.len(), model.len());
            }
        },
    );
}

/// Histogram totals and means agree with a plain summary of the same
/// observations.
#[test]
fn histogram_matches_summary() {
    checker!().check(
        "histogram_matches_summary",
        vec_of(0u64..500, 1..300),
        |values| {
            let mut h = Histogram::new(10, 20);
            let mut s = Summary::new();
            for &v in values {
                h.record(v);
                s.record(v as f64);
            }
            assert_eq!(h.count(), values.len() as u64);
            assert!((h.mean() - s.mean()).abs() < 1e-9);
            let binned: u64 = (0..h.num_bins()).map(|i| h.bin(i)).sum::<u64>() + h.overflow();
            assert_eq!(binned, h.count());
        },
    );
}

/// Summary::merge is order-insensitive and equals sequential feeding.
#[test]
fn summary_merge_associates() {
    checker!().check(
        "summary_merge_associates",
        (vec_of(-1e3f64..1e3, 1..100), vec_of(-1e3f64..1e3, 1..100)),
        |(a, b)| {
            let feed = |xs: &[f64]| {
                let mut s = Summary::new();
                for &x in xs {
                    s.record(x);
                }
                s
            };
            let mut merged = feed(a);
            merged.merge(&feed(b));
            let mut all = a.clone();
            all.extend_from_slice(b);
            let seq = feed(&all);
            assert_eq!(merged.count(), seq.count());
            assert!((merged.mean() - seq.mean()).abs() < 1e-6);
            assert!((merged.variance() - seq.variance()).abs() < 1e-4);
        },
    );
}

/// Uniform draws respect their bounds and cover residues.
#[test]
fn rng_bounds() {
    checker!().check(
        "rng_bounds",
        (0u64..u64::MAX, 1u64..1000),
        |(seed, bound)| {
            let (seed, bound) = (*seed, *bound);
            let mut r = Xoshiro256StarStar::new(seed);
            for _ in 0..200 {
                assert!(r.next_below(bound) < bound);
                let v = r.range_inclusive(10, 10 + bound);
                assert!((10..=10 + bound).contains(&v));
            }
        },
    );
}

/// Slot rounding lands on a boundary at or after the input.
#[test]
fn slot_rounding_properties() {
    checker!().check(
        "slot_rounding_properties",
        (0u64..1_000_000, 1u64..100),
        |&(t, slot)| {
            let rounded = Cycle(t).round_up_to_slot(slot);
            assert!(rounded.as_u64() >= t);
            assert!(rounded.is_slot_boundary(slot));
            assert!(rounded.as_u64() - t < slot);
        },
    );
}
