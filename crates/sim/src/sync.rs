//! Synchronization shim: `std::sync`/`std::thread` in normal builds, the
//! [`crate::model`] bounded-schedule checker under `--features model`.
//!
//! The executor (`fsoi_sim::par`) is the one place in simulation library
//! code where threads and locks exist (`fsoi-lint` rule D3). PR 6 showed
//! that its correctness was being established by *luck* — a stress test
//! happened to trip a guard-held-across-steal deadlock. This module makes
//! the concurrency *checkable* instead: `par` (and any future concurrent
//! harness code) acquires locks and spawns workers exclusively through
//! these wrappers, so the exact same source can run
//!
//! * **normal builds** — every wrapper forwards straight to
//!   `std::sync::Mutex` / `std::thread::scope`; behaviour and codegen are
//!   the std ones (the model branches compile out entirely without the
//!   `model` feature, and cost one thread-local read with it), and
//! * **model runs** — inside [`crate::model::check`], the wrappers become
//!   *schedule points* of a deterministic cooperative scheduler that
//!   DFS-explores thread interleavings, detects deadlock and lost
//!   wakeups, and prints the offending schedule as a replayable trace.
//!
//! The shim mirrors the std API shapes (`lock() -> LockResult<…>`,
//! `scope(|s| s.spawn(..))`, `JoinHandle::join`) so `par` reads like
//! ordinary std threading code.
//!
//! # Poisoning
//!
//! [`Mutex::lock`] keeps std's poison contract in both modes: a thread
//! that panics while holding the guard poisons the lock, and later
//! lockers get `Err(PoisonError)` whose guard still grants access
//! (`PoisonError::into_inner`). The executor relies on this to keep
//! draining after a panicking sweep cell — see `par::lock`.

use std::cell::UnsafeCell;
use std::marker::PhantomData;
use std::sync::{LockResult, PoisonError};

#[cfg(feature = "model")]
use crate::model;

/// A mutual-exclusion lock with the `std::sync::Mutex` API surface,
/// routed through the model scheduler when a model execution is active.
///
/// Data lives in an [`UnsafeCell`]; exclusion comes from an inner
/// `std::sync::Mutex<()>` in normal mode and from the model scheduler
/// (only the lock's logical owner is ever scheduled while a guard is
/// live) in model mode.
pub struct Mutex<T: ?Sized> {
    /// Model-plane identity, assigned on first model-context use.
    #[cfg(feature = "model")]
    model_id: std::sync::atomic::AtomicU64,
    /// Normal-mode exclusion and poison tracking.
    raw: std::sync::Mutex<()>,
    data: UnsafeCell<T>,
}

// Same bounds as std::sync::Mutex: the data is only reachable through
// the guard, which enforces exclusive access in both modes.
unsafe impl<T: ?Sized + Send> Send for Mutex<T> {}
unsafe impl<T: ?Sized + Send> Sync for Mutex<T> {}

impl<T> Mutex<T> {
    /// Creates a new unlocked mutex.
    pub fn new(t: T) -> Self {
        let m = Mutex {
            #[cfg(feature = "model")]
            model_id: std::sync::atomic::AtomicU64::new(0),
            raw: std::sync::Mutex::new(()),
            data: UnsafeCell::new(t),
        };
        // Register at construction when inside a model execution:
        // creation order is deterministic, so lock ids (and therefore
        // traces and duplicate-state hashes) are stable across the
        // checker's executions.
        #[cfg(feature = "model")]
        if model::in_execution() {
            m.model_id
                .store(model::register_lock(), std::sync::atomic::Ordering::Relaxed);
        }
        m
    }

    /// Consumes the mutex, returning the data. Mirrors std: `Err` with
    /// the data inside when the lock was poisoned.
    pub fn into_inner(self) -> LockResult<T> {
        let poisoned = self.raw.is_poisoned();
        let data = self.data.into_inner();
        if poisoned {
            Err(PoisonError::new(data))
        } else {
            Ok(data)
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    ///
    /// Inside a model execution this is a schedule point: the virtual
    /// thread is suspended until the scheduler grants the lock, and
    /// every grant ordering within the preemption budget is explored.
    ///
    /// # Errors
    ///
    /// Returns `Err(PoisonError)` — whose guard is still usable — when
    /// another thread panicked while holding the lock.
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        #[cfg(feature = "model")]
        if model::in_execution() {
            let id = self.model_lock_id();
            let poisoned = model::acquire(id);
            let guard = MutexGuard {
                lock: self,
                raw: None,
                _not_send: PhantomData,
            };
            return if poisoned {
                Err(PoisonError::new(guard))
            } else {
                Ok(guard)
            };
        }
        match self.raw.lock() {
            Ok(g) => Ok(MutexGuard {
                lock: self,
                raw: Some(g),
                _not_send: PhantomData,
            }),
            Err(p) => Err(PoisonError::new(MutexGuard {
                lock: self,
                raw: Some(p.into_inner()),
                _not_send: PhantomData,
            })),
        }
    }

    /// The lock's model-plane id, registering lazily for mutexes that
    /// were created outside the execution (discouraged — creation-order
    /// ids keep traces deterministic — but tolerated).
    #[cfg(feature = "model")]
    fn model_lock_id(&self) -> u64 {
        use std::sync::atomic::Ordering;
        let id = self.model_id.load(Ordering::Relaxed);
        if id != 0 {
            return id;
        }
        let id = model::register_lock();
        self.model_id.store(id, Ordering::Relaxed);
        id
    }
}

impl<T: ?Sized> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never touches the data: reading it would need the lock.
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

/// RAII guard for [`Mutex`]; releasing is a schedule point in model mode.
pub struct MutexGuard<'a, T: ?Sized> {
    lock: &'a Mutex<T>,
    /// `Some` in normal mode (drop unlocks + records poison); `None` in
    /// model mode (drop reports the release to the scheduler).
    raw: Option<std::sync::MutexGuard<'a, ()>>,
    /// Keeps the guard `!Send`, like std's.
    _not_send: PhantomData<*const ()>,
}

impl<T: ?Sized> std::fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MutexGuard").finish_non_exhaustive()
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // Exclusive access is guaranteed by `raw` (normal mode) or by
        // the model scheduler (only the owner is scheduled).
        unsafe { &*self.lock.data.get() }
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        unsafe { &mut *self.lock.data.get() }
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // `raw: Some` — normal mode: dropping it unlocks and records
        // poison. `raw: None` — model mode: report the release to the
        // scheduler instead.
        if self.raw.is_none() {
            #[cfg(feature = "model")]
            model::release(self.lock.model_lock_id(), std::thread::panicking());
        }
    }
}

/// Creates a scope for spawning scoped virtual or real threads.
///
/// The std-mode behaviour is exactly [`std::thread::scope`]. In model
/// mode the closure's spawns become scheduler-driven virtual threads;
/// the scope still guarantees every child has finished before it
/// returns.
pub fn scope<'env, F, T>(f: F) -> T
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> T,
{
    #[cfg(feature = "model")]
    if model::in_execution() {
        return std::thread::scope(|s| {
            let sc = Scope {
                std: s,
                model: std::cell::RefCell::new(Some(Vec::new())),
            };
            let r = f(&sc);
            // Wait (as a virtual thread) for every child before letting
            // the real scope join their OS threads; otherwise the real
            // join would block this OS thread without the scheduler
            // knowing, wedging the execution.
            let children = sc.model.borrow_mut().take().unwrap_or_default();
            model::await_children(&children);
            r
        });
    }
    std::thread::scope(|s| {
        f(&Scope {
            std: s,
            #[cfg(feature = "model")]
            model: std::cell::RefCell::new(None),
        })
    })
}

/// A spawn scope; the shim's analogue of [`std::thread::Scope`].
#[derive(Debug)]
pub struct Scope<'scope, 'env: 'scope> {
    std: &'scope std::thread::Scope<'scope, 'env>,
    /// `Some(children)` when this scope belongs to a model execution.
    #[cfg(feature = "model")]
    model: std::cell::RefCell<Option<Vec<usize>>>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread; a virtual one inside a model execution.
    pub fn spawn<F, T>(&self, f: F) -> JoinHandle<'scope, T>
    where
        F: FnOnce() -> T + Send + 'scope,
        T: Send + 'scope,
    {
        #[cfg(feature = "model")]
        if let Some(children) = self.model.borrow_mut().as_mut() {
            let (tid, exec) = model::prepare_spawn();
            children.push(tid);
            let handle = self.std.spawn(move || model::run_vthread(exec, tid, f));
            return JoinHandle {
                inner: JhInner::Model { tid, handle },
            };
        }
        JoinHandle {
            inner: JhInner::Std(self.std.spawn(f)),
        }
    }
}

/// Handle to a (virtual or real) scoped thread.
#[derive(Debug)]
pub struct JoinHandle<'scope, T> {
    inner: JhInner<'scope, T>,
}

#[derive(Debug)]
enum JhInner<'scope, T> {
    Std(std::thread::ScopedJoinHandle<'scope, T>),
    #[cfg(feature = "model")]
    Model {
        tid: usize,
        handle: std::thread::ScopedJoinHandle<'scope, std::thread::Result<T>>,
    },
}

impl<T> JoinHandle<'_, T> {
    /// Waits for the thread to finish; `Err` carries its panic payload.
    /// A schedule point in model mode.
    ///
    /// # Errors
    ///
    /// Returns the thread's panic payload when it panicked.
    pub fn join(self) -> std::thread::Result<T> {
        match self.inner {
            JhInner::Std(h) => h.join(),
            #[cfg(feature = "model")]
            JhInner::Model { tid, handle } => {
                model::await_thread(tid);
                // The virtual thread is finished, so the real join is
                // immediate; the wrapper caught any panic, so the outer
                // result is always Ok.
                match handle.join() {
                    Ok(r) => r,
                    Err(p) => Err(p),
                }
            }
        }
    }

    /// Atomically makes a park token available to the thread
    /// (`std::thread::Thread::unpark` semantics).
    pub fn unpark(&self) {
        match &self.inner {
            JhInner::Std(h) => h.thread().unpark(),
            #[cfg(feature = "model")]
            JhInner::Model { tid, .. } => model::unpark(*tid),
        }
    }
}

/// Blocks the current thread until a park token is available, consuming
/// it (`std::thread::park` semantics, minus spurious wakeups in model
/// mode — the checker explores real schedules, not adversarial ones).
pub fn park() {
    #[cfg(feature = "model")]
    if model::in_execution() {
        model::park();
        return;
    }
    std::thread::park();
}

/// A cooperative yield; in model mode, a pure schedule point at which
/// the checker may switch threads.
pub fn yield_now() {
    #[cfg(feature = "model")]
    if model::in_execution() {
        model::yield_point();
        return;
    }
    std::thread::yield_now();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_forwards_to_std_in_normal_builds() {
        let m = Mutex::new(41);
        *m.lock().expect("unpoisoned") += 1;
        assert_eq!(*m.lock().expect("unpoisoned"), 42);
        assert_eq!(m.into_inner().expect("unpoisoned"), 42);
    }

    #[test]
    fn scope_and_join_forward_to_std() {
        let total = Mutex::new(0u64);
        let total = &total;
        scope(|s| {
            let hs: Vec<_> = (0..4)
                .map(|i| {
                    s.spawn(move || {
                        *total.lock().expect("unpoisoned") += 1;
                        i
                    })
                })
                .collect();
            let ids: Vec<usize> = hs
                .into_iter()
                .map(|h| h.join().expect("no panic"))
                .collect();
            assert_eq!(ids, vec![0, 1, 2, 3]);
        });
        assert_eq!(*total.lock().expect("unpoisoned"), 4);
    }

    #[test]
    fn poisoned_lock_reports_err_with_usable_guard() {
        let m = Mutex::new(vec![1, 2, 3]);
        scope(|s| {
            let h = s.spawn(|| {
                let _g = m.lock().expect("first lock");
                panic!("poison it");
            });
            assert!(h.join().is_err(), "the panic propagates through join");
        });
        let g = match m.lock() {
            Err(poisoned) => poisoned.into_inner(),
            Ok(_) => panic!("lock must be poisoned"),
        };
        assert_eq!(*g, vec![1, 2, 3], "data survives the poisoning panic");
        drop(g);
        assert!(m.into_inner().is_err(), "into_inner also reports poison");
    }

    #[test]
    fn unpark_before_park_is_not_lost() {
        scope(|s| {
            let h = s.spawn(park);
            h.unpark();
            h.join().expect("token semantics: unpark-then-park returns");
        });
    }

    #[test]
    fn yield_now_is_callable() {
        yield_now();
    }
}
