//! Deterministic parallel sweep execution.
//!
//! The paper's evaluation is a seed×config sweep: every table and figure
//! is a fold over independent (application, network, seed) cells, each of
//! which runs its own isolated simulator with its own RNG stream. Those
//! cells are embarrassingly parallel — but the workspace's core invariant
//! is that **same-seed output is byte-identical**, so parallelism must
//! never become observable in any exported number.
//!
//! [`sweep`] guarantees that by construction:
//!
//! * each cell index runs exactly once, in an isolated closure call that
//!   shares no mutable state with any other cell;
//! * results are returned in a `Vec` indexed by cell — a **deterministic
//!   reduction keyed on cell index**, not on completion order;
//! * thread count therefore affects wall-clock time only. `sweep(n, 1, f)`
//!   and `sweep(n, 8, f)` return equal vectors for any pure `f`, and the
//!   serial path (`threads <= 1`) does not spawn at all.
//!
//! Scheduling is work-stealing over chunked deques: the cell range is cut
//! into contiguous chunks dealt round-robin onto per-worker deques; a
//! worker pops its own deque from the front and, when empty, steals a
//! chunk from the *back* of another worker's deque. Chunks keep the
//! common case (cells with similar cost) cache-friendly and low-contention
//! while stealing absorbs skewed per-cell cost (a 64-node cell costs ~4×
//! a 16-node cell).
//!
//! All concurrency here goes through [`crate::sync`] — `std::sync` in
//! normal builds (byte-identical behaviour), virtual threads under the
//! bounded-schedule model checker ([`crate::model`], feature `model`),
//! which exhaustively explores the drain/steal/termination protocol's
//! interleavings at small shapes. This module and the shim are the
//! **only** places in simulation library code where threads and locks
//! are allowed (`fsoi-lint` rule D3); everything above — `fsoi_cmp::batch`,
//! the `fsoi-bench` runner — expresses sweeps as pure per-cell closures.
//!
//! Workers emit executor telemetry (chunk pops, steals, queue-depth
//! samples, busy/idle durations) into [`crate::telemetry`] — the
//! wall-clock observability plane. Emission is disabled by default and
//! never touches sweep results, so it cannot perturb the byte-identity
//! guarantee above.
//!
//! ```
//! use fsoi_sim::par;
//! let serial: Vec<u64> = par::sweep(100, 1, |i| (i as u64) * 3 + 1);
//! let parallel = par::sweep(100, 8, |i| (i as u64) * 3 + 1);
//! assert_eq!(serial, parallel); // thread count is not observable
//! ```

use crate::rng::SplitMix64;
use crate::sync::{self, Mutex, MutexGuard};
use crate::telemetry;
use std::collections::VecDeque;
use std::ops::Range;
use std::sync::PoisonError;

/// Chunks dealt per worker. Sweep cells are coarse (milliseconds each)
/// and heavily skewed — a 64-node cell costs ~4–8× a 16-node cell — so
/// steal granularity, not per-chunk overhead, bounds the tail: with the
/// old value of 4 an 80-cell/8-thread sweep dealt 2-cell chunks, and one
/// unlucky chunk holding two 80 ms cells pinned the critical path at
/// 160 ms. At 16 the same sweep deals single-cell chunks (the deque lock
/// costs ~1 µs per pop, noise against ms-scale cells) while huge sweeps
/// of cheap cells still amortize the lock over `cells / (threads * 16)`
/// indices per acquisition.
const CHUNKS_PER_WORKER: usize = 16;

/// The number of worker threads a sweep should use by default: the
/// documented `FSOI_THREADS` knob when set, else the machine's available
/// parallelism (1 when that cannot be determined).
///
/// Thread count never changes sweep *output* (see [`sweep`]), so reading
/// machine parallelism here does not leak into any exported number.
///
/// # Panics
///
/// Panics when `FSOI_THREADS` is set to something that does not parse as
/// a positive integer — aborting beats silently running a different
/// configuration than the one the caller asked for.
pub fn thread_count() -> usize {
    if let Ok(v) = std::env::var("FSOI_THREADS") {
        match parse_threads(&v) {
            Some(n) => return n,
            // lint: allow(P1) a set-but-garbage override must not be silently ignored
            None => panic!("FSOI_THREADS={v:?} is not a positive integer"),
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Parses an `FSOI_THREADS` value: a positive decimal integer.
fn parse_threads(s: &str) -> Option<usize> {
    match s.trim().parse::<usize>() {
        Ok(n) if n >= 1 => Some(n),
        _ => None,
    }
}

/// Derives an independent per-cell seed from a sweep's base seed.
///
/// SplitMix64 is a bijective mix over the full 64-bit space, so distinct
/// cells get well-separated streams even for adjacent indices, and the
/// derivation is position-based — independent of execution order and
/// thread count.
///
/// ```
/// use fsoi_sim::par::derive_seed;
/// assert_eq!(derive_seed(2010, 3), derive_seed(2010, 3));
/// assert_ne!(derive_seed(2010, 3), derive_seed(2010, 4));
/// ```
pub fn derive_seed(base: u64, cell: u64) -> u64 {
    let mut sm = SplitMix64::new(base ^ cell.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    sm.next_u64()
}

/// Locks ignoring poison, via [`PoisonError::into_inner`].
///
/// Poison recovery is deliberate, not a shortcut. A worker can only
/// panic *inside a cell closure*, and at that moment it holds no queue
/// guard (guards are scoped to the pop/steal statements and dropped
/// before `f` runs — see the worker loop), so a poisoned queue mutex
/// still protects a structurally-valid `VecDeque` of plain index
/// ranges. Recovering the guard lets the surviving workers keep
/// draining; the panic itself is never swallowed — it is re-raised on
/// the caller's thread at join time, and the poisoned cell's slot is
/// simply never merged. A panicking worker therefore cannot wedge the
/// sweep (the other workers drain and exit) and cannot corrupt the
/// merged output (slots are keyed on cell index, and the sweep panics
/// before returning any partial vector).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Runs `f` once per cell index in `0..cells` on up to `threads` worker
/// threads and returns the results **indexed by cell** — a deterministic
/// reduction independent of scheduling, completion order and thread
/// count. `threads <= 1` (or fewer than two cells) runs serially on the
/// caller's thread without spawning.
///
/// # Panics
///
/// A panic inside `f` is propagated to the caller after all workers have
/// drained (matching the serial behaviour of the first panicking cell
/// aborting the sweep).
pub fn sweep<R, F>(cells: usize, threads: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let threads = threads.max(1).min(cells.max(1));
    if threads <= 1 || cells <= 1 {
        return (0..cells).map(f).collect();
    }

    // Deal contiguous chunks round-robin onto per-worker deques.
    let chunk = (cells / (threads * CHUNKS_PER_WORKER)).max(1);
    let queues: Vec<Mutex<VecDeque<Range<usize>>>> =
        (0..threads).map(|_| Mutex::new(VecDeque::new())).collect();
    let mut start = 0usize;
    let mut worker = 0usize;
    while start < cells {
        let end = (start + chunk).min(cells);
        lock(&queues[worker % threads]).push_back(start..end);
        start = end;
        worker += 1;
    }

    let mut slots: Vec<Option<R>> = (0..cells).map(|_| None).collect();
    let queues = &queues;
    let f = &f;
    let per_worker: Vec<Vec<(usize, R)>> = sync::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|me| {
                s.spawn(move || {
                    let mut out: Vec<(usize, R)> = Vec::new();
                    loop {
                        // Own work first (front), then steal from the
                        // back of the next non-empty victim. No new work
                        // is ever produced, so "every deque empty" is a
                        // sound exit condition.
                        //
                        // The own-queue guard MUST be dropped before
                        // stealing. Written as one chained statement
                        // (`own.pop_front().or_else(|| steal)`), the
                        // guard is a statement temporary held through
                        // the closure: once every queue drains, each
                        // worker holds its own empty queue's lock while
                        // requesting a neighbour's — an n-worker cycle
                        // that deadlocks the sweep.
                        let idle = telemetry::worker_idle(me);
                        let own = {
                            let mut q = lock(&queues[me]);
                            telemetry::worker_queue_depth(me, q.len() as u64);
                            q.pop_front()
                        };
                        if own.is_some() {
                            telemetry::worker_chunk(me);
                        }
                        let job = own.or_else(|| {
                            (1..threads).find_map(|v| {
                                let got = lock(&queues[(me + v) % threads]).pop_back();
                                if got.is_some() {
                                    telemetry::worker_steal(me);
                                }
                                got
                            })
                        });
                        drop(idle);
                        let Some(range) = job else { break };
                        let _busy = telemetry::worker_busy(me);
                        telemetry::worker_cells(me, range.len() as u64);
                        for i in range {
                            out.push((i, f(i)));
                        }
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(v) => v,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });

    for (i, r) in per_worker.into_iter().flatten() {
        debug_assert!(slots[i].is_none(), "cell {i} executed twice");
        slots[i] = Some(r);
    }
    slots
        .into_iter()
        .enumerate()
        // lint: allow(P1) every index 0..cells was dealt into exactly one chunk and executed
        .map(|(i, slot)| slot.unwrap_or_else(|| panic!("cell {i} never executed")))
        .collect()
}

/// [`sweep`] with the default [`thread_count`].
pub fn sweep_auto<R, F>(cells: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    sweep(cells, thread_count(), f)
}

/// Model-checking entry point: runs the *real* [`sweep`] code path at an
/// exact small shape (`chunks` single-index chunks dealt over `workers`
/// deques — shapes this small always deal one cell per chunk) and
/// asserts the deterministic-reduction contract. Called from the model
/// test suite under [`crate::model::check`], where every interleaving of
/// the drain/steal/termination protocol is explored.
#[cfg(feature = "model")]
pub fn model_sweep_protocol(workers: usize, chunks: usize) {
    debug_assert!(
        chunks <= workers * CHUNKS_PER_WORKER,
        "shape would coalesce cells into multi-index chunks"
    );
    let out = sweep(chunks, workers, |i| i);
    assert_eq!(out, (0..chunks).collect::<Vec<_>>());
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn output_is_keyed_on_cell_index_for_any_thread_count() {
        let reference: Vec<u64> = (0..257).map(|i| derive_seed(42, i as u64)).collect();
        for threads in [1, 2, 3, 8, 64] {
            let got = sweep(257, threads, |i| derive_seed(42, i as u64));
            assert_eq!(got, reference, "threads = {threads}");
        }
    }

    #[test]
    fn empty_and_single_cell_sweeps() {
        assert_eq!(sweep(0, 8, |i| i), Vec::<usize>::new());
        assert_eq!(sweep(1, 8, |i| i + 10), vec![10]);
    }

    #[test]
    fn every_cell_runs_exactly_once() {
        let n = 100;
        let counts: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        let _ = sweep(n, 8, |i| counts[i].fetch_add(1, Ordering::SeqCst));
        for (i, c) in counts.iter().enumerate() {
            assert_eq!(c.load(Ordering::SeqCst), 1, "cell {i}");
        }
    }

    #[test]
    fn more_threads_than_cells_is_fine() {
        assert_eq!(sweep(3, 100, |i| i * i), vec![0, 1, 4]);
    }

    #[test]
    fn drained_queues_never_deadlock() {
        // Regression: the own-queue guard used to be held across the
        // steal attempt (statement-temporary lifetime), so workers
        // draining simultaneously formed a lock cycle and the sweep hung.
        // Many tiny sweeps with cheap cells maximize simultaneous-drain
        // windows; with the bug this test hangs rather than fails.
        for round in 0..200 {
            let n = 1 + (round % 17);
            let got = sweep(n, 8, |i| i);
            assert_eq!(got, (0..n).collect::<Vec<_>>(), "round {round}");
        }
    }

    #[test]
    #[should_panic(expected = "boom at 7")]
    fn cell_panics_propagate() {
        let _ = sweep(16, 4, |i| {
            if i == 7 {
                panic!("boom at 7");
            }
            i
        });
    }

    #[test]
    fn panicking_cell_neither_wedges_nor_corrupts() {
        // Poison-recovery regression for `lock()`: a panicking worker
        // poisons whichever queue mutex it touches next-to-last, but
        // `PoisonError::into_inner` lets surviving workers keep
        // draining. The sweep must (a) terminate — not deadlock on a
        // poisoned queue, (b) re-raise the cell's panic rather than
        // return partial output, and (c) leave subsequent sweeps
        // unaffected.
        for round in 0..20 {
            let result = std::panic::catch_unwind(|| {
                sweep(32, 4, |i| {
                    if i == 13 {
                        panic!("poison round {round}");
                    }
                    i * 2
                })
            });
            let payload = result.expect_err("the cell panic must propagate");
            let msg = payload
                .downcast_ref::<String>()
                .cloned()
                .expect("panic payload is the cell's message");
            assert!(msg.contains("poison round"), "unexpected payload: {msg}");
        }
        // The executor state is per-sweep; a clean sweep right after the
        // panicking ones must produce exact output.
        let clean = sweep(32, 4, |i| i * 2);
        assert_eq!(clean, (0..32).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parse_threads_accepts_positive_integers_only() {
        assert_eq!(parse_threads("1"), Some(1));
        assert_eq!(parse_threads(" 8 "), Some(8));
        assert_eq!(parse_threads("0"), None);
        assert_eq!(parse_threads("-2"), None);
        assert_eq!(parse_threads("two"), None);
        assert_eq!(parse_threads(""), None);
    }

    #[test]
    fn derived_seeds_are_stable_and_distinct() {
        let a: Vec<u64> = (0..64).map(|c| derive_seed(2010, c)).collect();
        let b: Vec<u64> = (0..64).map(|c| derive_seed(2010, c)).collect();
        assert_eq!(a, b);
        let mut uniq = a.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), a.len(), "no collisions in a small sweep");
        assert_ne!(derive_seed(1, 0), derive_seed(2, 0), "base seed matters");
    }

    #[test]
    fn sweep_auto_matches_serial() {
        let reference: Vec<usize> = (0..50).map(|i| i ^ 0x2a).collect();
        assert_eq!(sweep_auto(50, |i| i ^ 0x2a), reference);
    }
}
