//! The idealized comparison configurations of §7.1.
//!
//! * **L0** — transmission latency idealized to zero; a packet experiences
//!   only its serialization delay (1 cycle meta, 5 cycles data) and any
//!   queuing at the source node's output link. A loose upper bound on any
//!   interconnect.
//! * **Lr1 / Lr2** — L0 plus a per-hop cost of 1 link cycle and 1 or 2
//!   router cycles along the XY path, with no contention inside the
//!   network. Loose upper bounds for aggressively pipelined routers.

use crate::packet::MeshPacket;
use crate::routing::hop_distance;
use fsoi_sim::event::EventQueue;
use fsoi_sim::stats::Summary;
use fsoi_sim::Cycle;

/// Which idealization to apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IdealKind {
    /// Serialization + source queuing only.
    L0,
    /// Plus `hops × (1 + 1)` cycles.
    Lr1,
    /// Plus `hops × (2 + 1)` cycles.
    Lr2,
}

impl IdealKind {
    /// Per-hop latency in cycles (0 for L0).
    pub fn per_hop_cycles(self) -> u64 {
        match self {
            IdealKind::L0 => 0,
            IdealKind::Lr1 => 2, // 1 router + 1 link
            IdealKind::Lr2 => 3, // 2 router + 1 link
        }
    }
}

/// A contention-free analytic network model.
#[derive(Debug)]
pub struct IdealNetwork {
    kind: IdealKind,
    width: usize,
    now: Cycle,
    /// Per-node time the output link frees up (serialization is the only
    /// shared resource).
    link_free_at: Vec<Cycle>,
    deliveries: EventQueue<MeshPacket>,
    delivered: Vec<super::network::MeshDelivered>,
    latency: Summary,
    next_id: u64,
}

impl IdealNetwork {
    /// Creates an ideal model over a `width × width` logical mesh (the
    /// width only matters for Lr1/Lr2 hop counts).
    pub fn new(kind: IdealKind, width: usize) -> Self {
        assert!(width >= 2);
        IdealNetwork {
            kind,
            width,
            now: Cycle::ZERO,
            link_free_at: vec![Cycle::ZERO; width * width],
            deliveries: EventQueue::new(),
            delivered: Vec::new(),
            latency: Summary::new(),
            next_id: 0,
        }
    }

    /// The idealization in force.
    pub fn kind(&self) -> IdealKind {
        self.kind
    }

    /// Current time.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Mean delivered latency.
    pub fn latency(&self) -> &Summary {
        &self.latency
    }

    /// Injects a packet; the model computes its delivery time immediately.
    /// Never rejects (queues are unbounded in the idealization).
    pub fn inject(&mut self, mut packet: MeshPacket) -> u64 {
        assert_ne!(packet.src, packet.dst, "no self-injection");
        packet.id = self.next_id;
        self.next_id += 1;
        packet.enqueued_at = self.now;
        let ser = packet.flits as u64;
        let start = self.link_free_at[packet.src].max(self.now);
        let done_serializing = start + ser;
        self.link_free_at[packet.src] = done_serializing;
        let hops = hop_distance(packet.src, packet.dst, self.width) as u64;
        let arrive = done_serializing + hops * self.kind.per_hop_cycles();
        self.deliveries.push(arrive, packet);
        packet.id
    }

    /// Advances one cycle.
    pub fn tick(&mut self) {
        self.now += 1;
        while let Some((at, packet)) = self.deliveries.pop_due(self.now) {
            self.latency.record((at - packet.enqueued_at) as f64);
            self.delivered.push(super::network::MeshDelivered {
                packet,
                delivered_at: at,
            });
        }
    }

    /// Takes deliveries since the last drain.
    pub fn drain_delivered(&mut self) -> Vec<super::network::MeshDelivered> {
        std::mem::take(&mut self.delivered)
    }

    /// True when nothing is in flight.
    pub fn is_idle(&self) -> bool {
        self.deliveries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_until_idle(
        net: &mut IdealNetwork,
        max: u64,
    ) -> Vec<super::super::network::MeshDelivered> {
        let mut out = Vec::new();
        for _ in 0..max {
            net.tick();
            out.extend(net.drain_delivered());
            if net.is_idle() {
                break;
            }
        }
        out
    }

    #[test]
    fn l0_is_pure_serialization() {
        let mut net = IdealNetwork::new(IdealKind::L0, 4);
        net.inject(MeshPacket::meta(0, 15, 0));
        net.inject(MeshPacket::data(3, 12, 0));
        let out = run_until_idle(&mut net, 50);
        assert_eq!(out.len(), 2);
        let meta = out.iter().find(|d| d.packet.is_meta()).unwrap();
        let data = out.iter().find(|d| !d.packet.is_meta()).unwrap();
        assert_eq!(meta.latency(), 1);
        assert_eq!(data.latency(), 5);
    }

    #[test]
    fn source_queuing_still_counts_in_l0() {
        let mut net = IdealNetwork::new(IdealKind::L0, 4);
        net.inject(MeshPacket::data(0, 15, 0));
        net.inject(MeshPacket::data(0, 14, 1));
        let out = run_until_idle(&mut net, 50);
        let lats: Vec<u64> = out.iter().map(|d| d.latency()).collect();
        assert!(lats.contains(&5) && lats.contains(&10), "{lats:?}");
    }

    #[test]
    fn lr_models_add_hop_latency() {
        for (kind, per_hop) in [(IdealKind::Lr1, 2u64), (IdealKind::Lr2, 3u64)] {
            let mut net = IdealNetwork::new(kind, 4);
            net.inject(MeshPacket::meta(0, 15, 0)); // 6 hops
            let out = run_until_idle(&mut net, 100);
            assert_eq!(out[0].latency(), 1 + 6 * per_hop, "{kind:?}");
        }
    }

    #[test]
    fn ordering_of_upper_bounds() {
        // L0 ≤ Lr1 ≤ Lr2 for identical traffic.
        let mut lat = Vec::new();
        for kind in [IdealKind::L0, IdealKind::Lr1, IdealKind::Lr2] {
            let mut net = IdealNetwork::new(kind, 4);
            for src in 0..8 {
                net.inject(MeshPacket::data(src, 15 - src, 0));
            }
            run_until_idle(&mut net, 200);
            lat.push(net.latency().mean());
        }
        assert!(lat[0] <= lat[1] && lat[1] <= lat[2], "{lat:?}");
    }

    #[test]
    fn kind_accessors() {
        assert_eq!(IdealKind::L0.per_hop_cycles(), 0);
        assert_eq!(IdealKind::Lr1.per_hop_cycles(), 2);
        assert_eq!(IdealKind::Lr2.per_hop_cycles(), 3);
        let net = IdealNetwork::new(IdealKind::Lr1, 4);
        assert_eq!(net.kind(), IdealKind::Lr1);
        assert_eq!(net.now(), Cycle::ZERO);
    }
}
