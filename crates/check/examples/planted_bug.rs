//! Demonstrates the harness finding, shrinking and reporting a planted
//! bug through the public API:
//!
//! ```bash
//! cargo run -p fsoi-check --example planted_bug
//! ```

use fsoi_check::{vec_of, Checker};

fn main() {
    // The "bug": sums of 100-bounded vectors allegedly never reach 250.
    let gen = vec_of(0u64..100, 1..20);
    let prop = |xs: &Vec<u64>| {
        let sum: u64 = xs.iter().sum();
        assert!(sum < 250, "sum {sum} reached 250");
    };

    let checker = Checker::new().no_record();
    match checker.check_result("planted_bug", &gen, &prop) {
        Ok(()) => println!("property held (the bug hid — try more cases)"),
        Err(f) => {
            println!("case seed : {:#018x}", f.seed);
            println!("original  : {:?} (len {})", f.original, f.original.len());
            println!("shrunk    : {:?} ({} steps)", f.shrunk, f.steps);
            println!("assertion : {}", f.message);
            println!("replay    : FSOI_CHECK_REPLAY={:#x} <rerun>", f.seed);
            let sum: u64 = f.shrunk.iter().sum();
            assert!(
                (250..350).contains(&sum),
                "shrunk sum {sum} should be near-minimal"
            );
        }
    }
}
