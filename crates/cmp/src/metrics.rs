//! Run reports: everything the experiment harness prints.

use crate::energy::ChipEnergy;
use crate::interconnect::LatencyAttribution;
use fsoi_sim::metrics::Registry;
use fsoi_sim::profile::Profile;
use fsoi_sim::stats::{Histogram, Summary};

/// Traffic classes used in Figure 10's data-lane collision breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataPacketKind {
    /// Memory fetch completions (MemAck).
    Memory,
    /// Directory → L1 data replies.
    Reply,
    /// Writebacks (incl. dirty InvAck/DwgAck).
    WriteBack,
}

impl DataPacketKind {
    /// Dense index 0..3.
    pub fn index(self) -> usize {
        match self {
            DataPacketKind::Memory => 0,
            DataPacketKind::Reply => 1,
            DataPacketKind::WriteBack => 2,
        }
    }

    /// Plot label.
    pub fn label(self) -> &'static str {
        match self {
            DataPacketKind::Memory => "Memory packets",
            DataPacketKind::Reply => "Reply",
            DataPacketKind::WriteBack => "WriteBack",
        }
    }

    /// Metric label value (lowercase, no spaces).
    pub fn metric_label(self) -> &'static str {
        match self {
            DataPacketKind::Memory => "memory",
            DataPacketKind::Reply => "reply",
            DataPacketKind::WriteBack => "writeback",
        }
    }

    /// All kinds in dense-index order.
    pub const ALL: [DataPacketKind; 3] = [
        DataPacketKind::Memory,
        DataPacketKind::Reply,
        DataPacketKind::WriteBack,
    ];
}

/// The complete result of one application × network run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Application name.
    pub app: String,
    /// Network name.
    pub network: String,
    /// Wall-clock cycles to finish the fixed workload.
    pub cycles: u64,
    /// Mean packet-latency attribution (Figure 6/7 stack).
    pub attribution: LatencyAttribution,
    /// Read-miss reply latency distribution (Figure 5).
    pub reply_latency: Histogram,
    /// Meta-lane first-transmission probability per node-slot (Figure 9 x).
    pub meta_tx_probability: f64,
    /// Data-lane transmission probability.
    pub data_tx_probability: f64,
    /// Meta collision rate (collided / transmissions).
    pub meta_collision_rate: f64,
    /// Data collision rate.
    pub data_collision_rate: f64,
    /// Packets sent per class `[meta, data]`.
    pub packets_sent: [u64; 2],
    /// Data packets delivered per kind (Figure 10 denominators).
    pub data_by_kind: [u64; 3],
    /// Data packets that collided at least once, per kind, plus a fourth
    /// bucket for re-collided retransmissions (Figure 10 numerators).
    pub collided_by_kind: [u64; 4],
    /// Meta packets elided thanks to confirmation-acks (§5.1).
    pub acks_elided: u64,
    /// Packets avoided by boolean subscriptions (§5.1).
    pub subscription_packets_saved: u64,
    /// Mean L1 miss rate across cores.
    pub l1_miss_rate: f64,
    /// Sum of per-core active cycles.
    pub active_cycles: u64,
    /// Sum of per-core stalled cycles.
    pub stalled_cycles: u64,
    /// Chip energy.
    pub energy: ChipEnergy,
    /// Mean collision-resolution delay among collided data packets.
    pub data_resolution_delay: f64,
    /// Hint accuracy: correct / issued (FSOI data lane).
    pub hint_accuracy: f64,
    /// Wrong-winner rate: wrong / issued.
    pub hint_wrong_rate: f64,
    /// Packets dropped by raw bit errors and recovered by retransmission.
    pub bit_error_drops: u64,
    /// Deterministic harness-profile spans for this cell (cycles, ticks,
    /// events, fast-forward jumps). Deliberately *not* part of
    /// [`RunReport::export`]: the profile describes how the harness drove
    /// the simulation, not what the simulation measured, and reference
    /// drives (e.g. tick-by-tick replays in tests) legitimately differ
    /// here while producing identical metrics. `experiments profile`
    /// exports it through [`Profile::export`] instead.
    pub profile: Profile,
}

impl RunReport {
    /// Speedup of this run relative to a baseline's cycle count.
    pub fn speedup_vs(&self, baseline_cycles: u64) -> f64 {
        baseline_cycles as f64 / self.cycles as f64
    }

    /// Mean total packet latency.
    pub fn mean_packet_latency(&self) -> f64 {
        self.attribution.total()
    }

    /// Exports every figure/table input as named metrics into `reg`.
    ///
    /// This is the single code path behind snapshot output: the harness
    /// renders `Registry::to_table()` / `to_jsonl()` instead of formatting
    /// struct fields ad hoc, so two same-seed runs produce byte-identical
    /// snapshots. Every metric carries `app` and `network` labels, so
    /// reports from several runs can merge into one registry.
    pub fn export(&self, reg: &mut Registry) {
        let app = self.app.as_str();
        let net = self.network.as_str();
        let run: [(&str, &str); 2] = [("app", app), ("network", net)];
        let lane = |l: &'static str| -> [(&str, &str); 3] {
            [("app", app), ("network", net), ("lane", l)]
        };

        reg.inc("cmp.cycles", &run, self.cycles);
        reg.gauge("cmp.latency.queuing", &run, self.attribution.queuing);
        reg.gauge("cmp.latency.scheduling", &run, self.attribution.scheduling);
        reg.gauge("cmp.latency.network", &run, self.attribution.network);
        reg.gauge(
            "cmp.latency.resolution",
            &run,
            self.attribution.collision_resolution,
        );
        reg.gauge("cmp.latency.total", &run, self.attribution.total());
        reg.histogram("cmp.reply_latency", &run, self.reply_latency.clone());

        reg.gauge(
            "cmp.tx_probability",
            &lane("meta"),
            self.meta_tx_probability,
        );
        reg.gauge(
            "cmp.tx_probability",
            &lane("data"),
            self.data_tx_probability,
        );
        reg.gauge(
            "cmp.collision_rate",
            &lane("meta"),
            self.meta_collision_rate,
        );
        reg.gauge(
            "cmp.collision_rate",
            &lane("data"),
            self.data_collision_rate,
        );
        reg.inc("cmp.packets_sent", &lane("meta"), self.packets_sent[0]);
        reg.inc("cmp.packets_sent", &lane("data"), self.packets_sent[1]);

        for kind in DataPacketKind::ALL {
            let labels: [(&str, &str); 3] = [
                ("app", app),
                ("network", net),
                ("kind", kind.metric_label()),
            ];
            reg.inc(
                "cmp.data_delivered",
                &labels,
                self.data_by_kind[kind.index()],
            );
            reg.inc(
                "cmp.data_collided",
                &labels,
                self.collided_by_kind[kind.index()],
            );
        }
        reg.inc("cmp.data_recollided", &run, self.collided_by_kind[3]);

        reg.inc("cmp.acks_elided", &run, self.acks_elided);
        reg.inc(
            "cmp.subscription_packets_saved",
            &run,
            self.subscription_packets_saved,
        );
        reg.gauge("cmp.l1_miss_rate", &run, self.l1_miss_rate);
        reg.inc("cmp.active_cycles", &run, self.active_cycles);
        reg.inc("cmp.stalled_cycles", &run, self.stalled_cycles);

        reg.gauge("cmp.energy.network_j", &run, self.energy.network_j);
        reg.gauge("cmp.energy.core_j", &run, self.energy.core_j);
        reg.gauge("cmp.energy.leakage_j", &run, self.energy.leakage_j);
        reg.gauge("cmp.energy.total_j", &run, self.energy.total_j());

        reg.gauge(
            "cmp.data_resolution_delay",
            &run,
            self.data_resolution_delay,
        );
        reg.gauge("cmp.hint_accuracy", &run, self.hint_accuracy);
        reg.gauge("cmp.hint_wrong_rate", &run, self.hint_wrong_rate);
        reg.inc("cmp.bit_error_drops", &run, self.bit_error_drops);
    }

    /// A fresh registry holding only this report's metrics (see
    /// [`RunReport::export`]).
    pub fn registry(&self) -> Registry {
        let mut reg = Registry::new();
        self.export(&mut reg);
        reg
    }

    /// Serializes the report into the cell cache's line-oriented wire
    /// format: one `key value…` line per field, in declaration order,
    /// with every `f64` written as its exact 16-hex-digit bit pattern.
    /// [`RunReport::from_wire`] reproduces the report bit-for-bit, so a
    /// cache hit exports byte-identical metrics to the run it replaced.
    pub fn to_wire(&self) -> String {
        let h = f64_to_hex;
        let mut lines: Vec<String> = Vec::new();
        lines.push(format!("app {}", self.app));
        lines.push(format!("network {}", self.network));
        lines.push(format!("cycles {}", self.cycles));
        lines.push(format!(
            "attribution {} {} {} {}",
            h(self.attribution.queuing),
            h(self.attribution.scheduling),
            h(self.attribution.network),
            h(self.attribution.collision_resolution)
        ));
        let rl = &self.reply_latency;
        let bins: Vec<String> = (0..rl.num_bins()).map(|i| rl.bin(i).to_string()).collect();
        lines.push(format!(
            "reply_latency {} {} {}",
            rl.bin_width(),
            rl.overflow(),
            bins.join(" ")
        ));
        let (count, mean, m2, min, max) = rl.summary().raw();
        lines.push(format!(
            "reply_summary {count} {} {} {} {}",
            h(mean),
            h(m2),
            h(min),
            h(max)
        ));
        lines.push(format!(
            "meta_tx_probability {}",
            h(self.meta_tx_probability)
        ));
        lines.push(format!(
            "data_tx_probability {}",
            h(self.data_tx_probability)
        ));
        lines.push(format!(
            "meta_collision_rate {}",
            h(self.meta_collision_rate)
        ));
        lines.push(format!(
            "data_collision_rate {}",
            h(self.data_collision_rate)
        ));
        lines.push(format!(
            "packets_sent {} {}",
            self.packets_sent[0], self.packets_sent[1]
        ));
        lines.push(format!(
            "data_by_kind {} {} {}",
            self.data_by_kind[0], self.data_by_kind[1], self.data_by_kind[2]
        ));
        lines.push(format!(
            "collided_by_kind {} {} {} {}",
            self.collided_by_kind[0],
            self.collided_by_kind[1],
            self.collided_by_kind[2],
            self.collided_by_kind[3]
        ));
        lines.push(format!("acks_elided {}", self.acks_elided));
        lines.push(format!(
            "subscription_packets_saved {}",
            self.subscription_packets_saved
        ));
        lines.push(format!("l1_miss_rate {}", h(self.l1_miss_rate)));
        lines.push(format!("active_cycles {}", self.active_cycles));
        lines.push(format!("stalled_cycles {}", self.stalled_cycles));
        lines.push(format!(
            "energy {} {} {}",
            h(self.energy.network_j),
            h(self.energy.core_j),
            h(self.energy.leakage_j)
        ));
        lines.push(format!(
            "data_resolution_delay {}",
            h(self.data_resolution_delay)
        ));
        lines.push(format!("hint_accuracy {}", h(self.hint_accuracy)));
        lines.push(format!("hint_wrong_rate {}", h(self.hint_wrong_rate)));
        lines.push(format!("bit_error_drops {}", self.bit_error_drops));
        lines.push(format!("profile {}", self.profile.to_wire_fragment()));
        let mut out = lines.join("\n");
        out.push('\n');
        out
    }

    /// Parses the wire format written by [`RunReport::to_wire`]. Returns
    /// `None` on any structural mismatch — missing/extra/misordered lines
    /// or malformed numbers — so cache readers treat damage as a miss
    /// rather than ever returning wrong bytes.
    pub fn from_wire(text: &str) -> Option<RunReport> {
        let mut w = WireLines(text.lines());
        let app = w.kv("app")?.to_string();
        let network = w.kv("network")?.to_string();
        let cycles: u64 = w.kv("cycles")?.parse().ok()?;
        let attr = parse_hex_f64s(w.kv("attribution")?)?;
        let [queuing, scheduling, network_lat, collision_resolution] = attr[..] else {
            return None;
        };
        let hist = parse_u64s(w.kv("reply_latency")?)?;
        let (&bin_width, rest) = hist.split_first()?;
        let (&overflow, bins) = rest.split_first()?;
        if bin_width == 0 || bins.is_empty() {
            return None;
        }
        let mut sum = w.kv("reply_summary")?.split(' ');
        let count: u64 = sum.next()?.parse().ok()?;
        let mean = f64_from_hex(sum.next()?)?;
        let m2 = f64_from_hex(sum.next()?)?;
        let min = f64_from_hex(sum.next()?)?;
        let max = f64_from_hex(sum.next()?)?;
        if sum.next().is_some() {
            return None;
        }
        let reply_latency = Histogram::from_raw(
            bin_width,
            bins.to_vec(),
            overflow,
            Summary::from_raw(count, mean, m2, min, max),
        );
        let meta_tx_probability = f64_from_hex(w.kv("meta_tx_probability")?)?;
        let data_tx_probability = f64_from_hex(w.kv("data_tx_probability")?)?;
        let meta_collision_rate = f64_from_hex(w.kv("meta_collision_rate")?)?;
        let data_collision_rate = f64_from_hex(w.kv("data_collision_rate")?)?;
        let sent = parse_u64s(w.kv("packets_sent")?)?;
        let [sent_meta, sent_data] = sent[..] else {
            return None;
        };
        let by_kind = parse_u64s(w.kv("data_by_kind")?)?;
        let [k0, k1, k2] = by_kind[..] else {
            return None;
        };
        let collided = parse_u64s(w.kv("collided_by_kind")?)?;
        let [c0, c1, c2, c3] = collided[..] else {
            return None;
        };
        let acks_elided: u64 = w.kv("acks_elided")?.parse().ok()?;
        let subscription_packets_saved: u64 = w.kv("subscription_packets_saved")?.parse().ok()?;
        let l1_miss_rate = f64_from_hex(w.kv("l1_miss_rate")?)?;
        let active_cycles: u64 = w.kv("active_cycles")?.parse().ok()?;
        let stalled_cycles: u64 = w.kv("stalled_cycles")?.parse().ok()?;
        let energy = parse_hex_f64s(w.kv("energy")?)?;
        let [network_j, core_j, leakage_j] = energy[..] else {
            return None;
        };
        let data_resolution_delay = f64_from_hex(w.kv("data_resolution_delay")?)?;
        let hint_accuracy = f64_from_hex(w.kv("hint_accuracy")?)?;
        let hint_wrong_rate = f64_from_hex(w.kv("hint_wrong_rate")?)?;
        let bit_error_drops: u64 = w.kv("bit_error_drops")?.parse().ok()?;
        let profile = Profile::from_wire_fragment(w.kv("profile")?)?;
        w.end()?;
        Some(RunReport {
            app,
            network,
            cycles,
            attribution: LatencyAttribution {
                queuing,
                scheduling,
                network: network_lat,
                collision_resolution,
            },
            reply_latency,
            meta_tx_probability,
            data_tx_probability,
            meta_collision_rate,
            data_collision_rate,
            packets_sent: [sent_meta, sent_data],
            data_by_kind: [k0, k1, k2],
            collided_by_kind: [c0, c1, c2, c3],
            acks_elided,
            subscription_packets_saved,
            l1_miss_rate,
            active_cycles,
            stalled_cycles,
            energy: ChipEnergy {
                network_j,
                core_j,
                leakage_j,
            },
            data_resolution_delay,
            hint_accuracy,
            hint_wrong_rate,
            bit_error_drops,
            profile,
        })
    }
}

/// Cursor over wire-format lines: each line must start with the expected
/// key followed by one space.
struct WireLines<'a>(std::str::Lines<'a>);

impl<'a> WireLines<'a> {
    /// Consumes the next line, returning the value part iff the line's
    /// key matches.
    fn kv(&mut self, key: &str) -> Option<&'a str> {
        self.0.next()?.strip_prefix(key)?.strip_prefix(' ')
    }

    /// Succeeds iff no lines remain.
    fn end(mut self) -> Option<()> {
        match self.0.next() {
            None => Some(()),
            Some(_) => None,
        }
    }
}

/// An `f64` as its exact bit pattern, 16 hex digits.
fn f64_to_hex(x: f64) -> String {
    format!("{:016x}", x.to_bits())
}

/// Inverse of [`f64_to_hex`]; `None` on malformed input.
fn f64_from_hex(s: &str) -> Option<f64> {
    if s.len() != 16 {
        return None;
    }
    u64::from_str_radix(s, 16).ok().map(f64::from_bits)
}

/// Space-separated decimal `u64`s.
fn parse_u64s(s: &str) -> Option<Vec<u64>> {
    s.split(' ').map(|t| t.parse().ok()).collect()
}

/// Space-separated hex-bit `f64`s.
fn parse_hex_f64s(s: &str) -> Option<Vec<f64>> {
    s.split(' ').map(f64_from_hex).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_indexing() {
        assert_eq!(DataPacketKind::Memory.index(), 0);
        assert_eq!(DataPacketKind::Reply.index(), 1);
        assert_eq!(DataPacketKind::WriteBack.index(), 2);
        assert!(DataPacketKind::Reply.label().contains("Reply"));
    }

    #[test]
    fn speedup_math() {
        let r = RunReport {
            app: "x".into(),
            network: "fsoi".into(),
            cycles: 500,
            attribution: LatencyAttribution::default(),
            reply_latency: Histogram::new(10, 20),
            meta_tx_probability: 0.0,
            data_tx_probability: 0.0,
            meta_collision_rate: 0.0,
            data_collision_rate: 0.0,
            packets_sent: [0, 0],
            data_by_kind: [0; 3],
            collided_by_kind: [0; 4],
            acks_elided: 0,
            subscription_packets_saved: 0,
            l1_miss_rate: 0.0,
            active_cycles: 0,
            stalled_cycles: 0,
            energy: ChipEnergy::default(),
            data_resolution_delay: 0.0,
            hint_accuracy: 0.0,
            hint_wrong_rate: 0.0,
            bit_error_drops: 0,
            profile: Profile::new(),
        };
        assert!((r.speedup_vs(1000) - 2.0).abs() < 1e-12);
    }

    fn sample_report() -> RunReport {
        RunReport {
            app: "tsp".into(),
            network: "fsoi".into(),
            cycles: 500,
            attribution: LatencyAttribution {
                queuing: 1.0,
                scheduling: 2.0,
                network: 3.0,
                collision_resolution: 4.0,
            },
            reply_latency: Histogram::new(10, 20),
            meta_tx_probability: 0.25,
            data_tx_probability: 0.125,
            meta_collision_rate: 0.5,
            data_collision_rate: 0.75,
            packets_sent: [10, 20],
            data_by_kind: [3, 4, 5],
            collided_by_kind: [1, 2, 3, 4],
            acks_elided: 6,
            subscription_packets_saved: 7,
            l1_miss_rate: 0.01,
            active_cycles: 400,
            stalled_cycles: 100,
            energy: ChipEnergy {
                network_j: 0.5,
                core_j: 1.5,
                leakage_j: 0.25,
            },
            data_resolution_delay: 9.0,
            hint_accuracy: 0.9,
            hint_wrong_rate: 0.1,
            bit_error_drops: 2,
            profile: {
                let mut p = Profile::new();
                p.add("sim/cycles", 500);
                p.add("sim/ff/jumps", 3);
                p
            },
        }
    }

    #[test]
    fn registry_export_covers_report_fields() {
        let r = sample_report();
        let reg = r.registry();
        let run = [("app", "tsp"), ("network", "fsoi")];
        assert_eq!(reg.counter("cmp.cycles", &run), 500);
        assert_eq!(reg.gauge_value("cmp.latency.total", &run), Some(10.0));
        assert_eq!(
            reg.gauge_value(
                "cmp.tx_probability",
                &[("app", "tsp"), ("network", "fsoi"), ("lane", "meta")]
            ),
            Some(0.25)
        );
        assert_eq!(
            reg.counter(
                "cmp.data_delivered",
                &[("app", "tsp"), ("network", "fsoi"), ("kind", "writeback")]
            ),
            5
        );
        assert_eq!(reg.counter("cmp.data_recollided", &run), 4);
        assert_eq!(reg.gauge_value("cmp.energy.total_j", &run), Some(2.25));
        assert_eq!(reg.counter("cmp.bit_error_drops", &run), 2);
    }

    #[test]
    fn wire_round_trip_is_byte_exact() {
        let mut r = sample_report();
        // Exercise the histogram path with real observations, including
        // overflow, and an f64 that does not print exactly in decimal.
        for v in [3, 17, 42, 1_000] {
            r.reply_latency.record(v);
        }
        r.l1_miss_rate = 0.1 + 0.2; // 0.30000000000000004
        let wire = r.to_wire();
        let back = RunReport::from_wire(&wire).expect("round trip parses");
        assert_eq!(back.registry().to_jsonl(), r.registry().to_jsonl());
        assert_eq!(back.to_wire(), wire, "re-serialization is byte-stable");
        assert_eq!(back.l1_miss_rate.to_bits(), r.l1_miss_rate.to_bits());
    }

    #[test]
    fn malformed_wire_is_rejected_not_misparsed() {
        let wire = sample_report().to_wire();
        assert!(RunReport::from_wire("").is_none());
        assert!(RunReport::from_wire("garbage\n").is_none());
        // Truncation, an extra trailing line, a reordered field, and a
        // corrupted number must all fail closed (cache treats as a miss).
        let truncated: String = wire.lines().take(5).collect::<Vec<_>>().join("\n");
        assert!(RunReport::from_wire(&truncated).is_none());
        assert!(RunReport::from_wire(&format!("{wire}extra 1\n")).is_none());
        let reordered = wire.replacen("cycles", "cycle_count", 1);
        assert!(RunReport::from_wire(&reordered).is_none());
        let corrupt = wire.replacen("cycles 500", "cycles 5oo", 1);
        assert!(RunReport::from_wire(&corrupt).is_none());
    }

    #[test]
    fn registry_export_is_deterministic() {
        let r = sample_report();
        assert_eq!(r.registry().to_jsonl(), r.registry().to_jsonl());
        // Two reports merge into one registry without key clashes (the
        // app/network labels keep them apart).
        let mut merged = r.registry();
        let mut other = sample_report();
        other.network = "mesh".into();
        other.export(&mut merged);
        assert_eq!(merged.len(), 2 * r.registry().len());
    }
}
