//! Exempt-path fixture: lives under `tests/`, so nothing here may be
//! reported even though it uses every banned idiom.

use std::collections::HashMap;

fn helper() -> u64 {
    let mut m = HashMap::new();
    m.insert(1u64, 2u64);
    let _ = std::time::Instant::now();
    m.get(&1).copied().unwrap()
}
