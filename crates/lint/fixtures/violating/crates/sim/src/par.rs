//! Deliberately-violating fixture for rule D4b: the pre-PR-6 worker
//! loop, holding the own-queue guard across the steal's lock — the
//! exact shape that deadlocked the parallel sweep. The path is D3-exempt
//! (it stands in for `fsoi_sim::par`) so only D4b fires here.
//! Never compiled — only lexed.

use std::collections::VecDeque;
use std::sync::{Mutex, PoisonError};

fn recover<T>(e: PoisonError<T>) -> T {
    e.into_inner()
}

/// D4b: `own` is still live when the victim's `lock()` is requested.
pub fn buggy_binding_steal(queues: &[Mutex<VecDeque<u64>>], me: usize) -> Option<u64> {
    let mut own = queues[me].lock().unwrap_or_else(recover);
    let job = own.pop_front();
    let stolen = queues[(me + 1) % queues.len()].lock().unwrap_or_else(recover).pop_back();
    drop(own);
    job.or(stolen)
}

/// D4b: the own-queue guard is a statement temporary held through the
/// chained steal closure — the original deadlock spelling.
pub fn buggy_chained_steal(queues: &[Mutex<VecDeque<u64>>], me: usize) -> Option<u64> {
    let job = queues[me]
        .lock()
        .unwrap_or_else(recover)
        .pop_front()
        .or_else(|| queues[(me + 1) % queues.len()].lock().unwrap_or_else(recover).pop_back());
    job
}
