//! The intra-chip free-space optical interconnect (FSOI) of Xue et al.,
//! ISCA 2010 — the paper's primary contribution.
//!
//! FSOI is a fully-distributed, relay-free quasi-crossbar: every node owns
//! VCSEL lanes beamed directly at every other node's photodetectors through
//! a free-space micro-optics layer. There is no packet switching, no
//! buffering in the network, and no arbitration; instead, simultaneous
//! packets that share a receiver **collide** and are retransmitted under a
//! tuned exponential back-off. A dedicated, collision-free confirmation
//! channel acknowledges receipt and doubles as a carrier for protocol
//! optimizations.
//!
//! * [`network::FsoiNetwork`] — the cycle-driven simulator;
//! * [`packet`] — packet classes and the PID/~PID collision-detecting code;
//! * [`lane`] — lane widths, serialization latencies and slotting;
//! * [`backoff`] — the `W = 2.7, B = 1.1` retransmission policy;
//! * [`confirmation`] — the confirmation channel and mini-cycle
//!   subscriptions;
//! * [`spacing`] — request spacing (reply-slot reservation);
//! * [`phase_array`] — beam steering for the 64-node configuration;
//! * [`topology`] — receiver sharing and VCSEL inventory;
//! * [`analysis`] — the paper's closed-form models (Figures 3 and 4, the
//!   meta-bandwidth optimum of §4.3.2);
//! * [`power`] — per-packet energy accounting built on `fsoi-optics`.
//!
//! # Example
//!
//! ```
//! use fsoi_net::config::FsoiConfig;
//! use fsoi_net::network::FsoiNetwork;
//! use fsoi_net::packet::{Packet, PacketClass};
//! use fsoi_net::topology::NodeId;
//!
//! let mut net = FsoiNetwork::new(FsoiConfig::nodes(16), 1);
//! net.inject(Packet::new(NodeId(0), NodeId(9), PacketClass::Data, 0)).unwrap();
//! net.run(10);
//! assert_eq!(net.drain_delivered().len(), 1);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod analysis;
pub mod backoff;
pub mod config;
pub mod confirmation;
pub mod lane;
pub mod network;
pub mod packet;
pub mod phase_array;
pub mod power;
pub mod skew;
pub mod spacing;
pub mod topology;

pub use config::FsoiConfig;
pub use network::FsoiNetwork;
