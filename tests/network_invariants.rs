//! Property-based invariants of the two network engines: whatever the
//! traffic, packets are conserved (delivered exactly once, never
//! fabricated), runs are deterministic in the seed, and collision-free
//! traffic stays collision-free. (On the in-repo `fsoi-check` harness.)

use fsoi::mesh::config::MeshConfig;
use fsoi::mesh::network::MeshNetwork;
use fsoi::mesh::packet::MeshPacket;
use fsoi::net::config::FsoiConfig;
use fsoi::net::network::FsoiNetwork;
use fsoi::net::packet::{Packet, PacketClass};
use fsoi::net::topology::NodeId;
use fsoi_check::{any_bool, checker, vec_of, Gen};
use std::collections::BTreeMap;

/// An arbitrary traffic script: (delay-before-inject, src, dst-offset,
/// is-data).
fn traffic_gen(max_events: usize) -> impl Gen<Value = Vec<(u8, u8, u8, bool)>> {
    vec_of((0u8..6, 0u8..16, 1u8..16, any_bool()), 1..max_events)
}

fn drive_fsoi(script: &[(u8, u8, u8, bool)], seed: u64) -> Vec<(usize, usize, u64, u64)> {
    let mut net = FsoiNetwork::new(FsoiConfig::nodes(16), seed);
    let mut out = Vec::new();
    let mut injected = 0u64;
    let mut it = script.iter();
    let mut next = it.next();
    let mut wait = 0u64;
    for _ in 0..200_000u64 {
        while let Some(&(delay, src, off, data)) = next {
            if wait < delay as u64 {
                wait += 1;
                break;
            }
            wait = 0;
            let dst = (src as usize + off as usize) % 16;
            let class = if data {
                PacketClass::Data
            } else {
                PacketClass::Meta
            };
            if net
                .inject(Packet::new(
                    NodeId(src as usize),
                    NodeId(dst),
                    class,
                    injected,
                ))
                .is_ok()
            {
                injected += 1;
            }
            next = it.next();
        }
        net.tick();
        for d in net.drain_delivered() {
            out.push((
                d.packet.src.0,
                d.packet.dst.0,
                d.packet.tag,
                d.delivered_at.as_u64(),
            ));
        }
        if next.is_none() && net.is_idle() {
            break;
        }
    }
    assert!(net.is_idle(), "network must drain");
    out
}

/// Every accepted packet is delivered exactly once, to the right node,
/// whatever collisions happened along the way.
#[test]
fn fsoi_conserves_packets() {
    checker!().cases(48).check(
        "fsoi_conserves_packets",
        (traffic_gen(120), 0u64..1000),
        |(script, seed)| {
            let delivered = drive_fsoi(script, *seed);
            let mut seen = BTreeMap::new();
            for (_, _, tag, _) in &delivered {
                *seen.entry(*tag).or_insert(0u32) += 1;
            }
            assert!(seen.values().all(|&c| c == 1), "duplicate delivery");
            // Tags are assigned densely from 0, so conservation means the
            // set of tags is exactly 0..len.
            let mut tags: Vec<u64> = seen.keys().copied().collect();
            tags.sort_unstable();
            let expect: Vec<u64> = (0..delivered.len() as u64).collect();
            assert_eq!(tags, expect, "lost or fabricated packets");
        },
    );
}

/// Identical seeds replay identical runs.
#[test]
fn fsoi_is_deterministic() {
    checker!().cases(48).check(
        "fsoi_is_deterministic",
        (traffic_gen(60), 0u64..1000),
        |(script, seed)| {
            assert_eq!(drive_fsoi(script, *seed), drive_fsoi(script, *seed));
        },
    );
}

/// The mesh conserves packets too.
#[test]
fn mesh_conserves_packets() {
    checker!()
        .cases(48)
        .check("mesh_conserves_packets", traffic_gen(80), |script| {
            let mut net = MeshNetwork::new(MeshConfig::nodes(16));
            let mut injected = 0u64;
            for &(_, src, off, data) in script {
                let src = src as usize;
                let dst = (src + off as usize) % 16;
                let pkt = if data {
                    MeshPacket::data(src, dst, injected)
                } else {
                    MeshPacket::meta(src, dst, injected)
                };
                if net.inject(pkt).is_ok() {
                    injected += 1;
                }
                net.tick();
            }
            let mut delivered = net.drain_delivered();
            for _ in 0..100_000 {
                net.tick();
                delivered.extend(net.drain_delivered());
                if net.is_idle() {
                    break;
                }
            }
            assert!(net.is_idle(), "mesh must drain");
            assert_eq!(delivered.len() as u64, injected);
            let mut tags: Vec<u64> = delivered.iter().map(|d| d.packet.tag).collect();
            tags.sort_unstable();
            assert_eq!(tags, (0..injected).collect::<Vec<_>>());
        });
}

/// Traffic with all-distinct destinations and one sender per receiver
/// group never collides.
#[test]
fn partitioned_traffic_is_collision_free() {
    checker!().cases(48).check(
        "partitioned_traffic_is_collision_free",
        (any_bool(), 0u64..100),
        |&(data, seed)| {
            let mut net = FsoiNetwork::new(FsoiConfig::nodes(16), seed);
            let class = if data {
                PacketClass::Data
            } else {
                PacketClass::Meta
            };
            for src in 0..8usize {
                net.inject(Packet::new(NodeId(src), NodeId(src + 8), class, src as u64))
                    .unwrap();
            }
            for _ in 0..100 {
                net.tick();
            }
            assert!(net.is_idle());
            assert_eq!(net.stats().collision_events, [0, 0]);
            assert_eq!(net.stats().delivered[class.lane()], 8);
        },
    );
}

/// Heavier non-proptest soak: a sustained all-to-all burst storm drains
/// and conserves packets under both back-off regimes.
#[test]
fn fsoi_survives_burst_storms() {
    for seed in [1u64, 2, 3] {
        let mut net = FsoiNetwork::new(FsoiConfig::nodes(16), seed);
        let mut injected = 0u64;
        // Three waves of all-to-one traffic at different targets.
        for (wave, target) in [0usize, 7, 13].into_iter().enumerate() {
            for src in 0..16usize {
                if src == target {
                    continue;
                }
                if net
                    .inject(Packet::new(
                        NodeId(src),
                        NodeId(target),
                        PacketClass::Meta,
                        (wave * 100 + src) as u64,
                    ))
                    .is_ok()
                {
                    injected += 1;
                }
            }
            for _ in 0..500 {
                net.tick();
            }
        }
        let mut delivered = net.drain_delivered().len() as u64;
        for _ in 0..30_000 {
            net.tick();
            delivered += net.drain_delivered().len() as u64;
            if net.is_idle() {
                break;
            }
        }
        assert!(net.is_idle(), "storm must drain (seed {seed})");
        assert_eq!(delivered, injected, "conservation under storms");
        assert!(net.stats().collision_events[0] > 0, "storms collide");
    }
}
