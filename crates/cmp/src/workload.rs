//! Synthetic application workloads standing in for the paper's suite.
//!
//! The paper evaluates SPLASH-2 (barnes, cholesky, fmm, fft, lu, ocean,
//! radiosity, radix, raytrace, water-spatial) plus em3d, ilink, jacobi,
//! mp3d, shallow and tsp, compiled for Alpha and run on an adapted
//! SimpleScalar. We cannot ship those binaries or an Alpha core; instead
//! each application is modelled as a *memory-reference process* drawing
//! from four pools:
//!
//! * **private hot** — a per-core working set that fits the (deliberately
//!   small, Table 3) 8 KB L1 and hits;
//! * **streaming** — word-granularity sequential walks over a large
//!   per-core region (≈ 1 L1 miss per 8 accesses, the line-size reuse);
//! * **shared hot** — a small set of read-write shared lines: these are
//!   the coherence action (invalidations, downgrades, upgrade races);
//! * **cold** — uniform accesses over a large shared region: L1 misses
//!   that mostly hit the distributed L2, occasionally memory.
//!
//! Per-application pool weights, compute gaps and synchronization cadence
//! are set so L1 miss rates land in the paper's reported 0.8–15.6 % range
//! (average ≈ 4.8 %) and the traffic classes match each program's
//! character. The coherence protocol, networks, collisions and
//! confirmations are all exercised for real — only the instruction stream
//! generating the misses is synthetic (DESIGN.md, substitution 1).

use fsoi_coherence::protocol::LineAddr;
use fsoi_sim::rng::Xoshiro256StarStar;

/// Base of the globally shared region (per-core private regions sit at
/// `core_id << 32`).
const SHARED_BASE: u64 = 1 << 48;
/// Base of the synchronization variables (locks, barrier words).
const SYNC_BASE: u64 = 1 << 52;
/// Words per cache line for the streaming walks (32 B / 4 B).
const WORDS_PER_LINE: u64 = 8;
/// Private-hot working-set size in lines (fits the 256-line L1).
const PRIVATE_HOT_LINES: u64 = 96;

/// Tunable description of one application.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AppProfile {
    /// Short name (the paper's x-axis labels).
    pub name: &'static str,
    /// Mean compute cycles between memory operations.
    pub mean_gap: f64,
    /// Fraction of memory operations that are loads.
    pub read_fraction: f64,
    /// Probability an access streams sequentially over the private
    /// streaming region (≈ 1/8 of these miss).
    pub stream_fraction: f64,
    /// Probability an access targets the shared-hot (actively read-write
    /// shared) lines.
    pub shared_hot_fraction: f64,
    /// Probability an access is a cold uniform access over the large
    /// shared region (an L1 miss, usually an L2 hit).
    pub cold_fraction: f64,
    /// Per-core streaming region size in lines.
    pub stream_lines: u64,
    /// Size of the shared-hot set in lines.
    pub shared_hot_lines: u64,
    /// Size of the cold shared region in lines.
    pub shared_cold_lines: u64,
    /// Number of distinct lock variables (0 = lock-free).
    pub locks: usize,
    /// Memory operations between critical sections (0 = never).
    pub lock_interval: u64,
    /// Memory operations between barrier episodes (0 = never).
    pub barrier_interval: u64,
    /// Memory operations each core performs before finishing.
    pub ops_per_core: u64,
}

impl AppProfile {
    /// The sixteen applications of the paper's Figures 6–10, in plot
    /// order: ba ch fmm fft lu oc ro rx ray ws em ilink ja mp sh tsp.
    #[allow(clippy::too_many_arguments)]
    pub fn suite() -> Vec<AppProfile> {
        fn p(
            name: &'static str,
            mean_gap: f64,
            read_fraction: f64,
            stream_fraction: f64,
            shared_hot_fraction: f64,
            cold_fraction: f64,
            stream_lines: u64,
            shared_hot_lines: u64,
            shared_cold_lines: u64,
            locks: usize,
            lock_interval: u64,
            barrier_interval: u64,
        ) -> AppProfile {
            AppProfile {
                name,
                mean_gap,
                read_fraction,
                stream_fraction,
                shared_hot_fraction,
                cold_fraction,
                stream_lines,
                shared_hot_lines,
                shared_cold_lines,
                locks,
                lock_interval,
                barrier_interval,
                ops_per_core: 3_000,
            }
        }
        vec![
            // N-body: tree walks (cold pointer chasing), cell locks.
            p(
                "ba", 2.5, 0.75, 0.044, 0.035, 0.0110, 700, 320, 3000, 16, 120, 0,
            ),
            // Sparse factorization: irregular panels, task-queue locks.
            p(
                "ch", 2.5, 0.70, 0.055, 0.028, 0.0083, 800, 256, 3500, 8, 90, 0,
            ),
            // Fast multipole: phases with barriers + list locks.
            p(
                "fmm", 2.5, 0.72, 0.044, 0.028, 0.0066, 700, 256, 3000, 8, 150, 450,
            ),
            // FFT: staged all-to-all transpose, heavy streaming.
            p(
                "fft", 2.0, 0.60, 0.138, 0.021, 0.0110, 1100, 128, 4500, 0, 0, 350,
            ),
            // Dense LU: blocked streaming, barrier-separated.
            p(
                "lu", 2.0, 0.65, 0.110, 0.028, 0.0066, 1000, 128, 3500, 0, 0, 300,
            ),
            // Ocean: huge grids — the most streaming-intensive.
            p(
                "oc", 1.5, 0.62, 0.220, 0.028, 0.0138, 1200, 128, 5000, 0, 0, 250,
            ),
            // Radiosity: task stealing, irregular, lock heavy.
            p(
                "ro", 2.2, 0.72, 0.033, 0.049, 0.0083, 600, 384, 2500, 24, 80, 0,
            ),
            // Radix: permutation writes — cold-dominated, high miss.
            p(
                "rx", 1.8, 0.45, 0.099, 0.021, 0.0330, 1100, 128, 20_000, 0, 0, 300,
            ),
            // Raytrace: read-mostly BVH with work-queue locks.
            p(
                "ray", 2.2, 0.85, 0.044, 0.028, 0.0165, 900, 256, 4500, 12, 110, 0,
            ),
            // Water-spatial: small boxes, the lightest traffic.
            p(
                "ws", 4.0, 0.70, 0.022, 0.021, 0.0028, 500, 128, 1200, 8, 140, 500,
            ),
            // em3d: bipartite graph relaxation — remote-read dominated.
            p(
                "em", 1.2, 0.80, 0.121, 0.035, 0.0275, 1100, 256, 19_000, 0, 0, 400,
            ),
            // ilink: genetic linkage, moderate everything.
            p(
                "ilink", 2.5, 0.70, 0.055, 0.028, 0.0066, 800, 256, 3000, 8, 130, 0,
            ),
            // Jacobi: stencil sweeps, very regular.
            p(
                "ja", 3.0, 0.65, 0.165, 0.014, 0.0044, 1200, 64, 2000, 0, 0, 280,
            ),
            // mp3d: particle push — notorious write sharing + high miss.
            p(
                "mp", 1.2, 0.50, 0.066, 0.070, 0.0248, 1000, 512, 16_000, 4, 200, 300,
            ),
            // Shallow: weather grids, streaming with barriers.
            p(
                "sh", 2.0, 0.63, 0.154, 0.021, 0.0066, 1100, 128, 3000, 0, 0, 260,
            ),
            // TSP branch-and-bound: tiny footprint, bound-variable lock.
            p(
                "tsp", 4.5, 0.78, 0.017, 0.028, 0.0022, 400, 128, 800, 2, 200, 0,
            ),
        ]
    }

    /// Looks up a profile by name.
    pub fn by_name(name: &str) -> Option<AppProfile> {
        Self::suite().into_iter().find(|p| p.name == name)
    }

    /// Expected L1 miss rate of the reference process alone (streaming
    /// reuse + cold accesses; shared-hot invalidation misses add to this).
    pub fn expected_base_miss_rate(&self) -> f64 {
        self.stream_fraction / WORDS_PER_LINE as f64 + self.cold_fraction
    }

    /// Every line the application can touch, for cache warmup: sync words
    /// and shared pools first (they matter most under L2 capacity), then
    /// per-core private pools.
    pub fn all_region_lines(&self, nodes: usize, line_bytes: u64) -> Vec<LineAddr> {
        let mut lines = Vec::new();
        for i in 0..self.locks {
            lines.push(Self::lock_line(i, line_bytes));
        }
        lines.push(Self::barrier_line(line_bytes));
        lines.push(Self::barrier_sense_line(line_bytes));
        for idx in 0..self.shared_hot_lines {
            lines.push(LineAddr(SHARED_BASE + idx * line_bytes));
        }
        let cold_base = SHARED_BASE + (self.shared_hot_lines + 8) * line_bytes;
        for idx in 0..self.shared_cold_lines {
            lines.push(LineAddr(cold_base + idx * line_bytes));
        }
        for core in 0..nodes {
            let private = (core as u64) << 32;
            for idx in 0..PRIVATE_HOT_LINES {
                lines.push(LineAddr(private + idx * line_bytes));
            }
            let stream_base = private + (PRIVATE_HOT_LINES + 8) * line_bytes;
            for idx in 0..self.stream_lines {
                lines.push(LineAddr(stream_base + idx * line_bytes));
            }
        }
        lines
    }

    /// The line address of lock `i`.
    pub fn lock_line(i: usize, line_bytes: u64) -> LineAddr {
        LineAddr(SYNC_BASE + i as u64 * line_bytes)
    }

    /// The barrier counter line.
    pub fn barrier_line(line_bytes: u64) -> LineAddr {
        LineAddr(SYNC_BASE + (1 << 20) * line_bytes)
    }

    /// The barrier sense (release flag) line spinners watch.
    pub fn barrier_sense_line(line_bytes: u64) -> LineAddr {
        LineAddr(SYNC_BASE + ((1 << 20) + 1) * line_bytes)
    }
}

/// One step of a core's instruction stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Pure compute for the given cycles.
    Compute(u64),
    /// A load.
    Read(LineAddr),
    /// A store.
    Write(LineAddr),
    /// Enter the critical section guarded by lock `id`.
    LockAcquire(usize),
    /// Leave it.
    LockRelease(usize),
    /// Arrive at the global barrier.
    BarrierArrive,
}

/// Per-core generator of the application's reference stream.
#[derive(Debug)]
pub struct CoreWorkload {
    profile: AppProfile,
    core: usize,
    line_bytes: u64,
    rng: Xoshiro256StarStar,
    issued: u64,
    stream_word: u64,
    since_lock: u64,
    since_barrier: u64,
    /// Remaining ops inside the current critical section (0 = outside).
    critical_left: u64,
    held_lock: Option<usize>,
    pending_gap: bool,
}

impl CoreWorkload {
    /// Creates core `core`'s stream.
    pub fn new(profile: AppProfile, core: usize, line_bytes: u64, seed: u64) -> Self {
        CoreWorkload {
            profile,
            core,
            line_bytes,
            rng: Xoshiro256StarStar::new(seed ^ (core as u64).wrapping_mul(0x9E37_79B9)),
            issued: 0,
            stream_word: 0,
            since_lock: 0,
            since_barrier: 0,
            critical_left: 0,
            held_lock: None,
            pending_gap: false,
        }
    }

    /// The profile driving this stream.
    pub fn profile(&self) -> &AppProfile {
        &self.profile
    }

    /// Memory operations issued so far.
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// True once the stream is exhausted.
    pub fn is_done(&self) -> bool {
        self.issued >= self.profile.ops_per_core && self.held_lock.is_none()
    }

    fn private_base(&self) -> u64 {
        (self.core as u64) << 32
    }

    fn pick_address(&mut self) -> LineAddr {
        let p = self.profile;
        let u = self.rng.next_f64();
        let line_idx;
        let base;
        if u < p.stream_fraction {
            // Word-granularity sequential walk: one miss per line of reuse.
            self.stream_word += 1;
            line_idx = (self.stream_word / WORDS_PER_LINE) % p.stream_lines;
            base = self.private_base() + (PRIVATE_HOT_LINES + 8) * self.line_bytes;
        } else if u < p.stream_fraction + p.shared_hot_fraction {
            line_idx = self.rng.next_below(p.shared_hot_lines);
            base = SHARED_BASE;
        } else if u < p.stream_fraction + p.shared_hot_fraction + p.cold_fraction {
            line_idx = self.rng.next_below(p.shared_cold_lines);
            base = SHARED_BASE + (p.shared_hot_lines + 8) * self.line_bytes;
        } else {
            line_idx = self.rng.next_below(PRIVATE_HOT_LINES);
            base = self.private_base();
        }
        LineAddr(base + line_idx * self.line_bytes)
    }

    fn pick_shared_hot(&mut self) -> LineAddr {
        let idx = self.rng.next_below(self.profile.shared_hot_lines);
        LineAddr(SHARED_BASE + idx * self.line_bytes)
    }

    /// Produces the next operation, or `None` when the core is done.
    pub fn next_op(&mut self) -> Option<Op> {
        let p = self.profile;
        // Alternate compute gaps with memory operations.
        if self.pending_gap {
            self.pending_gap = false;
            let gap = self.rng.geometric(1.0 / (p.mean_gap + 1.0));
            if gap > 0 {
                return Some(Op::Compute(gap));
            }
        }

        // Close an open critical section.
        if let Some(lock) = self.held_lock {
            if self.critical_left == 0 {
                self.held_lock = None;
                return Some(Op::LockRelease(lock));
            }
        }

        if self.issued >= p.ops_per_core {
            return None;
        }

        // Synchronization comes first at its cadence.
        if self.held_lock.is_none()
            && p.barrier_interval > 0
            && self.since_barrier >= p.barrier_interval
        {
            self.since_barrier = 0;
            return Some(Op::BarrierArrive);
        }
        if self.held_lock.is_none()
            && p.locks > 0
            && p.lock_interval > 0
            && self.since_lock >= p.lock_interval
        {
            self.since_lock = 0;
            let lock = self.rng.next_below(p.locks as u64) as usize;
            self.held_lock = Some(lock);
            self.critical_left = 1 + self.rng.next_below(4);
            return Some(Op::LockAcquire(lock));
        }

        // A regular memory operation.
        self.issued += 1;
        self.since_lock += 1;
        self.since_barrier += 1;
        self.pending_gap = true;
        if self.critical_left > 0 {
            self.critical_left -= 1;
            // Critical sections mutate lock-protected shared state.
            let line = self.pick_shared_hot();
            return Some(if self.rng.bernoulli(0.5) {
                Op::Write(line)
            } else {
                Op::Read(line)
            });
        }
        let line = self.pick_address();
        Some(if self.rng.bernoulli(p.read_fraction) {
            Op::Read(line)
        } else {
            Op::Write(line)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_sixteen_distinct_apps() {
        let suite = AppProfile::suite();
        assert_eq!(suite.len(), 16);
        let mut names: Vec<&str> = suite.iter().map(|p| p.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 16, "names must be unique");
        assert!(AppProfile::by_name("fft").is_some());
        assert!(AppProfile::by_name("nope").is_none());
    }

    #[test]
    fn profiles_are_physical() {
        for p in AppProfile::suite() {
            assert!(p.mean_gap > 0.0, "{}", p.name);
            assert!((0.0..=1.0).contains(&p.read_fraction));
            let pools = p.stream_fraction + p.shared_hot_fraction + p.cold_fraction;
            assert!(pools < 1.0, "{}: pools must leave private-hot room", p.name);
            assert!(p.stream_lines > 0 && p.shared_hot_lines > 0 && p.shared_cold_lines > 0);
            assert!(p.ops_per_core > 0);
            if p.lock_interval > 0 {
                assert!(p.locks > 0, "{} locks without variables", p.name);
            }
        }
    }

    #[test]
    fn expected_miss_rates_span_papers_range() {
        // Paper: 0.8 % to 15.6 %, average 4.8 % (with the scaled L1s).
        let suite = AppProfile::suite();
        let rates: Vec<f64> = suite.iter().map(|p| p.expected_base_miss_rate()).collect();
        let avg = rates.iter().sum::<f64>() / rates.len() as f64;
        // The base process accounts for roughly a third of the measured
        // miss rate; the rest comes from sharing invalidations and sync
        // probes, which scale with it.
        assert!(
            (0.012..0.06).contains(&avg),
            "suite average base miss rate = {avg}"
        );
        assert!(rates.iter().any(|&r| r < 0.01), "some app must be light");
        assert!(rates.iter().any(|&r| r > 0.03), "some app must be heavy");
    }

    #[test]
    fn stream_terminates_and_counts_ops() {
        let p = AppProfile::by_name("tsp").unwrap();
        let mut w = CoreWorkload::new(p, 0, 32, 1);
        let mut mem_ops = 0;
        let mut guard = 0;
        while let Some(op) = w.next_op() {
            if matches!(op, Op::Read(_) | Op::Write(_)) {
                mem_ops += 1;
            }
            guard += 1;
            assert!(guard < 100_000, "stream must terminate");
        }
        assert!(w.is_done());
        assert_eq!(mem_ops, p.ops_per_core);
        assert_eq!(w.issued(), p.ops_per_core);
    }

    #[test]
    fn lock_acquires_are_balanced_by_releases() {
        let p = AppProfile::by_name("ro").unwrap();
        let mut w = CoreWorkload::new(p, 2, 32, 7);
        let mut depth: i64 = 0;
        while let Some(op) = w.next_op() {
            match op {
                Op::LockAcquire(_) => {
                    depth += 1;
                    assert_eq!(depth, 1, "no nesting");
                }
                Op::LockRelease(_) => {
                    depth -= 1;
                    assert_eq!(depth, 0);
                }
                _ => {}
            }
        }
        assert_eq!(depth, 0, "every acquire released");
    }

    #[test]
    fn barrier_apps_emit_barriers() {
        let p = AppProfile::by_name("fft").unwrap();
        let mut w = CoreWorkload::new(p, 0, 32, 3);
        let mut barriers = 0;
        while let Some(op) = w.next_op() {
            if op == Op::BarrierArrive {
                barriers += 1;
            }
        }
        let expected = p.ops_per_core / p.barrier_interval;
        assert!(
            (barriers as i64 - expected as i64).abs() <= 1,
            "{barriers} vs {expected}"
        );
    }

    #[test]
    fn lock_free_apps_emit_no_sync() {
        let p = AppProfile::by_name("ja").unwrap();
        assert_eq!(p.locks, 0);
        let mut w = CoreWorkload::new(p, 0, 32, 3);
        while let Some(op) = w.next_op() {
            assert!(!matches!(op, Op::LockAcquire(_) | Op::LockRelease(_)));
        }
    }

    #[test]
    fn addresses_respect_regions() {
        let p = AppProfile::by_name("em").unwrap();
        let mut w = CoreWorkload::new(p, 3, 32, 9);
        let (mut shared, mut private) = (0u64, 0u64);
        while let Some(op) = w.next_op() {
            if let Op::Read(l) | Op::Write(l) = op {
                if l.0 >= SHARED_BASE {
                    shared += 1;
                } else {
                    private += 1;
                    assert_eq!(l.0 >> 32, 3, "private region is per-core");
                }
            }
        }
        let frac = shared as f64 / (shared + private) as f64;
        let expect = p.shared_hot_fraction + p.cold_fraction;
        assert!(
            (frac - expect).abs() < 0.05,
            "shared fraction {frac} vs {expect}"
        );
    }

    #[test]
    fn streaming_reuses_lines_within_words() {
        // Consecutive streaming accesses should mostly repeat the same
        // line: ≈ 1 new line per WORDS_PER_LINE accesses.
        let mut p = AppProfile::by_name("oc").unwrap();
        p.shared_hot_fraction = 0.0;
        p.cold_fraction = 0.0;
        p.stream_fraction = 1.0 - 1e-9;
        p.barrier_interval = 0;
        let mut w = CoreWorkload::new(p, 0, 32, 5);
        let mut lines = std::collections::BTreeSet::new();
        let mut mem = 0u64;
        while let Some(op) = w.next_op() {
            if let Op::Read(l) | Op::Write(l) = op {
                lines.insert(l);
                mem += 1;
            }
        }
        let new_line_rate = lines.len() as f64 / mem as f64;
        assert!(
            (new_line_rate - 1.0 / WORDS_PER_LINE as f64).abs() < 0.05,
            "new-line rate = {new_line_rate}"
        );
    }

    #[test]
    fn different_cores_use_different_streams() {
        let p = AppProfile::by_name("ba").unwrap();
        let mut a = CoreWorkload::new(p, 0, 32, 1);
        let mut b = CoreWorkload::new(p, 1, 32, 1);
        let ops_a: Vec<Op> = std::iter::from_fn(|| a.next_op()).take(50).collect();
        let ops_b: Vec<Op> = std::iter::from_fn(|| b.next_op()).take(50).collect();
        assert_ne!(ops_a, ops_b);
    }

    #[test]
    fn sync_lines_are_disjoint_from_data() {
        let l0 = AppProfile::lock_line(0, 32);
        let l1 = AppProfile::lock_line(1, 32);
        assert_ne!(l0, l1);
        assert!(l0.0 >= SYNC_BASE);
        assert_ne!(
            AppProfile::barrier_line(32),
            AppProfile::barrier_sense_line(32)
        );
    }
}
