//! Orion-style mesh power model.
//!
//! The paper models conventional interconnect power with Orion (ref \[52\]).
//! We charge per-event energies for the four router activities plus link
//! traversals, with 45 nm-class constants, and a static leakage floor per
//! router. The absolute values matter less than the *ratio* against the
//! optical network's per-bit energies — the paper's headline is a 20×
//! interconnect-energy gap (§7.2), which emerges here from relaying: every
//! hop re-buffers and re-switches all 72–360 bits of a packet.

use crate::network::MeshStats;

/// Per-event energies in joules for a 45 nm mesh router with 72-bit flits.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeshPowerModel {
    /// Energy per flit buffer write.
    pub buffer_write_j: f64,
    /// Energy per flit buffer read.
    pub buffer_read_j: f64,
    /// Energy per flit crossbar traversal.
    pub crossbar_j: f64,
    /// Energy per allocation (VC or switch arbitration event).
    pub arbiter_j: f64,
    /// Energy per flit per link (1 mm-class global wires).
    pub link_j: f64,
    /// Static (clock + leakage) power per router, watts. The paper's
    /// baseline routers are heavyweight — the Alpha 21364 router it cites
    /// occupies a fifth of the core's area and adds hundreds of packet
    /// buffers — and the reported 20× network-energy gap versus the 1.8 W
    /// optical subsystem implies ≈ 2 W per router at 45 nm. (Set to 1.7 W so the *power* ratio lands at the paper's 20×.)
    pub router_leakage_w: f64,
    /// Core clock, Hz.
    pub core_clock_hz: f64,
}

impl MeshPowerModel {
    /// 45 nm constants (Orion-class magnitudes for a 72-bit datapath,
    /// 4-VC router): a flit write/read ≈ 2.5/1.8 pJ, crossbar ≈ 4 pJ,
    /// arbitration ≈ 0.5 pJ. The per-hop link is the dominant dynamic
    /// term: at ≈ 0.12 pJ/bit/mm and ~3.5 mm hops on a 2 cm-diagonal die,
    /// a 72-bit flit costs ≈ 30 pJ per hop. Static router power (clock
    /// tree, buffer leakage, allocator idling) is 1.7 W per router —
    /// calibrated against the paper's 20× interconnect-energy ratio over
    /// the 1.8 W optical subsystem.
    pub fn paper_default() -> Self {
        MeshPowerModel {
            buffer_write_j: 2.5e-12,
            buffer_read_j: 1.8e-12,
            crossbar_j: 4.0e-12,
            arbiter_j: 0.5e-12,
            link_j: 30.0e-12,
            router_leakage_w: 1.7,
            core_clock_hz: 3.3e9,
        }
    }

    /// Total mesh energy over `cycles` for a run summarized by `stats`
    /// (after [`harvest_power_counters`]) on `routers` routers.
    ///
    /// [`harvest_power_counters`]: crate::network::MeshNetwork::harvest_power_counters
    pub fn energy_j(&self, stats: &MeshStats, routers: usize, cycles: u64) -> f64 {
        let dynamic = stats.buffer_writes as f64 * self.buffer_write_j
            + stats.buffer_reads as f64 * self.buffer_read_j
            + stats.crossbar_traversals as f64 * self.crossbar_j
            + stats.allocations as f64 * self.arbiter_j
            + stats.link_traversals as f64 * self.link_j;
        let seconds = cycles as f64 / self.core_clock_hz;
        dynamic + routers as f64 * self.router_leakage_w * seconds
    }

    /// Dynamic energy per delivered bit for a run (J/bit), useful for
    /// comparing against the optical chain's ~0.3 pJ/bit.
    pub fn energy_per_bit(&self, stats: &MeshStats, delivered_bits: f64) -> f64 {
        if delivered_bits <= 0.0 {
            return 0.0;
        }
        let dynamic = stats.buffer_writes as f64 * self.buffer_write_j
            + stats.buffer_reads as f64 * self.buffer_read_j
            + stats.crossbar_traversals as f64 * self.crossbar_j
            + stats.allocations as f64 * self.arbiter_j
            + stats.link_traversals as f64 * self.link_j;
        dynamic / delivered_bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MeshConfig;
    use crate::network::MeshNetwork;
    use crate::packet::MeshPacket;

    #[test]
    fn energy_scales_with_traffic() {
        let model = MeshPowerModel::paper_default();
        let mut light = MeshNetwork::new(MeshConfig::nodes(16));
        light.inject(MeshPacket::data(0, 15, 0)).unwrap();
        for _ in 0..200 {
            light.tick();
        }
        light.harvest_power_counters();
        let mut heavy = MeshNetwork::new(MeshConfig::nodes(16));
        for s in 1..16 {
            heavy.inject(MeshPacket::data(s, 0, 0)).unwrap();
        }
        for _ in 0..2_000 {
            heavy.tick();
        }
        heavy.harvest_power_counters();
        let e_light = model.energy_j(light.stats(), 16, 200);
        let e_heavy = model.energy_j(heavy.stats(), 16, 200);
        assert!(e_heavy > e_light);
    }

    #[test]
    fn per_hop_relaying_dominates_per_bit_energy() {
        // A 6-hop data packet: each of its 5 flits is written, read,
        // switched at 7 routers and crosses 6 links — per-bit energy an
        // order of magnitude above the optical chain's ~0.3 pJ/bit.
        let model = MeshPowerModel::paper_default();
        let mut net = MeshNetwork::new(MeshConfig::nodes(16));
        net.inject(MeshPacket::data(0, 15, 0)).unwrap();
        for _ in 0..200 {
            net.tick();
        }
        net.harvest_power_counters();
        let bits = 360.0;
        let e = model.energy_per_bit(net.stats(), bits);
        let optical_e = 0.29e-12; // TX + RX per bit from Table 1
        assert!(
            e / optical_e > 5.0,
            "mesh {e:.3e} J/bit vs optical {optical_e:.3e}"
        );
    }

    #[test]
    fn zero_bits_edge_case() {
        let model = MeshPowerModel::paper_default();
        assert_eq!(model.energy_per_bit(&MeshStats::default(), 0.0), 0.0);
    }

    #[test]
    fn leakage_accrues_with_time() {
        let model = MeshPowerModel::paper_default();
        let stats = MeshStats::default();
        let e1 = model.energy_j(&stats, 16, 1_000);
        let e2 = model.energy_j(&stats, 16, 2_000);
        assert!((e2 / e1 - 2.0).abs() < 1e-9);
    }
}
