#!/usr/bin/env sh
# Local mirror of .github/workflows/ci.yml: the same four tiers, in the
# same order, with the same commands — green here means green in CI.
#
# Usage:
#   scripts/ci.sh                 # all tiers in order: quick lint full bench
#   scripts/ci.sh --tier quick    # fmt check + build + test
#   scripts/ci.sh --tier lint     # fsoi-lint check + clippy
#   scripts/ci.sh --tier full     # scripts/verify.sh (incl. trace build + microbench guard)
#   scripts/ci.sh --tier bench    # scripts/bench_gate.sh vs the committed baseline
#   scripts/ci.sh --tier scale    # beyond-the-paper grids: 64-node four-network
#                                 # smoke grid + a single 256-node cell, with
#                                 # shape-class and byte-identity assertions
#   scripts/ci.sh --tier tsan     # ThreadSanitizer pass over fsoi-sim (needs nightly;
#                                 # optional — skipped with a notice when unavailable)
set -eu
cd "$(dirname "$0")/.."

TIER=all
while [ $# -gt 0 ]; do
    case "$1" in
        --tier) TIER=$2; shift 2 ;;
        *) echo "ci.sh: unknown argument $1 (usage: ci.sh [--tier quick|lint|full|bench|scale|all])" >&2; exit 2 ;;
    esac
done

banner() {
    echo
    echo "=================================================================="
    echo "ci tier: $1"
    echo "=================================================================="
}

tier_quick() {
    banner quick
    cargo fmt --all --check
    cargo build --offline --workspace
    cargo test -q --offline --workspace
    # Cache smoke: the FSOI_CACHE knob end-to-end (fill, hit, tamper,
    # corrupt-fallback). Already part of the workspace test run above —
    # repeated by name so a cell-cache regression fails a step that says
    # "cell_cache", and so this tier keeps covering it if the workspace
    # test set is ever filtered.
    cargo test -q --offline -p fsoi-bench --test cell_cache
}

tier_lint() {
    banner lint
    cargo run -q --release --offline -p fsoi-lint -- check
    # [workspace.lints] (deny unused_must_use, clippy disallowed_types)
    # applies to every target, including feature-gated benches.
    cargo clippy --offline --workspace --all-targets --features criterion -- -D warnings
    # The model-feature build is a distinct cfg surface (virtual-thread
    # shim paths); lint and test it here so a warning or schedule-space
    # regression fails the same tier that owns static analysis.
    cargo clippy --offline -p fsoi-sim --all-targets --features model -- -D warnings
    cargo test -q --offline -p fsoi-sim --features model
}

tier_full() {
    banner full
    scripts/verify.sh
}

tier_bench() {
    banner bench
    scripts/bench_gate.sh
    # Observability: emit the run manifest (deterministic spans + executor
    # telemetry) for this run; CI uploads target/RUN_manifest.json as an
    # artifact so a regression investigation starts from real numbers.
    cargo run -q --release --offline -p fsoi-bench --bin experiments -- \
        profile --out target/RUN_manifest.json --det target/RUN_det.txt
}

tier_scale() {
    banner scale
    mkdir -p target
    # 64-node four-network smoke grid: fsoi/mesh/ring/crossbar on a
    # reduced app set, every cell asserted into its shape class and
    # byte-identical across worker counts {1,2,8}.
    cargo run -q --release --offline -p fsoi-bench --bin experiments -- \
        grid --nodes 64 --ops 100 --out target/GRID_64.txt
    # A single 256-node row: the NodeMask-capacity design point. One app
    # across all four networks pins the worst-case-loss crossbar story
    # (latency below Corona's, network energy 100x above it).
    cargo run -q --release --offline -p fsoi-bench --bin experiments -- \
        grid --nodes 256 --ops 50 --apps mp --out target/GRID_256.txt
    echo "scale: grid summaries written to target/GRID_64.txt and target/GRID_256.txt"
}

tier_tsan() {
    banner tsan
    # ThreadSanitizer needs nightly (-Zsanitizer) plus the matching
    # rust-src component. It is an *optional* tier: the model checker is
    # the required concurrency gate; TSan adds OS-level data-race
    # coverage on real interleavings when a nightly toolchain is around.
    # CI runs it continue-on-error; locally we skip with a notice rather
    # than fail machines without nightly.
    if ! rustup toolchain list 2>/dev/null | grep -q nightly; then
        echo "tsan: no nightly toolchain installed; skipping (optional tier)"
        return 0
    fi
    host=$(rustc -vV | sed -n 's/^host: //p')
    if ! rustup component list --toolchain nightly 2>/dev/null \
        | grep -q 'rust-src (installed)'; then
        echo "tsan: nightly rust-src component missing; skipping (optional tier)"
        return 0
    fi
    RUSTFLAGS="-Zsanitizer=thread" \
        cargo +nightly test -q --offline -p fsoi-sim \
        -Zbuild-std --target "$host"
}

case "$TIER" in
    quick) tier_quick ;;
    lint)  tier_lint ;;
    full)  tier_full ;;
    bench) tier_bench ;;
    scale) tier_scale ;;
    tsan)  tier_tsan ;;
    all)
        tier_quick
        tier_lint
        tier_full
        tier_bench
        tier_scale
        ;;
    *) echo "ci.sh: unknown tier '$TIER' (quick|lint|full|bench|scale|tsan|all)" >&2; exit 2 ;;
esac

echo
echo "ci.sh: tier '$TIER' PASSED"
