//! Shared run helpers: execute an application on a network configuration
//! and collect the paper's metrics.
//!
//! All sweeps express their work as a flat list of [`CellSpec`]s — one
//! isolated (app, network, options) simulation each — and execute it
//! through `fsoi_cmp::batch` on the deterministic parallel executor
//! (`fsoi_sim::par`). Results come back indexed by cell, so every
//! experiment's output is byte-identical to a serial run regardless of
//! `FSOI_THREADS`.

use fsoi_cmp::batch::{self, BatchCell};
use fsoi_cmp::configs::{NetworkKind, SystemConfig};
use fsoi_cmp::metrics::RunReport;
use fsoi_cmp::workload::AppProfile;
use fsoi_sim::par;
use fsoi_sim::profile::Profile;

/// Safety bound on run length.
pub const MAX_CYCLES: u64 = 50_000_000;

/// Options for a sweep over the application suite.
#[derive(Debug, Clone, Copy)]
pub struct SweepOptions {
    /// Node count (16/64 for the paper's systems; any count up to the
    /// `NodeMask` capacity for the beyond-the-paper grids).
    pub nodes: usize,
    /// Memory operations per core (scales run time).
    pub ops_per_core: u64,
    /// Aggregate memory bandwidth, GB/s.
    pub mem_gb_per_s: f64,
    /// §5.1/§5.2 optimizations on.
    pub optimizations: bool,
    /// RNG seed.
    pub seed: u64,
}

impl SweepOptions {
    /// The paper's 16-node setting with a workload size that keeps a full
    /// suite sweep to seconds.
    pub fn quick_16() -> Self {
        SweepOptions {
            nodes: 16,
            ops_per_core: 1_500,
            mem_gb_per_s: 8.8,
            optimizations: true,
            seed: 2010,
        }
    }

    /// 64-node setting (smaller per-core workload: 4× the cores).
    pub fn quick_64() -> Self {
        SweepOptions {
            nodes: 64,
            ops_per_core: 600,
            ..Self::quick_16()
        }
    }

    /// 256-node setting for the beyond-the-paper design-space grids
    /// (per-core workload scaled down again: 16× the paper's cores).
    pub fn quick_256() -> Self {
        SweepOptions {
            nodes: 256,
            ops_per_core: 150,
            ..Self::quick_16()
        }
    }

    /// The quick preset for an arbitrary node count: the tuned presets at
    /// the tuned sizes, and a constant total-operation budget
    /// (`≈ 24 000 ops`, the 16-node preset's) everywhere else, so a sweep
    /// at any size stays seconds-scale.
    pub fn for_nodes(nodes: usize) -> Self {
        match nodes {
            16 => Self::quick_16(),
            64 => Self::quick_64(),
            256 => Self::quick_256(),
            n => SweepOptions {
                nodes: n,
                ops_per_core: (24_000 / n.max(1) as u64).max(50),
                ..Self::quick_16()
            },
        }
    }
}

/// One application's results across network configurations.
#[derive(Debug)]
pub struct AppResult {
    /// Application name.
    pub app: String,
    /// Reports keyed in the order of `networks` passed to [`sweep_apps`].
    pub reports: Vec<RunReport>,
}

/// Builds the network kind for a name at a node count.
pub fn network_by_name(name: &str, nodes: usize) -> NetworkKind {
    match name {
        "fsoi" => NetworkKind::fsoi(nodes),
        "mesh" => NetworkKind::mesh(nodes),
        "ring" => NetworkKind::ring(nodes),
        "crossbar" => NetworkKind::crossbar(nodes),
        "L0" => NetworkKind::L0,
        "Lr1" => NetworkKind::Lr1,
        "Lr2" => NetworkKind::Lr2,
        other => panic!("unknown network {other}"),
    }
}

/// The system configuration for one sweep cell. Every code path —
/// serial or parallel — builds configs through this single function, so
/// a parallel cell can never drift from what the serial loop ran.
pub fn cell_config(network: NetworkKind, opts: SweepOptions) -> SystemConfig {
    SystemConfig::paper_n(opts.nodes, network)
        .with_mem_bandwidth(opts.mem_gb_per_s)
        .with_optimizations(opts.optimizations)
        .with_seed(opts.seed)
}

/// One sweep cell: an application on a network under sweep options.
#[derive(Debug, Clone)]
pub struct CellSpec {
    /// The application profile (its `ops_per_core` is taken from `opts`).
    pub app: AppProfile,
    /// The interconnect under test.
    pub network: NetworkKind,
    /// Shared sweep options (node count, seed, bandwidth, opts).
    pub opts: SweepOptions,
}

impl CellSpec {
    /// Builds a cell for a named network.
    pub fn new(app: AppProfile, network_name: &str, opts: SweepOptions) -> Self {
        CellSpec {
            app,
            network: network_by_name(network_name, opts.nodes),
            opts,
        }
    }

    /// Lowers to the isolated batch cell this spec describes.
    pub fn to_batch_cell(&self) -> BatchCell {
        let mut app = self.app;
        app.ops_per_core = self.opts.ops_per_core;
        BatchCell::new(cell_config(self.network.clone(), self.opts), app)
    }
}

/// Runs cells serially, timing each one. The reports are byte-identical
/// to any threaded run (same cells, same order); the second vector is
/// per-cell wall milliseconds — the bench report's cell breakdown.
pub fn run_cells_serial_timed(cells: &[CellSpec]) -> (Vec<RunReport>, Vec<f64>) {
    let mut reports = Vec::with_capacity(cells.len());
    let mut cell_ms = Vec::with_capacity(cells.len());
    for c in cells {
        let cell = c.to_batch_cell();
        let t = std::time::Instant::now();
        reports.push(cell.run(MAX_CYCLES));
        cell_ms.push(t.elapsed().as_secs_f64() * 1e3);
    }
    (reports, cell_ms)
}

/// Runs cells on `threads` worker threads; reports come back in cell
/// order, byte-identical to a serial run for any thread count.
///
/// Goes through [`batch::run_batch_forked`], so cells differing only by
/// seed (seed-stability studies, per-seed figure replicas) share one
/// warmed template system instead of each paying construction and
/// directory preload; sweeps without seed variants behave exactly like
/// [`batch::run_batch`].
pub fn run_cells_threads(cells: &[CellSpec], threads: usize) -> Vec<RunReport> {
    run_cells_threads_profiled(cells, threads).0
}

/// [`run_cells_threads`] plus the sweep's merged deterministic profile:
/// the batch-decomposition counters from
/// [`batch::run_batch_forked_profiled`] merged with every cell's own
/// [`RunReport`] `profile` spans. The result is a pure function of the
/// cell list — byte-identical for any `threads` — and is the
/// deterministic-plane payload behind `experiments profile`.
pub fn run_cells_threads_profiled(cells: &[CellSpec], threads: usize) -> (Vec<RunReport>, Profile) {
    let batch: Vec<BatchCell> = cells.iter().map(CellSpec::to_batch_cell).collect();
    let (reports, mut profile) = batch::run_batch_forked_profiled(&batch, threads, MAX_CYCLES);
    for r in &reports {
        profile.merge(&r.profile);
    }
    (reports, profile)
}

/// [`run_cells_threads`] with the default thread count (`FSOI_THREADS`
/// knob, else available parallelism).
pub fn run_cells(cells: &[CellSpec]) -> Vec<RunReport> {
    run_cells_threads(cells, par::thread_count())
}

/// Runs one application on one network (a single serial cell).
pub fn run_app(app: AppProfile, network: NetworkKind, opts: SweepOptions) -> RunReport {
    let mut app = app;
    app.ops_per_core = opts.ops_per_core;
    BatchCell::new(cell_config(network, opts), app).run(MAX_CYCLES)
}

/// The full application suite × the named networks as a flat cell list,
/// ordered app-major (all of app 0's networks, then app 1's, …).
pub fn suite_cells(networks: &[&str], opts: SweepOptions) -> Vec<CellSpec> {
    AppProfile::suite()
        .into_iter()
        .flat_map(|app| {
            networks
                .iter()
                .map(move |n| CellSpec::new(app, n, opts))
                .collect::<Vec<_>>()
        })
        .collect()
}

/// Regroups a flat app-major report vector (as produced by running
/// [`suite_cells`]) back into per-application results.
pub fn group_reports(reports: Vec<RunReport>, networks_len: usize) -> Vec<AppResult> {
    assert!(networks_len > 0, "at least one network per app");
    assert!(
        reports.len().is_multiple_of(networks_len),
        "reports must tile into per-app rows"
    );
    let apps = AppProfile::suite();
    let mut out = Vec::new();
    for (row, chunk) in reports.chunks(networks_len).enumerate() {
        out.push(AppResult {
            app: apps[row].name.to_string(),
            reports: chunk.to_vec(),
        });
    }
    out
}

/// Runs the full application suite over the named networks, in parallel
/// on the default thread count.
pub fn sweep_apps(networks: &[&str], opts: SweepOptions) -> Vec<AppResult> {
    let reports = run_cells(&suite_cells(networks, opts));
    group_reports(reports, networks.len())
}
