//! Set-associative cache arrays with LRU replacement.
//!
//! Used for both the private L1s (Table 3: 8 KB, 2-way, 32 B lines, dual
//! tags) and the shared-L2 slices (64 KB per node). The array tracks tags
//! and a client-supplied per-line payload (the coherence state); actual
//! data values are not simulated.

use crate::protocol::LineAddr;

/// A set-associative array mapping lines to payloads of type `T`.
#[derive(Debug, Clone)]
pub struct CacheArray<T> {
    sets: usize,
    ways: usize,
    line_bytes: u64,
    /// `entries[set][way]`: (tag, payload, lru tick).
    entries: Vec<Vec<Option<(u64, T, u64)>>>,
    tick: u64,
    hits: u64,
    misses: u64,
}

/// Result of an allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocOutcome<T> {
    /// Inserted into a free way.
    Inserted,
    /// Inserted after evicting this victim.
    Evicted {
        /// The replaced line.
        line: LineAddr,
        /// Its payload at eviction.
        payload: T,
    },
}

impl<T: Clone> CacheArray<T> {
    /// Creates an array of `capacity_bytes` with `ways` associativity and
    /// `line_bytes` lines.
    ///
    /// # Panics
    ///
    /// Panics unless all sizes are positive powers of two with
    /// `capacity >= ways × line`.
    pub fn new(capacity_bytes: u64, ways: usize, line_bytes: u64) -> Self {
        assert!(line_bytes.is_power_of_two() && line_bytes > 0);
        assert!(ways > 0);
        let lines = capacity_bytes / line_bytes;
        assert!(
            lines >= ways as u64 && lines.is_multiple_of(ways as u64),
            "capacity must hold a whole number of sets"
        );
        let sets = (lines / ways as u64) as usize;
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        CacheArray {
            sets,
            ways,
            line_bytes,
            entries: vec![vec![None; ways]; sets],
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    fn index(&self, line: LineAddr) -> (usize, u64) {
        let block = line.0 / self.line_bytes;
        ((block as usize) % self.sets, block / self.sets as u64)
    }

    fn line_of(&self, set: usize, tag: u64) -> LineAddr {
        LineAddr((tag * self.sets as u64 + set as u64) * self.line_bytes)
    }

    /// Looks up a line, refreshing its LRU position on hit.
    pub fn lookup(&mut self, line: LineAddr) -> Option<&mut T> {
        let (set, tag) = self.index(line);
        self.tick += 1;
        let tick = self.tick;
        let hit = self.entries[set]
            .iter_mut()
            .flatten()
            .find(|(t, _, _)| *t == tag);
        match hit {
            Some(entry) => {
                entry.2 = tick;
                self.hits += 1;
                Some(&mut entry.1)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Looks up without touching LRU or hit counters.
    pub fn peek(&self, line: LineAddr) -> Option<&T> {
        let (set, tag) = self.index(line);
        self.entries[set]
            .iter()
            .flatten()
            .find(|(t, _, _)| *t == tag)
            .map(|(_, p, _)| p)
    }

    /// The LRU victim of `line`'s set if the set is full, without
    /// modifying anything. `None` when a free way exists.
    pub fn victim_for(&self, line: LineAddr) -> Option<(LineAddr, &T)> {
        let (set, _) = self.index(line);
        if self.entries[set].iter().any(|e| e.is_none()) {
            return None;
        }
        self.entries[set]
            .iter()
            .flatten()
            .min_by_key(|(_, _, lru)| *lru)
            .map(|(tag, p, _)| (self.line_of(set, *tag), p))
    }

    /// Inserts `line` with `payload`, evicting the LRU way if needed.
    ///
    /// # Panics
    ///
    /// Panics if the line is already present (use [`lookup`] first).
    ///
    /// [`lookup`]: CacheArray::lookup
    pub fn insert(&mut self, line: LineAddr, payload: T) -> AllocOutcome<T> {
        let (set, tag) = self.index(line);
        assert!(
            !self.entries[set]
                .iter()
                .flatten()
                .any(|(t, _, _)| *t == tag),
            "line already present: {line}"
        );
        self.tick += 1;
        let tick = self.tick;
        // Free way?
        if let Some(slot) = self.entries[set].iter_mut().find(|e| e.is_none()) {
            *slot = Some((tag, payload, tick));
            return AllocOutcome::Inserted;
        }
        // Evict LRU.
        let victim_way = self.entries[set]
            .iter()
            .enumerate()
            .min_by_key(|(_, e)| e.as_ref().map(|(_, _, lru)| *lru))
            .map(|(i, _)| i)
            .expect("set is non-empty"); // lint: allow(P1) ways-per-set is asserted >= 1 at construction
                                         // lint: allow(P1) the all-ways-full check above guarantees the victim way is occupied
        let (vt, vp, _) = self.entries[set][victim_way].take().expect("full set");
        self.entries[set][victim_way] = Some((tag, payload, tick));
        AllocOutcome::Evicted {
            line: self.line_of(set, vt),
            payload: vp,
        }
    }

    /// Like [`insert`](Self::insert), but only victims satisfying
    /// `evictable` may be replaced.
    ///
    /// # Errors
    ///
    /// Returns `Err(payload)` when the set is full and no resident way is
    /// evictable (e.g. every candidate has an outstanding transaction).
    ///
    /// # Panics
    ///
    /// Panics if the line is already present.
    pub fn insert_evicting_where(
        &mut self,
        line: LineAddr,
        payload: T,
        mut evictable: impl FnMut(LineAddr, &T) -> bool,
    ) -> Result<AllocOutcome<T>, T> {
        let (set, tag) = self.index(line);
        assert!(
            !self.entries[set]
                .iter()
                .flatten()
                .any(|(t, _, _)| *t == tag),
            "line already present: {line}"
        );
        self.tick += 1;
        let tick = self.tick;
        if let Some(slot) = self.entries[set].iter_mut().find(|e| e.is_none()) {
            *slot = Some((tag, payload, tick));
            return Ok(AllocOutcome::Inserted);
        }
        let victim_way = self.entries[set]
            .iter()
            .enumerate()
            .filter(|(_, e)| {
                e.as_ref()
                    .is_some_and(|(t, p, _)| evictable(self.line_of(set, *t), p))
            })
            .min_by_key(|(_, e)| e.as_ref().map(|(_, _, lru)| *lru))
            .map(|(i, _)| i);
        let Some(way) = victim_way else {
            return Err(payload);
        };
        // lint: allow(P1) victim_way is only Some for occupied ways by construction
        let (vt, vp, _) = self.entries[set][way].take().expect("full set");
        self.entries[set][way] = Some((tag, payload, tick));
        Ok(AllocOutcome::Evicted {
            line: self.line_of(set, vt),
            payload: vp,
        })
    }

    /// Removes a line, returning its payload.
    pub fn remove(&mut self, line: LineAddr) -> Option<T> {
        let (set, tag) = self.index(line);
        for e in &mut self.entries[set] {
            if matches!(e, Some((t, _, _)) if *t == tag) {
                return e.take().map(|(_, p, _)| p);
            }
        }
        None
    }

    /// Iterates all resident lines.
    pub fn iter(&self) -> impl Iterator<Item = (LineAddr, &T)> {
        self.entries
            .iter()
            .enumerate()
            .flat_map(move |(set, ways)| {
                ways.iter()
                    .flatten()
                    .map(move |(tag, p, _)| (self.line_of(set, *tag), p))
            })
    }

    /// Number of resident lines.
    pub fn len(&self) -> usize {
        self.entries.iter().flatten().flatten().count()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookup hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookup misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Hit ratio, 0.0 when never accessed.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Line size in bytes.
    pub fn line_bytes(&self) -> u64 {
        self.line_bytes
    }

    /// Total capacity in lines.
    pub fn capacity_lines(&self) -> usize {
        self.sets * self.ways
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> CacheArray<u32> {
        // 4 sets × 2 ways × 32 B = 256 B.
        CacheArray::new(256, 2, 32)
    }

    #[test]
    fn insert_lookup_remove() {
        let mut c = tiny();
        assert!(c.is_empty());
        assert!(matches!(c.insert(LineAddr(0x0), 1), AllocOutcome::Inserted));
        assert_eq!(c.lookup(LineAddr(0x0)), Some(&mut 1));
        assert_eq!(c.peek(LineAddr(0x0)), Some(&1));
        assert_eq!(c.remove(LineAddr(0x0)), Some(1));
        assert_eq!(c.peek(LineAddr(0x0)), None);
        assert_eq!(c.remove(LineAddr(0x0)), None);
    }

    #[test]
    fn same_set_lines_conflict() {
        let mut c = tiny();
        // Lines 0x0, 0x80, 0x100 all map to set 0 (stride = 4 sets × 32 B).
        c.insert(LineAddr(0x0), 1);
        c.insert(LineAddr(0x80), 2);
        assert!(c.victim_for(LineAddr(0x100)).is_some());
        let out = c.insert(LineAddr(0x100), 3);
        match out {
            AllocOutcome::Evicted { line, payload } => {
                assert_eq!(line, LineAddr(0x0), "LRU is the first inserted");
                assert_eq!(payload, 1);
            }
            other => panic!("expected eviction, got {other:?}"),
        }
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn lru_refresh_on_lookup() {
        let mut c = tiny();
        c.insert(LineAddr(0x0), 1);
        c.insert(LineAddr(0x80), 2);
        // Touch 0x0 so 0x80 becomes LRU.
        c.lookup(LineAddr(0x0));
        match c.insert(LineAddr(0x100), 3) {
            AllocOutcome::Evicted { line, .. } => assert_eq!(line, LineAddr(0x80)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn victim_none_when_free_way() {
        let mut c = tiny();
        c.insert(LineAddr(0x0), 1);
        assert!(c.victim_for(LineAddr(0x80)).is_none());
    }

    #[test]
    fn hit_miss_statistics() {
        let mut c = tiny();
        c.insert(LineAddr(0x0), 1);
        c.lookup(LineAddr(0x0));
        c.lookup(LineAddr(0x20));
        c.lookup(LineAddr(0x0));
        assert_eq!(c.hits(), 2);
        assert_eq!(c.misses(), 1);
        assert!((c.hit_ratio() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn iter_and_capacity() {
        let mut c = tiny();
        c.insert(LineAddr(0x0), 1);
        c.insert(LineAddr(0x20), 2);
        let mut lines: Vec<u64> = c.iter().map(|(l, _)| l.0).collect();
        lines.sort_unstable();
        assert_eq!(lines, vec![0x0, 0x20]);
        assert_eq!(c.capacity_lines(), 8);
        assert_eq!(c.line_bytes(), 32);
    }

    #[test]
    fn different_sets_do_not_conflict() {
        let mut c = tiny();
        for i in 0..4 {
            c.insert(LineAddr(i * 32), i as u32);
        }
        assert_eq!(c.len(), 4, "distinct sets hold all four");
    }

    #[test]
    #[should_panic(expected = "line already present")]
    fn double_insert_panics() {
        let mut c = tiny();
        c.insert(LineAddr(0x0), 1);
        c.insert(LineAddr(0x0), 2);
    }

    #[test]
    fn empty_hit_ratio_is_zero() {
        let c = tiny();
        assert_eq!(c.hit_ratio(), 0.0);
    }

    #[test]
    fn realistic_l1_shape() {
        // Table 3: 8 KB, 2-way, 32 B lines → 128 sets.
        let c: CacheArray<u8> = CacheArray::new(8 * 1024, 2, 32);
        assert_eq!(c.capacity_lines(), 256);
    }
}
