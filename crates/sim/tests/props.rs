//! Property tests for the simulation kernel (on the in-repo `fsoi-check`
//! harness; see that crate's docs for seeding and `.regressions` replay).

use fsoi_check::{any_bool, checker, select, vec_of};
use fsoi_sim::det::NodeMask;
use fsoi_sim::event::EventQueue;
use fsoi_sim::queue::BoundedQueue;
use fsoi_sim::rng::Xoshiro256StarStar;
use fsoi_sim::stats::{Histogram, Summary};
use fsoi_sim::Cycle;

/// Events pop in time order, FIFO within a timestamp — regardless of
/// push order.
#[test]
fn event_queue_is_a_stable_priority_queue() {
    checker!().check(
        "event_queue_is_a_stable_priority_queue",
        vec_of(0u64..50, 1..200),
        |times| {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.push(Cycle(t), i);
            }
            let mut prev: Option<(Cycle, usize)> = None;
            while let Some((t, id)) = q.pop() {
                if let Some((pt, pid)) = prev {
                    assert!(t >= pt, "time order");
                    if t == pt {
                        assert!(id > pid, "FIFO within a cycle");
                    }
                }
                prev = Some((t, id));
            }
        },
    );
}

/// A bounded queue is exactly a FIFO of its accepted elements and never
/// exceeds capacity.
#[test]
fn bounded_queue_is_fifo() {
    checker!().check(
        "bounded_queue_is_fifo",
        (1usize..20, vec_of(any_bool(), 1..300)),
        |(cap, ops)| {
            let cap = *cap;
            let mut q = BoundedQueue::new(cap);
            let mut model = std::collections::VecDeque::new();
            let mut n = 0u32;
            for &push in ops {
                if push {
                    let accepted = q.push(n).is_ok();
                    assert_eq!(accepted, model.len() < cap);
                    if accepted {
                        model.push_back(n);
                    }
                    n += 1;
                } else {
                    assert_eq!(q.pop(), model.pop_front());
                }
                assert!(q.len() <= cap);
                assert_eq!(q.len(), model.len());
            }
        },
    );
}

/// Histogram totals and means agree with a plain summary of the same
/// observations.
#[test]
fn histogram_matches_summary() {
    checker!().check(
        "histogram_matches_summary",
        vec_of(0u64..500, 1..300),
        |values| {
            let mut h = Histogram::new(10, 20);
            let mut s = Summary::new();
            for &v in values {
                h.record(v);
                s.record(v as f64);
            }
            assert_eq!(h.count(), values.len() as u64);
            assert!((h.mean() - s.mean()).abs() < 1e-9);
            let binned: u64 = (0..h.num_bins()).map(|i| h.bin(i)).sum::<u64>() + h.overflow();
            assert_eq!(binned, h.count());
        },
    );
}

/// Summary::merge is order-insensitive and equals sequential feeding.
#[test]
fn summary_merge_associates() {
    checker!().check(
        "summary_merge_associates",
        (vec_of(-1e3f64..1e3, 1..100), vec_of(-1e3f64..1e3, 1..100)),
        |(a, b)| {
            let feed = |xs: &[f64]| {
                let mut s = Summary::new();
                for &x in xs {
                    s.record(x);
                }
                s
            };
            let mut merged = feed(a);
            merged.merge(&feed(b));
            let mut all = a.clone();
            all.extend_from_slice(b);
            let seq = feed(&all);
            assert_eq!(merged.count(), seq.count());
            assert!((merged.mean() - seq.mean()).abs() < 1e-6);
            assert!((merged.variance() - seq.variance()).abs() < 1e-4);
        },
    );
}

/// The multi-word `NodeMask` agrees with a `BTreeSet` model on random
/// mixes of word-boundary bits (63/64, 127/128, 191/192, 255 — the edges
/// between the four 64-bit words) and arbitrary indices: insert/remove
/// return values, membership, length, and ascending iteration order all
/// match.
#[test]
fn node_mask_matches_set_model_at_word_boundaries() {
    let boundaries: &[usize] = &[0, 1, 62, 63, 64, 65, 126, 127, 128, 129, 191, 192, 254, 255];
    checker!().check(
        "node_mask_matches_set_model_at_word_boundaries",
        (
            vec_of(select(boundaries), 0..12),
            vec_of(0usize..256, 0..24),
            vec_of(any_bool(), 24..36),
        ),
        |(edge_bits, random_bits, is_insert)| {
            let mut mask = NodeMask::new();
            let mut model = std::collections::BTreeSet::new();
            let indices = edge_bits.iter().chain(random_bits);
            for (&index, &insert) in indices.zip(is_insert) {
                if insert {
                    assert_eq!(mask.insert(index), model.insert(index), "insert({index})");
                } else {
                    assert_eq!(mask.remove(index), model.remove(&index), "remove({index})");
                }
                assert_eq!(mask.contains(index), model.contains(&index));
                assert_eq!(mask.len(), model.len());
                assert_eq!(mask.is_empty(), model.is_empty());
            }
            // Iteration crosses word boundaries strictly ascending, and
            // matches the ordered model exactly.
            let got: Vec<usize> = mask.iter().collect();
            let want: Vec<usize> = model.iter().copied().collect();
            assert_eq!(got, want, "LSB-first ascending iteration");
            assert!(got.windows(2).all(|w| w[0] < w[1]), "strictly ascending");
        },
    );
}

/// `FromIterator` round-trip: collecting any index list (duplicates and
/// all four words included) and iterating back yields the sorted,
/// deduplicated input; re-collecting the iteration reproduces the mask.
#[test]
fn node_mask_from_iterator_round_trips_across_words() {
    checker!().check(
        "node_mask_from_iterator_round_trips_across_words",
        vec_of(0usize..256, 0..64),
        |indices| {
            let mask: NodeMask = indices.iter().copied().collect();
            let mut want: Vec<usize> = indices.clone();
            want.sort_unstable();
            want.dedup();
            assert_eq!(mask.iter().collect::<Vec<_>>(), want);
            assert_eq!(mask.len(), want.len());
            let rebuilt: NodeMask = mask.iter().collect();
            assert_eq!(rebuilt, mask, "iter -> collect is the identity");
        },
    );
}

/// Uniform draws respect their bounds and cover residues.
#[test]
fn rng_bounds() {
    checker!().check(
        "rng_bounds",
        (0u64..u64::MAX, 1u64..1000),
        |(seed, bound)| {
            let (seed, bound) = (*seed, *bound);
            let mut r = Xoshiro256StarStar::new(seed);
            for _ in 0..200 {
                assert!(r.next_below(bound) < bound);
                let v = r.range_inclusive(10, 10 + bound);
                assert!((10..=10 + bound).contains(&v));
            }
        },
    );
}

/// Slot rounding lands on a boundary at or after the input.
#[test]
fn slot_rounding_properties() {
    checker!().check(
        "slot_rounding_properties",
        (0u64..1_000_000, 1u64..100),
        |&(t, slot)| {
            let rounded = Cycle(t).round_up_to_slot(slot);
            assert!(rounded.as_u64() >= t);
            assert!(rounded.is_slot_boundary(slot));
            assert!(rounded.as_u64() - t < slot);
        },
    );
}
