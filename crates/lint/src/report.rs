//! Violation aggregation and the two export shapes.
//!
//! Mirrors the `fsoi_sim::metrics` idiom: one deterministic JSONL line
//! per record for machines, one aligned table for humans, and a summary
//! [`Registry`] so gate logs show counts with the same formatting as
//! every other exported number in the workspace.

use crate::rules::{rule_summary, Violation, RULES};
use fsoi_sim::metrics::Registry;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// The outcome of linting a file set.
#[derive(Debug, Default)]
pub struct Report {
    /// All violations, sorted by (path, line, rule).
    pub violations: Vec<Violation>,
    /// Allow-annotation counts per rule.
    pub allows: BTreeMap<String, u64>,
    /// Number of files scanned (library + exempt).
    pub files_scanned: usize,
}

impl Report {
    /// Merges one file's findings into the report.
    pub fn absorb(&mut self, findings: crate::rules::FileFindings) {
        self.violations.extend(findings.violations);
        for (rule, _) in findings.allows {
            *self.allows.entry(rule).or_insert(0) += 1;
        }
    }

    /// Sorts violations into their canonical report order.
    pub fn finish(&mut self) {
        self.violations.sort();
    }

    /// True when the scanned tree satisfies every invariant.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Summary counters in the workspace's standard metrics registry.
    pub fn registry(&self) -> Registry {
        let mut reg = Registry::new();
        reg.inc("lint.files_scanned", &[], self.files_scanned as u64);
        for rule in RULES {
            let n = self.violations.iter().filter(|v| v.rule == *rule).count() as u64;
            reg.inc("lint.violations", &[("rule", rule)], n);
            reg.inc(
                "lint.allows",
                &[("rule", rule)],
                self.allows.get(*rule).copied().unwrap_or(0),
            );
        }
        reg
    }

    /// One JSON line per violation (sorted), then the summary registry's
    /// JSONL. Byte-stable for a given tree: no timestamps, no paths
    /// outside the workspace, keys in fixed order.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for v in &self.violations {
            let _ = writeln!(
                out,
                "{{\"rule\":\"{}\",\"path\":\"{}\",\"line\":{},\"msg\":\"{}\"}}",
                v.rule,
                escape(&v.path),
                v.line,
                escape(&v.msg)
            );
        }
        out.push_str(&self.registry().to_jsonl());
        out
    }

    /// The human-readable gate output: a violation table (when any) and
    /// the summary table.
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        if !self.violations.is_empty() {
            let loc_w = self
                .violations
                .iter()
                .map(|v| v.path.len() + 1 + v.line.to_string().len())
                .max()
                .unwrap_or(8)
                .max(8);
            let _ = writeln!(out, "{:<loc_w$}  rule  violation", "location");
            let _ = writeln!(out, "{}  ----  {}", "-".repeat(loc_w), "-".repeat(9));
            for v in &self.violations {
                let loc = format!("{}:{}", v.path, v.line);
                let _ = writeln!(out, "{loc:<loc_w$}  {:<4}  {}", v.rule, v.msg);
            }
            out.push('\n');
            // Remind the reader what each failing rule means.
            let mut seen: Vec<&str> = Vec::new();
            for v in &self.violations {
                if !seen.contains(&v.rule) {
                    seen.push(v.rule);
                    let _ = writeln!(out, "{}: {}", v.rule, rule_summary(v.rule));
                }
            }
            out.push('\n');
        }
        out.push_str(&self.registry().to_table());
        out
    }
}

/// Minimal JSON string escaping (the same subset `metrics` relies on).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::FileFindings;

    fn sample() -> Report {
        let mut r = Report {
            files_scanned: 3,
            ..Report::default()
        };
        r.absorb(FileFindings {
            violations: vec![Violation {
                path: "crates/core/src/x.rs".into(),
                line: 7,
                rule: "D1",
                msg: "`HashMap` iterates in hasher order".into(),
            }],
            allows: vec![("P1".into(), 4)],
        });
        r.finish();
        r
    }

    #[test]
    fn jsonl_lists_violations_then_summary() {
        let r = sample();
        let j = r.to_jsonl();
        let first = j.lines().next().unwrap();
        assert_eq!(
            first,
            "{\"rule\":\"D1\",\"path\":\"crates/core/src/x.rs\",\"line\":7,\"msg\":\"`HashMap` iterates in hasher order\"}"
        );
        assert!(j.contains("\"metric\":\"lint.violations\""));
        assert!(j.contains("lint.allows"));
        assert_eq!(j, sample().to_jsonl(), "byte-stable for the same tree");
    }

    #[test]
    fn table_names_rule_and_location() {
        let t = sample().to_table();
        assert!(t.contains("crates/core/src/x.rs:7"));
        assert!(t.contains("D1"));
        assert!(t.contains("DetMap"), "failing rules are explained");
        assert!(t.contains("lint.files_scanned"));
    }

    #[test]
    fn clean_report_is_clean() {
        let mut r = Report {
            files_scanned: 1,
            ..Report::default()
        };
        r.finish();
        assert!(r.is_clean());
        assert!(
            !r.to_table().contains("location"),
            "no violation table when clean"
        );
    }

    #[test]
    fn escaping_handles_quotes_and_newlines() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}
