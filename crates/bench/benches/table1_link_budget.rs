//! Table 1 bench: the link-budget computation (the physical-layer kernel
//! behind every energy number in the evaluation).

use fsoi_bench::microbench::{black_box, Criterion};
use fsoi_bench::{criterion_group, criterion_main};
use fsoi_optics::link::OpticalLink;
use fsoi_optics::noise::{ber_to_q, q_to_ber};

fn bench_link_budget(c: &mut Criterion) {
    let link = OpticalLink::paper_default();
    c.bench_function("table1/budget", |b| b.iter(|| black_box(&link).budget()));
    c.bench_function("table1/validate_1e-10", |b| {
        b.iter(|| black_box(&link).validate(1e-10))
    });
    c.bench_function("table1/q_to_ber", |b| b.iter(|| q_to_ber(black_box(6.36))));
    c.bench_function("table1/ber_to_q", |b| b.iter(|| ber_to_q(black_box(1e-10))));
}

criterion_group!(benches, bench_link_budget);
criterion_main!(benches);
