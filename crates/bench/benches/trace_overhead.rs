//! Tracing overhead guard: `FsoiNetwork::tick()` throughput with the
//! structured-trace machinery disabled must stay within noise of a plain
//! build, and the cost with recording enabled must stay bounded.
//!
//! In a release build *without* the `trace` feature every emit site
//! compiles out entirely, so `traced_off` and the `network_engines`
//! numbers coincide by construction. Built `--features trace`, this bench
//! shows the residual cost of the per-event enabled check (`traced_off`)
//! and of actually recording into the ring (`traced_on`).

use fsoi_bench::microbench::{Criterion, Throughput};
use fsoi_bench::{criterion_group, criterion_main};
use fsoi_net::config::FsoiConfig;
use fsoi_net::network::FsoiNetwork;
use fsoi_net::packet::{Packet, PacketClass};
use fsoi_net::topology::NodeId;
use fsoi_sim::rng::Xoshiro256StarStar;
use fsoi_sim::trace;

const CYCLES: u64 = 20_000;

/// Same uniform-random drive as the `network_engines` bench.
fn drive(seed: u64) -> u64 {
    let mut net = FsoiNetwork::new(FsoiConfig::nodes(16), seed);
    let mut rng = Xoshiro256StarStar::new(seed);
    for cycle in 0..CYCLES {
        if cycle % 2 == 0 {
            for src in 0..16usize {
                if rng.bernoulli(0.05) {
                    let mut dst = rng.next_below(15) as usize;
                    if dst >= src {
                        dst += 1;
                    }
                    let class = if rng.bernoulli(0.4) {
                        PacketClass::Data
                    } else {
                        PacketClass::Meta
                    };
                    let _ = net.inject(Packet::new(NodeId(src), NodeId(dst), class, cycle));
                }
            }
        }
        net.tick();
        net.drain_delivered();
    }
    net.stats().delivered[0] + net.stats().delivered[1]
}

fn bench_trace_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("trace_overhead");
    g.throughput(Throughput::Elements(CYCLES));
    g.sample_size(10);
    g.bench_function("traced_off_20k_cycles", |b| {
        trace::set_enabled(false);
        b.iter(|| drive(7));
    });
    if trace::compiled() {
        g.bench_function("traced_on_20k_cycles", |b| {
            trace::set_enabled(true);
            b.iter(|| {
                let d = drive(7);
                trace::clear();
                d
            });
        });
        trace::set_enabled(false);
    }
    g.finish();
}

criterion_group!(benches, bench_trace_overhead);
criterion_main!(benches);
