#!/usr/bin/env sh
# Tier-1 verification gate, hermetic by construction: the workspace has no
# external dependencies, so --offline proves no network is ever consulted.
# Bench targets are feature-gated (`criterion`) and stay out of the build
# and test steps.
#
# Every gate announces itself before running so a failure in CI output is
# attributable at a glance, and a gate that silently does nothing (e.g. a
# bench invocation that matched zero targets) is treated as a failure.
set -eu
cd "$(dirname "$0")/.."

gate() {
    name=$1
    shift
    echo "==> gate: $name"
    "$@"
    echo "==> gate: $name OK"
}

gate "build (release, offline)" cargo build --release --offline --workspace

gate "test" cargo test -q --offline --workspace

# Concurrency model checking (DESIGN.md "Concurrency model checking"):
# the sweep executor's drain/steal/termination protocol is exhaustively
# explored at small worker/chunk shapes under the `model` feature, and
# the checker's self-tests prove it still catches the seeded deadlock /
# lost-wakeup / guard-leak fixtures. Normal builds are untouched by the
# feature; this gate is where the schedule space actually gets walked.
gate "model check (fsoi-sim --features model)" \
    cargo test -q --offline -p fsoi-sim --features model

# Determinism & invariant lints (DESIGN.md "Determinism policy"): the
# committed tree must scan clean — zero D1/D2/D3/D4b/T1/P1/A1/A2
# violations, every escape hatch annotated and load-bearing. Exit 1 here
# means a new violation crept in.
gate "fsoi-lint check" cargo run -q --release --offline -p fsoi-lint -- check

# Observability-plane determinism (DESIGN.md "Harness observability
# plane"): the deterministic-plane export of `experiments profile` must
# be byte-identical across thread counts — the wall-clock telemetry
# plane may differ, the profile/registry bytes may not. A small --ops
# keeps this a seconds-scale gate; the full-size pin lives in
# crates/bench/tests/profile_manifest.rs.
profile_det_identity() {
    det1=target/VERIFY_det_t1.txt
    det2=target/VERIFY_det_t2.txt
    mkdir -p target
    FSOI_THREADS=1 cargo run -q --release --offline -p fsoi-bench --bin experiments -- \
        profile --ops 30 --out target/VERIFY_manifest_t1.json --det "$det1"
    FSOI_THREADS=2 cargo run -q --release --offline -p fsoi-bench --bin experiments -- \
        profile --ops 30 --out target/VERIFY_manifest_t2.json --det "$det2"
    cmp "$det1" "$det2" || {
        echo "deterministic-plane export differs between FSOI_THREADS=1 and =2" >&2
        return 1
    }
}
gate "profile determinism (threads 1 vs 2)" profile_det_identity

# The structured-trace event API must also build compiled-in on release
# (debug builds always carry it; plain release compiles it out).
gate "build --features trace" cargo build --release --offline --workspace --features trace

# Microbench guard: tick() throughput with tracing disabled must stay
# within noise of a plain release build. The emit sites compile out
# entirely without the `trace` feature, so this run *is* the baseline —
# the bench exists so the trace-feature cost is one command away:
#   cargo bench -p fsoi-bench --features criterion,trace --bench trace_overhead
#
# `cargo bench` exits 0 even when the feature/target combination matches
# nothing and no bench runs, so we capture the output and require the
# bench's own report line — a silently-skipped bench fails the gate.
echo "==> gate: bench trace_overhead"
bench_out=$(cargo bench -q --offline -p fsoi-bench --features criterion --bench trace_overhead 2>&1) || {
    echo "$bench_out"
    echo "==> gate: bench trace_overhead FAILED"
    exit 1
}
echo "$bench_out"
if ! echo "$bench_out" | grep -q "^bench "; then
    echo "==> gate: bench trace_overhead FAILED — no bench report line in the output above;"
    echo "    the bench was silently skipped (feature/target combination matched nothing)"
    exit 1
fi
echo "==> gate: bench trace_overhead OK"

# Hot-path guard: the tick/fast-forward throughput bench must actually
# run, with the same report-line check as above (a matched-nothing
# `cargo bench` exits 0 without running anything).
echo "==> gate: bench tick_throughput"
bench_out=$(cargo bench -q --offline -p fsoi-bench --features criterion --bench tick_throughput 2>&1) || {
    echo "$bench_out"
    echo "==> gate: bench tick_throughput FAILED"
    exit 1
}
echo "$bench_out"
if ! echo "$bench_out" | grep -q "^bench "; then
    echo "==> gate: bench tick_throughput FAILED — no bench report line in the output above;"
    echo "    the bench was silently skipped (feature/target combination matched nothing)"
    exit 1
fi
echo "==> gate: bench tick_throughput OK"
