//! Row-by-row conformance against the paper's Table 2.
//!
//! Each test drives a controller into one of Table 2's states, applies one
//! column's event, and checks the printed `<action>/<next state>` entry:
//! the emitted messages, the successor state, the "error" cells, and the
//! `z` (stall) cells. This is the most direct fidelity artifact in the
//! repository — the table in the paper is the protocol.

use fsoi_coherence::directory::Directory;
use fsoi_coherence::l1::L1Controller;
use fsoi_coherence::protocol::{
    CoherenceMsg, DirState, Grant, L1State, LineAddr, ReqType,
};

const L: LineAddr = LineAddr(0x400);
const MEM: usize = 99;

// --------------------------------------------------------------------- L1

fn l1() -> L1Controller {
    let mut c = L1Controller::new(3, 64, 2, 32);
    c.set_home_nodes(16);
    c
}

/// Drives a fresh L1 into the requested Table 2 state for line `L`.
fn l1_in(state: L1State) -> L1Controller {
    let mut c = l1();
    match state {
        L1State::I => {}
        L1State::S => {
            c.read(L);
            c.handle(CoherenceMsg::Data { grant: Grant::Shared, line: L }).unwrap();
        }
        L1State::E => {
            c.read(L);
            c.handle(CoherenceMsg::Data { grant: Grant::Exclusive, line: L }).unwrap();
        }
        L1State::M => {
            c.write(L);
            c.handle(CoherenceMsg::Data { grant: Grant::Modified, line: L }).unwrap();
        }
        L1State::ISD => {
            c.read(L);
        }
        L1State::IMD => {
            c.write(L);
        }
        L1State::SMA => {
            c.read(L);
            c.handle(CoherenceMsg::Data { grant: Grant::Shared, line: L }).unwrap();
            c.write(L);
        }
    }
    assert_eq!(c.state_of(L), state, "setup failed");
    c
}

#[test]
fn l1_row_i() {
    // I: Read → Req(Sh)/I.SD ; Write → Req(Ex)/I.MD ; Inv → InvAck/I ;
    // Dwg → DwgAck/I.
    let mut c = l1_in(L1State::I);
    let a = c.read(L);
    assert!(matches!(a.out[0].msg, CoherenceMsg::Req { kind: ReqType::Sh, .. }));
    assert_eq!(c.state_of(L), L1State::ISD);

    let mut c = l1_in(L1State::I);
    let a = c.write(L);
    assert!(matches!(a.out[0].msg, CoherenceMsg::Req { kind: ReqType::Ex, .. }));
    assert_eq!(c.state_of(L), L1State::IMD);

    let mut c = l1_in(L1State::I);
    let r = c.handle(CoherenceMsg::Inv { line: L }).unwrap();
    assert!(matches!(r.out[0].msg, CoherenceMsg::InvAck { with_data: false, .. }));
    assert_eq!(c.state_of(L), L1State::I);

    let mut c = l1_in(L1State::I);
    let r = c.handle(CoherenceMsg::Dwg { line: L }).unwrap();
    assert!(matches!(r.out[0].msg, CoherenceMsg::DwgAck { with_data: false, .. }));
    assert_eq!(c.state_of(L), L1State::I);

    // Data/ExcAck in I: error cells.
    assert!(l1_in(L1State::I)
        .handle(CoherenceMsg::Data { grant: Grant::Shared, line: L })
        .is_err());
    assert!(l1_in(L1State::I).handle(CoherenceMsg::ExcAck { line: L }).is_err());
}

#[test]
fn l1_row_s() {
    // S: Read → do read/S ; Write → Req(Upg)/S.MA ; Repl → evict/I ;
    // Inv → InvAck/I ; Dwg → error.
    let mut c = l1_in(L1State::S);
    assert!(c.read(L).hit);
    assert_eq!(c.state_of(L), L1State::S);

    let mut c = l1_in(L1State::S);
    let a = c.write(L);
    assert!(matches!(a.out[0].msg, CoherenceMsg::Req { kind: ReqType::Upg, .. }));
    assert_eq!(c.state_of(L), L1State::SMA);

    let mut c = l1_in(L1State::S);
    assert!(c.evict(L).is_empty(), "silent eviction");
    assert_eq!(c.state_of(L), L1State::I);

    let mut c = l1_in(L1State::S);
    let r = c.handle(CoherenceMsg::Inv { line: L }).unwrap();
    assert!(matches!(r.out[0].msg, CoherenceMsg::InvAck { with_data: false, .. }));
    assert_eq!(c.state_of(L), L1State::I);

    assert!(l1_in(L1State::S).handle(CoherenceMsg::Dwg { line: L }).is_err());
}

#[test]
fn l1_row_e() {
    // E: Read → E ; Write → do write/M (silent) ; Repl → evict/I ;
    // Inv → InvAck/I ; Dwg → DwgAck/S.
    let mut c = l1_in(L1State::E);
    assert!(c.read(L).hit);
    assert_eq!(c.state_of(L), L1State::E);

    let mut c = l1_in(L1State::E);
    let a = c.write(L);
    assert!(a.hit && a.out.is_empty(), "silent E→M");
    assert_eq!(c.state_of(L), L1State::M);

    let mut c = l1_in(L1State::E);
    assert!(c.evict(L).is_empty());
    assert_eq!(c.state_of(L), L1State::I);

    let mut c = l1_in(L1State::E);
    let r = c.handle(CoherenceMsg::Inv { line: L }).unwrap();
    assert!(matches!(r.out[0].msg, CoherenceMsg::InvAck { with_data: false, .. }));

    let mut c = l1_in(L1State::E);
    let r = c.handle(CoherenceMsg::Dwg { line: L }).unwrap();
    assert!(matches!(r.out[0].msg, CoherenceMsg::DwgAck { with_data: false, .. }));
    assert_eq!(c.state_of(L), L1State::S);
}

#[test]
fn l1_row_m() {
    // M: hits; Repl → evict (writeback)/I ; Inv → InvAck(D)/I ;
    // Dwg → DwgAck(D)/S.
    let mut c = l1_in(L1State::M);
    assert!(c.read(L).hit && c.write(L).hit);

    let mut c = l1_in(L1State::M);
    let out = c.evict(L);
    assert!(matches!(out[0].msg, CoherenceMsg::WriteBack { .. }));
    assert_eq!(c.state_of(L), L1State::I);

    let mut c = l1_in(L1State::M);
    let r = c.handle(CoherenceMsg::Inv { line: L }).unwrap();
    assert!(matches!(r.out[0].msg, CoherenceMsg::InvAck { with_data: true, .. }));
    assert_eq!(c.state_of(L), L1State::I);

    let mut c = l1_in(L1State::M);
    let r = c.handle(CoherenceMsg::Dwg { line: L }).unwrap();
    assert!(matches!(r.out[0].msg, CoherenceMsg::DwgAck { with_data: true, .. }));
    assert_eq!(c.state_of(L), L1State::S);
}

#[test]
fn l1_row_isd() {
    // I.SD: Read/Write/Repl → z ; Data → save & read/S or E ;
    // Inv → InvAck/I.SD ; Dwg → DwgAck/I.SD ; Retry → Req(Sh).
    let mut c = l1_in(L1State::ISD);
    assert!(c.read(L).stalled && c.write(L).stalled, "z cells");

    let mut c = l1_in(L1State::ISD);
    let r = c.handle(CoherenceMsg::Data { grant: Grant::Shared, line: L }).unwrap();
    assert_eq!(r.completed, Some(L));
    assert_eq!(c.state_of(L), L1State::S);

    let mut c = l1_in(L1State::ISD);
    c.handle(CoherenceMsg::Data { grant: Grant::Exclusive, line: L }).unwrap();
    assert_eq!(c.state_of(L), L1State::E, "or E");

    let mut c = l1_in(L1State::ISD);
    let r = c.handle(CoherenceMsg::Inv { line: L }).unwrap();
    assert!(matches!(r.out[0].msg, CoherenceMsg::InvAck { .. }));
    assert_eq!(c.state_of(L), L1State::ISD, "stays I.SD");

    let mut c = l1_in(L1State::ISD);
    let r = c.handle(CoherenceMsg::Dwg { line: L }).unwrap();
    assert!(matches!(r.out[0].msg, CoherenceMsg::DwgAck { .. }));
    assert_eq!(c.state_of(L), L1State::ISD);

    let mut c = l1_in(L1State::ISD);
    let r = c.handle(CoherenceMsg::Retry { line: L }).unwrap();
    assert!(matches!(r.out[0].msg, CoherenceMsg::Req { kind: ReqType::Sh, .. }));
}

#[test]
fn l1_row_imd() {
    // I.MD: z on processor ops ; Data → save & write/M ;
    // Inv → InvAck/I.MD ; Dwg → DwgAck/I.MD ; Retry → Req(Ex).
    let mut c = l1_in(L1State::IMD);
    assert!(c.read(L).stalled && c.write(L).stalled);

    let mut c = l1_in(L1State::IMD);
    let r = c.handle(CoherenceMsg::Data { grant: Grant::Modified, line: L }).unwrap();
    assert_eq!(r.completed, Some(L));
    assert_eq!(c.state_of(L), L1State::M);

    let mut c = l1_in(L1State::IMD);
    c.handle(CoherenceMsg::Inv { line: L }).unwrap();
    assert_eq!(c.state_of(L), L1State::IMD);

    let mut c = l1_in(L1State::IMD);
    c.handle(CoherenceMsg::Dwg { line: L }).unwrap();
    assert_eq!(c.state_of(L), L1State::IMD);

    let mut c = l1_in(L1State::IMD);
    let r = c.handle(CoherenceMsg::Retry { line: L }).unwrap();
    assert!(matches!(r.out[0].msg, CoherenceMsg::Req { kind: ReqType::Ex, .. }));
}

#[test]
fn l1_row_sma() {
    // S.MA: z on processor ops ; Data → error ; ExcAck → do write/M ;
    // Inv → InvAck/I.MD ; Dwg → error ; Retry → Req(Upg).
    let mut c = l1_in(L1State::SMA);
    assert!(c.read(L).stalled && c.write(L).stalled);

    assert!(l1_in(L1State::SMA)
        .handle(CoherenceMsg::Data { grant: Grant::Modified, line: L })
        .is_err());

    let mut c = l1_in(L1State::SMA);
    let r = c.handle(CoherenceMsg::ExcAck { line: L }).unwrap();
    assert_eq!(r.completed, Some(L));
    assert_eq!(c.state_of(L), L1State::M);

    let mut c = l1_in(L1State::SMA);
    let r = c.handle(CoherenceMsg::Inv { line: L }).unwrap();
    assert!(matches!(r.out[0].msg, CoherenceMsg::InvAck { with_data: false, .. }));
    assert_eq!(c.state_of(L), L1State::IMD, "the upgrade race");

    assert!(l1_in(L1State::SMA).handle(CoherenceMsg::Dwg { line: L }).is_err());

    let mut c = l1_in(L1State::SMA);
    let r = c.handle(CoherenceMsg::Retry { line: L }).unwrap();
    assert!(matches!(r.out[0].msg, CoherenceMsg::Req { kind: ReqType::Upg, .. }));
}

// -------------------------------------------------------------- Directory

fn dir_in(state: DirState) -> Directory {
    let mut d = Directory::new(0, MEM, 1024);
    let req = |k| CoherenceMsg::Req { kind: k, line: L };
    match state {
        DirState::DI => {}
        DirState::DIDSD => {
            d.handle(1, req(ReqType::Sh)).unwrap();
        }
        DirState::DIDMD => {
            d.handle(1, req(ReqType::Ex)).unwrap();
        }
        DirState::DM => {
            d.handle(1, req(ReqType::Ex)).unwrap();
            d.handle(MEM, CoherenceMsg::MemAck { line: L }).unwrap();
        }
        DirState::DV => {
            d.handle(1, req(ReqType::Ex)).unwrap();
            d.handle(MEM, CoherenceMsg::MemAck { line: L }).unwrap();
            d.handle(1, CoherenceMsg::WriteBack { line: L }).unwrap();
        }
        DirState::DS => {
            d.handle(1, req(ReqType::Ex)).unwrap();
            d.handle(MEM, CoherenceMsg::MemAck { line: L }).unwrap();
            d.handle(2, req(ReqType::Sh)).unwrap();
            d.handle(1, CoherenceMsg::DwgAck { line: L, with_data: true }).unwrap();
        }
        DirState::DMDSD => {
            let mut base = dir_in(DirState::DM);
            base.handle(2, req(ReqType::Sh)).unwrap();
            assert_eq!(base.state_of(L), DirState::DMDSD);
            return base;
        }
        DirState::DMDMD => {
            let mut base = dir_in(DirState::DM);
            base.handle(2, req(ReqType::Ex)).unwrap();
            assert_eq!(base.state_of(L), DirState::DMDMD);
            return base;
        }
        DirState::DMDSA => {
            let mut base = dir_in(DirState::DMDSD);
            base.handle(1, CoherenceMsg::WriteBack { line: L }).unwrap();
            assert_eq!(base.state_of(L), DirState::DMDSA);
            return base;
        }
        DirState::DMDMA => {
            let mut base = dir_in(DirState::DMDMD);
            base.handle(1, CoherenceMsg::WriteBack { line: L }).unwrap();
            assert_eq!(base.state_of(L), DirState::DMDMA);
            return base;
        }
        DirState::DSDMDA => {
            let mut base = dir_in(DirState::DS);
            base.handle(4, req(ReqType::Ex)).unwrap();
            assert_eq!(base.state_of(L), DirState::DSDMDA);
            return base;
        }
        DirState::DSDMA => {
            let mut base = dir_in(DirState::DS);
            base.handle(2, req(ReqType::Upg)).unwrap();
            assert_eq!(base.state_of(L), DirState::DSDMA);
            return base;
        }
        DirState::DSDIA | DirState::DMDID => {
            unreachable!("capacity-eviction states are set up in their tests")
        }
    }
    assert_eq!(d.state_of(L), state, "setup failed");
    d
}

#[test]
fn dir_row_di() {
    // DI: Req(Sh) → Req(Mem)/DI.DSD ; Req(Ex)/Req(Upg) → Req(Mem)/DI.DMD ;
    // WriteBack/InvAck/DwgAck/MemAck → error.
    let mut d = dir_in(DirState::DI);
    let out = d.handle(1, CoherenceMsg::Req { kind: ReqType::Sh, line: L }).unwrap();
    assert!(matches!(out[0].msg, CoherenceMsg::MemReq { write: false, .. }));
    assert_eq!(d.state_of(L), DirState::DIDSD);

    for kind in [ReqType::Ex, ReqType::Upg] {
        let mut d = dir_in(DirState::DI);
        d.handle(1, CoherenceMsg::Req { kind, line: L }).unwrap();
        assert_eq!(d.state_of(L), DirState::DIDMD, "{kind:?} reinterprets to Ex");
    }

    assert!(dir_in(DirState::DI).handle(1, CoherenceMsg::WriteBack { line: L }).is_err());
    assert!(dir_in(DirState::DI)
        .handle(1, CoherenceMsg::InvAck { line: L, with_data: false })
        .is_err());
    assert!(dir_in(DirState::DI)
        .handle(1, CoherenceMsg::DwgAck { line: L, with_data: false })
        .is_err());
    assert!(dir_in(DirState::DI).handle(MEM, CoherenceMsg::MemAck { line: L }).is_err());
}

#[test]
fn dir_row_dv() {
    // DV: Req(Sh) → Data(E)/DM ; Req(Ex) → Data(M)/DM.
    let mut d = dir_in(DirState::DV);
    let out = d.handle(7, CoherenceMsg::Req { kind: ReqType::Sh, line: L }).unwrap();
    assert!(matches!(out[0].msg, CoherenceMsg::Data { grant: Grant::Exclusive, .. }));
    assert_eq!(d.state_of(L), DirState::DM);
    assert_eq!(d.owner_of(L), Some(7));

    let mut d = dir_in(DirState::DV);
    let out = d.handle(7, CoherenceMsg::Req { kind: ReqType::Ex, line: L }).unwrap();
    assert!(matches!(out[0].msg, CoherenceMsg::Data { grant: Grant::Modified, .. }));

    assert!(dir_in(DirState::DV).handle(1, CoherenceMsg::WriteBack { line: L }).is_err());
    assert!(dir_in(DirState::DV).handle(MEM, CoherenceMsg::MemAck { line: L }).is_err());
}

#[test]
fn dir_row_ds() {
    // DS: Req(Sh) → Data(S)/DS ; Req(Ex) → Inv/DS.DMᴰᴬ ;
    // Req(Upg from sharer) → Inv/DS.DMᴬ.
    let mut d = dir_in(DirState::DS);
    let out = d.handle(5, CoherenceMsg::Req { kind: ReqType::Sh, line: L }).unwrap();
    assert!(matches!(out[0].msg, CoherenceMsg::Data { grant: Grant::Shared, .. }));
    assert_eq!(d.state_of(L), DirState::DS);
    assert!(d.sharers_of(L).contains(&5));

    let mut d = dir_in(DirState::DS);
    let out = d.handle(9, CoherenceMsg::Req { kind: ReqType::Ex, line: L }).unwrap();
    assert!(out.iter().all(|m| matches!(m.msg, CoherenceMsg::Inv { .. })));
    assert_eq!(out.len(), 2, "both sharers invalidated");
    assert_eq!(d.state_of(L), DirState::DSDMDA);

    let mut d = dir_in(DirState::DS);
    let out = d.handle(2, CoherenceMsg::Req { kind: ReqType::Upg, line: L }).unwrap();
    assert_eq!(out.len(), 1, "only the other sharer invalidated");
    assert_eq!(d.state_of(L), DirState::DSDMA);
}

#[test]
fn dir_row_dm() {
    // DM: Req(Sh) → Dwg/DM.DSᴰ ; Req(Ex) → Inv/DM.DMᴰ ; WriteBack → save/DV.
    let mut d = dir_in(DirState::DM);
    let out = d.handle(2, CoherenceMsg::Req { kind: ReqType::Sh, line: L }).unwrap();
    assert_eq!(out[0].to, 1, "downgrade goes to the owner");
    assert!(matches!(out[0].msg, CoherenceMsg::Dwg { .. }));
    assert_eq!(d.state_of(L), DirState::DMDSD);

    let mut d = dir_in(DirState::DM);
    let out = d.handle(2, CoherenceMsg::Req { kind: ReqType::Ex, line: L }).unwrap();
    assert!(matches!(out[0].msg, CoherenceMsg::Inv { .. }));
    assert_eq!(d.state_of(L), DirState::DMDMD);

    let mut d = dir_in(DirState::DM);
    assert!(d.handle(1, CoherenceMsg::WriteBack { line: L }).unwrap().is_empty());
    assert_eq!(d.state_of(L), DirState::DV);
}

#[test]
fn dir_rows_didsd_didmd() {
    // DI.DSᴰ / DI.DMᴰ: Req* → z ; MemAck → repl & fwd/DM.
    let mut d = dir_in(DirState::DIDSD);
    let out = d.handle(5, CoherenceMsg::Req { kind: ReqType::Sh, line: L }).unwrap();
    assert!(out.is_empty(), "z: deferred");
    let out = d.handle(MEM, CoherenceMsg::MemAck { line: L }).unwrap();
    assert!(matches!(out[0].msg, CoherenceMsg::Data { grant: Grant::Exclusive, .. }));
    // The deferred Req(Sh) then replays against DM (downgrade).
    assert!(out.iter().any(|m| matches!(m.msg, CoherenceMsg::Dwg { .. })));

    let mut d = dir_in(DirState::DIDMD);
    let out = d.handle(MEM, CoherenceMsg::MemAck { line: L }).unwrap();
    assert!(matches!(out[0].msg, CoherenceMsg::Data { grant: Grant::Modified, .. }));
    assert_eq!(d.state_of(L), DirState::DM);

    assert!(dir_in(DirState::DIDSD)
        .handle(1, CoherenceMsg::WriteBack { line: L })
        .is_err());
}

#[test]
fn dir_rows_dsdmda_dsdma() {
    // DS.DMᴰᴬ: last InvAck → Data(M)/DM. DS.DMᴬ: last InvAck → ExcAck/DM.
    let mut d = dir_in(DirState::DSDMDA);
    assert!(d.handle(1, CoherenceMsg::InvAck { line: L, with_data: false }).unwrap().is_empty());
    let out = d.handle(2, CoherenceMsg::InvAck { line: L, with_data: false }).unwrap();
    assert!(matches!(out[0].msg, CoherenceMsg::Data { grant: Grant::Modified, .. }));
    assert_eq!(d.state_of(L), DirState::DM);
    assert_eq!(d.owner_of(L), Some(4));

    let mut d = dir_in(DirState::DSDMA);
    let out = d.handle(1, CoherenceMsg::InvAck { line: L, with_data: false }).unwrap();
    assert!(matches!(out[0].msg, CoherenceMsg::ExcAck { .. }));
    assert_eq!(d.owner_of(L), Some(2));

    // MemAck in these states: error.
    assert!(dir_in(DirState::DSDMDA)
        .handle(MEM, CoherenceMsg::MemAck { line: L })
        .is_err());
}

#[test]
fn dir_rows_dmdsd_dmdsa() {
    // DM.DSᴰ: DwgAck → save & fwd (Data(S), both share) ;
    // WriteBack → save/DM.DSᴬ, then DwgAck → Data(E)/DM.
    let mut d = dir_in(DirState::DMDSD);
    let out = d.handle(1, CoherenceMsg::DwgAck { line: L, with_data: true }).unwrap();
    assert!(matches!(out[0].msg, CoherenceMsg::Data { grant: Grant::Shared, .. }));
    assert_eq!(d.state_of(L), DirState::DS);
    let mut sharers = d.sharers_of(L);
    sharers.sort_unstable();
    assert_eq!(sharers, vec![1, 2]);

    let mut d = dir_in(DirState::DMDSA);
    let out = d.handle(1, CoherenceMsg::DwgAck { line: L, with_data: false }).unwrap();
    assert!(matches!(out[0].msg, CoherenceMsg::Data { grant: Grant::Exclusive, .. }));
    assert_eq!(d.state_of(L), DirState::DM);
    assert_eq!(d.owner_of(L), Some(2));

    // InvAck in DM.DSᴰ: error.
    assert!(dir_in(DirState::DMDSD)
        .handle(1, CoherenceMsg::InvAck { line: L, with_data: false })
        .is_err());
}

#[test]
fn dir_rows_dmdmd_dmdma() {
    // DM.DMᴰ: InvAck → save & fwd/DM ; WriteBack → save/DM.DMᴬ, then
    // InvAck → Data(M)/DM.
    let mut d = dir_in(DirState::DMDMD);
    let out = d.handle(1, CoherenceMsg::InvAck { line: L, with_data: true }).unwrap();
    assert!(matches!(out[0].msg, CoherenceMsg::Data { grant: Grant::Modified, .. }));
    assert_eq!(d.owner_of(L), Some(2));

    let mut d = dir_in(DirState::DMDMA);
    let out = d.handle(1, CoherenceMsg::InvAck { line: L, with_data: false }).unwrap();
    assert!(matches!(out[0].msg, CoherenceMsg::Data { grant: Grant::Modified, .. }));
    assert_eq!(d.state_of(L), DirState::DM);

    // DwgAck in DM.DMᴰ: error.
    assert!(dir_in(DirState::DMDMD)
        .handle(1, CoherenceMsg::DwgAck { line: L, with_data: false })
        .is_err());
}

#[test]
fn dir_rows_repl_eviction_paths() {
    // Repl on DS → Inv/DS.DIᴬ → last InvAck → evict/DI.
    // Repl on DM → Inv/DM.DIᴰ → InvAck(D) → save & evict/DI,
    //   or WriteBack (crossing) → save/DS.DIᴬ.
    // Driven via capacity pressure on a 4-line slice.
    let mut d = Directory::new(0, MEM, 4);
    let lines: Vec<LineAddr> = (0..5u64).map(|i| LineAddr(0x1000 + i * 32)).collect();
    for &line in &lines {
        d.handle(1, CoherenceMsg::Req { kind: ReqType::Ex, line }).unwrap();
        d.handle(MEM, CoherenceMsg::MemAck { line }).unwrap();
    }
    let victim = lines[0];
    assert_eq!(d.state_of(victim), DirState::DMDID, "DM Repl → DM.DIᴰ");
    // Crossing writeback: DM.DIᴰ + WriteBack → save/DS.DIᴬ.
    d.handle(1, CoherenceMsg::WriteBack { line: victim }).unwrap();
    assert_eq!(d.state_of(victim), DirState::DSDIA);
    // The ex-owner's InvAck completes the eviction.
    let out = d
        .handle(1, CoherenceMsg::InvAck { line: victim, with_data: false })
        .unwrap();
    assert!(matches!(out[0].msg, CoherenceMsg::MemReq { write: true, .. }));
    assert_eq!(d.state_of(victim), DirState::DI);
}

#[test]
fn dir_deferred_upg_reinterprets_as_ex() {
    // The "(Req(Ex))" annotation: a deferred Upg whose requester is no
    // longer a sharer replays as Ex.
    let mut d = dir_in(DirState::DSDMDA); // node 4 taking exclusive from {1,2}
    // Node 2 (being invalidated) has an Upg in flight: deferred.
    assert!(d
        .handle(2, CoherenceMsg::Req { kind: ReqType::Upg, line: L })
        .unwrap()
        .is_empty());
    // Acks complete node 4's transfer; node 2's stale Upg replays as a
    // full exclusive request: an Inv goes to the new owner 4.
    d.handle(1, CoherenceMsg::InvAck { line: L, with_data: false }).unwrap();
    let out = d.handle(2, CoherenceMsg::InvAck { line: L, with_data: false }).unwrap();
    assert!(out.iter().any(|m| matches!(m.msg, CoherenceMsg::Data { grant: Grant::Modified, .. })));
    assert!(
        out.iter().any(|m| m.to == 4 && matches!(m.msg, CoherenceMsg::Inv { .. })),
        "stale Upg reinterpreted as Ex: {out:?}"
    );
    assert_eq!(d.state_of(L), DirState::DMDMD);
    assert!(d.stats().reinterpreted >= 1);
}
