//! Coherence-substrate bench: raw Table 2 state-machine throughput — how
//! many protocol transitions per second the L1 and directory controllers
//! sustain (every Figure 6–10 run is bounded by this).

use fsoi_bench::microbench::{black_box, Criterion, Throughput};
use fsoi_bench::{criterion_group, criterion_main};
use fsoi_coherence::directory::Directory;
use fsoi_coherence::l1::L1Controller;
use fsoi_coherence::protocol::{CoherenceMsg, Grant, LineAddr};

const OPS: u64 = 1_000;

/// A full read-miss round trip: Req(Sh) → MemReq → MemAck → Data → fill.
fn miss_roundtrips(n: u64) -> u64 {
    let mut l1 = L1Controller::new(0, 256, 2, 32);
    l1.set_home_nodes(1);
    let mut dir = Directory::new(0, 99, 4096);
    let mut fills = 0;
    for i in 0..n {
        let line = LineAddr((i % 512) * 32);
        let acc = l1.read(line);
        if acc.hit {
            continue;
        }
        for out in acc.out {
            let outs = dir.handle(0, out.msg).expect("protocol ok");
            for o in outs {
                if o.to == 99 {
                    // Memory answers instantly in this microbench.
                    let backs = dir
                        .handle(99, CoherenceMsg::MemAck { line })
                        .expect("protocol ok");
                    for b in backs {
                        let r = l1.handle(b.msg).expect("protocol ok");
                        if r.completed.is_some() {
                            fills += 1;
                        }
                    }
                } else {
                    let r = l1.handle(o.msg).expect("protocol ok");
                    if r.completed.is_some() {
                        fills += 1;
                    }
                }
            }
        }
    }
    fills
}

/// Invalidation rounds: a 16-sharer line upgraded by one of them.
fn invalidation_round() -> usize {
    let mut dir = Directory::new(0, 99, 4096);
    let line = LineAddr(0x40);
    // Build 16 sharers.
    dir.handle(
        1,
        CoherenceMsg::Req {
            kind: fsoi_coherence::protocol::ReqType::Ex,
            line,
        },
    )
    .unwrap();
    dir.handle(99, CoherenceMsg::MemAck { line }).unwrap();
    dir.handle(
        2,
        CoherenceMsg::Req {
            kind: fsoi_coherence::protocol::ReqType::Sh,
            line,
        },
    )
    .unwrap();
    dir.handle(
        1,
        CoherenceMsg::DwgAck {
            line,
            with_data: true,
        },
    )
    .unwrap();
    for s in 3..16 {
        dir.handle(
            s,
            CoherenceMsg::Req {
                kind: fsoi_coherence::protocol::ReqType::Sh,
                line,
            },
        )
        .unwrap();
    }
    let invs = dir
        .handle(
            2,
            CoherenceMsg::Req {
                kind: fsoi_coherence::protocol::ReqType::Upg,
                line,
            },
        )
        .unwrap();
    let n = invs.len();
    for v in invs {
        dir.handle(
            v.to,
            CoherenceMsg::InvAck {
                line,
                with_data: false,
            },
        )
        .unwrap();
    }
    n
}

fn bench_protocol(c: &mut Criterion) {
    let mut g = c.benchmark_group("coherence");
    g.throughput(Throughput::Elements(OPS));
    g.bench_function("read_miss_roundtrips", |b| {
        b.iter(|| miss_roundtrips(black_box(OPS)))
    });
    g.finish();
    c.bench_function("coherence/16_sharer_upgrade_round", |b| {
        b.iter(invalidation_round)
    });
    c.bench_function("coherence/l1_hit", |b| {
        let mut l1 = L1Controller::new(0, 256, 2, 32);
        l1.set_home_nodes(1);
        let line = LineAddr(0x40);
        l1.read(line);
        let _ = l1.handle(CoherenceMsg::Data {
            grant: Grant::Shared,
            line,
        });
        b.iter(|| l1.read(black_box(line)).hit)
    });
}

criterion_group!(benches, bench_protocol);
criterion_main!(benches);
