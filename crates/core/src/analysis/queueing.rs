//! Source-queue analysis: the queuing-delay component of the Figure 6/7
//! latency breakdown, in closed form.
//!
//! Each lane's transmitter is a slotted single server: packets arrive
//! from the coherence controllers, wait in the 8-deep outgoing queue, and
//! occupy the lane for one slot each (plus retransmissions). For Poisson
//! arrivals and deterministic unit-slot service that is an M/D/1 queue,
//! whose mean wait is `W = ρ / (2(1 − ρ))` slots, with the collision
//! retries folded into an *effective* utilization.

/// Mean M/D/1 waiting time, in service-time units, at utilization `rho`.
///
/// # Panics
///
/// Panics unless `rho ∈ [0, 1)`.
pub fn md1_wait(rho: f64) -> f64 {
    assert!((0.0..1.0).contains(&rho), "utilization must be in [0, 1)");
    rho / (2.0 * (1.0 - rho))
}

/// Effective service time of a lane slot once collision retries are
/// charged to the packet that suffered them: a packet costs one slot plus
/// `collision_probability` times the mean resolution delay.
pub fn effective_service_slots(collision_probability: f64, resolution_slots: f64) -> f64 {
    assert!((0.0..=1.0).contains(&collision_probability));
    assert!(resolution_slots >= 0.0);
    1.0 + collision_probability * resolution_slots
}

/// Closed-form estimate of the mean source-queuing delay (in cycles) of a
/// lane, given the per-node packet rate (packets per slot), the slot
/// length, and the lane's collision characteristics.
///
/// Returns `None` when the effective load is saturating (ρ ≥ 1): the
/// queue has no steady state and the simulator's bounded queues will
/// reject traffic instead.
pub fn source_queuing_cycles(
    packets_per_slot: f64,
    slot_cycles: u64,
    collision_probability: f64,
    resolution_slots: f64,
) -> Option<f64> {
    assert!(packets_per_slot >= 0.0);
    let service = effective_service_slots(collision_probability, resolution_slots);
    let rho = packets_per_slot * service;
    if rho >= 1.0 {
        return None;
    }
    Some(md1_wait(rho) * service * slot_cycles as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FsoiConfig;
    use crate::network::FsoiNetwork;
    use crate::packet::{Packet, PacketClass};
    use crate::topology::NodeId;
    use fsoi_sim::rng::Xoshiro256StarStar;

    #[test]
    fn md1_reference_values() {
        assert_eq!(md1_wait(0.0), 0.0);
        assert!((md1_wait(0.5) - 0.5).abs() < 1e-12);
        assert!((md1_wait(0.8) - 2.0).abs() < 1e-12);
        assert!(md1_wait(0.99) > 40.0);
    }

    #[test]
    fn wait_is_monotone_in_load() {
        let mut prev = -1.0;
        for i in 0..99 {
            let w = md1_wait(i as f64 / 100.0);
            assert!(w > prev);
            prev = w;
        }
    }

    #[test]
    fn effective_service_grows_with_collisions() {
        assert_eq!(effective_service_slots(0.0, 10.0), 1.0);
        assert!((effective_service_slots(0.05, 4.0) - 1.2).abs() < 1e-12);
    }

    #[test]
    fn saturation_returns_none() {
        assert!(source_queuing_cycles(1.0, 2, 0.0, 0.0).is_none());
        assert!(source_queuing_cycles(0.9, 2, 0.2, 2.0).is_none());
        assert!(source_queuing_cycles(0.3, 2, 0.0, 0.0).is_some());
    }

    #[test]
    #[should_panic(expected = "utilization must be in [0, 1)")]
    fn bad_rho_panics() {
        md1_wait(1.0);
    }

    /// The closed form must track the simulator's measured queuing delay
    /// within a factor of ~2 across the light-load regime (the arrivals in
    /// the simulator are Bernoulli-per-slot, not Poisson, and slotting
    /// adds alignment wait — a half-slot constant the model omits).
    #[test]
    fn model_tracks_simulated_queuing() {
        for &p in &[0.03f64, 0.08, 0.15] {
            let mut net = FsoiNetwork::new(FsoiConfig::nodes(16), 11);
            let mut rng = Xoshiro256StarStar::new(5);
            let slot = net.meta_slot_len();
            for cycle in 0..120_000u64 {
                if cycle % slot == 0 {
                    for src in 0..16usize {
                        if rng.bernoulli(p) {
                            let mut dst = rng.next_below(15) as usize;
                            if dst >= src {
                                dst += 1;
                            }
                            let _ = net.inject(Packet::new(
                                NodeId(src),
                                NodeId(dst),
                                PacketClass::Meta,
                                cycle,
                            ));
                        }
                    }
                }
                net.tick();
                net.drain_delivered();
            }
            let measured = net.stats().queuing[0].mean();
            let coll = net.stats().collision_rate(0);
            let resolution = net.stats().resolution_when_collided[0].mean() / slot as f64;
            let model = source_queuing_cycles(p, slot, coll, resolution).expect("below saturation");
            // Arrivals in this test are slot-aligned, so no alignment
            // constant: compare the pure queuing components with a
            // one-cycle absolute allowance.
            assert!(
                measured < 2.0 * model + 1.0 && model < 2.0 * measured + 1.0,
                "p={p}: measured {measured:.2} vs model {model:.2}"
            );
        }
    }
}
