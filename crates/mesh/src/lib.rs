//! Baseline electrical packet-switched 2-D mesh network-on-chip.
//!
//! The paper compares its free-space optical interconnect against a
//! conventional wire-based mesh with canonical 4-cycle virtual-channel
//! routers (Table 3: 72-bit flits, 1-flit meta / 5-flit data packets,
//! 4 VCs, 4-cycle routers + 1-cycle links), plus three idealized latency
//! configurations:
//!
//! * `L0` — zero transmission latency; only serialization and source
//!   queuing are modelled (a loose performance upper bound);
//! * `Lr1` / `Lr2` — per-hop costs of 1 link cycle plus 1 or 2 router
//!   cycles, with no contention modelled.
//!
//! This crate implements all of them:
//!
//! * [`router`] — a wormhole, credit-flow-controlled VC router with the
//!   canonical RC/VA/SA/ST pipeline;
//! * [`network::MeshNetwork`] — the full cycle-driven mesh;
//! * [`ideal::IdealNetwork`] — the L0/Lr1/Lr2 analytic configurations;
//! * [`power`] — Orion-style per-event energy accounting.
//!
//! # Example
//!
//! ```
//! use fsoi_mesh::config::MeshConfig;
//! use fsoi_mesh::network::MeshNetwork;
//! use fsoi_mesh::packet::MeshPacket;
//!
//! let mut net = MeshNetwork::new(MeshConfig::nodes(16));
//! net.inject(MeshPacket::meta(0, 15, 1)).unwrap();
//! while net.delivered_count() == 0 {
//!     net.tick();
//! }
//! assert_eq!(net.drain_delivered()[0].packet.dst, 15);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod config;
pub mod ideal;
pub mod network;
pub mod packet;
pub mod power;
pub mod router;
pub mod routing;

pub use config::MeshConfig;
pub use network::MeshNetwork;
