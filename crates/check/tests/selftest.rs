//! The harness testing itself: shrink convergence on planted bugs,
//! regression-file round-trips, and seed determinism.

use fsoi_check::{vec_of, Checker};
use std::cell::RefCell;

/// A fresh checker decoupled from any regression file and env overrides
/// (the self-tests must not be steered by a checked-in `.regressions`).
fn plain(seed: u64) -> Checker {
    Checker::new().seed(seed)
}

#[test]
fn shrink_converges_to_int_boundary() {
    // Planted bug: fails for every x >= 50. The unique minimal
    // counterexample is exactly the boundary.
    let f = plain(1)
        .check_result("planted_int", &(0u64..1000), &|&x| {
            assert!(x < 50, "x = {x}")
        })
        .expect_err("property must fail");
    assert!(f.original >= 50);
    assert_eq!(
        f.shrunk, 50,
        "greedy halving must land exactly on the boundary"
    );
    assert!(f.message.contains("x = 50"));
}

#[test]
fn shrink_converges_to_minimal_vec() {
    // Planted bug: fails whenever any element reaches 500. Minimal
    // counterexample: a single element holding exactly 500.
    let f = plain(2)
        .check_result("planted_vec", &vec_of(0u64..1000, 0..20), &|v: &Vec<
            u64,
        >| {
            assert!(v.iter().all(|&x| x < 500))
        })
        .expect_err("property must fail");
    assert_eq!(f.shrunk, vec![500]);
}

#[test]
fn shrink_reaches_minimal_pair_sum() {
    // Planted bug: fails when a + b > 10. Greedy shrinking may settle on
    // different (a, b) splits, but the sum of any local minimum is the
    // boundary value 11.
    let f = plain(3)
        .check_result("planted_pair", &(0u64..100, 0u64..100), &|&(a, b)| {
            assert!(a + b <= 10)
        })
        .expect_err("property must fail");
    assert_eq!(f.shrunk.0 + f.shrunk.1, 11, "shrunk to {:?}", f.shrunk);
}

#[test]
fn identical_seed_means_identical_case_sequence() {
    let observe = |seed: u64| {
        let seen = RefCell::new(Vec::new());
        plain(seed)
            .cases(32)
            .check_result("seq", &(0u64..1_000_000, 0.0f64..1.0), &|v| {
                seen.borrow_mut().push(*v);
            })
            .expect("recording property never fails");
        seen.into_inner()
    };
    let a = observe(0xABCD);
    let b = observe(0xABCD);
    assert_eq!(a.len(), 32);
    assert_eq!(a, b, "same seed must replay the same cases");
    let c = observe(0xABCE);
    assert_ne!(a, c, "different base seeds must diverge");
}

#[test]
fn distinct_test_names_get_distinct_streams() {
    let first_case = |name: &str| {
        let seen = RefCell::new(Vec::new());
        plain(7)
            .cases(1)
            .check_result(name, &(0u64..u64::MAX - 1), &|&v| {
                seen.borrow_mut().push(v);
            })
            .unwrap();
        seen.into_inner()[0]
    };
    assert_ne!(first_case("prop_alpha"), first_case("prop_beta"));
}

#[test]
fn regression_file_round_trip() {
    let path = std::env::temp_dir().join(format!(
        "fsoi_check_roundtrip_{}.regressions",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);

    // 1. A failing run records its case seed.
    let failing = |&x: &u64| assert!(x < 50);
    let f = Checker::with_regressions_file(&path)
        .seed(11)
        .check_result("rt_prop", &(0u64..1000), &failing)
        .expect_err("property must fail");
    let text = std::fs::read_to_string(&path).expect("regression file written");
    assert!(
        text.contains(&format!("cc rt_prop {:#018x}", f.seed)),
        "seed line recorded: {text}"
    );

    // 2. A later run with zero fresh cases still fails — the recorded
    //    seed is re-run from the file and regenerates the same case.
    let g = Checker::with_regressions_file(&path)
        .seed(0xFFFF) // different base seed: only the file can supply the case
        .cases(0)
        .check_result("rt_prop", &(0u64..1000), &failing)
        .expect_err("recorded regression must re-fail");
    assert_eq!(g.seed, f.seed);
    assert_eq!(g.original, f.original);

    // 3. Once the "bug" is fixed the recorded case passes.
    Checker::with_regressions_file(&path)
        .cases(0)
        .check_result("rt_prop", &(0u64..1000), &|_| {})
        .expect("fixed property passes its regression");

    // 4. Other properties are not steered by this entry.
    Checker::with_regressions_file(&path)
        .cases(0)
        .check_result("unrelated_prop", &(0u64..1000), &failing)
        .expect("no recorded seeds for other names");

    let _ = std::fs::remove_file(&path);
}

#[test]
fn recording_failures_is_idempotent() {
    let path = std::env::temp_dir().join(format!(
        "fsoi_check_idem_{}.regressions",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);
    let failing = |&x: &u64| assert!(x < 1);
    for _ in 0..3 {
        let _ = Checker::with_regressions_file(&path)
            .seed(5)
            .cases(4)
            .check_result("idem_prop", &(0u64..1000), &failing);
    }
    let text = std::fs::read_to_string(&path).unwrap();
    let lines = text
        .lines()
        .filter(|l| l.trim_start().starts_with("cc "))
        .count();
    assert_eq!(lines, 1, "duplicate seeds must not accumulate: {text}");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn failure_carries_flight_recorder_tail() {
    use fsoi_sim::trace::{self, TraceEvent};
    if !trace::compiled() {
        return; // release without the `trace` feature: nothing to record
    }
    let path = std::env::temp_dir().join(format!(
        "fsoi_check_trace_{}.regressions",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);

    // The property leaves a trace event behind before failing, like an
    // instrumented network tick would.
    let failing = |&x: &u64| {
        trace::emit(
            fsoi_sim::Cycle(x),
            TraceEvent::Mark {
                label: "case".into(),
                value: x,
            },
        );
        assert!(x < 50, "x = {x}");
    };
    let f = Checker::with_regressions_file(&path)
        .seed(19)
        .check_result("trace_prop", &(0u64..1000), &failing)
        .expect_err("property must fail");
    assert!(
        f.trace.contains("\"event\":\"mark\""),
        "tail recorded: {}",
        f.trace
    );
    // The tail belongs to the *shrunk* case (x = 50), not some probe.
    assert!(
        f.trace.contains("\"cycle\":50"),
        "tail is the minimal case: {}",
        f.trace
    );
    assert_eq!(
        f.trace.lines().count(),
        1,
        "one probe, one event: {}",
        f.trace
    );

    // The regression entry carries the tail as comment lines…
    let text = std::fs::read_to_string(&path).unwrap();
    assert!(
        text.contains("#   trace: {\"cycle\":50"),
        "trace comment recorded: {text}"
    );
    // …which must not confuse the seed parser on the next run.
    let g = Checker::with_regressions_file(&path)
        .seed(0xFFFF) // only the file can supply the case
        .cases(0)
        .check_result("trace_prop", &(0u64..1000), &failing)
        .expect_err("recorded regression must re-fail");
    assert_eq!(g.seed, f.seed);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn check_panics_with_replayable_report() {
    let err = std::panic::catch_unwind(|| {
        plain(13).check("report_prop", 0u64..1000, |&x| assert!(x < 50));
    })
    .expect_err("check must panic on failure");
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_else(|| "?".into());
    assert!(
        msg.contains("[fsoi-check] property 'report_prop' failed"),
        "{msg}"
    );
    assert!(
        msg.contains("FSOI_CHECK_REPLAY=0x"),
        "report names the replay knob: {msg}"
    );
    assert!(msg.contains("shrunk"), "{msg}");
}

#[test]
fn passing_properties_stay_quiet() {
    plain(17).check("always_passes", vec_of(0u64..10, 0..5), |v| {
        assert!(v.len() < 5);
    });
}
