//! End-to-end observability acceptance: a failing assertion inside the
//! network automatically dumps the flight recorder as JSON lines, and the
//! dump replays into per-packet timelines — the same parsing path the
//! `trace_replay` example uses.

use fsoi::net::packet::{Packet, PacketClass};
use fsoi::net::topology::NodeId;
use fsoi::net::{FsoiConfig, FsoiNetwork};
use fsoi::sim::trace::{self, timelines, TraceRecord};

#[test]
fn failing_assertion_dumps_a_replayable_flight_record() {
    if !trace::compiled() {
        return; // release build without the `trace` feature: nothing recorded
    }
    trace::set_enabled(true);
    trace::clear();

    // Ordinary traffic first, so the recorder holds real packet lifecycles
    // when the failure fires.
    let mut net = FsoiNetwork::new(FsoiConfig::nodes(8), 7);
    for i in 0..6usize {
        net.inject(Packet::new(
            NodeId(i),
            NodeId((i + 1) % 8),
            PacketClass::Meta,
            i as u64,
        ))
        .expect("queues start empty");
    }
    net.run(2_000);
    assert!(
        net.delivered_count() > 0,
        "traffic must flow before the failure"
    );

    let dump = trace::panic_dump_path();
    let _ = std::fs::remove_file(&dump);

    // Self-injection trips the fabric's always-on assertion; the panic
    // hook installed by `FsoiNetwork::new` dumps this thread's recorder.
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let _ = net.inject(Packet::new(NodeId(3), NodeId(3), PacketClass::Meta, 99));
    }))
    .expect_err("self-injection must panic");

    let text = std::fs::read_to_string(&dump).expect("panic must write the flight-recorder dump");
    let records: Vec<TraceRecord> = text
        .lines()
        .map(|l| TraceRecord::parse_jsonl(l).expect("every dumped line parses"))
        .collect();
    assert!(!records.is_empty(), "dump holds the recorded tail");
    assert!(records.iter().any(|r| r.event.name() == "inject"));
    assert!(records.iter().any(|r| r.event.name() == "deliver"));
    let by_packet = timelines(&records);
    assert!(
        !by_packet.is_empty(),
        "dump replays into per-packet timelines"
    );

    // Dumping clears the recorder, so a later unrelated panic cannot
    // re-report stale events.
    assert!(
        trace::snapshot().is_empty(),
        "recorder cleared after the dump"
    );
    let _ = std::fs::remove_file(&dump);
}
