//! The property runner: deterministic seeding, greedy shrinking, and
//! persistent regression seeds.
//!
//! # Seeding model
//!
//! Every property gets its own case-seed stream:
//!
//! ```text
//! per-test stream seed = base_seed XOR fnv1a64(test name)
//! case seeds           = SplitMix64(stream seed) . next_u64(), repeated
//! value generation     = Xoshiro256**(case seed)
//! ```
//!
//! The base seed is a fixed constant (overridable via `FSOI_CHECK_SEED` or
//! [`Checker::seed`]), so the same binary generates the same case sequence
//! on every run and on every machine — failures are reproducible by seed
//! alone, with no global state.
//!
//! # Regression files
//!
//! When a property fails, its *case seed* is appended to the checker's
//! `.regressions` file (created next to the test source) as a line
//!
//! ```text
//! cc <test name> 0x<case seed in hex>  # shrunk: <minimal counterexample>
//! ```
//!
//! Those seeds are re-run *before* fresh cases on every subsequent run, so
//! a once-seen failure keeps failing until the underlying bug is fixed.
//! The files are meant to be checked in, like proptest's
//! `.proptest-regressions`.
//!
//! # Replaying a failure
//!
//! `FSOI_CHECK_REPLAY=0x<seed> cargo test <test name>` runs exactly that
//! case (skipping regressions and fresh generation); `FSOI_CHECK_CASES`
//! overrides the fresh-case count and `FSOI_CHECK_SEED` the base seed.

use crate::gen::Gen;
use crate::tree::Tree;
use fsoi_sim::rng::{SplitMix64, Xoshiro256StarStar};
use fsoi_sim::trace;
use std::cell::Cell;
use std::fmt::Debug;
use std::fs;
use std::io::Write as _;
use std::panic::{self, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::Once;

/// Default base seed; any fixed value works, it just has to be stable.
pub const DEFAULT_SEED: u64 = 0xF501_C8EC_0DE5_EED5;

/// Default number of fresh cases per property.
pub const DEFAULT_CASES: u32 = 64;

/// Default bound on shrink-candidate evaluations.
pub const DEFAULT_SHRINK_STEPS: u32 = 2048;

/// FNV-1a, used to give every test name its own seed stream.
fn fnv1a64(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

thread_local! {
    /// True while the runner probes a case; the panic hook stays quiet so
    /// shrinking doesn't spray hundreds of backtraces.
    static PROBING: Cell<bool> = const { Cell::new(false) };
}

fn install_quiet_hook() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if !PROBING.with(|p| p.get()) {
                prev(info);
            }
        }));
    });
}

/// Runs `prop` against `value`, returning the panic message on failure.
fn probe<V, P: Fn(&V)>(prop: &P, value: &V) -> Option<String> {
    install_quiet_hook();
    PROBING.with(|p| p.set(true));
    // Shrinking probes hundreds of panicking candidates; only the final,
    // minimal counterexample should produce a flight-recorder dump.
    trace::set_panic_dump_suppressed(true);
    let result = panic::catch_unwind(AssertUnwindSafe(|| prop(value)));
    trace::set_panic_dump_suppressed(false);
    PROBING.with(|p| p.set(false));
    match result {
        Ok(()) => None,
        Err(payload) => Some(payload_message(&payload)),
    }
}

/// Re-runs the shrunk counterexample with a cleared flight recorder and
/// returns the recorded event tail as JSON lines. The events stay in the
/// thread's recorder so the eventual failure panic also dumps exactly the
/// minimal counterexample's trace (see `fsoi_sim::trace::install_panic_dump`).
/// Empty when tracing is compiled out or the property recorded nothing.
fn counterexample_trace<V, P: Fn(&V)>(prop: &P, value: &V) -> String {
    if !trace::compiled() {
        return String::new();
    }
    trace::clear();
    let _ = probe(prop, value);
    trace::tail_jsonl(MAX_REPORTED_TRACE_EVENTS)
}

/// Trace records shown in the failure report and regression file.
const MAX_REPORTED_TRACE_EVENTS: usize = 16;

fn payload_message(payload: &Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// A minimised property failure, as returned by [`Checker::check_result`].
#[derive(Debug, Clone)]
pub struct Failure<V> {
    /// The case seed that produced the failure (replayable).
    pub seed: u64,
    /// The originally generated counterexample.
    pub original: V,
    /// The counterexample after greedy shrinking.
    pub shrunk: V,
    /// How many shrink candidates were evaluated.
    pub steps: u32,
    /// The panic message from the shrunk case.
    pub message: String,
    /// Flight-recorder tail (JSON lines) from re-running the shrunk case;
    /// empty when tracing is compiled out or nothing was recorded.
    pub trace: String,
}

/// A configured property-test runner. See the module docs for the seeding
/// and regression-file model.
pub struct Checker {
    seed: u64,
    cases: u32,
    max_shrink_steps: u32,
    regressions: Option<PathBuf>,
    record: bool,
}

impl Default for Checker {
    fn default() -> Self {
        Checker::new()
    }
}

impl Checker {
    /// A checker with the default seed and case count and no regression file.
    pub fn new() -> Self {
        Checker {
            seed: DEFAULT_SEED,
            cases: DEFAULT_CASES,
            max_shrink_steps: DEFAULT_SHRINK_STEPS,
            regressions: None,
            record: true,
        }
    }

    /// A checker whose regression file sits next to the test source.
    ///
    /// Call as `Checker::with_regressions(env!("CARGO_MANIFEST_DIR"), file!())`
    /// (or use the [`crate::checker!`] macro). `file!()` paths are relative
    /// to the directory `rustc` ran in, which for workspace members is the
    /// workspace root, not the crate — so leading components are stripped
    /// until the joined path exists.
    pub fn with_regressions(manifest_dir: &str, source_file: &str) -> Self {
        let mut c = Checker::new();
        c.regressions = Some(resolve_regression_path(manifest_dir, source_file));
        c
    }

    /// A checker writing regressions to an explicit file path.
    pub fn with_regressions_file(path: impl Into<PathBuf>) -> Self {
        let mut c = Checker::new();
        c.regressions = Some(path.into());
        c
    }

    /// Overrides the base seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the fresh-case count.
    pub fn cases(mut self, cases: u32) -> Self {
        self.cases = cases;
        self
    }

    /// Overrides the shrink-candidate budget.
    pub fn max_shrink_steps(mut self, steps: u32) -> Self {
        self.max_shrink_steps = steps;
        self
    }

    /// Disables appending new failures to the regression file (recorded
    /// seeds are still re-run).
    pub fn no_record(mut self) -> Self {
        self.record = false;
        self
    }

    /// Checks `prop` over values from `gen`; panics with a replayable
    /// report on the first (shrunk) failure.
    pub fn check<G, P>(&self, name: &str, gen: G, prop: P)
    where
        G: Gen,
        P: Fn(&G::Value),
    {
        if let Err(f) = self.check_result(name, &gen, &prop) {
            let trace = if f.trace.is_empty() {
                String::new()
            } else {
                let events: Vec<&str> = f.trace.lines().collect();
                format!(
                    "\n  flight recorder (last {} events of the shrunk case):\n    {}",
                    events.len(),
                    events.join("\n    "),
                )
            };
            // lint: allow(P1) property failure is reported by panicking, matching cargo test
            panic!(
                "[fsoi-check] property '{name}' failed\n  \
                 case seed: {seed:#018x}  (replay: FSOI_CHECK_REPLAY={seed:#x} cargo test {name})\n  \
                 original:  {orig:?}\n  \
                 shrunk ({steps} candidate evals): {shrunk:?}\n  \
                 assertion: {msg}{trace}",
                seed = f.seed,
                orig = f.original,
                steps = f.steps,
                shrunk = f.shrunk,
                msg = f.message,
            );
        }
    }

    /// Like [`Checker::check`] but returns the minimised [`Failure`]
    /// instead of panicking — the harness's own tests use this.
    pub fn check_result<G, P>(&self, name: &str, gen: &G, prop: &P) -> Result<(), Failure<G::Value>>
    where
        G: Gen,
        P: Fn(&G::Value),
    {
        let base = env_u64("FSOI_CHECK_SEED").unwrap_or(self.seed);
        let cases = env_u64("FSOI_CHECK_CASES")
            .map(|c| c as u32)
            .unwrap_or(self.cases);

        if let Some(seed) = env_u64("FSOI_CHECK_REPLAY") {
            return self.run_case(seed, gen, prop).map_or(Ok(()), Err);
        }

        // Recorded regression seeds run first, then fresh cases.
        for seed in self.recorded_seeds(name) {
            if let Some(f) = self.run_case(seed, gen, prop) {
                return Err(f);
            }
        }
        let mut stream = SplitMix64::new(base ^ fnv1a64(name));
        for _ in 0..cases {
            let seed = stream.next_u64();
            if let Some(f) = self.run_case(seed, gen, prop) {
                if self.record {
                    self.record_failure(name, &f);
                }
                return Err(f);
            }
        }
        Ok(())
    }

    fn run_case<G, P>(&self, seed: u64, gen: &G, prop: &P) -> Option<Failure<G::Value>>
    where
        G: Gen,
        P: Fn(&G::Value),
    {
        let mut rng = Xoshiro256StarStar::new(seed);
        let tree = gen.tree(&mut rng);
        let message = probe(prop, &tree.value)?;
        let original = tree.value.clone();
        let (shrunk, steps, message) = self.shrink(tree, prop, message);
        let trace = counterexample_trace(prop, &shrunk);
        Some(Failure {
            seed,
            original,
            shrunk,
            steps,
            message,
            trace,
        })
    }

    /// Greedy descent: repeatedly move to the first child that still
    /// fails, until no child fails or the step budget runs out.
    fn shrink<V: Clone + Debug, P: Fn(&V)>(
        &self,
        mut node: Tree<V>,
        prop: &P,
        mut message: String,
    ) -> (V, u32, String) {
        let mut steps = 0u32;
        'outer: loop {
            for child in node.children() {
                if steps >= self.max_shrink_steps {
                    break 'outer;
                }
                steps += 1;
                if let Some(msg) = probe(prop, &child.value) {
                    node = child;
                    message = msg;
                    continue 'outer;
                }
            }
            break;
        }
        (node.value, steps, message)
    }

    fn recorded_seeds(&self, name: &str) -> Vec<u64> {
        let Some(path) = &self.regressions else {
            return Vec::new();
        };
        let Ok(text) = fs::read_to_string(path) else {
            return Vec::new();
        };
        parse_regressions(&text, name)
    }

    fn record_failure<V: Debug>(&self, name: &str, f: &Failure<V>) {
        let Some(path) = &self.regressions else {
            return;
        };
        if self.recorded_seeds(name).contains(&f.seed) {
            return;
        }
        // Best-effort: failure reporting must not depend on the file write.
        let _ = (|| -> std::io::Result<()> {
            let fresh = !path.exists();
            let mut file = fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)?;
            if fresh {
                writeln!(file, "{REGRESSION_HEADER}")?;
            }
            let mut shrunk = format!("{:?}", f.shrunk);
            shrunk.truncate(200);
            writeln!(file, "cc {} {:#018x}  # shrunk: {}", name, f.seed, shrunk)?;
            // The flight-recorder tail rides along as comment lines so the
            // regression entry documents *how* the case failed, not just
            // which seed regenerates it.
            for event in f.trace.lines() {
                writeln!(file, "#   trace: {event}")?;
            }
            Ok(())
        })();
    }
}

const REGRESSION_HEADER: &str = "\
# fsoi-check regression seeds.
#
# Everything after `#` is a comment. Each `cc <test> <seed>` line replays
# the recorded failing case (by regenerating it from the seed) before any
# fresh cases run. Check this file in; delete a line only if the property
# it pins has been intentionally changed.";

fn parse_regressions(text: &str, name: &str) -> Vec<u64> {
    let mut seeds = Vec::new();
    for line in text.lines() {
        let line = line.split('#').next().unwrap_or("").trim();
        let mut parts = line.split_whitespace();
        if parts.next() != Some("cc") {
            continue;
        }
        if parts.next() != Some(name) {
            continue;
        }
        if let Some(seed) = parts.next().and_then(parse_u64) {
            seeds.push(seed);
        }
    }
    seeds
}

fn parse_u64(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

fn env_u64(var: &str) -> Option<u64> {
    // lint: allow(D2) callers pass only the documented FSOI_CHECK_* knob names
    let s = std::env::var(var).ok()?;
    match parse_u64(s.trim()) {
        Some(v) => Some(v),
        // A set-but-unparseable override must not be silently ignored:
        // the caller thinks they are replaying/seeding something specific.
        // lint: allow(P1) aborting beats silently running the wrong cases
        None => panic!("{var}={s:?} is not a u64 (use 0x-prefixed hex or decimal)"),
    }
}

/// Joins `source_file` (a `file!()` path, workspace-root-relative) onto
/// `manifest_dir`, stripping leading components until the file exists, and
/// swaps the extension for `.regressions`.
fn resolve_regression_path(manifest_dir: &str, source_file: &str) -> PathBuf {
    let md = Path::new(manifest_dir);
    let mut rel = Path::new(source_file);
    loop {
        let cand = md.join(rel);
        if cand.exists() {
            return cand.with_extension("regressions");
        }
        let mut comps = rel.components();
        if comps.next().is_none() {
            break;
        }
        let next = comps.as_path();
        if next == rel || next.as_os_str().is_empty() {
            break;
        }
        rel = next;
    }
    md.join(source_file).with_extension("regressions")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_distinguishes_names() {
        assert_ne!(fnv1a64("a"), fnv1a64("b"));
        assert_eq!(fnv1a64("prop"), fnv1a64("prop"));
    }

    #[test]
    fn parse_regression_lines() {
        let text = "# header\n\
                    cc my_test 0x00000000deadbeef  # shrunk: [1, 2]\n\
                    cc other_test 42\n\
                    cc my_test 7\n\
                    malformed line\n";
        assert_eq!(parse_regressions(text, "my_test"), vec![0xdead_beef, 7]);
        assert_eq!(parse_regressions(text, "other_test"), vec![42]);
        assert!(parse_regressions(text, "absent").is_empty());
    }

    #[test]
    fn parse_u64_accepts_hex_and_decimal() {
        assert_eq!(parse_u64("0x10"), Some(16));
        assert_eq!(parse_u64("16"), Some(16));
        assert_eq!(parse_u64("zz"), None);
    }

    #[test]
    fn regression_path_strips_workspace_prefix() {
        // file!() for an integration test in this crate looks like
        // "crates/check/tests/selftest.rs" while the manifest dir already
        // ends in "crates/check" — the joined path only exists after the
        // duplicate prefix is stripped.
        let md = env!("CARGO_MANIFEST_DIR");
        let p = resolve_regression_path(md, "crates/check/src/runner.rs");
        assert_eq!(
            p,
            Path::new(md)
                .join("src/runner.rs")
                .with_extension("regressions")
        );
    }
}
