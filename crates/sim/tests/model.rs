//! Model-checker self-tests and exhaustive exploration of the sweep
//! executor's drain/steal/termination protocol at small shapes.
//!
//! Run with `cargo test -p fsoi-sim --features model`.

#![cfg(feature = "model")]

use fsoi_sim::model::{check, replay, Failure, Opts};
use fsoi_sim::par;
use fsoi_sim::sync::{scope, Mutex};
use std::collections::VecDeque;

// ---------------------------------------------------------------------------
// Self-tests: the checker must catch classic bugs and pass correct code
// ---------------------------------------------------------------------------

/// Two threads taking two locks in opposite order: the classic deadlock.
/// One preemption (switch after the first acquire) exposes it.
#[test]
fn two_lock_cycle_is_caught_as_deadlock() {
    let report = check(Opts::with_preemptions(1), || {
        let a = Mutex::new(0u32);
        let b = Mutex::new(0u32);
        let (a, b) = (&a, &b);
        scope(|s| {
            s.spawn(move || {
                let _ga = a.lock().expect("unpoisoned");
                let _gb = b.lock().expect("unpoisoned");
            });
            s.spawn(move || {
                let _gb = b.lock().expect("unpoisoned");
                let _ga = a.lock().expect("unpoisoned");
            });
        });
    });
    assert!(
        matches!(report.failure, Some(Failure::Deadlock(_))),
        "expected deadlock, got: {}",
        report.render()
    );
    assert!(!report.trace.is_empty(), "failing trace must be recorded");
    assert!(
        report.render().contains("blocked acquiring"),
        "render names the blocked acquires:\n{}",
        report.render()
    );
}

/// Lost wakeup: the waiter checks a flag, then parks — but the notifier
/// can set the flag and unpark *between* the check and the park. With
/// token semantics this exact code is actually safe (unpark-before-park
/// leaves a token), so the seeded bug models the real anti-pattern:
/// the waiter parks in a loop and the notifier signals only once while
/// the waiter is not yet parked-with-consumed-token... The minimal
/// reliable fixture: the notifier unparks *before* the waiter's handle
/// exists — i.e. the wakeup targets nobody. We model it as a waiter
/// that parks unconditionally while the notifier never unparks unless
/// a flag (set too late) is observed.
#[test]
fn lost_wakeup_is_caught_as_deadlock() {
    let report = check(Opts::with_preemptions(2), || {
        let ready = Mutex::new(false);
        let ready = &ready;
        scope(|s| {
            let waiter = s.spawn(move || {
                // BUG: test-then-park without re-check. If the notifier
                // runs entirely between the flag read and the park, its
                // unpark lands before... no — tokens make that safe.
                // The real lost wakeup: the notifier *skips* unpark
                // because it observed `waiting == false` before the
                // waiter set it.
                fsoi_sim::sync::park();
            });
            // Notifier: only wakes the waiter if it already sees the
            // flag the waiter never set — so on some schedule (here:
            // every schedule) the token is never granted.
            let go = *ready.lock().expect("unpoisoned");
            if go {
                waiter.unpark();
            }
            waiter.join().expect("no panic");
        });
    });
    assert!(
        matches!(report.failure, Some(Failure::Deadlock(_))),
        "expected lost-wakeup deadlock, got: {}",
        report.render()
    );
    assert!(
        report.render().contains("lost wakeup") || report.render().contains("parked"),
        "render points at the park:\n{}",
        report.render()
    );
}

/// The correct handshake passes exhaustively: the notifier always
/// unparks, and token semantics make unpark-before-park safe.
#[test]
fn correct_park_handshake_passes_exhaustively() {
    let report = check(Opts::with_preemptions(2), || {
        scope(|s| {
            let waiter = s.spawn(fsoi_sim::sync::park);
            waiter.unpark();
            waiter.join().expect("no panic");
        });
    });
    assert!(report.passed(), "unexpected failure: {}", report.render());
    assert!(report.exhaustive, "small space must be fully explored");
}

/// A leaked guard (`mem::forget`) is non-quiescent termination.
#[test]
fn leaked_guard_is_caught_as_non_quiescent() {
    let report = check(Opts::default(), || {
        let m = Mutex::new(7u32);
        let g = m.lock().expect("unpoisoned");
        std::mem::forget(g);
        // `m` drops here, but the model's logical lock state outlives
        // the execution and still shows an owner.
    });
    assert!(
        matches!(report.failure, Some(Failure::NonQuiescent(_))),
        "expected non-quiescent termination, got: {}",
        report.render()
    );
    assert!(
        report.render().contains("leaked guard"),
        "render names the leak:\n{}",
        report.render()
    );
}

/// A panic inside the body is reported with its payload and schedule.
#[test]
fn panic_in_body_is_reported_with_payload() {
    let report = check(Opts::default(), || {
        let m = Mutex::new(0u32);
        let m = &m;
        scope(|s| {
            s.spawn(move || {
                let mut g = m.lock().expect("unpoisoned");
                *g += 1;
                if *g == 1 {
                    panic!("seeded failure");
                }
            });
        });
    });
    assert!(
        matches!(&report.failure, Some(Failure::Panic(msg)) if msg.contains("seeded failure")),
        "expected the seeded panic, got: {}",
        report.render()
    );
}

/// The schedule in a failing report replays to the identical failure,
/// and both renders are byte-identical (stable traces).
#[test]
fn failing_schedule_replays_byte_stably() {
    let body = || {
        let a = Mutex::new(0u32);
        let b = Mutex::new(0u32);
        let (a, b) = (&a, &b);
        scope(|s| {
            s.spawn(move || {
                let _ga = a.lock().expect("unpoisoned");
                let _gb = b.lock().expect("unpoisoned");
            });
            s.spawn(move || {
                let _gb = b.lock().expect("unpoisoned");
                let _ga = a.lock().expect("unpoisoned");
            });
        });
    };
    let found = check(Opts::with_preemptions(1), body);
    assert!(found.failure.is_some(), "fixture must fail");

    let replayed = replay(&found.schedule, body);
    assert_eq!(
        found.failure, replayed.failure,
        "replay reproduces the same failure kind"
    );
    assert_eq!(found.trace, replayed.trace, "replay reproduces the trace");

    // Byte-stability: replaying twice renders identically.
    let replayed2 = replay(&found.schedule, body);
    assert_eq!(replayed.render(), replayed2.render());
}

/// Same check twice → same report text (the checker itself is
/// deterministic, not just the replay).
#[test]
fn checker_output_is_deterministic_across_runs() {
    let body = || {
        let a = Mutex::new(0u32);
        let b = Mutex::new(0u32);
        let (a, b) = (&a, &b);
        scope(|s| {
            s.spawn(move || {
                let _ga = a.lock().expect("unpoisoned");
                let _gb = b.lock().expect("unpoisoned");
            });
            s.spawn(move || {
                let _gb = b.lock().expect("unpoisoned");
                let _ga = a.lock().expect("unpoisoned");
            });
        });
    };
    let r1 = check(Opts::with_preemptions(1), body);
    let r2 = check(Opts::with_preemptions(1), body);
    assert_eq!(r1.render(), r2.render());
}

// ---------------------------------------------------------------------------
// The PR 6 bug, reintroduced as a fixture the checker must catch
// ---------------------------------------------------------------------------

/// A faithful miniature of the pre-PR-6 worker loop: each worker pops
/// its own queue and, while STILL HOLDING its own queue's guard,
/// reaches into the victim's queue to steal. Two workers doing this
/// simultaneously form a two-lock cycle — the exact deadlock PR 6
/// fixed by dropping the own-queue guard before stealing.
fn buggy_guard_across_steal(workers: usize, chunks: usize) {
    let queues: Vec<Mutex<VecDeque<usize>>> =
        (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
    for c in 0..chunks {
        queues[c % workers].lock().expect("unpoisoned").push_back(c);
    }
    let queues = &queues;
    scope(|s| {
        for me in 0..workers {
            s.spawn(move || loop {
                // BUG (pre-PR-6): `own` keeps the guard alive across
                // the steal attempt below.
                let mut own = queues[me].lock().expect("unpoisoned");
                if own.pop_front().is_some() {
                    continue;
                }
                // Steal while still holding `own`'s lock.
                let stolen = (1..workers).find_map(|v| {
                    queues[(me + v) % workers]
                        .lock()
                        .expect("unpoisoned")
                        .pop_back()
                });
                drop(own);
                if stolen.is_none() {
                    return;
                }
            });
        }
    });
}

#[test]
fn pr6_guard_across_steal_bug_is_caught() {
    let report = check(Opts::with_preemptions(1), || buggy_guard_across_steal(2, 3));
    assert!(
        matches!(report.failure, Some(Failure::Deadlock(_))),
        "the PR 6 bug class must be caught: {}",
        report.render()
    );
}

// ---------------------------------------------------------------------------
// The real executor protocol, exhaustively explored at small shapes
// ---------------------------------------------------------------------------

/// The current (fixed) drain/steal/termination protocol, passes
/// exhaustive exploration at every required small shape.
#[test]
fn current_drain_steal_protocol_passes_2_workers_3_chunks() {
    assert_protocol_clean(2, 3, 2);
}

#[test]
fn current_drain_steal_protocol_passes_2_workers_4_chunks() {
    assert_protocol_clean(2, 4, 2);
}

#[test]
fn current_drain_steal_protocol_passes_3_workers_3_chunks() {
    assert_protocol_clean(3, 3, 2);
}

#[test]
fn current_drain_steal_protocol_passes_2_workers_6_chunks() {
    assert_protocol_clean(2, 6, 1);
}

fn assert_protocol_clean(workers: usize, chunks: usize, preemptions: usize) {
    let report = check(Opts::with_preemptions(preemptions), move || {
        par::model_sweep_protocol(workers, chunks);
    });
    assert!(
        report.passed(),
        "executor protocol failed at {workers} workers / {chunks} chunks:\n{}",
        report.render()
    );
    assert!(
        report.exhaustive,
        "exploration at {workers}x{chunks} must be exhaustive, \
         saw {} executions",
        report.executions
    );
}

/// The full `par::sweep` entry point itself runs under the checker
/// (threads > 1 so the parallel path engages) and completes cleanly,
/// producing the same output as the serial path.
#[test]
fn full_sweep_passes_model_exploration_at_2x3() {
    let report = check(Opts::with_preemptions(1), || {
        let out = par::sweep(3, 2, |cell| cell * 10);
        assert_eq!(out, vec![0, 10, 20]);
    });
    assert!(
        report.passed(),
        "sweep failed under the model: {}",
        report.render()
    );
}
