//! Optical path-length skew and its compensation (paper footnote 2).
//!
//! Different node pairs fly different distances through the free-space
//! layer: a neighbour link might be 3 mm, the chip diagonal 20 mm. At the
//! speed of light that is a spread of tens of picoseconds — "equivalent
//! to about 3 communication cycles" at the 40 Gbps optical bit rate. The
//! paper keeps the whole chip synchronous by **padding the faster paths**
//! with extra serializer bits and fine-tuning with digital delay lines in
//! the transmitter.
//!
//! This module computes per-pair flight times from the floorplan geometry
//! and the padding schedule that equalizes them.

use crate::topology::NodeId;

/// Speed of light in vacuum, m/s (the free-space layer is air/vacuum).
const C: f64 = 2.997_924_58e8;

/// Geometric model of the free-space layer over a square tiled die.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Floorplan {
    /// Nodes per side (mesh width of the tiling).
    pub side: usize,
    /// Pitch between adjacent node centres, metres.
    pub pitch_m: f64,
    /// Extra vertical flight (up to the mirror layer and back), metres.
    pub vertical_m: f64,
}

impl Floorplan {
    /// The paper's 16-node die: 4×4 tiles on a ~2 cm-diagonal chip
    /// (≈ 4.7 mm pitch), with a ~5 mm round trip to the mirror layer.
    pub fn paper_16() -> Self {
        Floorplan {
            side: 4,
            pitch_m: 4.7e-3,
            vertical_m: 5.0e-3,
        }
    }

    /// The 64-node die: 8×8 tiles on the same die outline (2.0 mm pitch
    /// keeps the corner-to-corner span at ≈ 20 mm).
    pub fn paper_64() -> Self {
        Floorplan {
            side: 8,
            pitch_m: 2.0e-3,
            vertical_m: 5.0e-3,
        }
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.side * self.side
    }

    /// Euclidean lateral distance between two nodes' centres, metres.
    pub fn lateral_distance_m(&self, a: NodeId, b: NodeId) -> f64 {
        let (ax, ay) = (a.0 % self.side, a.0 / self.side);
        let (bx, by) = (b.0 % self.side, b.0 / self.side);
        let dx = (ax as f64 - bx as f64) * self.pitch_m;
        let dy = (ay as f64 - by as f64) * self.pitch_m;
        (dx * dx + dy * dy).sqrt()
    }

    /// Total flight length of the mirror-guided path between two nodes.
    pub fn path_length_m(&self, a: NodeId, b: NodeId) -> f64 {
        self.lateral_distance_m(a, b) + self.vertical_m
    }

    /// One-way flight time, picoseconds.
    pub fn flight_time_ps(&self, a: NodeId, b: NodeId) -> f64 {
        self.path_length_m(a, b) / C * 1e12
    }

    /// The longest flight time over all pairs, picoseconds.
    pub fn max_flight_time_ps(&self) -> f64 {
        let n = self.nodes();
        let mut max = 0.0f64;
        for a in 0..n {
            for b in 0..n {
                if a != b {
                    max = max.max(self.flight_time_ps(NodeId(a), NodeId(b)));
                }
            }
        }
        max
    }

    /// The chip-wide skew: spread between the fastest and slowest pair,
    /// picoseconds. The paper: "up to tens of picoseconds".
    pub fn max_skew_ps(&self) -> f64 {
        let n = self.nodes();
        let mut min = f64::INFINITY;
        for a in 0..n {
            for b in 0..n {
                if a != b {
                    min = min.min(self.flight_time_ps(NodeId(a), NodeId(b)));
                }
            }
        }
        self.max_flight_time_ps() - min
    }
}

/// The compensation schedule: whole optical bit times of serializer
/// padding per pair, plus the sub-bit residue trimmed by the digital
/// delay line.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SkewCompensation {
    /// Whole padding bits prepended by the serializer.
    pub padding_bits: u32,
    /// Residual fine-tune for the delay line, picoseconds (< 1 bit).
    pub delay_line_ps: f64,
}

/// Computes the compensation aligning the pair `(a, b)` to the slowest
/// path, given the optical bit time (25 ps at 40 Gbps).
///
/// # Panics
///
/// Panics if `bit_time_ps` is not positive.
pub fn compensation(plan: &Floorplan, a: NodeId, b: NodeId, bit_time_ps: f64) -> SkewCompensation {
    assert!(bit_time_ps > 0.0, "bit time must be positive");
    let slack = plan.max_flight_time_ps() - plan.flight_time_ps(a, b);
    let bits = (slack / bit_time_ps).floor();
    SkewCompensation {
        padding_bits: bits as u32,
        delay_line_ps: slack - bits * bit_time_ps,
    }
}

/// Worst-case padding anywhere on the chip, in *communication cycles*
/// (optical bits). The paper: "up to … about 3 communication cycles".
pub fn max_padding_bits(plan: &Floorplan, bit_time_ps: f64) -> u32 {
    let n = plan.nodes();
    let mut max = 0;
    for a in 0..n {
        for b in 0..n {
            if a != b {
                max = max.max(compensation(plan, NodeId(a), NodeId(b), bit_time_ps).padding_bits);
            }
        }
    }
    max
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 25 ps: one bit at 40 Gbps.
    const BIT_PS: f64 = 25.0;

    #[test]
    fn diagonal_is_the_longest_path() {
        let plan = Floorplan::paper_16();
        let diag = plan.flight_time_ps(NodeId(0), NodeId(15));
        assert!((plan.max_flight_time_ps() - diag).abs() < 1e-9);
        // 3·√2·4.7 mm ≈ 19.9 mm lateral + 5 mm vertical ≈ 83 ps.
        assert!((70.0..95.0).contains(&diag), "diagonal flight = {diag} ps");
    }

    #[test]
    fn skew_is_tens_of_picoseconds() {
        // Paper footnote 2: "delay differences … up to tens of
        // picoseconds, or equivalent to about 3 communication cycles".
        let plan = Floorplan::paper_16();
        let skew = plan.max_skew_ps();
        assert!((40.0..90.0).contains(&skew), "skew = {skew} ps");
        let max_bits = max_padding_bits(&plan, BIT_PS);
        assert!(
            (2..=4).contains(&max_bits),
            "≈3 communication cycles of padding, got {max_bits}"
        );
    }

    #[test]
    fn compensation_equalizes_all_paths() {
        let plan = Floorplan::paper_16();
        let target = plan.max_flight_time_ps();
        for a in 0..16 {
            for b in 0..16 {
                if a == b {
                    continue;
                }
                let c = compensation(&plan, NodeId(a), NodeId(b), BIT_PS);
                let aligned = plan.flight_time_ps(NodeId(a), NodeId(b))
                    + c.padding_bits as f64 * BIT_PS
                    + c.delay_line_ps;
                assert!(
                    (aligned - target).abs() < 1e-9,
                    "pair ({a},{b}) misaligned by {} ps",
                    aligned - target
                );
                assert!(c.delay_line_ps < BIT_PS, "residue fits the delay line");
            }
        }
    }

    #[test]
    fn slowest_pair_needs_no_padding() {
        let plan = Floorplan::paper_16();
        let c = compensation(&plan, NodeId(0), NodeId(15), BIT_PS);
        assert_eq!(c.padding_bits, 0);
        assert!(c.delay_line_ps < 1e-9);
    }

    #[test]
    fn sixty_four_node_floorplan() {
        let plan = Floorplan::paper_64();
        assert_eq!(plan.nodes(), 64);
        // Same die size: similar worst-case flight.
        let p16 = Floorplan::paper_16();
        assert!((plan.max_flight_time_ps() - p16.max_flight_time_ps()).abs() < 5.0);
    }

    #[test]
    fn geometry_basics() {
        let plan = Floorplan::paper_16();
        assert_eq!(plan.lateral_distance_m(NodeId(5), NodeId(5)), 0.0);
        let horiz = plan.lateral_distance_m(NodeId(0), NodeId(3));
        assert!((horiz - 3.0 * plan.pitch_m).abs() < 1e-12);
        let sym_ab = plan.flight_time_ps(NodeId(2), NodeId(13));
        let sym_ba = plan.flight_time_ps(NodeId(13), NodeId(2));
        assert!((sym_ab - sym_ba).abs() < 1e-12, "paths are symmetric");
    }

    #[test]
    #[should_panic(expected = "bit time must be positive")]
    fn zero_bit_time_panics() {
        compensation(&Floorplan::paper_16(), NodeId(0), NodeId(1), 0.0);
    }
}
