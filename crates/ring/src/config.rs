//! Ring crossbar configuration.

/// Configuration of a [`RingNetwork`](crate::network::RingNetwork).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RingConfig {
    /// Number of nodes (= number of home channels).
    pub nodes: usize,
    /// Cycles for light (and the token) to circulate the full waveguide
    /// loop. A ~8 cm loop around a 2 cm die is ~2.7 ns in silicon
    /// (group index ≈ 4 at 980–1550 nm bands), ≈ 9 cycles at 3.3 GHz;
    /// Corona's own arbitration analysis uses an 8-cycle circulation.
    pub ring_circulation_cycles: u64,
    /// Serialization cycles of a 72-bit meta packet on one channel's WDM
    /// bundle.
    pub meta_serialization: u64,
    /// Serialization cycles of a 360-bit data packet.
    pub data_serialization: u64,
    /// Cycles to pass the token between consecutive contending writers
    /// once the channel is busy (a fraction of the loop).
    pub token_pass_cycles: u64,
    /// Per-node injection queue capacity, packets.
    pub injection_queue: usize,
    /// Static power per channel for ring-resonator thermal tuning plus
    /// modulators, watts. Corona-class designs keep thousands of rings on
    /// resonance; the paper's §2 highlights this as a WDM cost. Default
    /// 0.26 W/channel ≈ 16.6 W for 64 channels.
    pub channel_static_w: f64,
}

impl RingConfig {
    /// A Corona-class configuration for `n` nodes: generous WDM channel
    /// bandwidth (meta in 1 cycle, data in 3), 9-cycle loop, 2-cycle
    /// token pass.
    pub fn nodes(n: usize) -> Self {
        assert!(n >= 2, "a crossbar needs at least two nodes");
        RingConfig {
            nodes: n,
            ring_circulation_cycles: 9,
            meta_serialization: 1,
            data_serialization: 3,
            token_pass_cycles: 2,
            injection_queue: 16,
            channel_static_w: 0.26,
        }
    }

    /// Builder-style: sets the loop circulation time.
    pub fn with_circulation(mut self, cycles: u64) -> Self {
        assert!(cycles >= 1);
        self.ring_circulation_cycles = cycles;
        self
    }

    /// Mean token-acquisition wait for an idle channel: half a loop.
    pub fn idle_token_wait(&self) -> u64 {
        self.ring_circulation_cycles / 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        let c = RingConfig::nodes(64);
        assert_eq!(c.nodes, 64);
        assert_eq!(c.ring_circulation_cycles, 9);
        assert_eq!(c.idle_token_wait(), 4);
        assert_eq!(c.meta_serialization, 1);
        assert_eq!(c.data_serialization, 3);
    }

    #[test]
    fn builder() {
        let c = RingConfig::nodes(16).with_circulation(12);
        assert_eq!(c.idle_token_wait(), 6);
    }

    #[test]
    #[should_panic(expected = "at least two nodes")]
    fn tiny_panics() {
        RingConfig::nodes(1);
    }
}
